#![warn(missing_docs)]

//! # serde (workspace shim)
//!
//! The build environment has no access to crates.io. The workspace only uses
//! serde as *derive markers* on plain data types (no serialization is ever
//! performed — results are written as hand-rolled CSV), so this shim provides
//! empty `Serialize` / `Deserialize` traits plus no-op derive macros that
//! keep `#[derive(Serialize, Deserialize)]` compiling. If real serialization
//! is ever needed, swap this path dependency for the crates.io `serde`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize` (no methods; never invoked).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (no methods; never invoked).
pub trait Deserialize<'de> {}
