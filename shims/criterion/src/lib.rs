#![warn(missing_docs)]

//! # criterion (workspace shim)
//!
//! The build environment has no access to crates.io, so this crate provides
//! the subset of the Criterion.rs API the workspace's benches use
//! ([`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher`],
//! [`criterion_group!`], [`criterion_main!`]) backed by a simple wall-clock
//! timing loop instead of Criterion's statistical machinery.
//!
//! Each benchmark is warmed up once, then run in batches until a time budget
//! (default 300 ms, `CRITERION_SHIM_BUDGET_MS` to override) is exhausted; the
//! mean per-iteration time is printed. Good enough to rank implementations
//! and spot order-of-magnitude regressions; swap in real Criterion for
//! publication-grade statistics.

use std::fmt::Display;
use std::time::{Duration, Instant};

fn budget() -> Duration {
    let ms = std::env::var("CRITERION_SHIM_BUDGET_MS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(300);
    Duration::from_millis(ms)
}

/// Formats a per-iteration duration with a human-friendly unit.
fn fmt_per_iter(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Identifies one benchmark within a group, e.g. a parameter value.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id made of the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    name: String,
    budget: Duration,
}

impl Bencher {
    /// Times `routine`, printing the mean wall-clock cost per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (also seeds the batch-size estimate).
        let t0 = Instant::now();
        std::hint::black_box(routine());
        let first = t0.elapsed().max(Duration::from_nanos(1));

        let mut iters: u64 = 1;
        let mut elapsed = first;
        let per_batch = (self.budget.as_nanos() / 10 / first.as_nanos()).clamp(1, 10_000) as u64;
        while elapsed < self.budget {
            let t = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(routine());
            }
            elapsed += t.elapsed();
            iters += per_batch;
        }
        let per_iter = elapsed.as_nanos() as f64 / iters as f64;
        println!(
            "bench: {:<44} {:>12}/iter  ({iters} iters)",
            self.name,
            fmt_per_iter(per_iter)
        );
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's stopping rule is a time
    /// budget, so the requested sample count is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; ignored by the shim.
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` against `input` under `id` within this group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            name: format!("{}/{}", self.name, id.id),
            budget: budget(),
        };
        f(&mut b, input);
        self
    }

    /// Benchmarks `f` under `id` (a [`BenchmarkId`] or string) in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            name: format!("{}/{}", self.name, id.into().id),
            budget: budget(),
        };
        f(&mut b);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Entry point handed to `criterion_group!` functions.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            name: name.to_string(),
            budget: budget(),
        };
        f(&mut b);
        self
    }
}

/// Re-export matching `criterion::black_box` (same as `std::hint`).
pub use std::hint::black_box;

/// Declares a function running a list of benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench target built with `harness = false`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench`/`cargo test` pass harness flags; none apply here.
            $($group();)+
        }
    };
}
