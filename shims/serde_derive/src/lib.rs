//! No-op derive macros backing the workspace `serde` shim: the derives must
//! parse so `#[derive(Serialize, Deserialize)]` compiles, but no impl is
//! emitted because nothing in the workspace ever serializes.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits nothing.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits nothing.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
