#![warn(missing_docs)]

//! # proptest (workspace shim)
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the subset of the proptest API the workspace's property
//! tests use: the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, `x in strategy` bindings over integer
//! ranges / `any::<T>()` / tuples / `prop::collection::vec`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * inputs are generated from a seeded deterministic RNG (stable across
//!   runs and machines) rather than an entropy-seeded one;
//! * **no shrinking** — a failing case reports its case number and message
//!   but is not minimized;
//! * `prop_assume!` rejects the individual case without retrying it.
//!
//! Case counts come from the suite's `ProptestConfig::with_cases(n)` (default
//! [`DEFAULT_CASES`]) and are **capped** by the `PROPTEST_CASES` environment
//! variable so CI can bound total test time.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Strategy};
pub use test_runner::{TestCaseError, TestRng};

/// Cases run per property when the suite does not configure a count.
pub const DEFAULT_CASES: u32 = 64;

/// Per-suite configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of randomized cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: DEFAULT_CASES,
        }
    }
}

/// Applies the `PROPTEST_CASES` environment cap to a configured case count.
pub fn resolve_cases(configured: u32) -> u32 {
    match std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse::<u32>().ok())
    {
        Some(cap) => configured.min(cap).max(1),
        None => configured.max(1),
    }
}

/// Everything a property-test file needs; mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
    };
}

/// Declares deterministic property tests.
///
/// Accepts an optional `#![proptest_config(expr)]` header followed by any
/// number of `fn name(binding in strategy, ...) { body }` items, each
/// carrying its own attributes (`#[test]`, doc comments, ...).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let __cases = $crate::resolve_cases(__config.cases);
            let __test_path = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__cases {
                let mut __rng = $crate::TestRng::for_case(__test_path, __case as u64);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body;
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "property `{}` failed at case {}/{}: {}",
                            __test_path, __case, __cases, __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

/// Fails the current case (with an optional format message) unless `cond`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r
            )));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left), stringify!($right), __l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+), __l
            )));
        }
    }};
}

/// Skips the current case unless `cond` (a precondition, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}
