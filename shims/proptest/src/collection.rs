//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// Admissible element counts for a generated collection.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s whose elements come from an inner strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = rand::Rng::gen_range(rng, self.size.lo..=self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `Vec`s of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_lengths_respect_the_size_range() {
        let mut rng = TestRng::for_case("collection::len", 0);
        let strat = vec(any::<u32>(), 2..6);
        for _ in 0..500 {
            let v = strat.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
        }
        let exact = vec(any::<u32>(), 4usize);
        assert_eq!(exact.generate(&mut rng).len(), 4);
    }
}
