//! Deterministic case generation and the case-level error type.

/// Why a single property case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the property is falsified.
    Fail(String),
    /// A `prop_assume!` precondition did not hold; skip the case.
    Reject,
}

use rand::{RngCore, SeedableRng};

/// Deterministic per-case random source (the workspace `rand` shim's
/// SplitMix64, seeded from a hash of the fully-qualified test name and the
/// case index), so failures reproduce exactly across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: rand::rngs::StdRng,
}

impl TestRng {
    /// RNG for case `case` of the property named `test_path`.
    pub fn for_case(test_path: &str, case: u64) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            inner: rand::rngs::StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

// Strategies sample through the `rand` shim's `Rng::gen_range` machinery,
// so `TestRng` is itself a `rand` source.
impl RngCore for TestRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::TestRng;

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let mut a = TestRng::for_case("mod::prop", 3);
        let mut b = TestRng::for_case("mod::prop", 3);
        let mut c = TestRng::for_case("mod::prop", 4);
        let mut d = TestRng::for_case("mod::other", 3);
        let (va, vb, vc, vd) = (a.next_u64(), b.next_u64(), c.next_u64(), d.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
        assert_ne!(va, vd);
    }
}
