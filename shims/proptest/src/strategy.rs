//! The [`Strategy`] trait and the built-in strategies the workspace uses:
//! integer ranges, `any::<T>()`, and tuples of strategies.

use crate::test_runner::TestRng;
use rand::distributions::SampleUniform;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking: a strategy is just a pure
/// function of the per-case RNG.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<T: SampleUniform> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

/// Values producible by [`any`].
pub trait Arbitrary {
    /// Generates an unconstrained value of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`]: unconstrained values of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy generating arbitrary values of `T` (`any::<u64>()`, ...).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_tuple_strategies {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("strategy::bounds", 0);
        for _ in 0..2_000 {
            let a = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&a));
            let b = (2u32..=40).generate(&mut rng);
            assert!((2..=40).contains(&b));
        }
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::for_case("strategy::tuples", 1);
        let (flag, x) = (any::<bool>(), 0u64..500).generate(&mut rng);
        let _: bool = flag;
        assert!(x < 500);
        let (a, v, c, d) = (
            any::<u32>(),
            crate::collection::vec(any::<u32>(), 1..5),
            2u32..40,
            0u64..30_000,
        )
            .generate(&mut rng);
        let _ = a;
        assert!((1..5).contains(&v.len()));
        assert!((2..40).contains(&c));
        assert!(d < 30_000);
    }
}
