#![warn(missing_docs)]

//! # rand (workspace shim)
//!
//! The build environment has no access to crates.io, so this crate
//! reimplements the *exact* subset of the `rand` 0.8 API surface used by the
//! SPAM workspace: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! the [`Rng`] extension trait (`gen_range`, `gen_bool`), and the sequence
//! helpers [`seq::SliceRandom`] / [`seq::IteratorRandom`].
//!
//! The generator is SplitMix64: deterministic, fast, and statistically solid
//! for simulation workloads. It is **not** the same stream as upstream
//! `StdRng` (ChaCha12), so seeded values differ from a crates.io build; all
//! golden values in this workspace were produced with this shim.

/// Low-level uniform random source: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (`a..b` or `a..=b`; integers or `f64`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    //! Concrete generator types.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        /// The generator's current internal state word.
        ///
        /// Shim extension (upstream `StdRng` is opaque): the snapshot
        /// layer persists this and reconstructs the exact stream with
        /// [`SeedableRng::seed_from_u64`]`(state)` — SplitMix64's state
        /// *is* its seed, advanced by one increment per draw.
        pub fn state(&self) -> u64 {
            self.state
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }
}

pub mod distributions {
    //! Range-sampling support for [`Rng::gen_range`](crate::Rng::gen_range).

    use super::{unit_f64, RngCore};
    use std::ops::{Range, RangeInclusive};

    /// Types with a uniform sampler over half-open and inclusive ranges.
    pub trait SampleUniform: Copy + PartialOrd {
        /// Uniform sample from `[lo, hi)`.
        fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

        /// Uniform sample from `[lo, hi]`.
        fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    }

    macro_rules! impl_sample_uniform_int {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                    assert!(lo < hi, "gen_range: empty range");
                    let span = (hi as u128).wrapping_sub(lo as u128);
                    lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }

                fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                    assert!(lo <= hi, "gen_range: empty range");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
                }
            }
        )*};
    }

    impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_sample_uniform_float {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                    assert!(lo < hi, "gen_range: empty range");
                    let v = lo + (hi - lo) * (unit_f64(rng.next_u64()) as $t);
                    // Guard against rounding up to the excluded endpoint.
                    if v >= hi { lo } else { v }
                }

                fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                    assert!(lo <= hi, "gen_range: empty range");
                    lo + (hi - lo) * (unit_f64(rng.next_u64()) as $t)
                }
            }
        )*};
    }

    impl_sample_uniform_float!(f32, f64);

    /// A range that can produce a uniform sample of `T`.
    ///
    /// Blanket-implemented over [`SampleUniform`] (one impl per range shape,
    /// not per element type) so integer-literal inference flows through
    /// `gen_range` exactly as it does with the real `rand`.
    pub trait SampleRange<T> {
        /// Draws one uniform sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_half_open(self.start, self.end, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_inclusive(*self.start(), *self.end(), rng)
        }
    }
}

pub mod seq {
    //! Random selection and permutation of sequences.

    use super::{Rng, RngCore};

    /// Slice extensions: in-place shuffling and uniform element choice.
    pub trait SliceRandom {
        /// Element type of the underlying slice.
        type Item;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }

    /// Iterator extension: uniform choice via reservoir sampling.
    pub trait IteratorRandom: Iterator + Sized {
        /// Returns a uniformly random item of the iterator, or `None` if it
        /// is empty. Consumes the iterator (single pass, O(1) memory).
        fn choose<R: RngCore + ?Sized>(mut self, rng: &mut R) -> Option<Self::Item> {
            let mut picked = self.next()?;
            for (seen, item) in (2usize..).zip(self) {
                if rng.gen_range(0..seen) == 0 {
                    picked = item;
                }
            }
            Some(picked)
        }
    }

    impl<I: Iterator> IteratorRandom for I {}
}

#[cfg(test)]
mod tests {
    use super::seq::{IteratorRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = crate::rngs::StdRng::seed_from_u64(42);
        let mut b = crate::rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::rngs::StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2u32..=160);
            assert!((2..=160).contains(&y));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = crate::rngs::StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = crate::rngs::StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements_eventually() {
        let mut rng = crate::rngs::StdRng::seed_from_u64(3);
        let v = [1usize, 2, 3, 4];
        let mut hit = [false; 4];
        for _ in 0..200 {
            hit[*v.as_slice().choose(&mut rng).unwrap() - 1] = true;
            hit[v.iter().copied().choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(hit.iter().all(|&h| h));
        assert!(std::iter::empty::<u8>().choose(&mut rng).is_none());
    }
}
