//! Conservation laws of the telemetry accumulators, property-tested over
//! randomized scenarios:
//!
//! * **Wire billing is exact**: every wire transfer — bubbles and flits
//!   dropped on a dying link included — bills one channel-propagation
//!   delay to exactly one channel, so `sum(busy_ns)` over all channels
//!   equals `Counters::wire_transfers * t_channel` to the nanosecond.
//! * **Fault-free runs bill per channel**: with nothing dropped,
//!   `busy_ns[ch] == channel_crossings[ch] * t_channel` for every single
//!   channel.
//! * **Acquisition billing is complete**: each all-or-nothing acquisition
//!   increments every channel it grabbed once, so the per-channel sum
//!   equals `Counters::acquisitions` exactly on unicast workloads (one
//!   output per hop) and never undercounts it on multicasts.
//! * **The heatmap is a partition**: folding per-channel accumulators
//!   onto the lattice loses nothing — cell totals re-sum to the channel
//!   totals, and every channel lands in exactly one cell.

use proptest::prelude::*;
use spam_net::metrics::{ChannelAccum, CongestionHeatmap, HeatKey};
use spam_net::scenario::{
    run_once_full, ArrivalSpec, FaultModelSpec, FaultsSpec, ScenarioSpec, SpecError, TrafficSpec,
};

/// `t_channel` of `SimConfig::paper()`, which the scenario runner uses.
const CHANNEL_PROP_NS: u64 = 10;

fn spec_for(case: u64, seed: u64) -> ScenarioSpec {
    let mut s = ScenarioSpec::example("metrics-conservation");
    s.seed = seed;
    s.topology.switches = 16 + (seed % 3) as usize * 4;
    s.topology.seed = seed ^ 0xC0FFEE;
    // Rotate through workloads that stress different accumulators:
    // hotspot (unicast contention), incast (unicast convergence), mixed
    // (multicast fanout → bubbles + multi-channel acquisitions).
    s.traffic = match case % 3 {
        0 => TrafficSpec::Hotspot {
            hot_nodes: 2,
            hot_fraction: 0.6,
            rate_per_node_per_us: 0.02,
            len: 32,
            messages: 60,
            arrival: ArrivalSpec::Poisson,
        },
        1 => TrafficSpec::Incast {
            servers: 2,
            rate_per_client_per_us: 0.02,
            len: 32,
            messages: 60,
            arrival: ArrivalSpec::Deterministic,
        },
        _ => TrafficSpec::Mixed {
            unicast_fraction: 0.5,
            multicast_dests: 6,
            rate_per_node_per_us: 0.02,
            len: 32,
            messages: 60,
            arrival: ArrivalSpec::NegativeBinomial { r: 1 },
        },
    };
    // Every third case also degrades the network statically, and mixed
    // SPAM cases occasionally ride through a live storm — teardown paths
    // must keep the billing exact.
    s.faults = match case % 4 {
        3 => FaultsSpec::Static {
            model: FaultModelSpec::IidLinks { rate: 0.15 },
            seed: seed ^ 0xFA_07,
        },
        2 if case % 3 == 2 => FaultsSpec::Storm {
            model: FaultModelSpec::IidLinks { rate: 0.15 },
            seed: seed ^ 0x5701,
            window_start_us: 15,
            window_end_us: 80,
            bursts: 2,
        },
        _ => FaultsSpec::None,
    };
    s.engine.metrics_every_ns = Some(2_000);
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn accumulators_obey_exact_conservation_laws(case in 0u64..12, seed in 0u64..1_000_000) {
        let spec = spec_for(case, seed);
        let (out, topo, layout) = match run_once_full(&spec, 0, None) {
            Ok(r) => r,
            // Heavy damage can orphan the workload; that's a spec-level
            // verdict, not a conservation case.
            Err(SpecError::NoSurvivingComponent) => return Ok(()),
            Err(e) => panic!("scenario failed: {e:?}"),
        };
        let m = out.metrics.as_ref().expect("telemetry enabled");

        // Law 1: total wire billing matches the engine's transfer count.
        let busy_sum: u64 = m.channels.iter().map(|a| a.busy_ns).sum();
        prop_assert_eq!(busy_sum, out.counters.wire_transfers * CHANNEL_PROP_NS);

        // Law 2 (fault-free only): per-channel billing matches per-channel
        // crossings — nothing was dropped on a wire.
        if matches!(spec.faults, FaultsSpec::None) {
            for (ch, a) in m.channels.iter().enumerate() {
                prop_assert_eq!(
                    a.busy_ns,
                    out.channel_crossings[ch] * CHANNEL_PROP_NS,
                    "channel {} billed wrong", ch
                );
            }
        }

        // Law 3: acquisitions — exact on unicast workloads, never an
        // undercount when multicasts grab several channels at once.
        let acq_sum: u64 = m.channels.iter().map(|a| a.acquisitions).sum();
        if matches!(spec.traffic, TrafficSpec::Hotspot { .. } | TrafficSpec::Incast { .. }) {
            prop_assert_eq!(acq_sum, out.counters.acquisitions);
        } else {
            prop_assert!(acq_sum >= out.counters.acquisitions);
        }

        // Law 4: the heatmap partitions the channels — cell totals re-sum
        // to the channel totals, every channel is counted exactly once.
        let heat = CongestionHeatmap::build(&topo, &layout, &m.channels);
        let mut folded = ChannelAccum::default();
        for a in &m.channels {
            folded.fold(a);
        }
        prop_assert_eq!(heat.totals(), folded);
        let cell_channels: u32 = heat.occupied().map(|(_, _, c)| c.channels).sum();
        prop_assert_eq!(cell_channels as usize, topo.num_channels());
        if busy_sum > 0 {
            let share = heat.top_share(1, HeatKey::BusyNs);
            prop_assert!(share > 0.0 && share <= 1.0);
        }
    }
}
