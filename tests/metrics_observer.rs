//! Telemetry is a pure observer: enabling `engine.metrics_every_ns` on
//! any golden scenario must not change a single simulated outcome. The
//! check runs every corpus scenario twice — metered and unmetered — and
//! compares the behavioural digests (`spam_fuzz::digest::outcome_digest`
//! hashes every latency, failure, counter, and epoch statistic, and
//! deliberately excludes the telemetry itself).

use spam_net::fuzz::digest::outcome_digest;
use spam_net::scenario::{run_once, SpecError};
use std::path::Path;

#[test]
fn telemetry_never_changes_outcomes_across_the_golden_corpus() {
    let corpus = spam_net::scenario::load_dir(Path::new("scenarios")).expect("corpus loads");
    assert!(corpus.len() >= 14, "the golden corpus holds 14 scenarios");
    for (path, spec) in corpus {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();

        let mut unmetered = spec.clone();
        unmetered.engine.metrics_every_ns = None;
        let mut metered = spec;
        // 100 µs cadence: the guard proves digest equality, not sampling
        // density, and some corpus scenarios simulate whole seconds — a
        // fine cadence would spin this (unoptimized) suite for minutes.
        // The closing end-of-run sample keeps the series non-empty even
        // for runs shorter than one period.
        metered.engine.metrics_every_ns = Some(100_000);

        let run = |s| match run_once(s, 0, None) {
            Ok(out) => Some(out),
            // Some fuzz-promoted storms legitimately destroy the fabric.
            Err(SpecError::NoSurvivingComponent) => None,
            Err(e) => panic!("{name}: {e:?}"),
        };
        let (base, observed) = (run(&unmetered), run(&metered));
        match (base, observed) {
            (None, None) => continue,
            (Some(base), Some(observed)) => {
                assert_eq!(
                    outcome_digest(&base),
                    outcome_digest(&observed),
                    "{name}: enabling telemetry changed simulated behaviour"
                );
                assert!(
                    base.metrics.is_none(),
                    "{name}: unmetered run carries metrics"
                );
                let m = observed
                    .metrics
                    .as_ref()
                    .unwrap_or_else(|| panic!("{name}: metered run recorded nothing"));
                assert!(
                    !m.series.is_empty(),
                    "{name}: telemetry recorded no samples"
                );
                assert_eq!(
                    m.channels.len(),
                    observed.channel_crossings.len(),
                    "{name}: one accumulator per channel"
                );
            }
            _ => panic!("{name}: telemetry changed spec-level viability"),
        }
    }
}
