//! Snapshot round-trip over the committed golden corpus: every
//! `scenarios/*.scenario.json` file, checkpointed mid-run, resumes to a
//! byte-identical outcome digest under **both** event-queue
//! implementations — plus a kill-and-resume drill through the on-disk
//! crash journal ([`CheckpointSink::File`]).

use spam_net::prelude::*;
use std::path::Path;

#[test]
fn every_committed_scenario_resumes_identically_under_both_queues() {
    let corpus = spam_net::scenario::load_dir(Path::new("scenarios")).expect("corpus loads");
    assert!(
        corpus.len() >= 14,
        "the committed corpus shrank to {} scenarios",
        corpus.len()
    );
    for (path, mut spec) in corpus {
        spec.quicken();
        let name = path.display();
        let baseline = run_scenario_once(&spec, 0, Some(QueueKind::Bucket))
            .unwrap_or_else(|e| panic!("[{name}] baseline: {e}"));
        let want = outcome_digest(&baseline);

        // Quarter-run cadence: a handful of checkpoints per scenario.
        let every_ns = (baseline.end_time.as_ns() / 4).max(1);
        let golden = run_once_checkpointed(&spec, 0, Some(QueueKind::Bucket), every_ns)
            .unwrap_or_else(|e| panic!("[{name}] checkpointed run: {e}"));
        assert_eq!(
            want,
            outcome_digest(&golden.outcome),
            "[{name}] checkpointing perturbed the run"
        );
        assert!(
            !golden.checkpoints.is_empty(),
            "[{name}] quarter-run cadence produced no checkpoints"
        );
        for (at_ns, bytes) in &golden.checkpoints {
            for queue in [QueueKind::Bucket, QueueKind::Heap] {
                let resumed = resume_once(&spec, 0, Some(queue), bytes)
                    .unwrap_or_else(|e| panic!("[{name}] resume at {at_ns}ns ({queue:?}): {e}"));
                assert_eq!(
                    want,
                    outcome_digest(&resumed),
                    "[{name}] resume at {at_ns}ns under {queue:?} diverged"
                );
            }
        }
    }
}

/// A crash drill through the on-disk journal: a run checkpoints into a
/// `CheckpointSink::File`; the process "dies" (we simply stop using the
/// live simulator); a fresh process restores the journal file and runs
/// to completion with the uninterrupted run's exact outcome. Also pins
/// the atomicity contract — no stale `.tmp` sibling survives.
#[test]
fn kill_and_resume_from_the_disk_journal_matches_uninterrupted_run() {
    let topo = IrregularConfig::with_switches(24).generate(5);
    let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
    let stream = MixedTrafficConfig::figure3(0.1, 4, 60)
        .generate(&topo, 5)
        .expect("workload fits");
    let fresh = || {
        let mut sim = NetworkSim::new(&topo, SpamRouting::new(&topo, &ud), SimConfig::paper());
        for m in stream.iter().cloned() {
            sim.submit(m).expect("generated for this topology");
        }
        sim
    };

    let uninterrupted = fresh().run();
    assert!(uninterrupted.all_delivered());
    let want = outcome_digest(&uninterrupted);

    let dir = std::env::temp_dir().join("spam_net_kill_resume_test");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let journal = dir.join("crash.snap");

    // The "doomed" process: checkpoints to disk, then is abandoned.
    let mut doomed = fresh();
    doomed.enable_checkpoints(
        Duration::from_ns((uninterrupted.end_time.as_ns() / 3).max(1)),
        CheckpointSink::File(journal.clone()),
    );
    doomed.run();

    // The journal holds the last atomically renamed snapshot; its
    // `.tmp` sibling must not survive a completed write.
    let bytes = std::fs::read(&journal).expect("journal file exists after the crash");
    assert!(
        !journal.with_extension("snap.tmp").exists(),
        "atomic rename left a .tmp sibling"
    );

    // The "recovery" process: restore from disk and finish the run.
    let resumed = NetworkSim::restore(
        &topo,
        SpamRouting::new(&topo, &ud),
        SimConfig::paper(),
        &bytes,
    )
    .expect("journal restores")
    .run();
    assert_eq!(want, outcome_digest(&resumed), "recovered run diverged");

    // Corrupting the journal on disk fails typed, never panics.
    let mut broken = bytes.clone();
    let mid = broken.len() / 2;
    broken[mid] ^= 0x40;
    assert!(matches!(
        NetworkSim::restore(
            &topo,
            SpamRouting::new(&topo, &ud),
            SimConfig::paper(),
            &broken
        ),
        Err(SnapshotError::ChecksumMismatch { .. } | SnapshotError::Corrupt(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}
