//! Differential cache-correctness suite — the contract that makes the
//! artifact cache safe to ship.
//!
//! Every committed golden scenario runs three ways:
//!
//! 1. **Reference**: the classic batch path (`run_once`), which builds
//!    its environment from scratch.
//! 2. **Cold**: through a fresh `ServeCore` — every artifact is a miss.
//! 3. **Warm**: through the *same* core again — every artifact is a hit.
//!
//! All three must produce byte-identical outcomes, pinned via
//! [`spam_scenario::outcome_digest`]. A cache that changed *anything* —
//! an RNG stream consumed in a different order, a routing table rebuilt
//! against the wrong labeling, a stale survivor mask — shows up here as
//! a digest mismatch on a committed scenario.

use spam_net::serve::{ServeConfig, ServeCore, Session};
use spam_scenario::json::{parse, Json};
use spam_scenario::{load_dir, outcome_digest, run_once, ScenarioSpec};
use std::path::Path;

fn corpus() -> Vec<(String, ScenarioSpec)> {
    let specs = load_dir(Path::new("scenarios")).expect("corpus loads");
    assert!(
        specs.len() >= 14,
        "committed corpus shrank: {}",
        specs.len()
    );
    specs
        .into_iter()
        .map(|(p, s)| (p.display().to_string(), s))
        .collect()
}

/// A result line's `(scenario, rep, digest, artifact, quiescent)`.
fn parse_result(line: &str) -> (String, u64, String, String) {
    let doc = parse(line).expect("result lines are valid JSON");
    assert_eq!(
        doc.get("type").and_then(Json::as_str),
        Some("result"),
        "{line}"
    );
    let get_str = |k: &str| {
        doc.get(k)
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{k} missing in {line}"))
            .to_string()
    };
    let rep = doc
        .get("rep")
        .and_then(|v| v.as_num()?.as_u64())
        .expect("rep field");
    (
        get_str("scenario"),
        rep,
        get_str("digest"),
        get_str("artifact"),
    )
}

/// Streams the whole corpus through `core` once, returning every
/// result line in order.
fn run_corpus_pass(core: &mut ServeCore, session: &mut Session) -> Vec<String> {
    let mut lines = Vec::new();
    for (path, spec) in corpus() {
        let req = format!(
            r#"{{"op":"run","spec":{}}}"#,
            spec.to_json().to_string_compact()
        );
        let resp = core.handle_line(session, &req);
        assert!(
            resp[0].contains("\"queued\""),
            "{path}: run not accepted: {}",
            resp[0]
        );
        let out = core.step().expect("a queued job executes");
        lines.extend(out.lines);
    }
    lines
}

#[test]
fn warm_cache_results_are_byte_identical_to_cold_and_reference() {
    let mut core = ServeCore::new(ServeConfig {
        // Hold the full corpus so the warm pass is all hits.
        cache: spam_net::serve::CacheConfig {
            max_entries: 256,
            max_bytes: usize::MAX,
        },
        ..ServeConfig::default()
    });
    let mut session = Session::new();
    core.handle_line(&mut session, r#"{"op":"hello","client":"diff"}"#);

    let cold = run_corpus_pass(&mut core, &mut session);
    let stats_cold = core.cache_stats();
    assert!(stats_cold.misses > 0);
    assert_eq!(stats_cold.evictions, 0, "budget must hold the corpus");

    let warm = run_corpus_pass(&mut core, &mut session);
    let stats_warm = core.cache_stats();
    assert_eq!(
        stats_warm.misses, stats_cold.misses,
        "second pass must not build anything"
    );
    // Every lookup of the warm pass (one per cold-pass result line)
    // hits; corpus scenarios sharing a prefix may have hit cold too.
    assert_eq!(
        stats_warm.hits,
        stats_cold.hits + cold.len() as u64,
        "warm pass must be all hits"
    );

    assert_eq!(cold.len(), warm.len());
    let mut reps_seen = 0u32;
    for (c, w) in cold.iter().zip(&warm) {
        let (c_name, c_rep, c_digest, _c_art) = parse_result(c);
        let (w_name, w_rep, w_digest, w_art) = parse_result(w);
        assert_eq!((&c_name, c_rep), (&w_name, w_rep));
        assert_eq!(w_art, "hit", "{w_name} rep {w_rep}");
        assert_eq!(
            c_digest, w_digest,
            "{c_name} rep {c_rep}: warm outcome diverged from cold"
        );
        reps_seen += 1;
    }
    assert!(
        reps_seen >= 14,
        "every scenario produced at least one result"
    );

    // Both passes match the classic batch path, digest for digest.
    for (path, spec) in corpus() {
        for rep in 0..spec.replications.max(1) {
            let reference = match run_once(&spec, rep, None) {
                Ok(out) => format!("{:#018x}", outcome_digest(&out)),
                Err(e) => panic!("{path} rep {rep}: reference run failed: {e}"),
            };
            let served = cold
                .iter()
                .map(|l| parse_result(l))
                .find(|(name, r, _, _)| *name == spec.name && *r == u64::from(rep))
                .unwrap_or_else(|| panic!("{path} rep {rep}: no served result"))
                .2;
            assert_eq!(
                served, reference,
                "{path} rep {rep}: served digest diverged from run_once"
            );
        }
    }
}
