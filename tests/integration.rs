//! Cross-crate integration tests over the facade crate: the full pipeline
//! (generator → labeling → SPAM → flit simulator → statistics) glued
//! together exactly the way the examples and the figure harness use it.

use spam_net::prelude::*;

#[test]
fn prelude_covers_the_full_pipeline() {
    let topo = IrregularConfig::with_switches(48).generate(1);
    let ud = UpDownLabeling::build(&topo, RootSelection::MinEccentricity);
    let spam = SpamRouting::new(&topo, &ud);
    let procs: Vec<NodeId> = topo.processors().collect();

    let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper());
    sim.submit(MessageSpec::multicast(procs[0], procs[1..9].to_vec(), 128))
        .unwrap();
    let out: SimOutcome = sim.run();
    assert!(out.all_delivered());

    let mut stats = RunningStats::new();
    stats.extend(out.latencies_us(|_| true));
    assert!(stats.mean() > 10.0);
}

#[test]
fn figure1_walkthrough_end_to_end() {
    let (topo, labels) = figure1();
    let by = |l: u32| labels.by_label(l).unwrap();
    let ud = UpDownLabeling::build(&topo, RootSelection::Fixed(by(1)));
    let spam = SpamRouting::new(&topo, &ud);

    // The §3.2 worked example plus simultaneous reverse traffic.
    let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper());
    sim.submit(MessageSpec::multicast(by(5), vec![by(8), by(9), by(10), by(11)], 128).tag(0))
        .unwrap();
    sim.submit(MessageSpec::unicast(by(11), by(5), 128).tag(1))
        .unwrap();
    sim.submit(MessageSpec::unicast(by(8), by(10), 128).tag(2))
        .unwrap();
    let out = sim.run();
    assert!(out.all_delivered(), "{:?}", out.deadlock);
}

#[test]
fn spam_multicast_beats_software_multicast_end_to_end() {
    let topo = IrregularConfig::with_switches(64).generate(5);
    let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
    let procs: Vec<NodeId> = topo.processors().collect();
    let src = procs[0];
    let dests: Vec<NodeId> = procs[1..33].to_vec();

    // SPAM: one worm.
    let spam = SpamRouting::new(&topo, &ud);
    let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper());
    sim.submit(MessageSpec::multicast(src, dests.clone(), 128))
        .unwrap();
    let spam_out = sim.run();
    assert!(spam_out.all_delivered());
    let spam_us = spam_out.messages[0].latency().unwrap().as_us_f64();

    // Software: binomial unicasts over classic up*/down*.
    let router = UpDownUnicastRouting::new(&topo, &ud);
    let mut um = UnicastMulticast::new(src, &dests, 128, Duration::from_us(10));
    let mut sim = NetworkSim::new(&topo, router, SimConfig::paper());
    for s in um.initial_sends(Time::ZERO) {
        sim.submit(s).unwrap();
    }
    let soft_out = sim.run_with_hook(&mut um);
    assert!(soft_out.all_delivered());
    let soft_us = um.makespan(&soft_out).unwrap().as_us_f64();

    // 32 destinations: bound is 6 startups = 60 µs; SPAM ~12 µs.
    let bound = lower_bound::software_multicast_lower_bound(32, Duration::from_us(10)).as_us_f64();
    assert!(spam_us < 15.0, "SPAM {spam_us} µs");
    assert!(
        soft_us >= bound * 0.99,
        "software {soft_us} vs bound {bound}"
    );
    assert!(
        soft_us / spam_us > 3.0,
        "expected a clear hardware-multicast win: {spam_us} vs {soft_us}"
    );
}

#[test]
fn mixed_traffic_pipeline_with_stats_protocol() {
    // Run the §4 statistics protocol end-to-end at smoke scale: replicate
    // a mixed-traffic point until the CI is within 5 %.
    let mut ctl = simstats::PrecisionController::new(0.05, simstats::ConfidenceLevel::P95, 3, 40);
    let mut rep = 0u64;
    while !ctl.satisfied() {
        rep += 1;
        let topo = IrregularConfig::with_switches(24).generate(rep);
        let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
        let spam = SpamRouting::new(&topo, &ud);
        let stream = MixedTrafficConfig::figure3(0.01, 4, 200)
            .generate(&topo, rep)
            .unwrap();
        let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper());
        for spec in stream {
            sim.submit(spec).unwrap();
        }
        let out = sim.run();
        assert!(out.all_delivered());
        ctl.push(out.mean_latency_us(|m| m.spec.tag >= 20).unwrap());
    }
    let ci: ConfidenceInterval = ctl.interval().unwrap();
    assert!(ci.mean > 10.0);
    assert!(ci.relative_half_width() <= 0.05 || ctl.count() == 40);
}

#[test]
fn partitioned_multicast_delivers_same_set() {
    use spam_net::spam::{partition_specs, PartitionStrategy};

    let topo = IrregularConfig::with_switches(48).generate(9);
    let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
    let spam = SpamRouting::new(&topo, &ud);
    let procs: Vec<NodeId> = topo.processors().collect();
    let src = procs[0];
    let dests: Vec<NodeId> = procs[1..25].to_vec();
    let base = MessageSpec::multicast(src, dests.clone(), 64);
    let specs = partition_specs(
        &ud,
        &base,
        PartitionStrategy::SubtreesUnderLca { max_groups: 4 },
        0,
    );
    assert!(!specs.is_empty() && specs.len() <= 4);
    let mut covered: Vec<NodeId> = specs.iter().flat_map(|s| s.dests.clone()).collect();
    covered.sort_unstable();
    let mut want = dests.clone();
    want.sort_unstable();
    assert_eq!(covered, want, "partition must cover exactly the dest set");

    let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper());
    for s in specs {
        sim.submit(s).unwrap();
    }
    let out = sim.run();
    assert!(out.all_delivered());
}

#[test]
fn deterministic_across_full_pipeline() {
    let run = || {
        let topo = IrregularConfig::with_switches(32).generate(77);
        let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
        let spam = SpamRouting::new(&topo, &ud);
        let stream = MixedTrafficConfig::figure3(0.02, 8, 300)
            .generate(&topo, 77)
            .unwrap();
        let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper());
        for spec in stream {
            sim.submit(spec).unwrap();
        }
        let out = sim.run();
        assert!(out.all_delivered());
        (
            out.messages
                .iter()
                .map(|m| m.completed_at.unwrap().as_ns())
                .collect::<Vec<_>>(),
            out.counters,
        )
    };
    assert_eq!(run(), run());
}
