//! Golden regression values: exact latencies for pinned seeds. Any change
//! to the engine's event ordering, the routing tables, the generators, or
//! the labeling that alters simulated behaviour will trip these — on
//! purpose. Update the constants only for *intentional* semantic changes,
//! and record why in the commit.

use spam_net::prelude::*;

fn fig1_multicast_latency_ns() -> u64 {
    let (topo, labels) = figure1();
    let by = |l: u32| labels.by_label(l).unwrap();
    let ud = UpDownLabeling::build(&topo, RootSelection::Fixed(by(1)));
    let spam = SpamRouting::new(&topo, &ud);
    let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper());
    sim.submit(MessageSpec::multicast(
        by(5),
        vec![by(8), by(9), by(10), by(11)],
        128,
    ))
    .unwrap();
    let out = sim.run();
    assert!(out.all_delivered());
    out.messages[0].latency().unwrap().as_ns()
}

#[test]
fn figure1_multicast_latency_is_pinned() {
    // 10_000 (startup) + 4 channels x 10 + 3 switches x 40 + 127 x 10.
    assert_eq!(fig1_multicast_latency_ns(), 11_430);
}

#[test]
fn seeded_64_node_broadcast_is_pinned() {
    let topo = IrregularConfig::with_switches(64).generate(2024);
    let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
    let spam = SpamRouting::new(&topo, &ud);
    let procs: Vec<NodeId> = topo.processors().collect();
    let dests: Vec<NodeId> = procs[1..].to_vec();
    let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper());
    sim.submit(MessageSpec::multicast(procs[0], dests, 128))
        .unwrap();
    let out = sim.run();
    assert!(out.all_delivered());
    let lat = out.messages[0].latency().unwrap().as_ns();
    // Golden value for (seed 2024, lowest-id root, min-distance selection),
    // pinned against the workspace's deterministic SplitMix64 `rand` shim.
    assert_eq!(lat, 12_230);
    assert_eq!(out.counters.flits_delivered, 128 * 63);
    // Even an idle network produces some bubbles on a broadcast: subtree
    // depths differ, so a branch whose header is still paying router setup
    // transiently blocks its siblings, which then advance on bubbles.
    assert_eq!(out.counters.bubbles_created, 1_232);
}

#[test]
fn seeded_mixed_traffic_run_is_pinned() {
    let topo = IrregularConfig::with_switches(32).generate(7);
    let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
    let spam = SpamRouting::new(&topo, &ud);
    let stream = MixedTrafficConfig::figure3(0.02, 8, 250).generate(&topo, 7);
    let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper());
    for s in stream {
        sim.submit(s).unwrap();
    }
    let out = sim.run();
    assert!(out.all_delivered());
    let mean = out.mean_latency_us(|_| true).unwrap();
    // Golden mean latency for this exact (topology, stream) pair, pinned
    // against the workspace's deterministic SplitMix64 `rand` shim.
    let expect = 11.709_800_000_000_005;
    assert!(
        (mean - expect).abs() < 1e-6,
        "mean latency drifted: {mean} vs {expect}"
    );
}

#[test]
fn degraded_network_broadcast_is_pinned() {
    // A fixed fault scenario end to end: seeded 64-switch lattice, seeded
    // 15 % i.i.d. link kills, reconfiguration (components + relabeling
    // with root re-selection), then a broadcast across the largest
    // surviving component. Pins the fault sampler, the masking, the
    // partial relabeling, and degraded-network routing determinism.
    let base = IrregularConfig::with_switches(64).generate(2024);
    let plan = FaultModel::IidLinks { rate: 0.15 }.sample(&base, None, 99);
    assert_eq!(plan.links.len(), 25, "fault sampler stream pinned");
    let net = DegradedNetwork::build(&base, &plan, None);
    assert_eq!(net.topo.num_channels(), 284);
    assert_eq!(net.components.len(), 2);
    let comp = net.largest().unwrap();
    assert_eq!(comp.nodes.len(), 108);
    assert_eq!(comp.root, NodeId(5), "re-selected root pinned");
    let procs = comp.processors(&net.topo);
    assert_eq!(procs.len(), 49);
    let spam = SpamRouting::new(&net.topo, &comp.labeling);
    let mut sim = NetworkSim::new(&net.topo, spam, SimConfig::paper());
    sim.submit(MessageSpec::multicast(procs[0], procs[1..].to_vec(), 128))
        .unwrap();
    let out = sim.run();
    assert!(out.all_delivered());
    // Golden values for (topo seed 2024, fault seed 99, lowest-id root
    // re-selection), pinned against the workspace's deterministic
    // SplitMix64 `rand` shim.
    assert_eq!(out.messages[0].latency().unwrap().as_ns(), 12_130);
    assert_eq!(out.counters.bubbles_created, 884);
    assert_eq!(out.counters.flits_delivered, 128 * 48);
}

fn mid_run_link_death_outcome() -> SimOutcome {
    // A live-reconfiguration scenario end to end: seeded 64-switch
    // lattice, a broadcast in flight when a processor's only link dies at
    // 10.5 µs (tearing the broadcast down mid-worm), then post-fault
    // traffic routing on the relabeled epoch — one multicast that must
    // deliver and one unicast to the stranded processor that must surface
    // as unreachable. Pins the storm scheduling, the engine teardown
    // cascade, the incremental relabeling, and the epoch routing swap.
    let topo = IrregularConfig::with_switches(64).generate(2024);
    let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
    let procs: Vec<NodeId> = topo.processors().collect();
    let doomed = procs[5];
    let dead_link = topo.out_channels(doomed)[0];
    let sched = FaultSchedule::new(vec![FaultEvent {
        at: Time::from_ns(10_500),
        kind: FaultKind::LinkDown(dead_link),
    }]);
    let scenario = ReconfigScenario::build(&topo, &ud, &sched);
    let routing = scenario.routing(&topo);
    let mut sim = NetworkSim::new(&topo, routing, SimConfig::paper());
    sched.install(&mut sim);
    sim.submit(MessageSpec::multicast(procs[0], procs[1..].to_vec(), 128))
        .unwrap();
    sim.submit(
        MessageSpec::multicast(procs[0], vec![procs[7], procs[9]], 64).at(Time::from_us(15)),
    )
    .unwrap();
    sim.submit(MessageSpec::unicast(procs[0], doomed, 64).at(Time::from_us(15)))
        .unwrap();
    sim.run()
}

#[test]
fn mid_run_link_death_is_pinned() {
    let out = mid_run_link_death_outcome();
    assert!(out.all_accounted(), "{:?} {:?}", out.error, out.deadlock);
    // Exactly one verdict of each kind.
    assert!(out.messages[0].is_torn_down(), "broadcast caught mid-worm");
    assert!(out.messages[1].is_complete(), "epoch-1 multicast delivers");
    assert!(out.messages[2].is_unreachable(), "stranded destination");
    assert_eq!(out.counters.messages_completed, 1);
    assert_eq!(out.counters.messages_torn_down, 1);
    assert_eq!(out.counters.messages_unreachable, 1);
    assert_eq!(out.counters.links_killed, 1);
    assert_eq!(out.fault_times, vec![Time::from_ns(10_500)]);
    // The teardown happened at the fault instant, with the typed error.
    let failure = out.messages[0].failure.unwrap();
    assert_eq!(failure.at, Time::from_ns(10_500));
    assert!(matches!(failure.error, SimError::TornDown { .. }));
    // Golden post-fault latency for (topo seed 2024, fault at 10.5 µs),
    // pinned against the workspace's deterministic SplitMix64 `rand`
    // shim. Update only for intentional semantic changes.
    assert_eq!(out.messages[1].latency().unwrap().as_ns(), 10_890);
    // Per-epoch accounting splits exactly at the fault.
    let stats = out.epoch_stats();
    assert_eq!((stats[0].submitted, stats[0].torn_down), (1, 1));
    assert_eq!(
        (stats[1].submitted, stats[1].delivered, stats[1].unreachable),
        (2, 1, 1)
    );
}

#[test]
fn mid_run_link_death_is_deterministic_across_runs() {
    let (a, b) = (mid_run_link_death_outcome(), mid_run_link_death_outcome());
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.end_time, b.end_time);
    for (ma, mb) in a.messages.iter().zip(&b.messages) {
        assert_eq!(ma.completed_at, mb.completed_at);
        assert_eq!(ma.failure.map(|f| f.at), mb.failure.map(|f| f.at));
    }
}

#[test]
fn golden_values_are_stable_across_repeated_runs() {
    assert_eq!(fig1_multicast_latency_ns(), fig1_multicast_latency_ns());
}

/// Full-outcome equality between two runs (everything that is observable
/// and deterministic: per-message results, counters, timing, per-channel
/// utilization, epoch boundaries).
fn assert_outcomes_identical(a: &SimOutcome, b: &SimOutcome, what: &str) {
    assert_eq!(a.counters, b.counters, "{what}: counters diverged");
    assert_eq!(a.end_time, b.end_time, "{what}: end time diverged");
    assert_eq!(
        a.channel_crossings, b.channel_crossings,
        "{what}: channel utilization diverged"
    );
    assert_eq!(a.fault_times, b.fault_times, "{what}: epochs diverged");
    assert_eq!(a.error, b.error, "{what}: error diverged");
    assert_eq!(a.messages.len(), b.messages.len());
    for (ma, mb) in a.messages.iter().zip(&b.messages) {
        assert_eq!(ma.completed_at, mb.completed_at, "{what}: latency diverged");
        assert_eq!(
            ma.dest_done_at, mb.dest_done_at,
            "{what}: dest timing diverged"
        );
        assert_eq!(ma.failure, mb.failure, "{what}: failure diverged");
    }
}

fn seeded_broadcast_outcome(queue: QueueKind) -> SimOutcome {
    let topo = IrregularConfig::with_switches(64).generate(2024);
    let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
    let spam = SpamRouting::new(&topo, &ud);
    let procs: Vec<NodeId> = topo.processors().collect();
    let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper().with_queue(queue));
    sim.submit(MessageSpec::multicast(procs[0], procs[1..].to_vec(), 128))
        .unwrap();
    sim.run()
}

#[test]
fn bucket_and_heap_queues_produce_identical_outcomes() {
    // The engine defaults to the bucketed timing wheel; the reference
    // binary heap stays selectable. Both must simulate the exact same run:
    // the golden values above pin the bucket default, this pins the
    // equivalence — including a live-reconfiguration run whose teardown
    // cascades are maximally order-sensitive.
    let wheel = seeded_broadcast_outcome(QueueKind::Bucket);
    let heap = seeded_broadcast_outcome(QueueKind::Heap);
    assert!(wheel.all_delivered());
    assert_outcomes_identical(&wheel, &heap, "seeded broadcast");
    assert_eq!(wheel.messages[0].latency().unwrap().as_ns(), 12_230);
}

#[test]
fn mid_run_link_death_is_identical_under_both_queues() {
    let outcomes: Vec<SimOutcome> = [QueueKind::Bucket, QueueKind::Heap]
        .into_iter()
        .map(|queue| {
            let topo = IrregularConfig::with_switches(64).generate(2024);
            let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
            let procs: Vec<NodeId> = topo.processors().collect();
            let doomed = procs[5];
            let dead_link = topo.out_channels(doomed)[0];
            let sched = FaultSchedule::new(vec![FaultEvent {
                at: Time::from_ns(10_500),
                kind: FaultKind::LinkDown(dead_link),
            }]);
            let scenario = ReconfigScenario::build(&topo, &ud, &sched);
            let routing = scenario.routing(&topo);
            let mut sim = NetworkSim::new(&topo, routing, SimConfig::paper().with_queue(queue));
            sched.install(&mut sim);
            sim.submit(MessageSpec::multicast(procs[0], procs[1..].to_vec(), 128))
                .unwrap();
            sim.submit(
                MessageSpec::multicast(procs[0], vec![procs[7], procs[9]], 64)
                    .at(Time::from_us(15)),
            )
            .unwrap();
            sim.submit(MessageSpec::unicast(procs[0], doomed, 64).at(Time::from_us(15)))
                .unwrap();
            sim.run()
        })
        .collect();
    assert!(outcomes[0].all_accounted());
    assert_outcomes_identical(&outcomes[0], &outcomes[1], "mid-run link death");
}
