//! Golden regression values: exact latencies for pinned seeds. Any change
//! to the engine's event ordering, the routing tables, the generators, or
//! the labeling that alters simulated behaviour will trip these — on
//! purpose. Update the constants only for *intentional* semantic changes,
//! and record why in the commit.

use spam_net::prelude::*;

fn fig1_multicast_latency_ns() -> u64 {
    let (topo, labels) = figure1();
    let by = |l: u32| labels.by_label(l).unwrap();
    let ud = UpDownLabeling::build(&topo, RootSelection::Fixed(by(1)));
    let spam = SpamRouting::new(&topo, &ud);
    let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper());
    sim.submit(MessageSpec::multicast(
        by(5),
        vec![by(8), by(9), by(10), by(11)],
        128,
    ))
    .unwrap();
    let out = sim.run();
    assert!(out.all_delivered());
    out.messages[0].latency().unwrap().as_ns()
}

#[test]
fn figure1_multicast_latency_is_pinned() {
    // 10_000 (startup) + 4 channels x 10 + 3 switches x 40 + 127 x 10.
    assert_eq!(fig1_multicast_latency_ns(), 11_430);
}

#[test]
fn seeded_64_node_broadcast_is_pinned() {
    let topo = IrregularConfig::with_switches(64).generate(2024);
    let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
    let spam = SpamRouting::new(&topo, &ud);
    let procs: Vec<NodeId> = topo.processors().collect();
    let dests: Vec<NodeId> = procs[1..].to_vec();
    let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper());
    sim.submit(MessageSpec::multicast(procs[0], dests, 128))
        .unwrap();
    let out = sim.run();
    assert!(out.all_delivered());
    let lat = out.messages[0].latency().unwrap().as_ns();
    // Golden value for (seed 2024, lowest-id root, min-distance selection),
    // pinned against the workspace's deterministic SplitMix64 `rand` shim.
    assert_eq!(lat, 12_230);
    assert_eq!(out.counters.flits_delivered, 128 * 63);
    // Even an idle network produces some bubbles on a broadcast: subtree
    // depths differ, so a branch whose header is still paying router setup
    // transiently blocks its siblings, which then advance on bubbles.
    assert_eq!(out.counters.bubbles_created, 1_232);
}

#[test]
fn seeded_mixed_traffic_run_is_pinned() {
    let topo = IrregularConfig::with_switches(32).generate(7);
    let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
    let spam = SpamRouting::new(&topo, &ud);
    let stream = MixedTrafficConfig::figure3(0.02, 8, 250)
        .generate(&topo, 7)
        .unwrap();
    let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper());
    for s in stream {
        sim.submit(s).unwrap();
    }
    let out = sim.run();
    assert!(out.all_delivered());
    let mean = out.mean_latency_us(|_| true).unwrap();
    // Golden mean latency for this exact (topology, stream) pair, pinned
    // against the workspace's deterministic SplitMix64 `rand` shim.
    let expect = 11.709_800_000_000_005;
    assert!(
        (mean - expect).abs() < 1e-6,
        "mean latency drifted: {mean} vs {expect}"
    );
}

#[test]
fn degraded_network_broadcast_is_pinned() {
    // A fixed fault scenario end to end: seeded 64-switch lattice, seeded
    // 15 % i.i.d. link kills, reconfiguration (components + relabeling
    // with root re-selection), then a broadcast across the largest
    // surviving component. Pins the fault sampler, the masking, the
    // partial relabeling, and degraded-network routing determinism.
    let base = IrregularConfig::with_switches(64).generate(2024);
    let plan = FaultModel::IidLinks { rate: 0.15 }.sample(&base, None, 99);
    assert_eq!(plan.links.len(), 25, "fault sampler stream pinned");
    let net = DegradedNetwork::build(&base, &plan, None);
    assert_eq!(net.topo.num_channels(), 284);
    assert_eq!(net.components.len(), 2);
    let comp = net.largest().unwrap();
    assert_eq!(comp.nodes.len(), 108);
    assert_eq!(comp.root, NodeId(5), "re-selected root pinned");
    let procs = comp.processors(&net.topo);
    assert_eq!(procs.len(), 49);
    let spam = SpamRouting::new(&net.topo, &comp.labeling);
    let mut sim = NetworkSim::new(&net.topo, spam, SimConfig::paper());
    sim.submit(MessageSpec::multicast(procs[0], procs[1..].to_vec(), 128))
        .unwrap();
    let out = sim.run();
    assert!(out.all_delivered());
    // Golden values for (topo seed 2024, fault seed 99, lowest-id root
    // re-selection), pinned against the workspace's deterministic
    // SplitMix64 `rand` shim.
    assert_eq!(out.messages[0].latency().unwrap().as_ns(), 12_130);
    assert_eq!(out.counters.bubbles_created, 884);
    assert_eq!(out.counters.flits_delivered, 128 * 48);
}

fn mid_run_link_death_outcome() -> SimOutcome {
    // A live-reconfiguration scenario end to end: seeded 64-switch
    // lattice, a broadcast in flight when a processor's only link dies at
    // 10.5 µs (tearing the broadcast down mid-worm), then post-fault
    // traffic routing on the relabeled epoch — one multicast that must
    // deliver and one unicast to the stranded processor that must surface
    // as unreachable. Pins the storm scheduling, the engine teardown
    // cascade, the incremental relabeling, and the epoch routing swap.
    let topo = IrregularConfig::with_switches(64).generate(2024);
    let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
    let procs: Vec<NodeId> = topo.processors().collect();
    let doomed = procs[5];
    let dead_link = topo.out_channels(doomed)[0];
    let sched = FaultSchedule::new(vec![FaultEvent {
        at: Time::from_ns(10_500),
        kind: FaultKind::LinkDown(dead_link),
    }]);
    let scenario = ReconfigScenario::build(&topo, &ud, &sched);
    let routing = scenario.routing(&topo);
    let mut sim = NetworkSim::new(&topo, routing, SimConfig::paper());
    sched.install(&mut sim);
    sim.submit(MessageSpec::multicast(procs[0], procs[1..].to_vec(), 128))
        .unwrap();
    sim.submit(
        MessageSpec::multicast(procs[0], vec![procs[7], procs[9]], 64).at(Time::from_us(15)),
    )
    .unwrap();
    sim.submit(MessageSpec::unicast(procs[0], doomed, 64).at(Time::from_us(15)))
        .unwrap();
    sim.run()
}

#[test]
fn mid_run_link_death_is_pinned() {
    let out = mid_run_link_death_outcome();
    assert!(out.all_accounted(), "{:?} {:?}", out.error, out.deadlock);
    // Exactly one verdict of each kind.
    assert!(out.messages[0].is_torn_down(), "broadcast caught mid-worm");
    assert!(out.messages[1].is_complete(), "epoch-1 multicast delivers");
    assert!(out.messages[2].is_unreachable(), "stranded destination");
    assert_eq!(out.counters.messages_completed, 1);
    assert_eq!(out.counters.messages_torn_down, 1);
    assert_eq!(out.counters.messages_unreachable, 1);
    assert_eq!(out.counters.links_killed, 1);
    assert_eq!(out.fault_times, vec![Time::from_ns(10_500)]);
    // The teardown happened at the fault instant, with the typed error.
    let failure = out.messages[0].failure.unwrap();
    assert_eq!(failure.at, Time::from_ns(10_500));
    assert!(matches!(failure.error, SimError::TornDown { .. }));
    // Golden post-fault latency for (topo seed 2024, fault at 10.5 µs),
    // pinned against the workspace's deterministic SplitMix64 `rand`
    // shim. Update only for intentional semantic changes.
    assert_eq!(out.messages[1].latency().unwrap().as_ns(), 10_890);
    // Per-epoch accounting splits exactly at the fault.
    let stats = out.epoch_stats();
    assert_eq!((stats[0].submitted, stats[0].torn_down), (1, 1));
    assert_eq!(
        (stats[1].submitted, stats[1].delivered, stats[1].unreachable),
        (2, 1, 1)
    );
}

#[test]
fn mid_run_link_death_is_deterministic_across_runs() {
    let (a, b) = (mid_run_link_death_outcome(), mid_run_link_death_outcome());
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.end_time, b.end_time);
    for (ma, mb) in a.messages.iter().zip(&b.messages) {
        assert_eq!(ma.completed_at, mb.completed_at);
        assert_eq!(ma.failure.map(|f| f.at), mb.failure.map(|f| f.at));
    }
}

#[test]
fn golden_values_are_stable_across_repeated_runs() {
    assert_eq!(fig1_multicast_latency_ns(), fig1_multicast_latency_ns());
}

/// Full-outcome equality between two runs (everything that is observable
/// and deterministic: per-message results, counters, timing, per-channel
/// utilization, epoch boundaries).
fn assert_outcomes_identical(a: &SimOutcome, b: &SimOutcome, what: &str) {
    assert_eq!(a.counters, b.counters, "{what}: counters diverged");
    assert_eq!(a.end_time, b.end_time, "{what}: end time diverged");
    assert_eq!(
        a.channel_crossings, b.channel_crossings,
        "{what}: channel utilization diverged"
    );
    assert_eq!(a.fault_times, b.fault_times, "{what}: epochs diverged");
    assert_eq!(a.error, b.error, "{what}: error diverged");
    assert_eq!(a.messages.len(), b.messages.len());
    for (ma, mb) in a.messages.iter().zip(&b.messages) {
        assert_eq!(ma.completed_at, mb.completed_at, "{what}: latency diverged");
        assert_eq!(
            ma.dest_done_at, mb.dest_done_at,
            "{what}: dest timing diverged"
        );
        assert_eq!(ma.failure, mb.failure, "{what}: failure diverged");
    }
}

fn seeded_broadcast_outcome(queue: QueueKind) -> SimOutcome {
    let topo = IrregularConfig::with_switches(64).generate(2024);
    let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
    let spam = SpamRouting::new(&topo, &ud);
    let procs: Vec<NodeId> = topo.processors().collect();
    let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper().with_queue(queue));
    sim.submit(MessageSpec::multicast(procs[0], procs[1..].to_vec(), 128))
        .unwrap();
    sim.run()
}

#[test]
fn bucket_and_heap_queues_produce_identical_outcomes() {
    // The engine defaults to the bucketed timing wheel; the reference
    // binary heap stays selectable. Both must simulate the exact same run:
    // the golden values above pin the bucket default, this pins the
    // equivalence — including a live-reconfiguration run whose teardown
    // cascades are maximally order-sensitive.
    let wheel = seeded_broadcast_outcome(QueueKind::Bucket);
    let heap = seeded_broadcast_outcome(QueueKind::Heap);
    assert!(wheel.all_delivered());
    assert_outcomes_identical(&wheel, &heap, "seeded broadcast");
    assert_eq!(wheel.messages[0].latency().unwrap().as_ns(), 12_230);
}

/// Pinned digest of one corpus scenario's replication 0.
struct CorpusPin {
    name: &'static str,
    /// (submitted, delivered, torn_down, unreachable) — exact.
    counts: (u64, u64, u64, u64),
    /// Engine events processed — exact (the strongest cheap pin: any
    /// event-ordering or routing change moves it).
    events: u64,
    /// Latency digest (µs): mean / p50 / p99 over delivered messages,
    /// `None` when nothing delivered.
    mean_us: Option<f64>,
    p50_us: Option<f64>,
    p99_us: Option<f64>,
}

/// Golden values for replication 0 of every committed scenario, pinned
/// against the workspace's deterministic SplitMix64 `rand` shim. Update
/// only for *intentional* semantic changes, and record why in the
/// commit. (Cross-check: `fig3_mixed_negbinomial` reproduces the
/// `seeded_mixed_traffic_run_is_pinned` mean exactly — the declarative
/// layer and the direct API drive identical simulations.)
const CORPUS_PINS: &[CorpusPin] = &[
    CorpusPin {
        name: "bit_complement_spam",
        counts: (189, 189, 0, 0),
        events: 242_775,
        mean_us: Some(30.7356),
        p50_us: Some(13.98),
        p99_us: Some(170.65),
    },
    CorpusPin {
        name: "broadcast_storm_32",
        counts: (32, 32, 0, 0),
        events: 162_923,
        mean_us: Some(25.1509),
        p50_us: Some(24.64),
        p99_us: Some(39.79),
    },
    CorpusPin {
        name: "bursty_onoff_mixed",
        counts: (250, 250, 0, 0),
        events: 312_553,
        mean_us: Some(11.7049),
        p50_us: Some(11.58),
        p99_us: Some(13.61),
    },
    CorpusPin {
        name: "closed_loop_window4",
        counts: (144, 144, 0, 0),
        events: 52_130,
        mean_us: Some(14.0247),
        p50_us: Some(13.20),
        p99_us: Some(23.53),
    },
    CorpusPin {
        name: "fig2_single_multicast",
        counts: (1, 1, 0, 0),
        events: 8_505,
        mean_us: Some(12.18),
        p50_us: Some(12.18),
        p99_us: Some(12.18),
    },
    CorpusPin {
        name: "fig3_mixed_negbinomial",
        counts: (250, 250, 0, 0),
        events: 269_727,
        mean_us: Some(11.7098),
        p50_us: Some(11.58),
        p99_us: Some(13.27),
    },
    CorpusPin {
        name: "fuzzed_relabel_reattach",
        counts: (189, 169, 7, 13),
        events: 125_699,
        mean_us: Some(11.2388),
        p50_us: Some(11.19),
        p99_us: Some(12.75),
    },
    CorpusPin {
        name: "fuzzed_teardown_branch",
        counts: (150, 51, 5, 94),
        events: 38_706,
        mean_us: Some(11.5335),
        p50_us: Some(11.48),
        p99_us: Some(12.81),
    },
    CorpusPin {
        name: "fuzzed_wheel_overflow",
        counts: (64, 64, 0, 0),
        events: 104_813,
        mean_us: Some(11.1323),
        p50_us: Some(11.13),
        p99_us: Some(11.38),
    },
    CorpusPin {
        name: "hotspot_link_storm",
        counts: (300, 28, 5, 267),
        events: 13_937,
        mean_us: Some(11.0229),
        p50_us: Some(10.94),
        p99_us: Some(11.75),
    },
    CorpusPin {
        name: "incast_degraded_256",
        counts: (400, 400, 0, 0),
        events: 431_015,
        mean_us: Some(31.52),
        p50_us: Some(13.18),
        p99_us: Some(189.73),
    },
    CorpusPin {
        name: "region_fault_hotspot",
        counts: (200, 200, 0, 0),
        events: 84_150,
        mean_us: Some(10.9462),
        p50_us: Some(10.90),
        p99_us: Some(11.70),
    },
    CorpusPin {
        name: "software_multicast_mixed",
        counts: (183, 183, 0, 0),
        events: 63_960,
        mean_us: Some(10.8732),
        p50_us: Some(10.84),
        p99_us: Some(11.45),
    },
    CorpusPin {
        name: "transpose_updown_unicast",
        counts: (171, 171, 0, 0),
        events: 92_235,
        mean_us: Some(11.0653),
        p50_us: Some(10.99),
        p99_us: Some(12.20),
    },
];

#[test]
fn scenario_corpus_is_pinned_and_queue_equivalent() {
    // The corpus runner: every committed `scenarios/*.scenario.json`
    // executes from JSON alone; replication 0 of each is pinned
    // (delivered / torn-down / unreachable counts, event count, latency
    // digest) and must be byte-identical under both event-queue
    // implementations — the declarative layer adds no nondeterminism on
    // top of the engine equivalence pinned above.
    let corpus = spam_net::scenario::load_dir(std::path::Path::new("scenarios"))
        .expect("committed corpus loads and validates");
    assert_eq!(
        corpus.len(),
        CORPUS_PINS.len(),
        "corpus size pinned: add a CorpusPin for every new scenario"
    );
    let close = |got: Option<f64>, want: Option<f64>, what: &str, name: &str| match (got, want) {
        (Some(g), Some(w)) => assert!((g - w).abs() < 5e-4, "{name}: {what} drifted: {g} vs {w}"),
        (g, w) => assert_eq!(g.is_some(), w.is_some(), "{name}: {what} presence"),
    };
    for ((path, spec), pin) in corpus.iter().zip(CORPUS_PINS) {
        assert_eq!(
            spec.name,
            pin.name,
            "corpus order pinned ({})",
            path.display()
        );
        let wheel = spam_net::scenario::run_once(spec, 0, Some(QueueKind::Bucket))
            .unwrap_or_else(|e| panic!("{}: {e}", pin.name));
        let heap = spam_net::scenario::run_once(spec, 0, Some(QueueKind::Heap))
            .unwrap_or_else(|e| panic!("{}: {e}", pin.name));
        assert_outcomes_identical(&wheel, &heap, pin.name);
        assert!(wheel.all_accounted(), "{}: not accounted", pin.name);
        let s = spam_net::scenario::summarize(0, &wheel);
        assert_eq!(
            (s.submitted, s.delivered, s.torn_down, s.unreachable),
            pin.counts,
            "{}: message accounting drifted",
            pin.name
        );
        assert_eq!(s.events, pin.events, "{}: event count drifted", pin.name);
        close(s.mean_latency_us, pin.mean_us, "mean latency", pin.name);
        close(s.p50_us, pin.p50_us, "p50 latency", pin.name);
        close(s.p99_us, pin.p99_us, "p99 latency", pin.name);
    }
}

#[test]
fn fuzzed_corpus_specs_light_their_namesake_coverage() {
    // The three fuzzer-promoted scenarios were committed *because* they
    // light engine-coverage signals the hand-authored corpus never set.
    // Pin that property: if a refactor stops a spec from reaching its
    // namesake state, the spec has lost its reason to exist.
    use spam_net::wormsim::CoverageSet;
    let check = |name: &str, mask: u64| {
        let body = std::fs::read_to_string(format!("scenarios/{name}.scenario.json")).unwrap();
        let spec = spam_net::scenario::ScenarioSpec::from_json(&body).unwrap();
        let out = spam_net::scenario::run_once(&spec, 0, None).unwrap();
        assert!(
            out.counters.coverage.has(mask),
            "{name}: coverage signal {mask:#x} lost (got {:#x})",
            out.counters.coverage.bits
        );
        assert!(out.quiescent, "{name}: network failed to drain");
    };
    check(
        "fuzzed_teardown_branch",
        CoverageSet::TEARDOWN_DURING_BRANCH,
    );
    check("fuzzed_wheel_overflow", CoverageSet::WHEEL_OVERFLOW);
    check(
        "fuzzed_relabel_reattach",
        CoverageSet::RELABEL_REATTACH | CoverageSet::SOURCE_INJECTION_DEAD,
    );
}

#[test]
fn scenario_corpus_covers_every_axis() {
    // The corpus must keep exercising the full composition surface:
    // every routing arm, every fault mode, and most of the workload
    // library. A scenario deletion that narrows coverage trips this.
    let corpus = spam_net::scenario::load_dir(std::path::Path::new("scenarios")).unwrap();
    let specs: Vec<_> = corpus.iter().map(|(_, s)| s).collect();
    use spam_net::scenario::{FaultsSpec, RoutingSpec, TrafficSpec};
    assert!(specs
        .iter()
        .any(|s| matches!(s.routing, RoutingSpec::Spam { .. })));
    assert!(specs
        .iter()
        .any(|s| matches!(s.routing, RoutingSpec::UpDownUnicast)));
    assert!(specs
        .iter()
        .any(|s| matches!(s.routing, RoutingSpec::SoftwareMulticast)));
    assert!(specs.iter().any(|s| matches!(s.faults, FaultsSpec::None)));
    assert!(specs
        .iter()
        .any(|s| matches!(s.faults, FaultsSpec::Static { .. })));
    assert!(specs
        .iter()
        .any(|s| matches!(s.faults, FaultsSpec::Storm { .. })));
    let kinds: Vec<u32> = specs
        .iter()
        .map(|s| match s.traffic {
            TrafficSpec::SingleMulticast { .. } => 0,
            TrafficSpec::Mixed { .. } => 1,
            TrafficSpec::Hotspot { .. } => 2,
            TrafficSpec::Permutation { .. } => 3,
            TrafficSpec::Incast { .. } => 4,
            TrafficSpec::BroadcastStorm { .. } => 5,
            TrafficSpec::ClosedLoop { .. } => 6,
        })
        .collect();
    for kind in 0..7 {
        assert!(
            kinds.contains(&kind),
            "no scenario covers traffic kind {kind}"
        );
    }
}

#[test]
fn mid_run_link_death_is_identical_under_both_queues() {
    let outcomes: Vec<SimOutcome> = [QueueKind::Bucket, QueueKind::Heap]
        .into_iter()
        .map(|queue| {
            let topo = IrregularConfig::with_switches(64).generate(2024);
            let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
            let procs: Vec<NodeId> = topo.processors().collect();
            let doomed = procs[5];
            let dead_link = topo.out_channels(doomed)[0];
            let sched = FaultSchedule::new(vec![FaultEvent {
                at: Time::from_ns(10_500),
                kind: FaultKind::LinkDown(dead_link),
            }]);
            let scenario = ReconfigScenario::build(&topo, &ud, &sched);
            let routing = scenario.routing(&topo);
            let mut sim = NetworkSim::new(&topo, routing, SimConfig::paper().with_queue(queue));
            sched.install(&mut sim);
            sim.submit(MessageSpec::multicast(procs[0], procs[1..].to_vec(), 128))
                .unwrap();
            sim.submit(
                MessageSpec::multicast(procs[0], vec![procs[7], procs[9]], 64)
                    .at(Time::from_us(15)),
            )
            .unwrap();
            sim.submit(MessageSpec::unicast(procs[0], doomed, 64).at(Time::from_us(15)))
                .unwrap();
            sim.run()
        })
        .collect();
    assert!(outcomes[0].all_accounted());
    assert_outcomes_identical(&outcomes[0], &outcomes[1], "mid-run link death");
}
