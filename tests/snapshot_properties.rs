//! Property: checkpoint/resume is exact at *random* mid-run instants —
//! random lattices, both routing arms, and all three fault arms
//! (fault-free, static damage, live storm), resumed under a randomly
//! chosen event-queue implementation.

use proptest::prelude::*;
use proptest::TestCaseError;
use spam_net::prelude::*;
use spam_net::scenario::{ArrivalSpec, FaultModelSpec, PolicySpec};

/// Builds a small random spec: `arm` picks the routing arm, `fault`
/// the fault arm (a storm requires SPAM routing, so the up*/down* arm
/// maps storms to static damage).
fn random_spec(topo_seed: u64, traffic_seed: u64, arm: u64, fault: u64) -> ScenarioSpec {
    let mut s = ScenarioSpec::example("snapshot-prop");
    s.topology.switches = 8 + (topo_seed % 28) as usize;
    s.topology.seed = topo_seed;
    s.seed = traffic_seed;
    let spam = arm.is_multiple_of(2);
    if spam {
        s.routing = RoutingSpec::Spam {
            policy: PolicySpec::MinResidualDistance,
        };
        s.traffic = TrafficSpec::Mixed {
            unicast_fraction: 0.7,
            multicast_dests: 3,
            rate_per_node_per_us: 0.2,
            len: 48,
            messages: 24,
            arrival: ArrivalSpec::Poisson,
        };
    } else {
        s.routing = RoutingSpec::UpDownUnicast;
        s.traffic = TrafficSpec::Hotspot {
            hot_nodes: 2,
            hot_fraction: 0.5,
            rate_per_node_per_us: 0.2,
            len: 48,
            messages: 24,
            arrival: ArrivalSpec::Poisson,
        };
    }
    match fault % 3 {
        0 => s.faults = FaultsSpec::None,
        1 => {
            s.faults = FaultsSpec::Static {
                model: FaultModelSpec::IidLinks { rate: 0.08 },
                seed: topo_seed ^ 0xFA17,
            }
        }
        _ if spam => {
            s.faults = FaultsSpec::Storm {
                model: FaultModelSpec::IidLinks { rate: 0.1 },
                seed: topo_seed ^ 0x5707,
                window_start_us: 4,
                window_end_us: 30,
                bursts: 2,
            }
        }
        _ => {
            s.faults = FaultsSpec::Static {
                model: FaultModelSpec::IidSwitches { rate: 0.05 },
                seed: topo_seed ^ 0xFA17,
            }
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn resume_at_a_random_instant_is_exact(
        topo_seed in 1u64..1_000_000,
        traffic_seed in 1u64..1_000_000,
        arm in 0u64..2,
        fault in 0u64..3,
        divisor in 2u64..9,
        pick in 0u64..64,
        heap in 0u64..2,
    ) {
        let spec = random_spec(topo_seed, traffic_seed, arm, fault);
        // Random damage can orphan the workload; that's a typed verdict,
        // not a failing case.
        let baseline = match run_scenario_once(&spec, 0, Some(QueueKind::Bucket)) {
            Ok(out) => out,
            Err(ScenarioError::NoSurvivingComponent) => return Ok(()),
            Err(e) => return Err(TestCaseError::Fail(format!("baseline: {e}"))),
        };
        let want = outcome_digest(&baseline);

        // A random cadence puts checkpoints at arbitrary mid-run
        // instants; a random pick chooses which one to resume from.
        let every_ns = (baseline.end_time.as_ns() / divisor).max(1);
        let golden = run_once_checkpointed(&spec, 0, Some(QueueKind::Bucket), every_ns)
            .map_err(|e| TestCaseError::Fail(format!("checkpointed: {e}")))?;
        prop_assert_eq!(want, outcome_digest(&golden.outcome), "observer purity");
        prop_assume!(!golden.checkpoints.is_empty());

        let (at_ns, bytes) = &golden.checkpoints[pick as usize % golden.checkpoints.len()];
        let queue = if heap == 1 { QueueKind::Heap } else { QueueKind::Bucket };
        let resumed = resume_once(&spec, 0, Some(queue), bytes)
            .map_err(|e| TestCaseError::Fail(format!("resume at {at_ns}ns: {e}")))?;
        prop_assert_eq!(
            want,
            outcome_digest(&resumed),
            "resume at {}ns under {:?} diverged (spec {:?})",
            at_ns, queue, spec.name
        );
    }
}
