//! Fast end-to-end smoke test: the shortest path through the whole stack.
//! Generates a small irregular topology, computes the up*/down* labeling,
//! routes one SPAM multicast through the flit-level simulator, and asserts
//! every destination receives the worm. Runs in milliseconds — this is the
//! first test to consult when the workspace wiring itself is in question.

use spam_net::prelude::*;

#[test]
fn small_irregular_multicast_delivers_to_all_destinations() {
    // Small §4-style network: 12 switches on a random lattice, one
    // processor each, seeded for determinism.
    let topo = IrregularConfig::with_switches(12).generate(99);
    topo.validate(8).expect("generated topology must be valid");

    // Up*/down* labeling from the default deterministic root.
    let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);

    // One SPAM multicast from the first processor to five others.
    let procs: Vec<NodeId> = topo.processors().collect();
    let (src, dests) = (procs[0], procs[1..6].to_vec());
    let spam = SpamRouting::new(&topo, &ud);
    let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper());
    sim.submit(MessageSpec::multicast(src, dests.clone(), 32))
        .expect("spec must validate against the topology");

    let out = sim.run();
    assert!(out.all_delivered(), "undelivered: {:?}", out.deadlock);
    assert_eq!(out.counters.messages_completed, 1);
    // Every destination saw the full worm: 32 flits each.
    assert_eq!(out.counters.flits_delivered, 32 * dests.len() as u64);

    let m = &out.messages[0];
    assert_eq!(m.dest_done_at.len(), dests.len());
    assert!(m.dest_done_at.iter().all(|t| t.is_some()));
    // Single startup (10 µs) plus a sane amount of network time.
    let lat = m.latency().expect("completed message has a latency");
    assert!(lat.as_ns() > 10_000 && lat.as_ns() < 100_000, "{lat}");
}
