//! Tracing is a pure observer: enabling `engine.trace` on any golden
//! scenario must not change a single simulated outcome. The check runs
//! every corpus scenario twice — traced and untraced — and compares the
//! behavioural digests (`spam_fuzz::digest::outcome_digest` hashes every
//! latency, failure, counter, and epoch statistic, and deliberately
//! excludes the trace itself).

use spam_net::fuzz::digest::outcome_digest;
use spam_net::scenario::{run_once, SpecError};
use std::path::Path;

#[test]
fn tracing_never_changes_outcomes_across_the_golden_corpus() {
    let corpus = spam_net::scenario::load_dir(Path::new("scenarios")).expect("corpus loads");
    assert!(corpus.len() >= 14, "the golden corpus holds 14 scenarios");
    for (path, spec) in corpus {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();

        let mut untraced = spec.clone();
        untraced.engine.trace = false;
        let mut traced = spec;
        traced.engine.trace = true;

        let run = |s| match run_once(s, 0, None) {
            Ok(out) => Some(out),
            // Some fuzz-promoted storms legitimately destroy the fabric.
            Err(SpecError::NoSurvivingComponent) => None,
            Err(e) => panic!("{name}: {e:?}"),
        };
        let (base, observed) = (run(&untraced), run(&traced));
        match (base, observed) {
            (None, None) => continue,
            (Some(base), Some(observed)) => {
                assert_eq!(
                    outcome_digest(&base),
                    outcome_digest(&observed),
                    "{name}: enabling tracing changed simulated behaviour"
                );
                assert!(
                    base.trace.events.is_empty(),
                    "{name}: untraced run recorded events"
                );
                assert!(
                    !observed.trace.events.is_empty(),
                    "{name}: traced run recorded nothing"
                );
            }
            _ => panic!("{name}: tracing changed spec-level viability"),
        }
    }
}
