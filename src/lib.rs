#![warn(missing_docs)]

//! # spam-net — facade crate
//!
//! Re-exports the whole SPAM reproduction workspace behind one dependency:
//!
//! * [`netgraph`] — switch/processor topologies and generators,
//! * [`updown`] — up*/down* labeling, ancestors, LCA,
//! * [`desim`] — the discrete-event engine,
//! * [`wormsim`] — the flit-level wormhole network simulator,
//! * [`spam`] — the SPAM routing algorithm (paper's contribution),
//! * [`baselines`] — up*/down* unicast and unicast-based multicast,
//! * [`faults`] — fault injection and reconfiguration on degraded networks,
//! * [`reconfig`] — *live* reconfiguration: timed fault storms, worm
//!   teardown, online relabeling, and epoch-based routing swaps,
//! * [`traffic`] — the workload library: the paper's two models plus
//!   hotspot, lattice permutations, bursty on/off arrivals, incast,
//!   broadcast storms, and closed-loop injection,
//! * [`scenario`] — declarative experiments: every axis above composed
//!   in one serializable spec, executed straight from
//!   `*.scenario.json` files,
//! * [`fuzz`] — coverage-guided scenario fuzzing: typed spec mutation,
//!   engine-novelty signals, correctness oracles, greedy minimization,
//! * [`trace`] — observability: per-message spans, an exact latency-phase
//!   decomposition (startup/blocking/route-setup/wire/stall), and
//!   Perfetto track-event export for `ui.perfetto.dev`,
//! * [`metrics`] — fabric telemetry: a deterministic sim-time gauge
//!   sampler, per-channel congestion accumulators, lattice heatmaps
//!   (CSV/JSON/terminal), and one-screen run reports,
//! * [`simstats`] — statistics and CI-driven replication control.
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use baselines;
pub use desim;
pub use netgraph;
pub use simstats;
pub use spam_core as spam;
pub use spam_faults as faults;
pub use spam_fuzz as fuzz;
pub use spam_metrics as metrics;
pub use spam_reconfig as reconfig;
pub use spam_scenario as scenario;
pub use spam_serve as serve;
pub use spam_trace as trace;
pub use traffic;
pub use updown;
pub use wormsim;

/// Convenience prelude pulling in the names used by virtually every
/// experiment: topology generation, labeling, simulation, and SPAM routing.
pub mod prelude {
    pub use baselines::{lower_bound, ucast_multicast::UnicastMulticast, UpDownUnicastRouting};
    pub use desim::{Duration, Time};
    pub use netgraph::gen::{fixtures::figure1, IrregularConfig};
    pub use netgraph::{ChannelId, DegradedTopology, NodeId, Topology};
    pub use simstats::{ConfidenceInterval, RunningStats};
    pub use spam_core::{SelectionPolicy, SpamRouting};
    pub use spam_faults::{DegradedNetwork, FaultModel, FaultPlan};
    pub use spam_metrics::{CongestionHeatmap, HeatKey, MetricsConfig, RunMetrics, RunReport};
    pub use spam_reconfig::{EpochRouting, FaultEvent, FaultKind, FaultSchedule, ReconfigScenario};
    pub use spam_scenario::{
        bisect_divergence, outcome_digest, resume_once, run_once as run_scenario_once,
        run_once_checkpointed, run_spec as run_scenario, CheckpointedRun, DivergenceReport,
        FaultsSpec, RoutingSpec, ScenarioReport, ScenarioSpec, SpecError as ScenarioError,
        TrafficSpec,
    };
    pub use spam_trace::{decompose_run, export as export_perfetto, MessageAnatomy, SpanSet};
    pub use traffic::{
        ArrivalKind, BroadcastStormConfig, ClosedLoopConfig, ClosedLoopInjector,
        DestinationSampler, HotspotConfig, IncastConfig, MixedTrafficConfig, PermutationConfig,
        PermutationPattern, TrafficError,
    };
    pub use updown::{RelabelReport, RootSelection, UpDownLabeling};
    pub use wormsim::{
        CheckpointSink, EpochStats, FailureKind, LatencyParams, MessageFailure, MessageSpec,
        NetworkSim, QueueKind, RouteError, SimConfig, SimError, SimOutcome, SnapshotError,
    };
}
