//! The worked example network of Figure 1 in the paper.
//!
//! Figure 1 shows an 11-vertex network: tree edges solid, cross edges
//! dashed, vertices labeled 1–11. Node 5 (a processor) multicasts to the
//! processors 8, 9, 10 and 11; their least common ancestor is switch 4; one
//! legal header path to the LCA is 5 → 2 → 3 → 4 where (5,2) is an up
//! channel and (2,3), (3,4) are down **cross** channels.
//!
//! The figure does not print the full link list, so this fixture
//! reconstructs an instance that reproduces every behaviour the text
//! describes when the up*/down* tree is built by deterministic BFS from
//! root 1 (neighbors in id order):
//!
//! * switches: 1, 2, 3, 4, 6, 7 — processors: 5, 8, 9, 10, 11;
//! * tree edges: (1,2), (1,3), (2,4), (2,5), (4,6), (4,7),
//!   (6,8), (6,9), (6,10), (7,11);
//! * cross edges: (2,3) — same level, so 2→3 is *down* by the id rule —
//!   and (3,4) — level 1 → level 2, so 3→4 is *down*;
//! * LCA(8, 9, 10, 11) = 4, with the worm splitting at 4 towards 6 and 7,
//!   then at 6 towards 8, 9, 10.

use crate::ids::NodeId;
use crate::topology::Topology;

/// Maps the paper's vertex labels (1–11) to [`NodeId`]s of the fixture.
#[derive(Debug, Clone)]
pub struct Figure1Labels {
    ids: [NodeId; 11],
}

impl Figure1Labels {
    /// The node carrying the paper's label `label` (1–11).
    pub fn by_label(&self, label: u32) -> Option<NodeId> {
        if (1..=11).contains(&label) {
            Some(self.ids[(label - 1) as usize])
        } else {
            None
        }
    }

    /// Label of `node`, if it is part of the fixture.
    pub fn label_of(&self, node: NodeId) -> Option<u32> {
        self.ids
            .iter()
            .position(|n| *n == node)
            .map(|i| i as u32 + 1)
    }
}

/// Builds the Figure 1 network; returns the topology and the label map.
///
/// Nodes are created in label order, so label `k` receives `NodeId(k - 1)`,
/// preserving the paper's id-based tie-break for same-level cross channels.
pub fn figure1() -> (Topology, Figure1Labels) {
    let mut b = Topology::builder();
    // Create in label order 1..=11.
    let n1 = b.add_switch(); //  1 root
    let n2 = b.add_switch(); //  2
    let n3 = b.add_switch(); //  3
    let n4 = b.add_switch(); //  4 = LCA of the example destinations
    let n5 = b.add_processor(); // 5 source processor
    let n6 = b.add_switch(); //  6
    let n7 = b.add_switch(); //  7
    let n8 = b.add_processor(); // 8
    let n9 = b.add_processor(); // 9
    let n10 = b.add_processor(); // 10
    let n11 = b.add_processor(); // 11

    // Tree edges (will be recovered as tree edges by BFS from node 1).
    b.link(n1, n2).unwrap();
    b.link(n1, n3).unwrap();
    b.link(n2, n4).unwrap();
    b.link(n2, n5).unwrap();
    b.link(n4, n6).unwrap();
    b.link(n4, n7).unwrap();
    b.link(n6, n8).unwrap();
    b.link(n6, n9).unwrap();
    b.link(n6, n10).unwrap();
    b.link(n7, n11).unwrap();
    // Cross edges.
    b.link(n2, n3).unwrap();
    b.link(n3, n4).unwrap();

    let labels = Figure1Labels {
        ids: [n1, n2, n3, n4, n5, n6, n7, n8, n9, n10, n11],
    };
    (b.build(), labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{bfs_parents, is_connected};

    #[test]
    fn figure1_shape() {
        let (t, labels) = figure1();
        assert_eq!(t.num_nodes(), 11);
        assert_eq!(t.num_switches(), 6);
        assert_eq!(t.num_processors(), 5);
        assert_eq!(t.num_channels(), 24);
        assert!(is_connected(&t));
        t.validate(8).unwrap();
        for l in 1..=11 {
            assert!(labels.by_label(l).is_some());
        }
        assert!(labels.by_label(0).is_none());
        assert!(labels.by_label(12).is_none());
    }

    #[test]
    fn labels_round_trip() {
        let (_, labels) = figure1();
        for l in 1..=11u32 {
            let n = labels.by_label(l).unwrap();
            assert_eq!(labels.label_of(n), Some(l));
        }
        assert_eq!(labels.label_of(NodeId(99)), None);
    }

    #[test]
    fn bfs_from_root_recovers_intended_tree() {
        let (t, labels) = figure1();
        let root = labels.by_label(1).unwrap();
        let parent = bfs_parents(&t, root);
        let by = |l: u32| labels.by_label(l).unwrap();
        // Deterministic BFS (id order) discovers 4 from 2, not from 3,
        // making (3,4) a cross edge as the paper's example requires.
        assert_eq!(parent[by(4).index()], Some(by(2)));
        assert_eq!(parent[by(2).index()], Some(by(1)));
        assert_eq!(parent[by(3).index()], Some(by(1)));
        assert_eq!(parent[by(5).index()], Some(by(2)));
        assert_eq!(parent[by(6).index()], Some(by(4)));
        assert_eq!(parent[by(7).index()], Some(by(4)));
        for leaf in [8, 9, 10] {
            assert_eq!(parent[by(leaf).index()], Some(by(6)));
        }
        assert_eq!(parent[by(11).index()], Some(by(7)));
    }

    #[test]
    fn processors_attach_to_expected_switches() {
        let (t, labels) = figure1();
        let by = |l: u32| labels.by_label(l).unwrap();
        assert_eq!(t.switch_of(by(5)), by(2));
        assert_eq!(t.switch_of(by(8)), by(6));
        assert_eq!(t.switch_of(by(11)), by(7));
    }
}
