//! Irregular NOW topologies on an integer lattice (§4 of the paper).
//!
//! > "In order to simulate physical proximity of connected switches,
//! > switches were randomly selected from points on an integer lattice and
//! > connected only to adjacent lattice points. Thus, at most 4 ports per
//! > switch were used for connections to other switches. In order to
//! > maximize the probability of contention between messages, each switch
//! > was connected to only one processor."
//!
//! Two sampling strategies are provided:
//!
//! * [`LatticeStrategy::ConnectedGrowth`] (default) grows the occupied cell
//!   set one random frontier cell at a time, guaranteeing a connected
//!   network in a single pass — the practical choice for large sweeps.
//! * [`LatticeStrategy::UniformRetry`] samples cells uniformly at random
//!   (closest to the paper's literal wording) and retries with a fresh seed
//!   derivation until the induced adjacency graph is connected.
//!
//! Both attach exactly one processor per switch and respect the 8-port
//! budget (≤ 4 lattice neighbors + 1 processor).

use crate::algo;
use crate::ids::NodeId;
use crate::topology::Topology;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// How lattice cells are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatticeStrategy {
    /// Grow a connected blob: start from a random cell and repeatedly occupy
    /// a uniformly random unoccupied cell adjacent to the blob.
    ConnectedGrowth,
    /// Sample cells uniformly without replacement; retry (bounded) until the
    /// induced graph is connected.
    UniformRetry,
}

/// Configuration for irregular lattice topology generation.
#[derive(Debug, Clone, Copy)]
pub struct IrregularConfig {
    /// Number of switches (= number of processors; one per switch).
    pub switches: usize,
    /// Lattice side length. Cells = `side * side`; must hold ≥ `switches`.
    /// A side of `ceil(sqrt(switches / 0.6))` gives the ~60 % occupancy used
    /// by [`IrregularConfig::with_switches`].
    pub side: usize,
    /// Cell-selection strategy.
    pub strategy: LatticeStrategy,
    /// Max attempts for [`LatticeStrategy::UniformRetry`] before falling
    /// back to keeping the largest component's complement cells re-rolled.
    pub max_retries: usize,
}

/// Lattice placement of a generated irregular network: which cell each
/// switch occupies. Needed by spatially correlated fault models (a failed
/// rack/region takes out *adjacent* switches) and by visualization.
#[derive(Debug, Clone)]
pub struct LatticeLayout {
    /// Lattice side length.
    pub side: usize,
    /// `cell[s]` is the cell index (`row * side + col`) of switch node
    /// `s`; indexed by switch node id (switches are ids `0..switches`).
    pub cell: Vec<usize>,
}

impl LatticeLayout {
    /// `(row, col)` of switch `s`.
    pub fn position(&self, s: NodeId) -> (usize, usize) {
        let c = self.cell[s.index()];
        (c / self.side, c % self.side)
    }

    /// Manhattan (L1) lattice distance between two switches.
    pub fn manhattan(&self, a: NodeId, b: NodeId) -> usize {
        let (ra, ca) = self.position(a);
        let (rb, cb) = self.position(b);
        ra.abs_diff(rb) + ca.abs_diff(cb)
    }
}

impl IrregularConfig {
    /// The paper's setup for `n` switches: ~60 % lattice occupancy,
    /// connected-growth sampling.
    pub fn with_switches(n: usize) -> Self {
        let side = ((n as f64 / 0.6).sqrt().ceil() as usize).max(1);
        IrregularConfig {
            switches: n,
            side,
            strategy: LatticeStrategy::ConnectedGrowth,
            max_retries: 64,
        }
    }

    /// Replaces the sampling strategy.
    pub fn strategy(mut self, s: LatticeStrategy) -> Self {
        self.strategy = s;
        self
    }

    /// Generates a topology with randomness drawn from `seed`.
    ///
    /// The result is always connected, has exactly one processor per switch,
    /// and every switch has at most 4 switch links (8-port switches with 4
    /// lattice neighbors max + 1 processor port, as in §4).
    ///
    /// # Panics
    ///
    /// Panics if `side * side < switches`.
    pub fn generate(&self, seed: u64) -> Topology {
        self.generate_with_layout(seed).0
    }

    /// Like [`IrregularConfig::generate`], but also returns the
    /// [`LatticeLayout`] (cell of every switch) — the hook spatially
    /// correlated fault models need. Same seed, same topology as
    /// `generate`.
    ///
    /// # Panics
    ///
    /// Panics if `side * side < switches`.
    pub fn generate_with_layout(&self, seed: u64) -> (Topology, LatticeLayout) {
        assert!(
            self.side * self.side >= self.switches,
            "lattice too small: {}x{} < {} switches",
            self.side,
            self.side,
            self.switches
        );
        match self.strategy {
            LatticeStrategy::ConnectedGrowth => self.generate_growth(seed),
            LatticeStrategy::UniformRetry => self.generate_uniform(seed),
        }
    }

    fn cell_neighbors(&self, cell: usize) -> impl Iterator<Item = usize> + '_ {
        let side = self.side;
        let (r, c) = (cell / side, cell % side);
        [
            (r.wrapping_sub(1), c),
            (r + 1, c),
            (r, c.wrapping_sub(1)),
            (r, c + 1),
        ]
        .into_iter()
        .filter(move |&(rr, cc)| rr < side && cc < side)
        .map(move |(rr, cc)| rr * side + cc)
    }

    fn generate_growth(&self, seed: u64) -> (Topology, LatticeLayout) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let cells = self.side * self.side;
        let mut occupied = vec![false; cells];
        let mut chosen = Vec::with_capacity(self.switches);
        let mut frontier: Vec<usize> = Vec::new();

        let start = rng.gen_range(0..cells);
        occupied[start] = true;
        chosen.push(start);
        frontier.extend(self.cell_neighbors(start));

        while chosen.len() < self.switches {
            // Draw a random frontier cell; the frontier may contain already
            // occupied or duplicate entries, so filter lazily (swap-remove
            // keeps this O(1) amortized).
            debug_assert!(!frontier.is_empty(), "lattice frontier exhausted");
            let i = rng.gen_range(0..frontier.len());
            let cell = frontier.swap_remove(i);
            if occupied[cell] {
                continue;
            }
            occupied[cell] = true;
            chosen.push(cell);
            frontier.extend(self.cell_neighbors(cell).filter(|c| !occupied[*c]));
        }
        chosen.sort_unstable(); // node ids independent of growth order
        (
            self.assemble(&chosen),
            LatticeLayout {
                side: self.side,
                cell: chosen,
            },
        )
    }

    fn generate_uniform(&self, seed: u64) -> (Topology, LatticeLayout) {
        let cells: Vec<usize> = (0..self.side * self.side).collect();
        for attempt in 0..self.max_retries {
            // Derive a fresh stream per attempt so retries are independent
            // but the whole procedure stays a pure function of `seed`.
            let mut rng = rand::rngs::StdRng::seed_from_u64(
                seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(attempt as u64 + 1),
            );
            let mut pick = cells.clone();
            pick.shuffle(&mut rng);
            pick.truncate(self.switches);
            pick.sort_unstable();
            let topo = self.assemble(&pick);
            if algo::is_connected(&topo) {
                let layout = LatticeLayout {
                    side: self.side,
                    cell: pick,
                };
                return (topo, layout);
            }
        }
        // Deterministic fallback: a connected instance is always available.
        self.generate_growth(seed)
    }

    /// Builds the topology from a sorted list of occupied cells.
    fn assemble(&self, chosen: &[usize]) -> Topology {
        let mut b = Topology::builder();
        let switch_ids: Vec<NodeId> = chosen.iter().map(|_| b.add_switch()).collect();
        // Map cell -> switch index for adjacency lookups.
        let mut cell_to_switch = vec![usize::MAX; self.side * self.side];
        for (i, &cell) in chosen.iter().enumerate() {
            cell_to_switch[cell] = i;
        }
        for (i, &cell) in chosen.iter().enumerate() {
            for nb in self.cell_neighbors(cell) {
                let j = cell_to_switch[nb];
                if j != usize::MAX && j > i {
                    b.link(switch_ids[i], switch_ids[j]).unwrap();
                }
            }
        }
        for &s in &switch_ids {
            let p = b.add_processor();
            b.link(p, s).unwrap();
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::is_connected;

    #[test]
    fn growth_generates_connected_valid_networks() {
        for seed in 0..10 {
            let t = IrregularConfig::with_switches(64).generate(seed);
            assert_eq!(t.num_switches(), 64);
            assert_eq!(t.num_processors(), 64);
            t.validate(8).unwrap();
            assert!(is_connected(&t));
        }
    }

    #[test]
    fn uniform_retry_generates_connected_valid_networks() {
        for seed in 0..5 {
            let t = IrregularConfig::with_switches(32)
                .strategy(LatticeStrategy::UniformRetry)
                .generate(seed);
            assert_eq!(t.num_switches(), 32);
            t.validate(8).unwrap();
            assert!(is_connected(&t));
        }
    }

    #[test]
    fn switch_links_capped_at_four() {
        let t = IrregularConfig::with_switches(128).generate(42);
        for s in t.switches() {
            let switch_links = t.neighbors(s).filter(|n| t.is_switch(*n)).count();
            assert!(switch_links <= 4, "lattice adjacency limits switch links");
            // 8-port budget: ≤4 switch links + 1 processor.
            assert!(t.degree(s) <= 5);
        }
    }

    #[test]
    fn one_processor_per_switch() {
        let t = IrregularConfig::with_switches(50).generate(7);
        for s in t.switches() {
            assert!(t.processor_of(s).is_some());
        }
        for p in t.processors() {
            assert!(t.is_switch(t.switch_of(p)));
        }
    }

    #[test]
    fn same_seed_same_topology() {
        let a = IrregularConfig::with_switches(40).generate(123);
        let b = IrregularConfig::with_switches(40).generate(123);
        assert_eq!(a.num_channels(), b.num_channels());
        for c in a.channel_ids() {
            assert_eq!(a.channel(c), b.channel(c));
        }
    }

    #[test]
    fn different_seeds_usually_differ() {
        let a = IrregularConfig::with_switches(40).generate(1);
        let b = IrregularConfig::with_switches(40).generate(2);
        // Same node count but the link sets should not coincide.
        let links_a: Vec<_> = a.channel_ids().map(|c| a.channel(c)).collect();
        let links_b: Vec<_> = b.channel_ids().map(|c| b.channel(c)).collect();
        assert_ne!(links_a, links_b);
    }

    #[test]
    fn layout_matches_topology_adjacency() {
        let cfg = IrregularConfig::with_switches(40);
        let (t, layout) = cfg.generate_with_layout(9);
        assert_eq!(layout.cell.len(), 40);
        assert_eq!(layout.side, cfg.side);
        // Same seed without layout gives the identical topology.
        let t2 = cfg.generate(9);
        assert_eq!(t.num_channels(), t2.num_channels());
        for c in t.channel_ids() {
            assert_eq!(t.channel(c), t2.channel(c));
        }
        // Switches are linked iff their cells are lattice-adjacent.
        for a in t.switches() {
            for b in t.switches() {
                if a >= b {
                    continue;
                }
                let adjacent = layout.manhattan(a, b) == 1;
                assert_eq!(t.channel_between(a, b).is_some(), adjacent, "{a} vs {b}");
            }
        }
        // All occupied cells are distinct and in range.
        let mut cells = layout.cell.clone();
        cells.sort_unstable();
        cells.dedup();
        assert_eq!(cells.len(), 40);
        assert!(cells.iter().all(|&c| c < layout.side * layout.side));
    }

    #[test]
    #[should_panic(expected = "lattice too small")]
    fn too_small_lattice_panics() {
        IrregularConfig {
            switches: 10,
            side: 3,
            strategy: LatticeStrategy::ConnectedGrowth,
            max_retries: 4,
        }
        .generate(0);
    }

    #[test]
    fn single_switch_network() {
        let t = IrregularConfig {
            switches: 1,
            side: 1,
            strategy: LatticeStrategy::ConnectedGrowth,
            max_retries: 1,
        }
        .generate(0);
        assert_eq!(t.num_switches(), 1);
        assert_eq!(t.num_processors(), 1);
        t.validate(8).unwrap();
    }
}
