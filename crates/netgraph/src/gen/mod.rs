//! Topology generators.
//!
//! * [`lattice`] — the paper's experimental setup (§4): switches on random
//!   integer-lattice points, links only between adjacent lattice points,
//!   8-port switches with at most 4 switch-to-switch connections and exactly
//!   one processor per switch.
//! * [`regular`] — meshes, tori, hypercubes, rings, stars (§5 future work,
//!   plus handy test fixtures).
//! * [`fixtures`] — the worked example network of Figure 1.

pub mod fixtures;
pub mod lattice;
pub mod regular;

pub use fixtures::{figure1, Figure1Labels};
pub use lattice::{IrregularConfig, LatticeStrategy};
pub use regular::{hypercube, mesh2d, ring, star, torus2d};
