//! Regular switch topologies (§5: "for regular topologies such as meshes
//! and n-cubes, judicious selection of spanning trees ... may have
//! significant effects on performance").
//!
//! Every generator attaches one processor per switch, mirroring the paper's
//! experimental setup, so the same traffic machinery runs unchanged on
//! regular and irregular networks.

use crate::ids::NodeId;
use crate::topology::Topology;

/// Attaches one processor to every switch already present in `b`.
fn attach_processors(b: &mut crate::topology::TopologyBuilder, switches: &[NodeId]) {
    for &s in switches {
        let p = b.add_processor();
        b.link(p, s).unwrap();
    }
}

/// A `rows × cols` 2-D mesh of switches.
pub fn mesh2d(rows: usize, cols: usize) -> Topology {
    assert!(rows > 0 && cols > 0, "mesh dimensions must be positive");
    let mut b = Topology::builder();
    let sw = b.add_switches(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            if c + 1 < cols {
                b.link(sw[i], sw[i + 1]).unwrap();
            }
            if r + 1 < rows {
                b.link(sw[i], sw[i + cols]).unwrap();
            }
        }
    }
    attach_processors(&mut b, &sw);
    b.build()
}

/// A `rows × cols` 2-D torus (mesh with wraparound links).
pub fn torus2d(rows: usize, cols: usize) -> Topology {
    assert!(
        rows >= 3 && cols >= 3,
        "torus needs both dimensions >= 3 to avoid duplicate links"
    );
    let mut b = Topology::builder();
    let sw = b.add_switches(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let i = r * cols + c;
            let right = r * cols + (c + 1) % cols;
            let down = ((r + 1) % rows) * cols + c;
            if !b.linked(sw[i], sw[right]) {
                b.link(sw[i], sw[right]).unwrap();
            }
            if !b.linked(sw[i], sw[down]) {
                b.link(sw[i], sw[down]).unwrap();
            }
        }
    }
    attach_processors(&mut b, &sw);
    b.build()
}

/// An `n`-dimensional hypercube of `2^n` switches.
pub fn hypercube(n: u32) -> Topology {
    assert!(n <= 16, "hypercube dimension unreasonably large");
    let count = 1usize << n;
    let mut b = Topology::builder();
    let sw = b.add_switches(count);
    for i in 0..count {
        for d in 0..n {
            let j = i ^ (1 << d);
            if j > i {
                b.link(sw[i], sw[j]).unwrap();
            }
        }
    }
    attach_processors(&mut b, &sw);
    b.build()
}

/// A ring of `n ≥ 3` switches.
pub fn ring(n: usize) -> Topology {
    assert!(n >= 3, "ring needs at least 3 switches");
    let mut b = Topology::builder();
    let sw = b.add_switches(n);
    for i in 0..n {
        b.link(sw[i], sw[(i + 1) % n]).unwrap();
    }
    attach_processors(&mut b, &sw);
    b.build()
}

/// A star: one hub switch connected to `leaves` leaf switches.
pub fn star(leaves: usize) -> Topology {
    assert!(leaves >= 1, "star needs at least one leaf");
    let mut b = Topology::builder();
    let hub = b.add_switch();
    let mut all = vec![hub];
    for _ in 0..leaves {
        let s = b.add_switch();
        b.link(hub, s).unwrap();
        all.push(s);
    }
    attach_processors(&mut b, &all);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{is_connected, switch_diameter};

    #[test]
    fn mesh_structure() {
        let t = mesh2d(3, 4);
        assert_eq!(t.num_switches(), 12);
        assert_eq!(t.num_processors(), 12);
        // Links: horizontal 3*3 + vertical 2*4 = 17, plus 12 processor links.
        assert_eq!(t.num_channels(), 2 * (17 + 12));
        assert!(is_connected(&t));
        assert_eq!(switch_diameter(&t), 2 + 3);
        t.validate(5).unwrap(); // inner switch: 4 mesh + 1 processor
    }

    #[test]
    fn torus_is_degree_regular() {
        let t = torus2d(4, 4);
        assert_eq!(t.num_switches(), 16);
        for s in t.switches() {
            assert_eq!(t.degree(s), 5, "4 torus links + processor");
        }
        assert_eq!(switch_diameter(&t), 4);
        t.validate(5).unwrap();
    }

    #[test]
    fn torus_minimum_size_has_no_duplicates() {
        let t = torus2d(3, 3);
        t.validate(5).unwrap();
    }

    #[test]
    fn hypercube_structure() {
        let t = hypercube(4);
        assert_eq!(t.num_switches(), 16);
        for s in t.switches() {
            assert_eq!(t.degree(s), 5, "4 cube links + processor");
        }
        assert_eq!(switch_diameter(&t), 4);
        t.validate(5).unwrap();
    }

    #[test]
    fn hypercube_dim_zero_is_single_switch() {
        let t = hypercube(0);
        assert_eq!(t.num_switches(), 1);
        t.validate(8).unwrap();
    }

    #[test]
    fn ring_and_star() {
        let r = ring(6);
        assert_eq!(switch_diameter(&r), 3);
        r.validate(3).unwrap();

        let s = star(7);
        assert_eq!(s.num_switches(), 8);
        assert_eq!(switch_diameter(&s), 2);
        s.validate(8).unwrap();
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_ring_rejected() {
        ring(2);
    }
}
