//! Degraded views of a topology: dead switches and dead links.
//!
//! The up*/down* labeling SPAM builds on comes from Autonet (Schroeder et
//! al.), a system whose defining feature was *automatic reconfiguration
//! after component failure*. This module provides the structural half of
//! that story: a [`DegradedTopology`] masks failed channels and switches
//! over an immutable base [`Topology`] **without renumbering nodes**, so
//! fault experiments can correlate per-node results before and after a
//! fault, enumerate surviving components, and materialize a masked
//! topology for the simulator.
//!
//! Fault *sampling* (which links/switches die) lives in the `spam-faults`
//! crate; this module only answers "given these deaths, what survives?".

use crate::algo;
use crate::ids::{ChannelId, NodeId};
use crate::topology::{NodeKind, Topology};
use std::collections::VecDeque;

/// A fault mask over a base topology.
///
/// Killing a link removes both unidirectional channels of the pair
/// (wormhole hardware loses the cable, not one direction). Killing a
/// switch removes the switch and every incident link, which strands its
/// attached processor. A node with no surviving link is treated as dead
/// for connectivity purposes — an unreachable endpoint can neither source
/// nor sink worms.
#[derive(Debug, Clone)]
pub struct DegradedTopology<'a> {
    base: &'a Topology,
    /// Nodes explicitly killed (switch kills).
    killed: Vec<bool>,
    /// Per-channel liveness; the two directions of a link agree.
    channel_alive: Vec<bool>,
}

impl<'a> DegradedTopology<'a> {
    /// A pristine view: everything alive.
    pub fn new(base: &'a Topology) -> Self {
        DegradedTopology {
            base,
            killed: vec![false; base.num_nodes()],
            channel_alive: vec![true; base.num_channels()],
        }
    }

    /// The undamaged base topology.
    pub fn base(&self) -> &Topology {
        self.base
    }

    /// Kills the bidirectional link containing channel `c` (both
    /// directions). Idempotent.
    pub fn kill_link(&mut self, c: ChannelId) {
        self.channel_alive[c.index()] = false;
        self.channel_alive[self.base.reverse(c).index()] = false;
    }

    /// Kills switch `s` and every link incident to it. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a switch (processors fail only through their
    /// link or their switch — they have no routing hardware of their own).
    pub fn kill_switch(&mut self, s: NodeId) {
        assert!(
            self.base.kind(s) == NodeKind::Switch,
            "{s} is not a switch; kill its link instead"
        );
        self.killed[s.index()] = true;
        for &c in self.base.out_channels(s) {
            self.kill_link(c);
        }
    }

    /// True when channel `c` survived.
    #[inline]
    pub fn is_channel_alive(&self, c: ChannelId) -> bool {
        self.channel_alive[c.index()]
    }

    /// True when `n` survived: not explicitly killed and at least one
    /// incident channel is alive (an isolated node is effectively dead).
    pub fn is_node_alive(&self, n: NodeId) -> bool {
        !self.killed[n.index()]
            && self
                .base
                .out_channels(n)
                .iter()
                .any(|&c| self.channel_alive[c.index()])
    }

    /// Per-channel liveness, indexed by base [`ChannelId`] — the mask a
    /// routing algorithm needs to avoid dead channels while keeping the
    /// base topology's channel numbering (live reconfiguration, where the
    /// simulator keeps running on the base topology).
    pub fn alive_channel_mask(&self) -> Vec<bool> {
        self.channel_alive.clone()
    }

    /// Surviving channels (both directions of surviving links).
    pub fn num_alive_channels(&self) -> usize {
        self.channel_alive.iter().filter(|a| **a).count()
    }

    /// Surviving switches.
    pub fn num_alive_switches(&self) -> usize {
        self.base
            .switches()
            .filter(|&s| self.is_node_alive(s))
            .count()
    }

    /// Surviving (still-attached) processors.
    pub fn num_alive_processors(&self) -> usize {
        self.base
            .processors()
            .filter(|&p| self.is_node_alive(p))
            .count()
    }

    /// Connected components of the surviving subgraph, each a sorted node
    /// list, ordered largest first (ties by smallest member id). Dead nodes
    /// appear in no component.
    pub fn components(&self) -> Vec<Vec<NodeId>> {
        let n = self.base.num_nodes();
        let mut seen = vec![false; n];
        let mut comps: Vec<Vec<NodeId>> = Vec::new();
        for start in self.base.nodes() {
            if seen[start.index()] || !self.is_node_alive(start) {
                continue;
            }
            let mut comp = Vec::new();
            let mut q = VecDeque::new();
            seen[start.index()] = true;
            q.push_back(start);
            while let Some(u) = q.pop_front() {
                comp.push(u);
                for &c in self.base.out_channels(u) {
                    if !self.channel_alive[c.index()] {
                        continue;
                    }
                    let v = self.base.channel(c).dst;
                    if !seen[v.index()] && self.is_node_alive(v) {
                        seen[v.index()] = true;
                        q.push_back(v);
                    }
                }
            }
            comp.sort_unstable();
            comps.push(comp);
        }
        comps.sort_by_key(|c| (std::cmp::Reverse(c.len()), c[0]));
        comps
    }

    /// The largest surviving component (ties by smallest member id);
    /// empty when nothing survived.
    pub fn largest_component(&self) -> Vec<NodeId> {
        self.components().into_iter().next().unwrap_or_default()
    }

    /// True when every surviving node can reach every other surviving node.
    pub fn is_connected(&self) -> bool {
        self.components().len() <= 1
    }

    /// Materializes the surviving subgraph as a [`Topology`].
    ///
    /// Node ids are **preserved**: every base node is re-added in order
    /// (dead ones become isolated), and only surviving links — between two
    /// surviving nodes — are re-linked, in base link order. Channel ids are
    /// recompacted; the returned map gives `base channel id → masked
    /// channel id` (`None` for dead channels).
    pub fn masked_topology(&self) -> (Topology, Vec<Option<ChannelId>>) {
        let mut b = Topology::builder();
        for n in self.base.nodes() {
            match self.base.kind(n) {
                NodeKind::Switch => b.add_switch(),
                NodeKind::Processor => b.add_processor(),
            };
        }
        let mut map: Vec<Option<ChannelId>> = vec![None; self.base.num_channels()];
        let mut next = 0u32;
        for i in (0..self.base.num_channels()).step_by(2) {
            let fwd = ChannelId(i as u32);
            let ch = self.base.channel(fwd);
            if !self.channel_alive[i] || !self.is_node_alive(ch.src) || !self.is_node_alive(ch.dst)
            {
                continue;
            }
            b.link(ch.src, ch.dst).expect("base link is valid");
            map[i] = Some(ChannelId(next));
            map[i + 1] = Some(ChannelId(next + 1));
            next += 2;
        }
        (b.build(), map)
    }

    /// BFS distances over the surviving subgraph (dead/unreachable nodes
    /// get [`algo::UNREACHABLE`]).
    pub fn distances_from(&self, source: NodeId) -> Vec<u32> {
        let mut dist = vec![algo::UNREACHABLE; self.base.num_nodes()];
        if !self.is_node_alive(source) {
            return dist;
        }
        let mut q = VecDeque::new();
        dist[source.index()] = 0;
        q.push_back(source);
        while let Some(u) = q.pop_front() {
            let du = dist[u.index()];
            for &c in self.base.out_channels(u) {
                if !self.channel_alive[c.index()] {
                    continue;
                }
                let v = self.base.channel(c).dst;
                if dist[v.index()] == algo::UNREACHABLE && self.is_node_alive(v) {
                    dist[v.index()] = du + 1;
                    q.push_back(v);
                }
            }
        }
        dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// s0 - s1 - s2 in a line, with processors p3@s0, p4@s1, p5@s2.
    fn line3() -> Topology {
        let mut b = Topology::builder();
        let s: Vec<NodeId> = (0..3).map(|_| b.add_switch()).collect();
        b.link(s[0], s[1]).unwrap();
        b.link(s[1], s[2]).unwrap();
        for &sw in &s {
            let p = b.add_processor();
            b.link(p, sw).unwrap();
        }
        b.build()
    }

    #[test]
    fn pristine_view_is_fully_alive() {
        let t = line3();
        let d = DegradedTopology::new(&t);
        assert_eq!(d.num_alive_switches(), 3);
        assert_eq!(d.num_alive_processors(), 3);
        assert_eq!(d.num_alive_channels(), t.num_channels());
        assert!(d.is_connected());
        assert_eq!(d.components().len(), 1);
    }

    #[test]
    fn link_kill_splits_components() {
        let t = line3();
        let mut d = DegradedTopology::new(&t);
        let c = t.channel_between(NodeId(0), NodeId(1)).unwrap();
        d.kill_link(c);
        assert!(!d.is_channel_alive(c));
        assert!(!d.is_channel_alive(t.reverse(c)));
        assert!(!d.is_connected());
        let comps = d.components();
        assert_eq!(comps.len(), 2);
        // Largest first: {s1, s2, p4, p5} then {s0, p3}.
        assert_eq!(comps[0].len(), 4);
        assert_eq!(comps[1], vec![NodeId(0), NodeId(3)]);
        assert_eq!(d.largest_component(), comps[0]);
    }

    #[test]
    fn switch_kill_strands_its_processor() {
        let t = line3();
        let mut d = DegradedTopology::new(&t);
        d.kill_switch(NodeId(1));
        assert!(!d.is_node_alive(NodeId(1)));
        assert!(!d.is_node_alive(NodeId(4)), "processor of s1 stranded");
        assert_eq!(d.num_alive_switches(), 2);
        assert_eq!(d.num_alive_processors(), 2);
        let comps = d.components();
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], vec![NodeId(0), NodeId(3)]);
    }

    #[test]
    #[should_panic(expected = "not a switch")]
    fn killing_a_processor_is_rejected() {
        let t = line3();
        DegradedTopology::new(&t).kill_switch(NodeId(3));
    }

    #[test]
    fn masked_topology_preserves_node_ids() {
        let t = line3();
        let mut d = DegradedTopology::new(&t);
        d.kill_link(t.channel_between(NodeId(1), NodeId(2)).unwrap());
        let (m, map) = d.masked_topology();
        assert_eq!(m.num_nodes(), t.num_nodes());
        for n in t.nodes() {
            assert_eq!(m.kind(n), t.kind(n), "node ids and kinds preserved");
        }
        assert_eq!(m.num_channels(), t.num_channels() - 2);
        // Surviving channels keep endpoints, under new ids.
        for c in t.channel_ids() {
            match map[c.index()] {
                Some(mc) => assert_eq!(m.channel(mc), t.channel(c)),
                None => assert!(!d.is_channel_alive(c)),
            }
        }
        // The masked topology is disconnected (s2+p5 cut off) but queryable.
        assert!(!crate::algo::is_connected(&m));
    }

    #[test]
    fn masked_topology_drops_links_of_dead_switches() {
        let t = line3();
        let mut d = DegradedTopology::new(&t);
        d.kill_switch(NodeId(0));
        let (m, _) = d.masked_topology();
        assert_eq!(m.degree(NodeId(0)), 0);
        assert_eq!(m.degree(NodeId(3)), 0, "stranded processor isolated");
        assert_eq!(m.degree(NodeId(1)), 2);
    }

    #[test]
    fn distances_respect_dead_links() {
        let t = line3();
        let mut d = DegradedTopology::new(&t);
        d.kill_link(t.channel_between(NodeId(0), NodeId(1)).unwrap());
        let dist = d.distances_from(NodeId(1));
        assert_eq!(dist[2], 1);
        assert_eq!(dist[0], algo::UNREACHABLE);
        assert_eq!(dist[3], algo::UNREACHABLE);
        assert_eq!(dist[5], 2);
    }
}
