//! Typed indices for nodes and unidirectional channels.
//!
//! Both ids are thin `u32` newtypes: networks in the paper's experiments top
//! out at a few hundred nodes and a few thousand channels, and 32-bit ids
//! keep hot simulator structures compact (see the type-size guidance in the
//! Rust performance literature).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a node (switch or processor) in a [`crate::Topology`].
///
/// The numeric value doubles as the node "ID" used by the up*/down* rule for
/// orienting cross channels between same-level switches (§3.1 of the paper).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

/// Identifier of a **unidirectional** channel.
///
/// Bidirectional links always occupy two consecutive ids `2k` / `2k + 1`,
/// and [`crate::Topology::reverse`] maps between the two directions.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ChannelId(pub u32);

impl NodeId {
    /// The node index as a `usize`, for direct vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl ChannelId {
    /// The channel index as a `usize`, for direct vector indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<u32> for ChannelId {
    fn from(v: u32) -> Self {
        ChannelId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_order_by_numeric_value() {
        assert!(NodeId(1) < NodeId(2));
        assert!(ChannelId(0) < ChannelId(10));
    }

    #[test]
    fn index_round_trips() {
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(ChannelId(9).index(), 9);
        assert_eq!(NodeId::from(3u32), NodeId(3));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(NodeId(4).to_string(), "n4");
        assert_eq!(ChannelId(12).to_string(), "c12");
    }

    #[test]
    fn ids_stay_small() {
        // Hot simulator tables store millions of these; keep them 4 bytes.
        assert_eq!(std::mem::size_of::<NodeId>(), 4);
        assert_eq!(std::mem::size_of::<ChannelId>(), 4);
        assert_eq!(std::mem::size_of::<Option<ChannelId>>(), 8);
    }
}
