#![warn(missing_docs)]

//! # netgraph — switch-based direct-network topologies
//!
//! The network model of Libeskind-Hadas–Mazzoni–Rajagopalan (IPPS 1998),
//! §3.1: an undirected graph `G = (V, E)` with `V = V1 ∪ V2` where `V1` are
//! **switches** and `V2` are **processors** (workstations). Every processor
//! is attached to exactly one switch by a bidirectional channel; switches may
//! be attached to each other. A bidirectional channel is modelled — exactly
//! as in the paper — as a *pair of unidirectional channels*, because wormhole
//! routing reserves the two directions independently.
//!
//! This crate provides:
//!
//! * the [`Topology`] data structure and its [`TopologyBuilder`],
//! * typed ids ([`NodeId`], [`ChannelId`]) so switch/processor/channel
//!   indices cannot be confused,
//! * generic graph algorithms ([`algo`]) used by the up*/down* labeling and
//!   by the experiment harnesses (BFS, components, eccentricity, diameter),
//! * topology generators ([`gen`]) for the paper's evaluation setup —
//!   switches placed on random integer-lattice points with links only
//!   between adjacent points (§4) — plus the regular topologies mentioned in
//!   §5 (meshes, tori, hypercubes) and the worked example of Figure 1.
//!
//! ```
//! use netgraph::gen::fixtures::figure1;
//!
//! let (topo, labels) = figure1();
//! assert_eq!(topo.num_switches(), 6);
//! assert_eq!(topo.num_processors(), 5);
//! topo.validate(8).unwrap();
//! assert!(labels.by_label(4).is_some());
//! ```

pub mod algo;
pub mod degraded;
pub mod gen;
pub mod ids;
pub mod topology;

pub use degraded::DegradedTopology;
pub use ids::{ChannelId, NodeId};
pub use topology::{Channel, NodeKind, Topology, TopologyBuilder, TopologyError};
