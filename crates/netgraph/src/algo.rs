//! Generic graph algorithms over [`Topology`].
//!
//! These operate on the *undirected* link structure (each link is traversed
//! in both directions); routing-constrained reachability lives in the
//! `updown` and `spam-core` crates where channel classes are known.

use crate::ids::NodeId;
use crate::topology::Topology;
use std::collections::VecDeque;

/// Sentinel distance for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Breadth-first distances (in hops) from `source` to every node.
///
/// Unreachable nodes get [`UNREACHABLE`].
pub fn bfs_distances(topo: &Topology, source: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; topo.num_nodes()];
    let mut q = VecDeque::new();
    dist[source.index()] = 0;
    q.push_back(source);
    while let Some(u) = q.pop_front() {
        let du = dist[u.index()];
        for v in topo.neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                q.push_back(v);
            }
        }
    }
    dist
}

/// BFS tree parents from `source`: `parent[source] = source`, unreachable
/// nodes map to `None`. Neighbors are explored in sorted id order, so the
/// tree is deterministic — the property the Figure 1 fixture and all seeded
/// experiments rely on.
pub fn bfs_parents(topo: &Topology, source: NodeId) -> Vec<Option<NodeId>> {
    let mut parent = vec![None; topo.num_nodes()];
    let mut q = VecDeque::new();
    parent[source.index()] = Some(source);
    q.push_back(source);
    while let Some(u) = q.pop_front() {
        for v in topo.neighbors(u) {
            if parent[v.index()].is_none() {
                parent[v.index()] = Some(u);
                q.push_back(v);
            }
        }
    }
    parent
}

/// True when every node can reach every other node.
pub fn is_connected(topo: &Topology) -> bool {
    if topo.num_nodes() == 0 {
        return true;
    }
    let dist = bfs_distances(topo, NodeId(0));
    dist.iter().all(|d| *d != UNREACHABLE)
}

/// Assigns a component index to every node; returns `(labels, count)`.
pub fn connected_components(topo: &Topology) -> (Vec<u32>, usize) {
    let mut label = vec![u32::MAX; topo.num_nodes()];
    let mut count = 0u32;
    for start in topo.nodes() {
        if label[start.index()] != u32::MAX {
            continue;
        }
        let mut q = VecDeque::new();
        label[start.index()] = count;
        q.push_back(start);
        while let Some(u) = q.pop_front() {
            for v in topo.neighbors(u) {
                if label[v.index()] == u32::MAX {
                    label[v.index()] = count;
                    q.push_back(v);
                }
            }
        }
        count += 1;
    }
    (label, count as usize)
}

/// The eccentricity of `node`: its maximum BFS distance to any reachable
/// node. Returns [`UNREACHABLE`] if some node cannot be reached.
pub fn eccentricity(topo: &Topology, node: NodeId) -> u32 {
    let dist = bfs_distances(topo, node);
    dist.into_iter().max().unwrap_or(0)
}

/// Network diameter over switches (max pairwise switch distance).
///
/// Processors hang one hop off their switch, so the full-network diameter is
/// this value plus at most 2; the switch diameter is what matters for the
/// spanning-tree depth discussion in §5.
pub fn switch_diameter(topo: &Topology) -> u32 {
    let mut best = 0;
    for s in topo.switches() {
        let dist = bfs_distances(topo, s);
        for t in topo.switches() {
            let d = dist[t.index()];
            if d != UNREACHABLE && d > best {
                best = d;
            }
        }
    }
    best
}

/// The switch with minimum eccentricity (a "center" of the network), ties
/// broken by lowest id. Used by the min-eccentricity root-selection policy.
pub fn min_eccentricity_switch(topo: &Topology) -> Option<NodeId> {
    topo.switches()
        .map(|s| (eccentricity(topo, s), s))
        .min()
        .map(|(_, s)| s)
}

/// The switch with maximum degree (ties by lowest id); candidate root.
pub fn max_degree_switch(topo: &Topology) -> Option<NodeId> {
    topo.switches()
        .map(|s| (usize::MAX - topo.degree(s), s))
        .min()
        .map(|(_, s)| s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    /// Path of `n` switches with a processor on each end switch.
    fn path(n: usize) -> Topology {
        let mut b = Topology::builder();
        let sw = b.add_switches(n);
        for w in sw.windows(2) {
            b.link(w[0], w[1]).unwrap();
        }
        let p0 = b.add_processor();
        let p1 = b.add_processor();
        b.link(p0, sw[0]).unwrap();
        b.link(p1, sw[n - 1]).unwrap();
        b.build()
    }

    #[test]
    fn bfs_distances_on_path() {
        let t = path(4);
        let d = bfs_distances(&t, NodeId(0));
        assert_eq!(&d[0..4], &[0, 1, 2, 3]);
        assert_eq!(d[4], 1); // processor on switch 0
        assert_eq!(d[5], 4); // processor on switch 3
    }

    #[test]
    fn bfs_parents_deterministic() {
        let t = path(3);
        let p = bfs_parents(&t, NodeId(0));
        assert_eq!(p[0], Some(NodeId(0)));
        assert_eq!(p[1], Some(NodeId(0)));
        assert_eq!(p[2], Some(NodeId(1)));
    }

    #[test]
    fn connectivity_and_components() {
        let t = path(3);
        assert!(is_connected(&t));
        let (_, n) = connected_components(&t);
        assert_eq!(n, 1);

        let mut b = Topology::builder();
        b.add_switch();
        b.add_switch();
        let t2 = b.build();
        assert!(!is_connected(&t2));
        let (labels, n2) = connected_components(&t2);
        assert_eq!(n2, 2);
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn eccentricity_and_diameter() {
        let t = path(5); // switches 0..4 in a line
        assert_eq!(switch_diameter(&t), 4);
        assert_eq!(eccentricity(&t, NodeId(2)), 3); // to end processors
                                                    // Center of the path is switch 2.
        assert_eq!(min_eccentricity_switch(&t), Some(NodeId(2)));
    }

    #[test]
    fn max_degree_switch_prefers_hub() {
        let mut b = Topology::builder();
        let hub = b.add_switch();
        for _ in 0..3 {
            let s = b.add_switch();
            b.link(hub, s).unwrap();
        }
        let t = b.build();
        assert_eq!(max_degree_switch(&t), Some(hub));
    }

    #[test]
    fn empty_topology_is_connected() {
        let t = Topology::builder().build();
        assert!(is_connected(&t));
    }
}
