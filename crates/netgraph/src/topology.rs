//! The switch/processor topology data structure and its builder.

use crate::ids::{ChannelId, NodeId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Whether a node is a routing switch (`V1` in the paper) or an end
/// processor / workstation (`V2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A routing switch with up to `k` ports (8 in the paper's experiments).
    Switch,
    /// A processor; always degree 1, attached to a single switch.
    Processor,
}

/// One **unidirectional** channel `src → dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Channel {
    /// Transmitting endpoint.
    pub src: NodeId,
    /// Receiving endpoint.
    pub dst: NodeId,
}

/// Errors detected while building or validating a topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A node id referenced a node that does not exist.
    NoSuchNode(NodeId),
    /// Both endpoints of a link were the same node.
    SelfLoop(NodeId),
    /// The same pair of nodes was linked twice.
    DuplicateLink(NodeId, NodeId),
    /// A processor was linked to something other than exactly one switch.
    BadProcessorAttachment(NodeId),
    /// A switch exceeded the per-switch port budget.
    TooManyPorts {
        /// The overloaded switch.
        switch: NodeId,
        /// Ports in use.
        used: usize,
        /// The configured limit.
        limit: usize,
    },
    /// The switch graph (and hence the network) is not connected.
    Disconnected,
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::NoSuchNode(n) => write!(f, "node {n} does not exist"),
            TopologyError::SelfLoop(n) => write!(f, "self-loop at node {n}"),
            TopologyError::DuplicateLink(a, b) => write!(f, "duplicate link between {a} and {b}"),
            TopologyError::BadProcessorAttachment(n) => {
                write!(f, "processor {n} must attach to exactly one switch")
            }
            TopologyError::TooManyPorts {
                switch,
                used,
                limit,
            } => write!(f, "switch {switch} uses {used} ports, limit is {limit}"),
            TopologyError::Disconnected => write!(f, "network is not connected"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// An immutable switch-based direct network.
///
/// Channels are stored flat; every bidirectional link occupies the two
/// consecutive ids `2k` (the direction added first) and `2k+1` (its
/// reverse), so [`Topology::reverse`] is a constant-time XOR.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    kinds: Vec<NodeKind>,
    channels: Vec<Channel>,
    /// Outgoing channel ids per node, sorted by destination node id — the
    /// deterministic iteration order all routing algorithms rely on.
    out: Vec<Vec<ChannelId>>,
    /// Incoming channel ids per node, sorted by source node id.
    inc: Vec<Vec<ChannelId>>,
    /// For each switch, the id of its attached processor (if any).
    attached_processor: Vec<Option<NodeId>>,
    /// For each processor, its switch.
    host_switch: Vec<Option<NodeId>>,
}

impl Topology {
    /// Starts building a topology.
    pub fn builder() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Total number of nodes (switches + processors).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.kinds
            .iter()
            .filter(|k| **k == NodeKind::Switch)
            .count()
    }

    /// Number of processors.
    pub fn num_processors(&self) -> usize {
        self.kinds
            .iter()
            .filter(|k| **k == NodeKind::Processor)
            .count()
    }

    /// Number of unidirectional channels (twice the number of links).
    #[inline]
    pub fn num_channels(&self) -> usize {
        self.channels.len()
    }

    /// The kind of `node`.
    #[inline]
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node.index()]
    }

    /// True if `node` is a switch.
    #[inline]
    pub fn is_switch(&self, node: NodeId) -> bool {
        self.kind(node) == NodeKind::Switch
    }

    /// True if `node` is a processor.
    #[inline]
    pub fn is_processor(&self, node: NodeId) -> bool {
        self.kind(node) == NodeKind::Processor
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.kinds.len() as u32).map(NodeId)
    }

    /// Iterator over switch ids.
    pub fn switches(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|n| self.is_switch(*n))
    }

    /// Iterator over processor ids.
    pub fn processors(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|n| self.is_processor(*n))
    }

    /// The unidirectional channel record for `c`.
    #[inline]
    pub fn channel(&self, c: ChannelId) -> Channel {
        self.channels[c.index()]
    }

    /// All channel ids.
    pub fn channel_ids(&self) -> impl Iterator<Item = ChannelId> + '_ {
        (0..self.channels.len() as u32).map(ChannelId)
    }

    /// The opposite direction of the same physical link.
    #[inline]
    pub fn reverse(&self, c: ChannelId) -> ChannelId {
        ChannelId(c.0 ^ 1)
    }

    /// Outgoing channels of `node`, sorted by destination id.
    #[inline]
    pub fn out_channels(&self, node: NodeId) -> &[ChannelId] {
        &self.out[node.index()]
    }

    /// Incoming channels of `node`, sorted by source id.
    #[inline]
    pub fn in_channels(&self, node: NodeId) -> &[ChannelId] {
        &self.inc[node.index()]
    }

    /// Neighbor node ids of `node` (unordered multiset view, sorted by id).
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out[node.index()].iter().map(|c| self.channel(*c).dst)
    }

    /// The outgoing channel from `src` to `dst`, if the link exists.
    pub fn channel_between(&self, src: NodeId, dst: NodeId) -> Option<ChannelId> {
        self.out[src.index()]
            .iter()
            .copied()
            .find(|c| self.channel(*c).dst == dst)
    }

    /// The processor attached to switch `s`, if any.
    pub fn processor_of(&self, s: NodeId) -> Option<NodeId> {
        self.attached_processor[s.index()]
    }

    /// The switch a processor `p` is attached to.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a processor.
    pub fn switch_of(&self, p: NodeId) -> NodeId {
        self.host_switch[p.index()].unwrap_or_else(|| panic!("{p} is not an attached processor"))
    }

    /// Degree of `node` in links (pairs of channels).
    pub fn degree(&self, node: NodeId) -> usize {
        self.out[node.index()].len()
    }

    /// Checks the structural invariants of the paper's model:
    /// processor degree exactly 1 (to a switch), per-switch port budget
    /// `max_ports`, paired channels, and connectivity.
    pub fn validate(&self, max_ports: usize) -> Result<(), TopologyError> {
        for n in self.nodes() {
            match self.kind(n) {
                NodeKind::Processor => {
                    let ok = self.degree(n) == 1
                        && self.neighbors(n).all(|m| self.kind(m) == NodeKind::Switch);
                    if !ok {
                        return Err(TopologyError::BadProcessorAttachment(n));
                    }
                }
                NodeKind::Switch => {
                    if self.degree(n) > max_ports {
                        return Err(TopologyError::TooManyPorts {
                            switch: n,
                            used: self.degree(n),
                            limit: max_ports,
                        });
                    }
                }
            }
        }
        for c in self.channel_ids() {
            let ch = self.channel(c);
            let rev = self.channel(self.reverse(c));
            debug_assert_eq!((rev.src, rev.dst), (ch.dst, ch.src));
            if ch.src == ch.dst {
                return Err(TopologyError::SelfLoop(ch.src));
            }
        }
        if self.num_nodes() > 0 && !crate::algo::is_connected(self) {
            return Err(TopologyError::Disconnected);
        }
        Ok(())
    }
}

/// Incremental construction of a [`Topology`].
///
/// ```
/// use netgraph::{Topology, NodeKind};
///
/// let mut b = Topology::builder();
/// let s0 = b.add_switch();
/// let s1 = b.add_switch();
/// let p0 = b.add_processor();
/// b.link(s0, s1).unwrap();
/// b.link(p0, s0).unwrap();
/// let t = b.build();
/// assert_eq!(t.kind(s0), NodeKind::Switch);
/// assert_eq!(t.switch_of(p0), s0);
/// t.validate(8).unwrap();
/// ```
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    kinds: Vec<NodeKind>,
    links: Vec<(NodeId, NodeId)>,
}

impl TopologyBuilder {
    /// Adds a switch and returns its id.
    pub fn add_switch(&mut self) -> NodeId {
        self.kinds.push(NodeKind::Switch);
        NodeId(self.kinds.len() as u32 - 1)
    }

    /// Adds a processor and returns its id.
    pub fn add_processor(&mut self) -> NodeId {
        self.kinds.push(NodeKind::Processor);
        NodeId(self.kinds.len() as u32 - 1)
    }

    /// Adds `n` switches, returning their ids.
    pub fn add_switches(&mut self, n: usize) -> Vec<NodeId> {
        (0..n).map(|_| self.add_switch()).collect()
    }

    /// Number of nodes added so far.
    pub fn num_nodes(&self) -> usize {
        self.kinds.len()
    }

    /// Connects `a` and `b` with a bidirectional link (two channels).
    pub fn link(&mut self, a: NodeId, b: NodeId) -> Result<(), TopologyError> {
        if a.index() >= self.kinds.len() {
            return Err(TopologyError::NoSuchNode(a));
        }
        if b.index() >= self.kinds.len() {
            return Err(TopologyError::NoSuchNode(b));
        }
        if a == b {
            return Err(TopologyError::SelfLoop(a));
        }
        if self
            .links
            .iter()
            .any(|&(x, y)| (x, y) == (a, b) || (x, y) == (b, a))
        {
            return Err(TopologyError::DuplicateLink(a, b));
        }
        self.links.push((a, b));
        Ok(())
    }

    /// True if `a`–`b` are already linked.
    pub fn linked(&self, a: NodeId, b: NodeId) -> bool {
        self.links
            .iter()
            .any(|&(x, y)| (x, y) == (a, b) || (x, y) == (b, a))
    }

    /// Number of links incident to `n` so far (port usage).
    pub fn degree(&self, n: NodeId) -> usize {
        self.links
            .iter()
            .filter(|&&(a, b)| a == n || b == n)
            .count()
    }

    /// Finalizes the topology. Channel ids are assigned in link-insertion
    /// order (forward direction even, reverse odd); adjacency lists are
    /// sorted by peer id for deterministic routing iteration.
    pub fn build(self) -> Topology {
        let n = self.kinds.len();
        let mut channels = Vec::with_capacity(self.links.len() * 2);
        let mut out: Vec<Vec<ChannelId>> = vec![Vec::new(); n];
        let mut inc: Vec<Vec<ChannelId>> = vec![Vec::new(); n];
        for &(a, b) in &self.links {
            let fwd = ChannelId(channels.len() as u32);
            channels.push(Channel { src: a, dst: b });
            let rev = ChannelId(channels.len() as u32);
            channels.push(Channel { src: b, dst: a });
            out[a.index()].push(fwd);
            inc[b.index()].push(fwd);
            out[b.index()].push(rev);
            inc[a.index()].push(rev);
        }
        for (node, lst) in out.iter_mut().enumerate() {
            lst.sort_by_key(|c| (channels[c.index()].dst, *c));
            debug_assert!(lst
                .iter()
                .all(|c| channels[c.index()].src == NodeId(node as u32)));
        }
        for (node, lst) in inc.iter_mut().enumerate() {
            lst.sort_by_key(|c| (channels[c.index()].src, *c));
            debug_assert!(lst
                .iter()
                .all(|c| channels[c.index()].dst == NodeId(node as u32)));
        }
        let mut attached_processor = vec![None; n];
        let mut host_switch = vec![None; n];
        for &(a, b) in &self.links {
            let pair = [(a, b), (b, a)];
            for (x, y) in pair {
                if self.kinds[x.index()] == NodeKind::Processor
                    && self.kinds[y.index()] == NodeKind::Switch
                {
                    host_switch[x.index()] = Some(y);
                    attached_processor[y.index()] = Some(x);
                }
            }
        }
        Topology {
            kinds: self.kinds,
            channels,
            out,
            inc,
            attached_processor,
            host_switch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Topology {
        // s0 - s1 - s2, processors p3@s0, p4@s2
        let mut b = Topology::builder();
        let s0 = b.add_switch();
        let s1 = b.add_switch();
        let s2 = b.add_switch();
        let p3 = b.add_processor();
        let p4 = b.add_processor();
        b.link(s0, s1).unwrap();
        b.link(s1, s2).unwrap();
        b.link(p3, s0).unwrap();
        b.link(s2, p4).unwrap();
        b.build()
    }

    #[test]
    fn counts_and_kinds() {
        let t = tiny();
        assert_eq!(t.num_nodes(), 5);
        assert_eq!(t.num_switches(), 3);
        assert_eq!(t.num_processors(), 2);
        assert_eq!(t.num_channels(), 8);
        assert!(t.is_switch(NodeId(1)));
        assert!(t.is_processor(NodeId(3)));
    }

    #[test]
    fn reverse_pairs_channels() {
        let t = tiny();
        for c in t.channel_ids() {
            let r = t.reverse(c);
            assert_ne!(c, r);
            assert_eq!(t.reverse(r), c);
            let ch = t.channel(c);
            let rv = t.channel(r);
            assert_eq!((ch.src, ch.dst), (rv.dst, rv.src));
        }
    }

    #[test]
    fn adjacency_is_sorted_and_consistent() {
        let t = tiny();
        for n in t.nodes() {
            let dsts: Vec<_> = t
                .out_channels(n)
                .iter()
                .map(|c| t.channel(*c).dst)
                .collect();
            let mut sorted = dsts.clone();
            sorted.sort();
            assert_eq!(dsts, sorted, "out channels of {n} sorted by dst");
            for c in t.out_channels(n) {
                assert_eq!(t.channel(*c).src, n);
            }
            for c in t.in_channels(n) {
                assert_eq!(t.channel(*c).dst, n);
            }
        }
    }

    #[test]
    fn processor_switch_mapping() {
        let t = tiny();
        assert_eq!(t.switch_of(NodeId(3)), NodeId(0));
        assert_eq!(t.switch_of(NodeId(4)), NodeId(2));
        assert_eq!(t.processor_of(NodeId(0)), Some(NodeId(3)));
        assert_eq!(t.processor_of(NodeId(1)), None);
    }

    #[test]
    fn channel_between_finds_direction() {
        let t = tiny();
        let c = t.channel_between(NodeId(0), NodeId(1)).unwrap();
        assert_eq!(t.channel(c).src, NodeId(0));
        assert_eq!(t.channel(c).dst, NodeId(1));
        assert!(t.channel_between(NodeId(0), NodeId(2)).is_none());
    }

    #[test]
    fn validate_accepts_wellformed() {
        tiny().validate(8).unwrap();
    }

    #[test]
    fn validate_rejects_overloaded_switch() {
        let mut b = Topology::builder();
        let hub = b.add_switch();
        for _ in 0..3 {
            let s = b.add_switch();
            b.link(hub, s).unwrap();
        }
        let p = b.add_processor();
        b.link(p, hub).unwrap();
        let t = b.build();
        assert!(matches!(
            t.validate(2),
            Err(TopologyError::TooManyPorts { .. })
        ));
        t.validate(4).unwrap();
    }

    #[test]
    fn validate_rejects_disconnected() {
        let mut b = Topology::builder();
        let s0 = b.add_switch();
        let _s1 = b.add_switch(); // isolated
        let p = b.add_processor();
        b.link(p, s0).unwrap();
        let t = b.build();
        assert_eq!(t.validate(8), Err(TopologyError::Disconnected));
    }

    #[test]
    fn validate_rejects_processor_to_processor() {
        let mut b = Topology::builder();
        let p0 = b.add_processor();
        let p1 = b.add_processor();
        b.link(p0, p1).unwrap();
        let t = b.build();
        assert!(matches!(
            t.validate(8),
            Err(TopologyError::BadProcessorAttachment(_))
        ));
    }

    #[test]
    fn builder_rejects_duplicates_and_self_loops() {
        let mut b = Topology::builder();
        let s0 = b.add_switch();
        let s1 = b.add_switch();
        b.link(s0, s1).unwrap();
        assert_eq!(b.link(s1, s0), Err(TopologyError::DuplicateLink(s1, s0)));
        assert_eq!(b.link(s0, s0), Err(TopologyError::SelfLoop(s0)));
        assert_eq!(
            b.link(s0, NodeId(99)),
            Err(TopologyError::NoSuchNode(NodeId(99)))
        );
        assert!(b.linked(s0, s1));
        assert_eq!(b.degree(s0), 1);
    }
}
