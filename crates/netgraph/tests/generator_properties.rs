//! Property tests for the topology generators: every instance from every
//! strategy must satisfy the §4 structural constraints.

use netgraph::algo;
use netgraph::gen::lattice::{IrregularConfig, LatticeStrategy};
use netgraph::gen::regular::{hypercube, mesh2d, ring, torus2d};
use netgraph::{NodeKind, Topology};
use proptest::prelude::*;

fn assert_paper_constraints(t: &Topology) {
    // Validity: port budget 8, processor attachment, connectivity.
    t.validate(8).unwrap();
    // One processor per switch.
    assert_eq!(t.num_switches(), t.num_processors());
    for s in t.switches() {
        assert!(t.processor_of(s).is_some());
        // ≤ 4 switch-to-switch links (lattice adjacency).
        let sw_links = t.neighbors(s).filter(|n| t.is_switch(*n)).count();
        assert!(sw_links <= 4);
    }
    // Channel pairing is involutive and direction-reversing.
    for c in t.channel_ids() {
        let r = t.reverse(c);
        assert_eq!(t.reverse(r), c);
        assert_eq!(t.channel(c).src, t.channel(r).dst);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn growth_strategy_always_satisfies_section4(
        switches in 1usize..96,
        seed in any::<u64>(),
    ) {
        let t = IrregularConfig::with_switches(switches).generate(seed);
        prop_assert_eq!(t.num_switches(), switches);
        assert_paper_constraints(&t);
    }

    #[test]
    fn uniform_retry_strategy_always_satisfies_section4(
        switches in 2usize..48,
        seed in any::<u64>(),
    ) {
        let t = IrregularConfig::with_switches(switches)
            .strategy(LatticeStrategy::UniformRetry)
            .generate(seed);
        prop_assert_eq!(t.num_switches(), switches);
        assert_paper_constraints(&t);
    }

    #[test]
    fn generators_are_pure_functions_of_seed(
        switches in 2usize..40,
        seed in any::<u64>(),
    ) {
        let cfg = IrregularConfig::with_switches(switches);
        let a = cfg.generate(seed);
        let b = cfg.generate(seed);
        prop_assert_eq!(a.num_channels(), b.num_channels());
        for c in a.channel_ids() {
            prop_assert_eq!(a.channel(c), b.channel(c));
        }
    }

    #[test]
    fn bfs_distance_is_a_metric_sample(
        switches in 3usize..32,
        seed in any::<u64>(),
    ) {
        let t = IrregularConfig::with_switches(switches).generate(seed);
        // Triangle inequality through a random intermediate node, and
        // symmetry (undirected links).
        let nodes: Vec<_> = t.nodes().collect();
        let a = nodes[seed as usize % nodes.len()];
        let da = algo::bfs_distances(&t, a);
        for &b in nodes.iter().take(8) {
            let db = algo::bfs_distances(&t, b);
            prop_assert_eq!(da[b.index()], db[a.index()], "symmetry");
            for &m in nodes.iter().take(8) {
                prop_assert!(da[b.index()] <= da[m.index()] + db[m.index()]);
            }
        }
    }
}

#[test]
fn regular_generators_match_known_formulas() {
    for (rows, cols) in [(2usize, 2usize), (3, 5), (6, 6)] {
        let t = mesh2d(rows, cols);
        let links = rows * (cols - 1) + cols * (rows - 1) + rows * cols;
        assert_eq!(t.num_channels(), 2 * links);
    }
    for n in [3usize, 5, 9] {
        let t = ring(n);
        assert_eq!(t.num_channels(), 2 * (n + n));
        assert_eq!(algo::switch_diameter(&t), (n / 2) as u32);
    }
    for (r, c) in [(3usize, 3usize), (4, 6)] {
        let t = torus2d(r, c);
        assert_eq!(t.num_channels(), 2 * (2 * r * c + r * c));
    }
    for d in [1u32, 3, 5] {
        let t = hypercube(d);
        let n = 1usize << d;
        assert_eq!(t.num_channels(), 2 * (n * d as usize / 2 + n));
        assert_eq!(algo::switch_diameter(&t), d);
    }
}

#[test]
fn node_kinds_partition_the_network() {
    let t = IrregularConfig::with_switches(20).generate(4);
    let mut switches = 0;
    let mut procs = 0;
    for n in t.nodes() {
        match t.kind(n) {
            NodeKind::Switch => switches += 1,
            NodeKind::Processor => procs += 1,
        }
    }
    assert_eq!(switches + procs, t.num_nodes());
    assert_eq!(switches, t.switches().count());
    assert_eq!(procs, t.processors().count());
}
