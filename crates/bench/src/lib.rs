#![warn(missing_docs)]

//! # spam-bench — figure/table regeneration harness
//!
//! One module per experiment in DESIGN.md's index; each exposes a pure
//! `run_*` function returning data rows, consumed both by the CLI binaries
//! (`fig2`, `fig3`, `broadcast_table`, `ablation_*`) and by the criterion
//! benchmarks. Replications follow the paper's §4 protocol (95 % CI within
//! 1 % of the mean) via [`simstats::PrecisionController`], fanned across
//! threads by [`sweep`].

pub mod ablations;
pub mod broadcast;
pub mod congestion;
pub mod fault_sweep;
pub mod fig2;
pub mod fig3;
pub mod latency_anatomy;
pub mod reconfig_sweep;
pub mod report;
pub mod scenario_corpus;
pub mod serve_bench;
pub mod snapshot_bench;
pub mod sweep;
pub mod throughput;

use netgraph::gen::lattice::IrregularConfig;
use netgraph::Topology;
use updown::{RootSelection, UpDownLabeling};

/// Builds the §4 network: `switches` 8-port switches on a random integer
/// lattice, one processor each. "`n`-node network" in the paper counts
/// processors (= switches).
pub fn paper_network(switches: usize, seed: u64) -> Topology {
    IrregularConfig::with_switches(switches).generate(seed)
}

/// The default labeling used by the experiments (deterministic root;
/// ablation A varies this).
pub fn paper_labeling(topo: &Topology) -> UpDownLabeling {
    UpDownLabeling::build(topo, RootSelection::LowestId)
}

/// Splits a u64 seed stream deterministically (SplitMix64).
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    let mut x = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A finished data point: the quantity the paper plots plus its CI.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PointSummary {
    /// Independent-variable label (destination count, arrival rate, ...).
    pub x: f64,
    /// Mean of the measured quantity (µs for every figure here).
    pub mean: f64,
    /// 95 % CI half-width.
    pub ci_half_width: f64,
    /// Replications used.
    pub reps: u64,
    /// Whether the 1 % precision target was met within the budget.
    pub target_met: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_network_matches_section4() {
        let t = paper_network(64, 9);
        assert_eq!(t.num_switches(), 64);
        assert_eq!(t.num_processors(), 64);
        t.validate(8).unwrap();
    }

    #[test]
    fn split_seed_streams_differ() {
        let a = split_seed(42, 0);
        let b = split_seed(42, 1);
        let c = split_seed(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(split_seed(42, 0), a, "deterministic");
    }
}
