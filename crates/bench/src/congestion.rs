//! The congestion-profile report: *where* each routing arm heats the
//! fabric, per workload and fault regime.
//!
//! Each cell of the `(workload, arm, regime)` grid runs with telemetry
//! enabled, folds the per-channel accumulators (wire-busy ns, all-or-
//! nothing acquisitions, exact OCRQ-depth time integrals, header stalls)
//! onto the generator's lattice layout, and reports the resulting
//! [`CongestionHeatmap`] — both as totals (SPAM vs software multicast
//! aggregate heat) and as spatial concentration (the share of heat the
//! hottest cells carry, the localization headline).
//!
//! Workloads:
//! * `hotspot` — unicasts converging on 2 hot processors;
//! * `incast` — every client streaming at 2 servers;
//! * `storm` — a broadcast storm (every processor multicasts to all).
//!
//! Regimes mirror the latency-anatomy grid:
//! * `fault_free` — the pristine fabric;
//! * `links20` — 20 % of links statically dead;
//! * `storm20` — a live mid-run storm killing 20 % of links (SPAM only:
//!   live reconfiguration is the hardware arm's regime by construction).

use crate::report::BenchJson;
use crate::PointSummary;
use spam_metrics::{CongestionHeatmap, HeatKey};
use spam_scenario::{
    ArrivalSpec, EngineSpec, FaultModelSpec, FaultsSpec, PolicySpec, RoutingSpec, ScenarioSpec,
    StrategySpec, TopologySpec, TrafficSpec,
};
use std::fmt::Write as _;
use std::path::Path;

/// Workload names, in report order.
pub const WORKLOADS: [&str; 3] = ["hotspot", "incast", "storm"];

/// Regime names; also the `x` axis of the machine-readable record.
pub const REGIMES: [&str; 3] = ["fault_free", "links20", "storm20"];

/// Telemetry cadence used by every cell, ns.
pub const SAMPLE_EVERY_NS: u64 = 1_000;

/// How many hottest lattice cells the concentration headline counts.
pub const TOP_K: usize = 4;

/// One `(workload, arm, regime)` cell of the report.
#[derive(Debug, Clone)]
pub struct CongestionCell {
    /// Workload: `hotspot`, `incast`, or `storm`.
    pub workload: &'static str,
    /// Routing arm: `spam` or `software`.
    pub arm: &'static str,
    /// Fault regime: `fault_free`, `links20`, or `storm20`.
    pub regime: &'static str,
    /// Delivered engine messages over every replication.
    pub messages: u64,
    /// Gauge samples recorded (ring-capped) over every replication.
    pub samples: u64,
    /// Accumulators folded onto the lattice.
    pub heatmap: CongestionHeatmap,
}

impl CongestionCell {
    /// The fraction of `key`'s grand total carried by the [`TOP_K`]
    /// hottest lattice cells.
    pub fn concentration(&self, key: HeatKey) -> f64 {
        self.heatmap.top_share(TOP_K, key)
    }
}

fn arm_routing(arm: &str) -> RoutingSpec {
    match arm {
        "spam" => RoutingSpec::Spam {
            policy: PolicySpec::MinResidualDistance,
        },
        "software" => RoutingSpec::SoftwareMulticast,
        other => unreachable!("unknown arm {other}"),
    }
}

fn regime_faults(regime: &str, seed: u64) -> FaultsSpec {
    match regime {
        "fault_free" => FaultsSpec::None,
        "links20" => FaultsSpec::Static {
            model: FaultModelSpec::IidLinks { rate: 0.20 },
            seed,
        },
        "storm20" => FaultsSpec::Storm {
            model: FaultModelSpec::IidLinks { rate: 0.20 },
            seed,
            window_start_us: 20,
            window_end_us: 120,
            bursts: 3,
        },
        other => unreachable!("unknown regime {other}"),
    }
}

fn workload_traffic(workload: &str, messages: usize) -> TrafficSpec {
    match workload {
        "hotspot" => TrafficSpec::Hotspot {
            hot_nodes: 2,
            hot_fraction: 0.7,
            rate_per_node_per_us: 0.02,
            len: 64,
            messages,
            arrival: ArrivalSpec::Poisson,
        },
        "incast" => TrafficSpec::Incast {
            servers: 2,
            rate_per_client_per_us: 0.02,
            len: 64,
            messages,
            arrival: ArrivalSpec::Poisson,
        },
        "storm" => TrafficSpec::BroadcastStorm {
            len: 32,
            stagger_ns: 200,
        },
        other => unreachable!("unknown workload {other}"),
    }
}

fn spec_for(
    workload: &str,
    arm: &str,
    regime: &str,
    switches: usize,
    messages: usize,
) -> ScenarioSpec {
    ScenarioSpec {
        name: format!("congestion-{workload}-{arm}-{regime}"),
        description: "congestion-profile workload (telemetry enabled)".to_string(),
        topology: TopologySpec {
            switches,
            seed: 9,
            side: None,
            strategy: StrategySpec::ConnectedGrowth,
            ports: 8,
        },
        routing: arm_routing(arm),
        traffic: workload_traffic(workload, messages),
        faults: regime_faults(regime, 0x5071),
        engine: EngineSpec {
            metrics_every_ns: Some(SAMPLE_EVERY_NS),
            ..EngineSpec::default()
        },
        seed: 23,
        replications: 1,
        horizon_us: None,
    }
}

/// The `(arm, regime)` half-grid each workload runs: both arms on
/// `fault_free` and `links20`, SPAM alone on the live `storm20`.
pub const ARMS: [(&str, &str); 5] = [
    ("spam", "fault_free"),
    ("software", "fault_free"),
    ("spam", "links20"),
    ("software", "links20"),
    ("spam", "storm20"),
];

/// Runs the full grid ([`WORKLOADS`] × [`ARMS`]). `quick` shrinks the
/// network and message count for CI. Each cell is a single deterministic
/// replication — a heatmap is a *spatial* profile of one fabric, and
/// replications regenerate the topology (`rep_seed`), so cross-rep
/// folding would smear unrelated lattices together. Panics on any
/// scenario error — every cell is a composition the spec validator
/// accepts, so a failure is a bug, not a figure.
pub fn run_congestion_profile(quick: bool) -> Vec<CongestionCell> {
    let (switches, messages) = if quick { (32, 120) } else { (64, 400) };
    let mut cells = Vec::new();
    for workload in WORKLOADS {
        for (arm, regime) in ARMS {
            let spec = spec_for(workload, arm, regime, switches, messages);
            let (out, topo, layout) = spam_scenario::run_once_full(&spec, 0, None)
                .unwrap_or_else(|e| panic!("{}: {e:?}", spec.name));
            let m = out.metrics.as_ref().expect("telemetry enabled");
            cells.push(CongestionCell {
                workload,
                arm,
                regime,
                messages: out.messages.iter().filter(|msg| msg.is_complete()).count() as u64,
                samples: m.series.len() as u64,
                heatmap: CongestionHeatmap::build(&topo, &layout, &m.channels),
            });
        }
    }
    cells
}

/// Writes the per-cell summary as CSV:
/// `workload,arm,regime,messages,samples,busy_ns,acquisitions,ocrq_wait_ns,header_stalls,top4_busy_share,top4_ocrq_share`.
pub fn write_congestion_csv(path: &Path, cells: &[CongestionCell]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut body = String::from(
        "workload,arm,regime,messages,samples,busy_ns,acquisitions,\
         ocrq_wait_ns,header_stalls,top4_busy_share,top4_ocrq_share\n",
    );
    for c in cells {
        let t = c.heatmap.totals();
        writeln!(
            body,
            "{},{},{},{},{},{},{},{},{},{:.4},{:.4}",
            c.workload,
            c.arm,
            c.regime,
            c.messages,
            c.samples,
            t.busy_ns,
            t.acquisitions,
            t.ocrq_wait_ns,
            t.header_stalls,
            c.concentration(HeatKey::BusyNs),
            c.concentration(HeatKey::OcrqWaitNs),
        )
        .expect("string write");
    }
    std::fs::write(path, body)
}

/// Writes every cell's full heatmap as one JSON document:
/// `{"schema": 1, "cells": [{workload, arm, regime, heatmap: {...}}]}`.
pub fn write_heatmaps_json(path: &Path, cells: &[CongestionCell]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut body = String::from("{\n  \"schema\": 1,\n  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let comma = if i + 1 < cells.len() { "," } else { "" };
        writeln!(
            body,
            "    {{\"workload\": \"{}\", \"arm\": \"{}\", \"regime\": \"{}\",\n     \"heatmap\": {}}}{comma}",
            c.workload,
            c.arm,
            c.regime,
            c.heatmap.to_json().trim_end()
        )
        .expect("string write");
    }
    body.push_str("  ]\n}\n");
    std::fs::write(path, body)
}

/// The machine-readable record: per `(workload, arm)`, one series of
/// OCRQ-wait concentration and one of total wire-busy µs, `x` = regime
/// index in [`REGIMES`] order, `reps` = delivered messages.
pub fn congestion_bench_json(cells: &[CongestionCell], quick: bool) -> BenchJson {
    let regime_x = |regime: &str| REGIMES.iter().position(|r| *r == regime).unwrap() as f64;
    let mut series: Vec<(String, Vec<PointSummary>)> = Vec::new();
    for workload in WORKLOADS {
        for arm in ["spam", "software"] {
            let mine: Vec<&CongestionCell> = cells
                .iter()
                .filter(|c| c.workload == workload && c.arm == arm)
                .collect();
            if mine.is_empty() {
                continue;
            }
            let point = |c: &CongestionCell, mean: f64| PointSummary {
                x: regime_x(c.regime),
                mean,
                ci_half_width: 0.0,
                reps: c.messages,
                target_met: true,
            };
            series.push((
                format!("{workload}@{arm}:top4_ocrq_share"),
                mine.iter()
                    .map(|c| point(c, c.concentration(HeatKey::OcrqWaitNs)))
                    .collect(),
            ));
            series.push((
                format!("{workload}@{arm}:busy_us_total"),
                mine.iter()
                    .map(|c| point(c, c.heatmap.totals().busy_ns as f64 / 1_000.0))
                    .collect(),
            ));
        }
    }
    BenchJson {
        name: "congestion_profile".to_string(),
        params: vec![
            ("quick".to_string(), quick.to_string()),
            ("workloads".to_string(), WORKLOADS.join(",")),
            ("regimes".to_string(), REGIMES.join(",")),
            ("sample_every_ns".to_string(), SAMPLE_EVERY_NS.to_string()),
            ("top_k".to_string(), TOP_K.to_string()),
        ],
        series,
    }
}

/// Renders the summary table for the terminal.
pub fn congestion_table(cells: &[CongestionCell]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "  {:<8} {:<10} {:<11} {:>6} | {:>12} {:>12} {:>8} | {:>9} {:>9}",
        "workload",
        "arm",
        "regime",
        "msgs",
        "busy µs",
        "ocrq-wait µs",
        "stalls",
        "top4 busy",
        "top4 ocrq"
    )
    .unwrap();
    for c in cells {
        let t = c.heatmap.totals();
        writeln!(
            out,
            "  {:<8} {:<10} {:<11} {:>6} | {:>12.1} {:>12.1} {:>8} | {:>8.1}% {:>8.1}%",
            c.workload,
            c.arm,
            c.regime,
            c.messages,
            t.busy_ns as f64 / 1_000.0,
            t.ocrq_wait_ns as f64 / 1_000.0,
            t.header_stalls,
            c.concentration(HeatKey::BusyNs) * 100.0,
            c.concentration(HeatKey::OcrqWaitNs) * 100.0,
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_localizes_and_renders() {
        let cells = run_congestion_profile(true);
        assert_eq!(cells.len(), WORKLOADS.len() * ARMS.len());
        for c in &cells {
            let t = c.heatmap.totals();
            assert!(
                t.busy_ns > 0,
                "{}/{}/{}: no wire traffic",
                c.workload,
                c.arm,
                c.regime
            );
            assert!(t.acquisitions > 0);
            assert!(
                c.messages > 0,
                "{}/{}/{}: nothing delivered",
                c.workload,
                c.arm,
                c.regime
            );
            assert!(
                c.samples > 0,
                "{}/{}/{}: sampler never fired",
                c.workload,
                c.arm,
                c.regime
            );
            let share = c.concentration(HeatKey::BusyNs);
            assert!(share > 0.0 && share <= 1.0);
        }
        let cell = |w: &str, a: &str, r: &str| {
            cells
                .iter()
                .find(|c| c.workload == w && c.arm == a && c.regime == r)
                .unwrap()
        };

        // The comparison the bench exists to make: on the all-multicast
        // broadcast storm, software multicast expands every multicast
        // into a unicast cascade that re-crosses the fabric once per
        // forwarding stage — strictly more wire-busy time than SPAM's
        // single replicated worms.
        let spam = cell("storm", "spam", "fault_free").heatmap.totals();
        let soft = cell("storm", "software", "fault_free").heatmap.totals();
        assert!(
            soft.busy_ns > spam.busy_ns,
            "software storm heat ({}) should exceed SPAM's ({})",
            soft.busy_ns,
            spam.busy_ns
        );

        // Localization: hotspot/incast traffic converges on 2 hot
        // processors, so the hottest TOP_K lattice cells must carry a
        // visibly outsized share of the contention integral (a uniform
        // spread over ~32 occupied cells would give TOP_K/32 ≈ 12 %).
        for w in ["hotspot", "incast"] {
            let c = cell(w, "spam", "fault_free");
            let share = c.concentration(HeatKey::OcrqWaitNs);
            assert!(
                share > 0.25,
                "{w}: top-{TOP_K} cells carry only {:.1}% of OCRQ wait",
                share * 100.0
            );
        }

        // Renders.
        let csv_dir = std::env::temp_dir().join("spam_congestion_test");
        let csv = csv_dir.join("congestion_profile.csv");
        write_congestion_csv(&csv, &cells).unwrap();
        let body = std::fs::read_to_string(&csv).unwrap();
        assert!(body.starts_with("workload,arm,regime,"));
        assert_eq!(body.lines().count(), 1 + cells.len());
        let heat = csv_dir.join("congestion_heatmaps.json");
        write_heatmaps_json(&heat, &cells).unwrap();
        let hbody = std::fs::read_to_string(&heat).unwrap();
        assert_eq!(hbody.matches("\"workload\":").count(), cells.len());
        assert_eq!(hbody.matches('{').count(), hbody.matches('}').count());
        assert_eq!(hbody.matches('[').count(), hbody.matches(']').count());
        let bench = congestion_bench_json(&cells, true);
        assert_eq!(bench.series.len(), WORKLOADS.len() * 2 * 2);
        let table = congestion_table(&cells);
        assert!(table.contains("hotspot"));
        assert!(table.contains("storm20"));
        std::fs::remove_dir_all(&csv_dir).ok();
    }
}
