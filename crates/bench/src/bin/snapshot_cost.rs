//! Measures checkpoint/restore cost over the paper's network sizes and
//! writes `BENCH_snapshot.json` (plus a `results/` copy).
//!
//! ```text
//! cargo run -p spam-bench --bin snapshot_cost --release
//! cargo run -p spam-bench --bin snapshot_cost --release -- --quick
//! ```

use spam_bench::report;
use spam_bench::snapshot_bench::{measure, snapshot_bench_json};
use std::path::Path;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let sizes: &[usize] = if quick {
        &[64, 128]
    } else {
        &[64, 128, 256, 512, 1024]
    };
    let seed = 1998;

    println!(
        "  {:>8} {:>12} {:>12} {:>16} {:>12}",
        "switches", "checkpoints", "mean KiB", "write µs/ckpt", "restore µs"
    );
    let mut costs = Vec::with_capacity(sizes.len());
    for &n in sizes {
        let t0 = std::time::Instant::now();
        let c = measure(n, seed);
        println!(
            "  {:>8} {:>12} {:>12.1} {:>16.1} {:>12.1}   ({:.1?})",
            c.switches,
            c.checkpoints,
            c.mean_bytes / 1024.0,
            c.write_us,
            c.restore_us,
            t0.elapsed()
        );
        costs.push(c);
    }

    let bench = snapshot_bench_json(&costs, seed);
    let path = report::write_bench_json(Path::new("results"), &bench).expect("write bench json");
    println!("-> {} (+ ./BENCH_snapshot.json)", path.display());
}
