//! Congestion-profile report: runs the `(workload, arm, regime)` grid
//! with telemetry enabled, folds every run's per-channel accumulators
//! onto the lattice, and reports where each routing arm heats the
//! fabric.
//!
//! Outputs:
//! * `results/congestion_profile.csv` — per-cell totals + concentration;
//! * `results/congestion_heatmaps.json` — every cell's full heatmap;
//! * `results/BENCH_congestion_profile.json` (+ root copy) — machine
//!   record;
//! * terminal — the summary table and the two headline heatmaps.
//!
//! Usage: `congestion_profile [--quick]`

use spam_bench::congestion::{
    congestion_bench_json, congestion_table, run_congestion_profile, write_congestion_csv,
    write_heatmaps_json,
};
use spam_metrics::HeatKey;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");

    eprintln!(
        "congestion profile: heat-mapping the (workload, arm, regime) grid ({})...",
        if quick { "quick" } else { "full" }
    );
    let cells = run_congestion_profile(quick);

    println!("Congestion profile (fabric heat per workload, arm, and fault regime):");
    println!("{}", congestion_table(&cells));

    // The two headline renderings: where a hotspot workload and an
    // incast workload park their OCRQ waiting, under SPAM.
    for workload in ["hotspot", "incast"] {
        if let Some(c) = cells
            .iter()
            .find(|c| c.workload == workload && c.arm == "spam" && c.regime == "fault_free")
        {
            println!("{workload} @ spam @ fault_free:");
            println!("{}", c.heatmap.ascii(HeatKey::OcrqWaitNs));
        }
    }

    let results = Path::new("results");
    let csv = results.join("congestion_profile.csv");
    if let Err(e) = write_congestion_csv(&csv, &cells) {
        eprintln!("error: writing {}: {e}", csv.display());
        return ExitCode::from(1);
    }
    eprintln!("wrote {}", csv.display());

    let heat = results.join("congestion_heatmaps.json");
    if let Err(e) = write_heatmaps_json(&heat, &cells) {
        eprintln!("error: writing {}: {e}", heat.display());
        return ExitCode::from(1);
    }
    eprintln!("wrote {}", heat.display());

    let bench = congestion_bench_json(&cells, quick);
    match spam_bench::report::write_bench_json(results, &bench) {
        Ok(p) => eprintln!("wrote {} (+ committed root copy)", p.display()),
        Err(e) => {
            eprintln!("error: writing bench json: {e}");
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
