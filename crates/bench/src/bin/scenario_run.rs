//! Executes a directory of declarative `*.scenario.json` scenarios —
//! the committed corpus by default — entirely from JSON: no code changes
//! per scenario.
//!
//! ```text
//! cargo run -p spam-bench --bin scenario_run --release
//! cargo run -p spam-bench --bin scenario_run --release -- --quick
//! cargo run -p spam-bench --bin scenario_run --release -- --dir my_scenarios
//! ```
//!
//! Writes one `results/scenarios/<name>.csv` per scenario, a combined
//! `results/scenario_corpus.csv`, `results/BENCH_scenario_corpus.json`,
//! and a root-level `BENCH_scenario_corpus.json` copy, and prints a
//! per-scenario summary table.

use spam_bench::report;
use spam_bench::scenario_corpus::{
    corpus_bench_json, run_corpus, write_corpus_csv, write_scenario_csv,
};
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let dir: PathBuf = match args.iter().position(|a| a == "--dir") {
        Some(i) => match args.get(i + 1) {
            Some(d) => PathBuf::from(d),
            None => {
                eprintln!("scenario_run: --dir takes a directory path");
                std::process::exit(1);
            }
        },
        None => PathBuf::from("scenarios"),
    };

    eprintln!("scenario_run: corpus {} (quick: {quick})", dir.display());
    let t0 = std::time::Instant::now();
    let results = match run_corpus(&dir, quick) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scenario_run: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "scenario_run: {} scenarios in {:.1?}",
        results.len(),
        t0.elapsed()
    );

    let out_dir = Path::new("results/scenarios");
    println!(
        "  {:<28} {:>4} {:>9} {:>9} {:>6} {:>8} {:>11} {:>6}",
        "scenario", "reps", "messages", "delivered", "torn", "unreach", "mean (µs)", "clean"
    );
    for r in &results {
        write_scenario_csv(out_dir, &r.report).expect("write scenario csv");
        let (d, t, u) = r.report.totals();
        let submitted: u64 = r.report.reps.iter().map(|x| x.submitted).sum();
        println!(
            "  {:<28} {:>4} {:>9} {:>9} {:>6} {:>8} {:>11} {:>6}",
            r.report.name,
            r.report.reps.len(),
            submitted,
            d,
            t,
            u,
            r.report
                .mean_latency_us()
                .map_or("-".to_string(), |x| format!("{x:.3}")),
            r.report.all_clean()
        );
    }

    write_corpus_csv(Path::new("results/scenario_corpus.csv"), &results).expect("write corpus csv");
    let bench = corpus_bench_json(&results, quick);
    let json_path =
        report::write_bench_json(Path::new("results"), &bench).expect("write bench json");
    // Root-level copy: the machine-readable record lives next to
    // CHANGES.md, like every other bench binary's.
    println!("-> results/scenarios/*.csv");
    println!("-> results/scenario_corpus.csv");
    println!(
        "-> {} (+ ./BENCH_scenario_corpus.json)",
        json_path.display()
    );

    if results.iter().any(|r| !r.report.all_clean()) {
        eprintln!("scenario_run: some replications did not end cleanly");
        std::process::exit(2);
    }
}
