//! Executes a directory of declarative `*.scenario.json` scenarios —
//! the committed corpus by default — entirely from JSON: no code changes
//! per scenario.
//!
//! ```text
//! cargo run -p spam-bench --bin scenario_run --release
//! cargo run -p spam-bench --bin scenario_run --release -- --quick
//! cargo run -p spam-bench --bin scenario_run --release -- --dir my_scenarios
//! cargo run -p spam-bench --bin scenario_run --release -- --resume
//! ```
//!
//! The sweep is crash-safe: one scenario's typed failure is recorded as
//! an `error` status row and the rest still run, and `--resume` keeps a
//! journal (`results/scenarios/.journal`) so an interrupted sweep picks
//! up where it died instead of rerunning finished scenarios.
//!
//! Writes one `results/scenarios/<name>.csv` per scenario, a combined
//! `results/scenario_corpus.csv` (with per-scenario status rows), a
//! `results/BENCH_scenario_corpus.json`, and a root-level
//! `BENCH_scenario_corpus.json` copy, and prints a per-scenario summary
//! table.

use spam_bench::report;
use spam_bench::scenario_corpus::{
    corpus_bench_json, run_corpus_journaled, write_corpus_csv, write_scenario_csv, CorpusStatus,
};
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let resume = args.iter().any(|a| a == "--resume");
    let dir: PathBuf = match args.iter().position(|a| a == "--dir") {
        Some(i) => match args.get(i + 1) {
            Some(d) => PathBuf::from(d),
            None => {
                eprintln!("scenario_run: --dir takes a directory path");
                std::process::exit(1);
            }
        },
        None => PathBuf::from("scenarios"),
    };

    let out_dir = Path::new("results/scenarios");
    let journal = out_dir.join(".journal");
    if !resume {
        // A fresh (non-resume) sweep invalidates any previous journal.
        std::fs::remove_file(&journal).ok();
    }

    eprintln!(
        "scenario_run: corpus {} (quick: {quick}, resume: {resume})",
        dir.display()
    );
    let t0 = std::time::Instant::now();
    let results = match run_corpus_journaled(&dir, quick, Some(&journal)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scenario_run: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "scenario_run: {} scenarios in {:.1?}",
        results.len(),
        t0.elapsed()
    );

    println!(
        "  {:<28} {:>7} {:>4} {:>9} {:>9} {:>6} {:>8} {:>11} {:>6}",
        "scenario",
        "status",
        "reps",
        "messages",
        "delivered",
        "torn",
        "unreach",
        "mean (µs)",
        "clean"
    );
    for r in &results {
        match &r.status {
            CorpusStatus::Ok(report) => {
                write_scenario_csv(out_dir, report).expect("write scenario csv");
                let (d, t, u) = report.totals();
                let submitted: u64 = report.reps.iter().map(|x| x.submitted).sum();
                println!(
                    "  {:<28} {:>7} {:>4} {:>9} {:>9} {:>6} {:>8} {:>11} {:>6}",
                    report.name,
                    "ok",
                    report.reps.len(),
                    submitted,
                    d,
                    t,
                    u,
                    report
                        .mean_latency_us()
                        .map_or("-".to_string(), |x| format!("{x:.3}")),
                    report.all_clean()
                );
            }
            CorpusStatus::Failed(e) => {
                println!(
                    "  {:<28} {:>7} {:>4} {:>9} {:>9} {:>6} {:>8} {:>11} {:>6}",
                    r.spec.name, "error", "-", "-", "-", "-", "-", "-", "-"
                );
                eprintln!("scenario_run: {}: {e}", r.path.display());
            }
            CorpusStatus::Skipped => {
                println!(
                    "  {:<28} {:>7} {:>4} {:>9} {:>9} {:>6} {:>8} {:>11} {:>6}",
                    r.spec.name, "skipped", "-", "-", "-", "-", "-", "-", "-"
                );
            }
        }
    }

    write_corpus_csv(Path::new("results/scenario_corpus.csv"), &results).expect("write corpus csv");
    let bench = corpus_bench_json(&results, quick);
    let json_path =
        report::write_bench_json(Path::new("results"), &bench).expect("write bench json");
    // Root-level copy: the machine-readable record lives next to
    // CHANGES.md, like every other bench binary's.
    println!("-> results/scenarios/*.csv");
    println!("-> results/scenario_corpus.csv");
    println!(
        "-> {} (+ ./BENCH_scenario_corpus.json)",
        json_path.display()
    );

    let failed = results
        .iter()
        .any(|r| matches!(r.status, CorpusStatus::Failed(_)));
    let unclean = results
        .iter()
        .filter_map(|r| r.status.report())
        .any(|rep| !rep.all_clean());
    if failed || unclean {
        eprintln!("scenario_run: some scenarios failed or did not end cleanly");
        std::process::exit(2);
    }
    // A completed sweep retires its journal: the next plain run starts
    // fresh, and the next --resume run has nothing to skip.
    std::fs::remove_file(&journal).ok();
}
