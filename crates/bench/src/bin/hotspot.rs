//! Ablation E (§5): the spanning-tree-root hot-spot.
//!
//! > "As the number of destinations increases, the probability that the
//! > worm must pass through the root of the underlying spanning tree
//! > increases, resulting in potential hot-spot effects at the root ...
//! > an inherent feature of the up*/down* routing algorithm."
//!
//! Quantifies that probability exactly (static analysis over sampled
//! destination sets) for each root-selection policy, alongside the mean
//! adaptivity and path stretch of the resulting labeling.
//!
//! ```text
//! cargo run -p spam-bench --release --bin hotspot [-- --nodes 128]
//! ```

use spam_bench::report::{self, BenchJson};
use spam_bench::{paper_network, PointSummary};
use spam_core::{mean_adaptivity, path_stretch, root_transit_probability, SpamRouting};
use std::path::Path;
use updown::{RootSelection, UpDownLabeling};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: usize = args
        .iter()
        .position(|a| a == "--nodes")
        .map(|i| args[i + 1].parse().expect("--nodes takes a number"))
        .unwrap_or(128);
    let topo = paper_network(nodes, 0xE0);

    println!("root hot-spot analysis, {nodes}-node §4 network (500 samples per cell)\n");
    let mut json_series: Vec<(String, Vec<PointSummary>)> = Vec::new();
    for (name, sel) in [
        ("lowest-id", RootSelection::LowestId),
        ("max-degree", RootSelection::MaxDegree),
        ("min-eccentricity", RootSelection::MinEccentricity),
    ] {
        let ud = UpDownLabeling::build(&topo, sel);
        let spam = SpamRouting::new(&topo, &ud);
        let (stretch_mean, stretch_max) = path_stretch(&topo, &spam);
        println!(
            "policy {name}: root {}, adaptivity {:.2} legal moves/hop, stretch {:.3} (max {:.2})",
            ud.root(),
            mean_adaptivity(&topo, &spam),
            stretch_mean,
            stretch_max
        );
        println!(
            "  {:>6} {:>14} {:>18}",
            "dests", "LCA = root", "must cross root"
        );
        let ks: Vec<usize> = [2usize, 4, 8, 16, 32, 64]
            .into_iter()
            .filter(|&k| k < nodes - 1)
            .chain([nodes - 1])
            .collect();
        let mut points = Vec::new();
        for k in ks {
            let r = root_transit_probability(&topo, &ud, &spam, k, 500, 0xE1);
            println!(
                "  {k:>6} {:>13.1}% {:>17.1}%",
                r.lca_is_root * 100.0,
                r.must_cross_root * 100.0
            );
            points.push(PointSummary {
                x: k as f64,
                mean: r.must_cross_root,
                ci_half_width: 0.0,
                reps: r.samples as u64,
                target_met: true,
            });
        }
        json_series.push((format!("must_cross_root {name}"), points));
        println!();
    }
    let bench = BenchJson {
        name: "hotspot".to_string(),
        params: vec![("nodes".to_string(), nodes.to_string())],
        series: json_series,
    };
    let json = report::write_bench_json(Path::new("results"), &bench).expect("write json");
    println!("-> {}", json.display());
    println!("(the growth of both columns with the destination count is the §5");
    println!(" hot-spot argument; destination partitioning — ablation C — is the");
    println!(" paper's proposed mitigation)");

    dynamic_utilization(&topo);
}

/// Dynamic confirmation: drive a broadcast storm through the network and
/// show how much hotter the root's channels run than the average channel.
fn dynamic_utilization(topo: &netgraph::Topology) {
    use netgraph::NodeId;
    use wormsim::{MessageSpec, NetworkSim, SimConfig};

    let ud = UpDownLabeling::build(topo, RootSelection::LowestId);
    let spam = SpamRouting::new(topo, &ud);
    let procs: Vec<NodeId> = topo.processors().collect();
    let mut sim = NetworkSim::new(topo, spam, SimConfig::paper());
    // Every 8th processor broadcasts simultaneously.
    for (i, &src) in procs.iter().enumerate().step_by(8) {
        let dests: Vec<NodeId> = procs.iter().copied().filter(|&p| p != src).collect();
        sim.submit(MessageSpec::multicast(src, dests, 128).tag(i as u64))
            .unwrap();
    }
    let out = sim.run();
    assert!(out.all_delivered(), "{:?}", out.deadlock);

    let root = ud.root();
    let root_channels: Vec<_> = topo.out_channels(root).to_vec();
    let root_load: u64 = root_channels
        .iter()
        .map(|c| out.channel_crossings[c.index()])
        .sum::<u64>()
        / root_channels.len() as u64;
    let switch_links: Vec<u64> = topo
        .channel_ids()
        .filter(|&c| {
            let ch = topo.channel(c);
            topo.is_switch(ch.src) && topo.is_switch(ch.dst)
        })
        .map(|c| out.channel_crossings[c.index()])
        .collect();
    let avg = switch_links.iter().sum::<u64>() / switch_links.len() as u64;
    println!("\ndynamic check — broadcast storm, per-channel flit crossings:");
    println!("  mean over root-adjacent channels: {root_load}");
    println!("  mean over all switch-switch channels: {avg}");
    println!("  hottest channels: {:?}", out.hottest_channels(4));
    println!(
        "  root runs {:.1}x hotter than the average switch channel",
        root_load as f64 / avg.max(1) as f64
    );
}
