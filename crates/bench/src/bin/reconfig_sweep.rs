//! The live-reconfiguration experiment: SPAM traffic through a mid-run
//! fault storm (worm teardown + online relabeling + epoch routing swap),
//! against the static-degraded control on identical damage.
//!
//! ```text
//! cargo run -p spam-bench --bin reconfig_sweep --release
//! cargo run -p spam-bench --bin reconfig_sweep --release -- --quick
//! cargo run -p spam-bench --bin reconfig_sweep --release -- --switches 128
//! ```
//!
//! Writes `results/reconfig_sweep.csv`, `results/BENCH_reconfig_sweep.json`,
//! and a root-level `BENCH_reconfig_sweep.json` copy (the perf-trajectory
//! record), and prints both curves.

use spam_bench::reconfig_sweep::{run, write_csv, ReconfigSweepConfig};
use spam_bench::report::{self, BenchJson};
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let switches: usize = args
        .iter()
        .position(|a| a == "--switches")
        .map(|i| {
            args.get(i + 1)
                .and_then(|v| v.parse().ok())
                .expect("--switches takes a number")
        })
        .unwrap_or(64);
    let cfg = if quick {
        ReconfigSweepConfig::quick(switches)
    } else {
        ReconfigSweepConfig::paper(switches)
    };

    eprintln!(
        "reconfig_sweep: {switches}-switch networks, storm rates {:?}, multicast sizes {:?}, \
         {} msgs / {} bursts, target CI {}%",
        cfg.storm_rates,
        cfg.dest_counts,
        cfg.messages,
        cfg.bursts,
        cfg.target_rel * 100.0
    );
    let t0 = std::time::Instant::now();
    let points = run(&cfg);
    eprintln!("reconfig_sweep: finished in {:.1?}", t0.elapsed());

    let csv_path = PathBuf::from("results/reconfig_sweep.csv");
    write_csv(&csv_path, &points).expect("write csv");

    let mut series = Vec::new();
    for &k in &cfg.dest_counts {
        let live: Vec<_> = points
            .iter()
            .filter(|p| p.dests == k)
            .map(|p| p.live.clone())
            .collect();
        let stat: Vec<_> = points
            .iter()
            .filter(|p| p.dests == k)
            .map(|p| p.static_.clone())
            .collect();
        series.push((format!("live storm k={k}"), live));
        series.push((format!("static degraded k={k}"), stat));
    }
    println!(
        "{}",
        report::ascii_plot(
            &format!(
                "Reconfiguration sweep — delivered-message latency vs storm intensity, \
                 {switches}-switch networks (live storm vs static damage)"
            ),
            "storm rate (fraction of links killed)",
            "latency (µs)",
            &series,
            18,
        )
    );
    println!(
        "  {:>6} {:>4} {:>10} {:>10} {:>8} {:>7} {:>8} {:>10} {:>9}",
        "rate", "k", "live (µs)", "stat (µs)", "deliv", "torn", "unreach", "stat-deliv", "penalty"
    );
    for p in &points {
        println!(
            "  {:>6.2} {:>4} {:>10.3} {:>10.3} {:>7.1}% {:>6.1}% {:>7.1}% {:>9.1}% {:>8.3}x",
            p.rate,
            p.dests,
            p.live.mean,
            p.static_.mean,
            100.0 * p.live_delivered_frac,
            100.0 * p.live_torn_frac,
            100.0 * p.live_unreachable_frac,
            100.0 * p.static_delivered_frac,
            p.live.mean / p.static_.mean,
        );
    }

    // Per-epoch latency series of the heaviest storm cell — the shape of
    // the transient (epoch 0 = pre-storm traffic).
    if let Some(worst) = points.iter().rev().find(|p| !p.epoch_latency.is_empty()) {
        series.push((
            format!(
                "per-epoch latency (rate {:.2}, k={})",
                worst.rate, worst.dests
            ),
            worst.epoch_latency.clone(),
        ));
    }

    let bench = BenchJson {
        name: "reconfig_sweep".to_string(),
        params: vec![
            ("switches".to_string(), switches.to_string()),
            ("messages".to_string(), cfg.messages.to_string()),
            ("spacing_us".to_string(), cfg.spacing_us.to_string()),
            ("bursts".to_string(), cfg.bursts.to_string()),
            ("len_flits".to_string(), cfg.len.to_string()),
            ("target_rel".to_string(), cfg.target_rel.to_string()),
            ("max_reps".to_string(), cfg.max_reps.to_string()),
            ("seed".to_string(), cfg.seed.to_string()),
            ("quick".to_string(), quick.to_string()),
        ],
        series,
    };
    let json_path = report::write_bench_json(Path::new("results"), &bench).expect("write json");
    // Root-level copy: the machine-readable perf-trajectory record lives
    // next to CHANGES.md so run-over-run diffs don't dig through results/.
    println!("-> {}", csv_path.display());
    println!("-> {} (+ ./BENCH_reconfig_sweep.json)", json_path.display());
}
