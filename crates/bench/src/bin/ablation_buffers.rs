//! Ablation B (§5): input/output buffer depth versus mixed-traffic
//! latency. The paper's deadlock theorem needs only single-flit buffers;
//! §5 conjectures deeper buffers reduce latency further.
//!
//! ```text
//! cargo run -p spam-bench --bin ablation_buffers --release [-- --quick] [--rate 0.02]
//! ```

use spam_bench::ablations::{run_buffer_depth, AblationConfig};
use spam_bench::report;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cfg = if quick {
        AblationConfig::quick()
    } else {
        AblationConfig::paper()
    };
    let rate: f64 = args
        .iter()
        .position(|a| a == "--rate")
        .map(|i| args[i + 1].parse().expect("--rate takes a number"))
        .unwrap_or(0.02);
    let messages = if quick { 300 } else { 3000 };
    let depths = [1usize, 2, 4, 8];

    eprintln!(
        "ablation B: {}-node network, rate {rate}/µs/node, depths {depths:?}",
        cfg.switches
    );
    let points = run_buffer_depth(&cfg, &depths, rate, messages);
    println!(
        "{}",
        report::ascii_plot(
            "Ablation B — buffer depth vs mixed-traffic latency (§5 conjecture)",
            "buffer depth (flits)",
            "latency (µs)",
            &[("SPAM".to_string(), points.clone())],
            12,
        )
    );
    println!("  depth  latency(µs)  ±CI");
    for p in &points {
        println!("  {:>5}  {:>10.3}  {:>6.3}", p.x, p.mean, p.ci_half_width);
    }
    report::write_csv(
        std::path::Path::new("results/ablation_buffers.csv"),
        "buffer_depth,latency_us,ci_half_width_us,reps,met_1pct",
        &points,
    )
    .expect("write csv");
    println!("-> results/ablation_buffers.csv");
}
