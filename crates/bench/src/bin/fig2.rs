//! Regenerates **Figure 2**: latency vs number of destinations for a
//! single SPAM multicast in 128- and 256-node networks.
//!
//! ```text
//! cargo run -p spam-bench --bin fig2 --release            # both panels
//! cargo run -p spam-bench --bin fig2 --release -- --nodes 128
//! cargo run -p spam-bench --bin fig2 --release -- --quick # loose CIs
//! ```
//!
//! Writes `results/fig2_<nodes>.csv` plus the machine-readable
//! `results/BENCH_fig2.json`, and prints the curves.

use spam_bench::fig2::{run, Fig2Config};
use spam_bench::report::{self, BenchJson};
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let nodes: Vec<usize> = match args.iter().position(|a| a == "--nodes") {
        Some(i) => vec![args[i + 1].parse().expect("--nodes takes a number")],
        None => vec![128, 256],
    };

    let mut json_series = Vec::new();
    for n in nodes {
        let cfg = if quick {
            Fig2Config::quick(n)
        } else {
            Fig2Config::paper(n)
        };
        eprintln!(
            "fig2: {n}-node network, {} destination counts, target CI {}%",
            cfg.dest_counts.len(),
            cfg.target_rel * 100.0
        );
        let t0 = std::time::Instant::now();
        let points = run(&cfg);
        eprintln!("fig2: {n}-node sweep finished in {:.1?}", t0.elapsed());

        let path = PathBuf::from(format!("results/fig2_{n}.csv"));
        report::write_csv(
            &path,
            "destinations,latency_us,ci_half_width_us,reps,met_1pct",
            &points,
        )
        .expect("write csv");

        println!(
            "{}",
            report::ascii_plot(
                &format!(
                    "Figure 2 — Latency vs destinations, {n}-node network (cf. paper: flat, 10-14 µs)"
                ),
                "number of destinations",
                "latency (µs)",
                &[("SPAM single multicast".to_string(), points.clone())],
                16,
            )
        );
        println!("  dests  latency(µs)  ±CI(µs)   reps  met-1%");
        for p in &points {
            println!(
                "  {:>5}  {:>10.3}  {:>8.3}  {:>5}  {}",
                p.x, p.mean, p.ci_half_width, p.reps, p.target_met
            );
        }
        println!("  -> {}", path.display());
        json_series.push((format!("{n}-node"), points));
    }
    let bench = BenchJson {
        name: "fig2".to_string(),
        params: vec![("quick".to_string(), quick.to_string())],
        series: json_series,
    };
    let json = report::write_bench_json(Path::new("results"), &bench).expect("write json");
    println!("  -> {}", json.display());
}
