//! Measures cold-vs-warm scenario-service latency over the committed
//! corpus and writes `BENCH_serve.json` (plus a `results/` copy).
//!
//! Doubles as the CI `serve-smoke`: the run aborts unless the second
//! pass is served from the artifact cache with byte-identical digests
//! and the daemon drains and shuts down cleanly.
//!
//! ```text
//! cargo run -p spam-bench --bin serve_bench --release
//! cargo run -p spam-bench --bin serve_bench --release -- --quick
//! ```

use spam_bench::report;
use spam_bench::serve_bench::{run, serve_bench_json};
use std::path::Path;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let limit = if quick { Some(6) } else { None };

    let t0 = std::time::Instant::now();
    let out = run(Path::new("scenarios"), limit);
    println!(
        "  {:>32} {:>4} {:>12} {:>12} {:>8}",
        "scenario", "reps", "cold µs", "warm µs", "speedup"
    );
    for c in &out.per_scenario {
        println!(
            "  {:>32} {:>4} {:>12.1} {:>12.1} {:>7.2}x",
            c.name,
            c.reps,
            c.cold_us,
            c.warm_us,
            c.cold_us / c.warm_us.max(1.0)
        );
    }
    println!(
        "  total: cold {:.1} µs, warm {:.1} µs ({:.2}x); cache {} hit(s) / {} miss(es); {:.1?}",
        out.total_cold_us(),
        out.total_warm_us(),
        out.total_cold_us() / out.total_warm_us().max(1.0),
        out.hits,
        out.misses,
        t0.elapsed()
    );
    assert!(
        out.total_warm_us() < out.total_cold_us(),
        "warm pass was not faster than cold: the cache amortized nothing"
    );

    let bench = serve_bench_json(&out);
    let path = report::write_bench_json(Path::new("results"), &bench).expect("write bench json");
    println!("-> {} (+ ./BENCH_serve.json)", path.display());
}
