//! Engine-throughput benchmark: events/sec and messages/sec under
//! saturating multicast load, 64 → 1024-switch irregular networks.
//!
//! ```text
//! cargo run -p spam-bench --bin throughput --release
//! cargo run -p spam-bench --bin throughput --release -- --quick
//! cargo run -p spam-bench --bin throughput --release -- --baseline
//! ```
//!
//! Writes `results/throughput.csv`, `results/BENCH_throughput.json`, and a
//! root-level `BENCH_throughput.json` copy (the repo's first *throughput*
//! perf-trajectory record — the other `BENCH_*.json` files track simulated
//! latency). If `results/throughput_baseline.csv` exists (committed from
//! the pre-arena-refactor engine), its series are embedded alongside the
//! fresh numbers and a per-size speedup series is emitted, so the record
//! always carries both sides of the before/after comparison.
//!
//! `--baseline` re-records `results/throughput_baseline.csv` from the
//! current build instead (used once, on the pre-refactor commit).
//!
//! The binary installs a counting global allocator, so the JSON also
//! reports heap allocations and bytes per delivered message — the
//! zero-alloc-per-flit claim, measured rather than asserted.

use spam_bench::report::{self, BenchJson};
use spam_bench::throughput::{run, write_csv, ThroughputConfig, ThroughputPoint};
use spam_bench::PointSummary;
use std::alloc::{GlobalAlloc, Layout, System};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// A pass-through allocator that counts calls and bytes.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates directly to `System`; the counters are side effects.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // Only the growth is new heap traffic; the original size was
        // counted when the buffer was first allocated.
        BYTES.fetch_add(
            new_size.saturating_sub(layout.size()) as u64,
            Ordering::Relaxed,
        );
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

/// Parses a baseline CSV (the schema written by `write_csv`).
fn read_baseline(path: &Path) -> Option<Vec<ThroughputPoint>> {
    let body = std::fs::read_to_string(path).ok()?;
    let mut pts = Vec::new();
    for line in body.lines().skip(1) {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() < 9 {
            continue;
        }
        pts.push(ThroughputPoint {
            switches: f[0].parse().ok()?,
            messages: f[1].parse().ok()?,
            events: f[2].parse().ok()?,
            flits_delivered: f[3].parse().ok()?,
            seg_lookups: f[4].parse().ok()?,
            sim_end_ns: f[5].parse().ok()?,
            wall_s: f[6].parse().ok()?,
            events_per_sec: f[7].parse().ok()?,
            msgs_per_sec: f[8].parse().ok()?,
        });
    }
    (!pts.is_empty()).then_some(pts)
}

fn series_of(points: &[ThroughputPoint], f: impl Fn(&ThroughputPoint) -> f64) -> Vec<PointSummary> {
    points
        .iter()
        .map(|p| PointSummary {
            x: p.switches as f64,
            mean: f(p),
            ci_half_width: 0.0,
            reps: 1,
            target_met: true,
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let record_baseline = args.iter().any(|a| a == "--baseline");
    let cfg = if quick {
        ThroughputConfig::quick()
    } else {
        ThroughputConfig::full()
    };

    eprintln!(
        "throughput: sizes {:?}, {} msgs/proc x {} dests x {} flits, {} reps",
        cfg.sizes, cfg.msgs_per_proc, cfg.dests, cfg.len, cfg.reps
    );
    let alloc0 = (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    );
    let t0 = std::time::Instant::now();
    let points = run(&cfg);
    let wall_total = t0.elapsed();
    let allocs = ALLOCS.load(Ordering::Relaxed) - alloc0.0;
    let bytes = BYTES.load(Ordering::Relaxed) - alloc0.1;
    let total_msgs: u64 = points.iter().map(|p| p.messages * cfg.reps as u64).sum();
    let bytes_per_msg = bytes as f64 / total_msgs.max(1) as f64;
    let allocs_per_msg = allocs as f64 / total_msgs.max(1) as f64;
    eprintln!(
        "throughput: finished in {wall_total:.1?}; {allocs} allocs / {bytes} bytes \
         ({allocs_per_msg:.1} allocs, {bytes_per_msg:.0} B per message incl. setup)"
    );

    let baseline_path = PathBuf::from("results/throughput_baseline.csv");
    if record_baseline {
        write_csv(&baseline_path, &points).expect("write baseline csv");
        eprintln!(
            "-> recorded {} (pre-refactor baseline)",
            baseline_path.display()
        );
    }

    let csv_path = PathBuf::from("results/throughput.csv");
    write_csv(&csv_path, &points).expect("write csv");

    println!(
        "  {:>8} {:>9} {:>11} {:>12} {:>12} {:>10}",
        "switches", "messages", "events", "events/s", "msgs/s", "wall (s)"
    );
    for p in &points {
        println!(
            "  {:>8} {:>9} {:>11} {:>12.0} {:>12.1} {:>10.4}",
            p.switches, p.messages, p.events, p.events_per_sec, p.msgs_per_sec, p.wall_s
        );
    }

    let mut series = vec![
        (
            "events_per_sec".to_string(),
            series_of(&points, |p| p.events_per_sec),
        ),
        (
            "msgs_per_sec".to_string(),
            series_of(&points, |p| p.msgs_per_sec),
        ),
        (
            "events_total".to_string(),
            series_of(&points, |p| p.events as f64),
        ),
        (
            "seg_lookups".to_string(),
            series_of(&points, |p| p.seg_lookups as f64),
        ),
    ];
    let mut params = vec![
        ("msgs_per_proc".to_string(), cfg.msgs_per_proc.to_string()),
        ("dests".to_string(), cfg.dests.to_string()),
        ("len_flits".to_string(), cfg.len.to_string()),
        ("reps".to_string(), cfg.reps.to_string()),
        ("seed".to_string(), cfg.seed.to_string()),
        ("quick".to_string(), quick.to_string()),
        (
            "heap_allocs_per_message".to_string(),
            format!("{allocs_per_msg:.2}"),
        ),
        (
            "heap_bytes_per_message".to_string(),
            format!("{bytes_per_msg:.0}"),
        ),
    ];

    if !record_baseline {
        if let Some(base) = read_baseline(&baseline_path) {
            series.push((
                "baseline_events_per_sec".to_string(),
                series_of(&base, |p| p.events_per_sec),
            ));
            series.push((
                "baseline_msgs_per_sec".to_string(),
                series_of(&base, |p| p.msgs_per_sec),
            ));
            let speedups: Vec<PointSummary> = points
                .iter()
                .filter_map(|p| {
                    let b = base.iter().find(|b| b.switches == p.switches)?;
                    // Same seed => both engines simulated the same run.
                    assert_eq!(
                        b.sim_end_ns, p.sim_end_ns,
                        "baseline and current runs diverged at {} switches",
                        p.switches
                    );
                    Some(PointSummary {
                        x: p.switches as f64,
                        mean: p.events_per_sec / b.events_per_sec,
                        ci_half_width: 0.0,
                        reps: 1,
                        target_met: p.events_per_sec >= 2.0 * b.events_per_sec,
                    })
                })
                .collect();
            println!("\n  speedup vs pre-refactor baseline (events/sec):");
            for s in &speedups {
                println!(
                    "  {:>8} {:>7.2}x {}",
                    s.x as u64,
                    s.mean,
                    if s.target_met {
                        "(>= 2x target met)"
                    } else {
                        ""
                    }
                );
            }
            series.push(("speedup_events_per_sec".to_string(), speedups));
            params.push(("baseline".to_string(), baseline_path.display().to_string()));
        } else {
            eprintln!(
                "note: no {} found; emitting current-engine numbers only",
                baseline_path.display()
            );
        }
    }

    let bench = BenchJson {
        name: "throughput".to_string(),
        params,
        series,
    };
    let json_path = report::write_bench_json(Path::new("results"), &bench).expect("write json");
    println!("-> {}", csv_path.display());
    println!("-> {} (+ ./BENCH_throughput.json)", json_path.display());
}
