//! Ablation A (§5): effect of the spanning-tree root-selection policy on
//! multicast latency.
//!
//! ```text
//! cargo run -p spam-bench --bin ablation_root --release [-- --quick] [--dests 32]
//! ```

use spam_bench::ablations::{run_root_selection, AblationConfig};
use spam_bench::report::{self, BenchJson};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let cfg = if args.iter().any(|a| a == "--quick") {
        AblationConfig::quick()
    } else {
        AblationConfig::paper()
    };
    let dests = args
        .iter()
        .position(|a| a == "--dests")
        .map(|i| args[i + 1].parse().expect("--dests takes a number"))
        .unwrap_or(32);

    eprintln!(
        "ablation A: {}-node network, {dests}-destination multicasts",
        cfg.switches
    );
    let rows = run_root_selection(&cfg, dests);
    println!(
        "{}",
        report::labelled_table(
            &format!(
                "Ablation A — root selection policy, {}-node network, {dests} destinations",
                cfg.switches
            ),
            &rows
        )
    );
    let pts: Vec<_> = rows.iter().map(|(_, p)| p.clone()).collect();
    report::write_csv(
        std::path::Path::new("results/ablation_root.csv"),
        "policy_index,latency_us,ci_half_width_us,reps,met_1pct",
        &pts,
    )
    .expect("write csv");
    println!("-> results/ablation_root.csv (rows in table order)");
    let bench = BenchJson {
        name: "ablation_root".to_string(),
        params: vec![
            ("switches".to_string(), cfg.switches.to_string()),
            ("dests".to_string(), dests.to_string()),
        ],
        series: rows
            .iter()
            .map(|(label, p)| (label.clone(), vec![p.clone()]))
            .collect(),
    };
    let json = report::write_bench_json(Path::new("results"), &bench).expect("write json");
    println!("-> {}", json.display());
}
