//! Ablation C (§5): destination partitioning — one tree-based worm versus
//! several tree-contiguous worms, under background traffic that makes the
//! spanning-tree-root hot-spot matter.
//!
//! ```text
//! cargo run -p spam-bench --bin ablation_partition --release [-- --quick] [--dests 64]
//! ```

use spam_bench::ablations::{run_partition, AblationConfig, PartitionArm};
use spam_bench::report;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cfg = if quick {
        AblationConfig::quick()
    } else {
        AblationConfig::paper()
    };
    let dests = args
        .iter()
        .position(|a| a == "--dests")
        .map(|i| args[i + 1].parse().expect("--dests takes a number"))
        .unwrap_or(if quick { 16 } else { 64 });
    let background = if quick { 16 } else { 64 };
    let arms = [
        PartitionArm::SingleWorm,
        PartitionArm::Subtrees { max_groups: 2 },
        PartitionArm::Subtrees { max_groups: 4 },
        PartitionArm::IdChunks { groups: 2 },
        PartitionArm::IdChunks { groups: 4 },
    ];

    eprintln!(
        "ablation C: {}-node network, {dests} destinations, {background} background unicasts",
        cfg.switches
    );
    let rows = run_partition(&cfg, dests, background, &arms);
    println!(
        "{}",
        report::labelled_table(
            &format!(
                "Ablation C — destination partitioning (makespan, µs), {}-node network, {dests} dests",
                cfg.switches
            ),
            &rows
        )
    );
    let pts: Vec<_> = rows.iter().map(|(_, p)| p.clone()).collect();
    report::write_csv(
        std::path::Path::new("results/ablation_partition.csv"),
        "arm_index,makespan_us,ci_half_width_us,reps,met_1pct",
        &pts,
    )
    .expect("write csv");
    println!("-> results/ablation_partition.csv (rows in table order)");
}
