//! Golden-divergence bisector CLI: given a scenario file, compare a
//! reference run against a candidate variant (by default the other
//! event-queue implementation) and, when they diverge, binary-search
//! the reference's checkpoints to localize the first divergent behavior
//! to a sim-time window and a first differing trace event.
//!
//! ```text
//! cargo run -p spam-bench --bin bisect_divergence --release -- \
//!     scenarios/fig2_multicast.scenario.json \
//!     [--rep N] [--every-ns N] [--candidate-queue bucket|heap] \
//!     [--candidate-seed N] [--out report.json]
//! ```
//!
//! Exit codes: 0 = no divergence, 3 = divergence found (report
//! written), 1 = usage or scenario error.

use spam_scenario::{bisect_divergence, DivergenceReport, ScenarioSpec};
use std::fmt::Write as _;
use std::path::PathBuf;

struct Args {
    scenario: PathBuf,
    rep: u32,
    every_ns: u64,
    candidate_queue: Option<String>,
    candidate_seed: Option<u64>,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut parsed = Args {
        scenario: PathBuf::new(),
        rep: 0,
        every_ns: 50_000,
        candidate_queue: None,
        candidate_seed: None,
        out: None,
    };
    let mut have_scenario = false;
    while let Some(a) = args.next() {
        let mut value = |what: &str| -> Result<String, String> {
            args.next().ok_or(format!("{what} takes a value"))
        };
        match a.as_str() {
            "--rep" => {
                parsed.rep = value("--rep")?.parse().map_err(|e| format!("--rep: {e}"))?;
            }
            "--every-ns" => {
                parsed.every_ns = value("--every-ns")?
                    .parse()
                    .map_err(|e| format!("--every-ns: {e}"))?;
            }
            "--candidate-queue" => parsed.candidate_queue = Some(value("--candidate-queue")?),
            "--candidate-seed" => {
                parsed.candidate_seed = Some(
                    value("--candidate-seed")?
                        .parse()
                        .map_err(|e| format!("--candidate-seed: {e}"))?,
                );
            }
            "--out" => parsed.out = Some(PathBuf::from(value("--out")?)),
            _ if !have_scenario => {
                parsed.scenario = PathBuf::from(a);
                have_scenario = true;
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    if !have_scenario {
        return Err(
            "usage: bisect_divergence <scenario.json> [--rep N] [--every-ns N] \
                    [--candidate-queue bucket|heap] [--candidate-seed N] [--out report.json]"
                .to_string(),
        );
    }
    Ok(parsed)
}

/// The candidate spec: the reference with the requested engine-neutral
/// axes overridden. With no overrides, the candidate flips the event
/// queue — the golden corpus invariant.
fn candidate_of(reference: &ScenarioSpec, args: &Args) -> Result<ScenarioSpec, String> {
    let mut c = reference.clone();
    match args.candidate_queue.as_deref() {
        Some("bucket") => c.engine.queue = Some(spam_scenario::QueueSpec::Bucket),
        Some("heap") => c.engine.queue = Some(spam_scenario::QueueSpec::Heap),
        Some(other) => return Err(format!("--candidate-queue: unknown queue {other}")),
        None if args.candidate_seed.is_none() => {
            c.engine.queue = Some(match c.engine.queue {
                Some(spam_scenario::QueueSpec::Heap) => spam_scenario::QueueSpec::Bucket,
                _ => spam_scenario::QueueSpec::Heap,
            });
        }
        None => {}
    }
    if let Some(seed) = args.candidate_seed {
        c.seed = seed;
    }
    Ok(c)
}

fn report_json(r: &DivergenceReport) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut body = String::new();
    let _ = writeln!(body, "{{");
    let _ = writeln!(
        body,
        "  \"reference_digest\": \"{:#018x}\",",
        r.reference_digest
    );
    let _ = writeln!(
        body,
        "  \"candidate_digest\": \"{:#018x}\",",
        r.candidate_digest
    );
    let _ = writeln!(body, "  \"checkpoints\": {},", r.checkpoints);
    let _ = writeln!(body, "  \"probes\": {},", r.probes);
    let _ = writeln!(body, "  \"window_start_ns\": {},", r.window_start_ns);
    match r.window_end_ns {
        Some(v) => {
            let _ = writeln!(body, "  \"window_end_ns\": {v},");
        }
        None => {
            let _ = writeln!(body, "  \"window_end_ns\": null,");
        }
    }
    match &r.first_event {
        Some(ev) => {
            let _ = writeln!(body, "  \"first_event\": {{");
            let _ = writeln!(body, "    \"index\": {},", ev.index);
            let _ = writeln!(body, "    \"at_ns\": {},", ev.at_ns);
            let opt = |v: &Option<String>| {
                v.as_ref()
                    .map_or("null".to_string(), |s| format!("\"{}\"", esc(s)))
            };
            let _ = writeln!(body, "    \"reference\": {},", opt(&ev.reference));
            let _ = writeln!(body, "    \"candidate\": {}", opt(&ev.candidate));
            let _ = writeln!(body, "  }}");
        }
        None => {
            let _ = writeln!(body, "  \"first_event\": null");
        }
    }
    let _ = writeln!(body, "}}");
    body
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bisect_divergence: {e}");
            std::process::exit(1);
        }
    };
    let doc = match std::fs::read_to_string(&args.scenario) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("bisect_divergence: {}: {e}", args.scenario.display());
            std::process::exit(1);
        }
    };
    let reference = match ScenarioSpec::from_json(&doc) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bisect_divergence: {}: {e}", args.scenario.display());
            std::process::exit(1);
        }
    };
    let candidate = match candidate_of(&reference, &args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("bisect_divergence: {e}");
            std::process::exit(1);
        }
    };

    eprintln!(
        "bisect_divergence: {} rep {} cadence {}ns",
        reference.name, args.rep, args.every_ns
    );
    match bisect_divergence(&reference, &candidate, args.rep, args.every_ns) {
        Ok(None) => {
            println!("no divergence: candidate reproduces the reference digest");
        }
        Ok(Some(report)) => {
            println!(
                "DIVERGENCE over {} checkpoints in {} probes:",
                report.checkpoints, report.probes
            );
            println!(
                "  window: ({} ns, {}]",
                report.window_start_ns,
                report
                    .window_end_ns
                    .map_or("end of run".to_string(), |v| format!("{v} ns")),
            );
            match &report.first_event {
                Some(ev) => {
                    println!(
                        "  first differing trace event (#{} @ {} ns):",
                        ev.index, ev.at_ns
                    );
                    println!(
                        "    reference: {}",
                        ev.reference.as_deref().unwrap_or("<trace ended>")
                    );
                    println!(
                        "    candidate: {}",
                        ev.candidate.as_deref().unwrap_or("<trace ended>")
                    );
                }
                None => println!("  traces agree; divergence is in counters/latencies only"),
            }
            if let Some(out) = &args.out {
                if let Err(e) = std::fs::write(out, report_json(&report)) {
                    eprintln!("bisect_divergence: write {}: {e}", out.display());
                    std::process::exit(1);
                }
                println!("-> {}", out.display());
            }
            std::process::exit(3);
        }
        Err(e) => {
            eprintln!("bisect_divergence: {e}");
            std::process::exit(1);
        }
    }
}
