//! Regenerates the §4 in-text claim: SPAM broadcast latency vs the
//! software-multicast lower bound (and a *simulated* binomial software
//! multicast), for 128- and 256-node networks.
//!
//! Paper: "SPAM incurs a latency of under 14 µs for a single broadcast in
//! a 256 node network ... lower bound of 90 µs in this case; a more than
//! six-fold difference."
//!
//! ```text
//! cargo run -p spam-bench --bin broadcast_table --release [-- --quick]
//! ```

use spam_bench::broadcast::run_row;
use spam_bench::report::{self, BenchJson};
use spam_bench::PointSummary;
use std::path::Path;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (target, reps) = if quick { (0.05, 16) } else { (0.01, 500) };
    println!(
        "{:>6} {:>12} {:>14} {:>12} {:>12} {:>10} {:>10} {:>6}",
        "nodes", "SPAM (µs)", "software(µs)", "bound d-1", "bound d", "x bound", "x soft", "reps"
    );
    let mut rows = Vec::new();
    for nodes in [128usize, 256] {
        let row = run_row(nodes, target, reps, 0xB0A5);
        println!(
            "{:>6} {:>12.2} {:>14.2} {:>12.0} {:>12.0} {:>10.2} {:>10.2} {:>6}",
            row.nodes,
            row.spam_us,
            row.software_us,
            row.bound_d_minus_1_us,
            row.bound_d_us,
            row.speedup_vs_bound,
            row.speedup_vs_software,
            row.reps
        );
        rows.push(row);
    }
    std::fs::create_dir_all("results").ok();
    let mut csv =
        String::from("nodes,spam_us,software_us,bound_dm1_us,bound_d_us,x_bound,x_soft,reps\n");
    for r in &rows {
        csv.push_str(&format!(
            "{},{:.3},{:.3},{:.1},{:.1},{:.3},{:.3},{}\n",
            r.nodes,
            r.spam_us,
            r.software_us,
            r.bound_d_minus_1_us,
            r.bound_d_us,
            r.speedup_vs_bound,
            r.speedup_vs_software,
            r.reps
        ));
    }
    std::fs::write("results/broadcast_table.csv", csv).expect("write results");
    println!("-> results/broadcast_table.csv");
    type RowMetric = fn(&spam_bench::broadcast::BroadcastRow) -> (f64, f64, u64, bool);
    // Each series carries its own honest statistics: the SPAM arm is
    // CI-controlled, the software arm runs a fixed replication count (its
    // CI is descriptive, target_met false), the analytic bound is exact,
    // and derived ratios inherit the SPAM arm's convergence flag.
    let metrics: [(&str, RowMetric); 5] = [
        ("spam_us", |r| {
            (r.spam_us, r.spam_ci_us, r.reps, r.spam_target_met)
        }),
        ("software_us", |r| {
            (r.software_us, r.software_ci_us, r.software_reps, false)
        }),
        ("bound_d_us", |r| (r.bound_d_us, 0.0, 0, true)),
        ("speedup_vs_bound", |r| {
            (r.speedup_vs_bound, 0.0, r.reps, r.spam_target_met)
        }),
        ("speedup_vs_software", |r| {
            (r.speedup_vs_software, 0.0, r.reps, r.spam_target_met)
        }),
    ];
    let bench = BenchJson {
        name: "broadcast_table".to_string(),
        params: vec![
            ("target_rel".to_string(), target.to_string()),
            ("quick".to_string(), quick.to_string()),
            (
                "software_arm".to_string(),
                "fixed replication count, CI descriptive only".to_string(),
            ),
        ],
        series: metrics
            .iter()
            .map(|(name, f)| {
                (
                    name.to_string(),
                    rows.iter()
                        .map(|r| {
                            let (mean, ci_half_width, reps, target_met) = f(r);
                            PointSummary {
                                x: r.nodes as f64,
                                mean,
                                ci_half_width,
                                reps,
                                target_met,
                            }
                        })
                        .collect::<Vec<_>>(),
                )
            })
            .collect(),
    };
    let json = report::write_bench_json(Path::new("results"), &bench).expect("write json");
    println!("-> {}", json.display());
    let r256 = &rows[1];
    println!(
        "\npaper check: 256-node SPAM broadcast {:.2} µs (paper: <14), vs 90 µs bound -> {:.1}x (paper: >6x)",
        r256.spam_us, r256.speedup_vs_bound
    );
}
