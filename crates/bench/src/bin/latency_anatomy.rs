//! Latency-anatomy report: runs the `(arm, regime)` grid with tracing
//! enabled, decomposes every delivered message's latency into exact
//! phases, and writes the table + a Perfetto example trace.
//!
//! Outputs:
//! * `results/latency_anatomy.csv` — per-phase mean/p50/p99/share rows;
//! * `results/BENCH_latency_anatomy.json` (+ root copy) — machine record;
//! * `results/fig2_single_multicast.perfetto-trace` — the golden fig2
//!   scenario re-run with tracing on, exported for `ui.perfetto.dev`.
//!
//! Usage: `latency_anatomy [--quick]`

use spam_bench::latency_anatomy::{
    anatomy_bench_json, anatomy_table, run_latency_anatomy, write_anatomy_csv,
};
use spam_scenario::ScenarioSpec;
use std::path::Path;
use std::process::ExitCode;

fn export_golden_trace(results: &Path) -> std::io::Result<std::path::PathBuf> {
    let spec_path = Path::new("scenarios/fig2_single_multicast.scenario.json");
    let text = std::fs::read_to_string(spec_path)?;
    let mut spec = ScenarioSpec::from_json(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e:?}")))?;
    spec.engine.trace = true;
    let (out, topo) = spam_scenario::run_once_with_topology(&spec, 0, None)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, format!("{e:?}")))?;
    let bytes = spam_trace::export(&topo, &out);
    let path = results.join("fig2_single_multicast.perfetto-trace");
    std::fs::write(&path, &bytes)?;
    Ok(path)
}

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");

    eprintln!(
        "latency anatomy: tracing the (arm, regime) grid ({})...",
        if quick { "quick" } else { "full" }
    );
    let cells = run_latency_anatomy(quick);

    println!("Latency anatomy (share of end-to-end, per arm and fault regime):");
    println!("{}", anatomy_table(&cells));

    let results = Path::new("results");
    let csv = results.join("latency_anatomy.csv");
    if let Err(e) = write_anatomy_csv(&csv, &cells) {
        eprintln!("error: writing {}: {e}", csv.display());
        return ExitCode::from(1);
    }
    eprintln!("wrote {}", csv.display());

    let bench = anatomy_bench_json(&cells, quick);
    let json_path = match spam_bench::report::write_bench_json(results, &bench) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: writing bench json: {e}");
            return ExitCode::from(1);
        }
    };
    eprintln!("wrote {} (+ committed root copy)", json_path.display());

    match export_golden_trace(results) {
        Ok(p) => eprintln!("wrote {} (open in ui.perfetto.dev)", p.display()),
        Err(e) => {
            eprintln!("error: exporting golden Perfetto trace: {e}");
            return ExitCode::from(1);
        }
    }
    ExitCode::SUCCESS
}
