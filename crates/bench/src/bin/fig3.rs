//! Regenerates **Figure 3**: latency vs average arrival rate under 90 %
//! unicast / 10 % multicast traffic in a 128-node network, for multicast
//! sizes 8, 16, 32 and 64.
//!
//! ```text
//! cargo run -p spam-bench --bin fig3 --release
//! cargo run -p spam-bench --bin fig3 --release -- --quick
//! cargo run -p spam-bench --bin fig3 --release -- --messages 2000
//! ```
//!
//! Writes `results/fig3_k<dests>.csv` per curve plus the machine-readable
//! `results/BENCH_fig3.json`, and prints the figure.

use spam_bench::fig3::{run, Fig3Config};
use spam_bench::report::{self, BenchJson};
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let mut cfg = if quick {
        Fig3Config::quick()
    } else {
        Fig3Config::paper()
    };
    if let Some(i) = args.iter().position(|a| a == "--messages") {
        cfg.messages = args[i + 1].parse().expect("--messages takes a number");
    }
    if let Some(i) = args.iter().position(|a| a == "--max-reps") {
        cfg.max_reps = args[i + 1].parse().expect("--max-reps takes a number");
    }

    eprintln!(
        "fig3: {}-node network, rates {:?}, multicast sizes {:?}, {} msgs/rep",
        cfg.switches, cfg.rates, cfg.multicast_sizes, cfg.messages
    );
    let t0 = std::time::Instant::now();
    let curves = run(&cfg);
    eprintln!("fig3: finished in {:.1?}", t0.elapsed());

    let mut series = Vec::new();
    for (k, points) in &curves {
        let path = PathBuf::from(format!("results/fig3_k{k}.csv"));
        report::write_csv(
            &path,
            "rate_per_node_per_us,latency_us,ci_half_width_us,reps,met_1pct",
            points,
        )
        .expect("write csv");
        println!("curve {k} destinations -> {}", path.display());
        series.push((format!("{k} destinations"), points.clone()));
    }
    println!(
        "{}",
        report::ascii_plot(
            "Figure 3 — Latency vs arrival rate, 90% unicast / 10% multicast (cf. paper: curves nearly coincide; saturation past ~0.03)",
            "average arrival rate (messages/µs/node)",
            "latency (µs)",
            &series,
            18,
        )
    );
    for (k, points) in &curves {
        println!("  k={k:<3} rate -> latency(µs)");
        for p in points {
            println!(
                "    {:>6.3} -> {:>8.2} ±{:<6.2} ({} reps{})",
                p.x,
                p.mean,
                p.ci_half_width,
                p.reps,
                if p.target_met { "" } else { ", CI loose" }
            );
        }
    }
    let bench = BenchJson {
        name: "fig3".to_string(),
        params: vec![
            ("switches".to_string(), cfg.switches.to_string()),
            ("messages".to_string(), cfg.messages.to_string()),
            ("quick".to_string(), quick.to_string()),
        ],
        series: curves
            .iter()
            .map(|(k, pts)| (format!("{k} destinations"), pts.clone()))
            .collect(),
    };
    let json = report::write_bench_json(Path::new("results"), &bench).expect("write json");
    println!("-> {}", json.display());
}
