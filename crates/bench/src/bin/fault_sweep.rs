//! The static-fault experiment: SPAM vs software multicast on **degraded**
//! irregular networks — fault rate × multicast size, beyond the paper's
//! pristine Figures 2–3.
//!
//! ```text
//! cargo run -p spam-bench --bin fault_sweep --release
//! cargo run -p spam-bench --bin fault_sweep --release -- --quick
//! cargo run -p spam-bench --bin fault_sweep --release -- --switches 128
//! ```
//!
//! Writes `results/fault_sweep.csv`, `results/BENCH_fault_sweep.json`,
//! and a root-level `BENCH_fault_sweep.json` copy (the perf-trajectory
//! record), and prints both curves.

use spam_bench::fault_sweep::{run, write_csv, FaultSweepConfig};
use spam_bench::report::{self, BenchJson};
use std::path::{Path, PathBuf};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let switches: usize = args
        .iter()
        .position(|a| a == "--switches")
        .map(|i| args[i + 1].parse().expect("--switches takes a number"))
        .unwrap_or(64);
    let cfg = if quick {
        FaultSweepConfig::quick(switches)
    } else {
        FaultSweepConfig::paper(switches)
    };

    eprintln!(
        "fault_sweep: {switches}-switch networks, rates {:?}, multicast sizes {:?}, target CI {}%",
        cfg.rates,
        cfg.dest_counts,
        cfg.target_rel * 100.0
    );
    let t0 = std::time::Instant::now();
    let points = run(&cfg);
    eprintln!("fault_sweep: finished in {:.1?}", t0.elapsed());

    let csv_path = PathBuf::from("results/fault_sweep.csv");
    write_csv(&csv_path, &points).expect("write csv");

    let mut series = Vec::new();
    for &k in &cfg.dest_counts {
        let spam: Vec<_> = points
            .iter()
            .filter(|p| p.dests == k)
            .map(|p| p.spam.clone())
            .collect();
        let soft: Vec<_> = points
            .iter()
            .filter(|p| p.dests == k)
            .map(|p| p.software.clone())
            .collect();
        series.push((format!("SPAM k={k}"), spam));
        series.push((format!("software k={k}"), soft));
    }
    println!(
        "{}",
        report::ascii_plot(
            &format!(
                "Fault sweep — multicast latency vs link-fault rate, \
                 {switches}-switch degraded networks (largest component)"
            ),
            "link-fault rate",
            "latency (µs)",
            &series,
            18,
        )
    );
    println!(
        "  {:>6} {:>5} {:>11} {:>11} {:>8} {:>10}",
        "rate", "k", "SPAM (µs)", "soft (µs)", "speedup", "comp-frac"
    );
    for p in &points {
        println!(
            "  {:>6.2} {:>5} {:>11.3} {:>11.3} {:>7.2}x {:>10.3}",
            p.rate,
            p.dests,
            p.spam.mean,
            p.software.mean,
            p.software.mean / p.spam.mean,
            p.component_fraction
        );
    }

    let bench = BenchJson {
        name: "fault_sweep".to_string(),
        params: vec![
            ("switches".to_string(), switches.to_string()),
            ("len_flits".to_string(), cfg.len.to_string()),
            ("target_rel".to_string(), cfg.target_rel.to_string()),
            ("max_reps".to_string(), cfg.max_reps.to_string()),
            ("seed".to_string(), cfg.seed.to_string()),
            ("quick".to_string(), quick.to_string()),
        ],
        series,
    };
    let json_path = report::write_bench_json(Path::new("results"), &bench).expect("write json");
    // Root-level copy: the machine-readable perf-trajectory record lives
    // next to CHANGES.md so run-over-run diffs don't dig through results/.
    println!("-> {}", csv_path.display());
    println!("-> {} (+ ./BENCH_fault_sweep.json)", json_path.display());
}
