//! Ablation D: SPAM's single-worm multicast versus simulated software
//! (binomial unicast-based) multicast across destination counts — the
//! end-to-end comparison behind the paper's motivation.
//!
//! ```text
//! cargo run -p spam-bench --bin ablation_baseline --release [-- --quick]
//! ```

use spam_bench::ablations::{run_baseline_comparison, AblationConfig};
use spam_bench::report;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick {
        AblationConfig::quick()
    } else {
        AblationConfig::paper()
    };
    let dest_counts: Vec<usize> = if quick {
        vec![1, 4, 16]
    } else {
        vec![1, 2, 4, 8, 16, 32, 64, 127]
    };

    eprintln!(
        "ablation D: {}-node network, dest counts {dest_counts:?}",
        cfg.switches
    );
    let rows = run_baseline_comparison(&cfg, &dest_counts);
    let spam: Vec<_> = rows.iter().map(|(_, s, _)| s.clone()).collect();
    let soft: Vec<_> = rows.iter().map(|(_, _, s)| s.clone()).collect();
    println!(
        "{}",
        report::ascii_plot(
            "Ablation D — SPAM vs software multicast latency (cf. paper's motivation: hardware multicast wins, gap grows with d)",
            "number of destinations",
            "latency (µs)",
            &[
                ("SPAM (one worm)".to_string(), spam.clone()),
                ("software (binomial unicasts)".to_string(), soft.clone()),
            ],
            18,
        )
    );
    println!("  dests  SPAM(µs)  software(µs)  ratio");
    for (k, s, u) in &rows {
        println!(
            "  {:>5}  {:>8.2}  {:>12.2}  {:>5.2}x",
            k,
            s.mean,
            u.mean,
            u.mean / s.mean
        );
    }
    report::write_csv(
        std::path::Path::new("results/ablation_baseline_spam.csv"),
        "destinations,latency_us,ci_half_width_us,reps,met_1pct",
        &spam,
    )
    .expect("write csv");
    report::write_csv(
        std::path::Path::new("results/ablation_baseline_software.csv"),
        "destinations,latency_us,ci_half_width_us,reps,met_1pct",
        &soft,
    )
    .expect("write csv");
    println!("-> results/ablation_baseline_{{spam,software}}.csv");
}
