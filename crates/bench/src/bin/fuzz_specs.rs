//! Coverage-guided scenario fuzzing driver.
//!
//! ```text
//! cargo run -p spam-bench --bin fuzz_specs --release -- --quick
//! cargo run -p spam-bench --bin fuzz_specs --release -- --mutants 20000
//! cargo run -p spam-bench --bin fuzz_specs --release -- --seed 7 --promote
//! ```
//!
//! Seeds from the committed corpus (`scenarios/`), mutates, runs every
//! valid mutant under the four oracles, and tracks engine-coverage
//! novelty. Outputs:
//!
//! * `results/fuzz_coverage.csv` — per-signal table: every coverage bit
//!   and watermark, corpus baseline vs. post-fuzz value.
//! * `results/BENCH_fuzz_coverage.json` (+ root-level copy) — the
//!   machine-readable record. Deliberately contains *no wall-clock
//!   numbers*: the same seed over the same corpus reproduces the file
//!   byte for byte (throughput goes to stderr instead).
//! * `results/fuzz_promoted/*.scenario.json` — novel clean mutants,
//!   exactly as the oracles ran them. With `--promote` they are also
//!   copied into `scenarios/` for golden-pinning via `make_corpus`.
//! * `scenarios/regressions/*.scenario.json` — minimized
//!   oracle-violating specs, failing oracle named in the description.
//!   Any regression exits nonzero.

use spam_bench::report::{self, BenchJson};
use spam_bench::PointSummary;
use spam_fuzz::{fuzz, FuzzConfig, FuzzReport};
use std::io::Write as _;
use std::path::Path;
use wormsim::COVERAGE_BITS;

fn arg_value(args: &[String], flag: &str) -> Option<u64> {
    let i = args.iter().position(|a| a == flag)?;
    match args.get(i + 1).and_then(|v| v.parse().ok()) {
        Some(v) => Some(v),
        None => {
            eprintln!("fuzz_specs: {flag} takes an integer");
            std::process::exit(1);
        }
    }
}

fn point(x: f64, mean: f64) -> PointSummary {
    PointSummary {
        x,
        mean,
        ci_half_width: 0.0,
        reps: 1,
        target_met: true,
    }
}

fn write_coverage_csv(path: &Path, report: &FuzzReport) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "kind,signal,baseline,final,novel")?;
    for bit in COVERAGE_BITS {
        let before = report.baseline.has(bit.mask) as u8;
        let after = report.accumulated.has(bit.mask) as u8;
        writeln!(
            f,
            "bit,{},{before},{after},{}",
            bit.name,
            (after > before) as u8
        )?;
    }
    let base_marks = report.baseline.watermarks();
    for (b, a) in base_marks.iter().zip(report.accumulated.watermarks()) {
        debug_assert_eq!(b.name, a.name);
        writeln!(
            f,
            "watermark,{},{},{},{}",
            b.name,
            b.value,
            a.value,
            (a.value > b.value) as u8
        )?;
    }
    Ok(())
}

fn write_specs(
    dir: &Path,
    specs: &[(String, &spam_scenario::ScenarioSpec)],
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    for (name, spec) in specs {
        let path = dir.join(format!("{name}.scenario.json"));
        std::fs::write(&path, spec.to_json_string())?;
        eprintln!("fuzz_specs:   wrote {}", path.display());
    }
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let promote = args.iter().any(|a| a == "--promote");
    let cfg = FuzzConfig {
        seed: arg_value(&args, "--seed").unwrap_or(0x5bad_f00d),
        mutants: arg_value(&args, "--mutants").unwrap_or(if quick { 1000 } else { 10_000 })
            as usize,
        // Quick mode is CI's: time-boxed as a backstop, but sized to
        // finish far inside the box so the outputs stay deterministic.
        budget_ms: arg_value(&args, "--budget-ms").or(if quick { Some(240_000) } else { None }),
        max_promotions: 16,
    };

    let corpus_dir = Path::new("scenarios");
    let corpus = match spam_scenario::load_dir(corpus_dir) {
        Ok(c) => c.into_iter().map(|(_, s)| s).collect::<Vec<_>>(),
        Err(e) => {
            eprintln!("fuzz_specs: loading {}: {e}", corpus_dir.display());
            std::process::exit(1);
        }
    };
    eprintln!(
        "fuzz_specs: {} corpus seeds, {} mutants, seed 0x{:x} (quick: {quick})",
        corpus.len(),
        cfg.mutants,
        cfg.seed
    );

    let t0 = std::time::Instant::now();
    let report = fuzz(&corpus, &cfg);
    let elapsed = t0.elapsed();
    let s = &report.stats;
    // Wall-clock throughput is stderr-only: the JSON record must be
    // byte-identical across re-runs of the same seed.
    eprintln!(
        "fuzz_specs: {} mutants in {elapsed:.1?} ({:.0} mutants/s){}",
        s.mutants_run,
        s.mutants_run as f64 / elapsed.as_secs_f64().max(1e-9),
        if s.budget_exhausted {
            " — budget exhausted"
        } else {
            ""
        }
    );

    println!("coverage:");
    println!(
        "  bits lit      {:>4} baseline -> {:>4} final",
        report.baseline.bits_lit(),
        report.accumulated.bits_lit()
    );
    println!("  novel signals {:>4}", report.novel_vs_baseline.len());
    for sig in &report.novel_vs_baseline {
        println!("    + {sig}");
    }
    println!("mutants:");
    println!("  run           {:>6}", s.mutants_run);
    println!("  valid         {:>6}", s.valid);
    println!(
        "  rejected      {:>6}  (predictions: {} confirmed, {} cross-axis)",
        s.rejected, s.expect_confirmed, s.expect_missed
    );
    println!("  run-rejected  {:>6}", s.run_rejected);
    println!("  oracle fails  {:>6}", s.oracle_failures);
    if !report.spec_errors.is_empty() {
        println!("rejections by SpecError variant:");
        for (variant, n) in &report.spec_errors {
            println!("  {variant:<32} {n:>6}");
        }
    }

    let csv_path = Path::new("results/fuzz_coverage.csv");
    write_coverage_csv(csv_path, &report).expect("write coverage csv");

    let mut params: Vec<(String, String)> = vec![
        ("seed".into(), format!("0x{:x}", cfg.seed)),
        ("mutants".into(), s.mutants_run.to_string()),
        ("corpus_seeds".into(), corpus.len().to_string()),
        ("quick".into(), quick.to_string()),
        ("novel_signals".into(), report.novel_vs_baseline.join(" ")),
    ];
    for (variant, n) in &report.spec_errors {
        params.push((format!("rejected.{variant}"), n.to_string()));
    }
    let bench = BenchJson {
        name: "fuzz_coverage".into(),
        params,
        series: vec![
            (
                "bits_lit".into(),
                vec![
                    point(0.0, report.baseline.bits_lit() as f64),
                    point(1.0, report.accumulated.bits_lit() as f64),
                ],
            ),
            (
                "mutants".into(),
                vec![
                    point(0.0, s.valid as f64),
                    point(1.0, s.rejected as f64),
                    point(2.0, s.oracle_failures as f64),
                    point(3.0, report.promoted.len() as f64),
                ],
            ),
        ],
    };
    let json_path =
        report::write_bench_json(Path::new("results"), &bench).expect("write bench json");
    println!("-> {}", csv_path.display());
    println!("-> {} (+ ./BENCH_fuzz_coverage.json)", json_path.display());

    let promoted: Vec<(String, &spam_scenario::ScenarioSpec)> = report
        .promoted
        .iter()
        .map(|p| (p.spec.name.clone(), &p.spec))
        .collect();
    if !promoted.is_empty() {
        write_specs(Path::new("results/fuzz_promoted"), &promoted).expect("write promoted specs");
        if promote {
            // Opt-in: drop novel specs straight into the corpus. The
            // golden pins (corpus length, per-spec counters) then need
            // regenerating via examples/make_corpus.
            write_specs(corpus_dir, &promoted).expect("promote specs into corpus");
        }
    }

    if !report.regressions.is_empty() {
        let regressions: Vec<(String, &spam_scenario::ScenarioSpec)> = report
            .regressions
            .iter()
            .enumerate()
            .map(|(i, r)| (format!("regress_{i:03}_{}", r.violation), &r.spec))
            .collect();
        write_specs(Path::new("scenarios/regressions"), &regressions)
            .expect("write regression specs");
        eprintln!(
            "fuzz_specs: {} oracle violation(s) — minimized specs in scenarios/regressions/",
            report.regressions.len()
        );
        std::process::exit(2);
    }
}
