//! The §4 in-text comparison: SPAM broadcast versus software multicast.
//!
//! > "SPAM incurs a latency of under 14 µs for a single broadcast in a 256
//! > node network. In contrast, the theoretical lower bound for
//! > software-based multicast to d destinations is ⌈log₂(d+1)⌉
//! > (accounting for startup latency alone), implying a lower bound of
//! > 90 µs in this case; a more than six-fold difference."
//!
//! Beyond the analytic bound, this module also *simulates* the software
//! scheme (binomial unicast-based multicast over up*/down* routing), which
//! is strictly slower than the bound — making the comparison conservative
//! in SPAM's favour exactly as the paper's argument requires.

use crate::{paper_labeling, paper_network};
use baselines::{software_multicast_lower_bound, UnicastMulticast, UpDownUnicastRouting};
use desim::{Duration, Time};
use netgraph::NodeId;
use simstats::{ConfidenceLevel, PrecisionController, RunningStats};
use spam_core::SpamRouting;
use wormsim::{MessageSpec, NetworkSim, SimConfig};

/// One row of the broadcast comparison table.
#[derive(Debug, Clone, serde::Serialize)]
pub struct BroadcastRow {
    /// Network size (processors).
    pub nodes: usize,
    /// Mean SPAM broadcast latency, µs.
    pub spam_us: f64,
    /// Simulated binomial unicast-multicast makespan, µs.
    pub software_us: f64,
    /// Analytic lower bound with d = nodes − 1, µs.
    pub bound_d_minus_1_us: f64,
    /// Analytic lower bound with d = nodes (the paper's arithmetic), µs.
    pub bound_d_us: f64,
    /// `bound_d_us / spam_us` — the paper's "more than six-fold" ratio.
    pub speedup_vs_bound: f64,
    /// `software_us / spam_us` — the end-to-end measured ratio.
    pub speedup_vs_software: f64,
    /// SPAM-arm replications (CI-controlled).
    pub reps: u64,
    /// 95 % CI half-width of the SPAM mean, µs.
    pub spam_ci_us: f64,
    /// Whether the SPAM arm met its precision target within budget.
    pub spam_target_met: bool,
    /// Software-arm replications (fixed count, not CI-controlled).
    pub software_reps: u64,
    /// 95 % CI half-width of the software mean, µs.
    pub software_ci_us: f64,
}

/// SPAM broadcast latency (µs) for one seeded replication.
pub fn spam_broadcast_us(switches: usize, seed: u64) -> f64 {
    let topo = paper_network(switches, crate::split_seed(seed, 1));
    let ud = paper_labeling(&topo);
    let spam = SpamRouting::new(&topo, &ud);
    let procs: Vec<NodeId> = topo.processors().collect();
    let src = procs[seed as usize % procs.len()];
    let dests: Vec<NodeId> = procs.iter().copied().filter(|&p| p != src).collect();
    let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper());
    sim.submit(MessageSpec::multicast(src, dests, 128)).unwrap();
    let out = sim.run();
    assert!(out.all_delivered());
    out.messages[0].latency().unwrap().as_us_f64()
}

/// Simulated software (binomial unicast) broadcast makespan (µs).
pub fn software_broadcast_us(switches: usize, seed: u64) -> f64 {
    let topo = paper_network(switches, crate::split_seed(seed, 1));
    let ud = paper_labeling(&topo);
    let router = UpDownUnicastRouting::new(&topo, &ud);
    let procs: Vec<NodeId> = topo.processors().collect();
    let src = procs[seed as usize % procs.len()];
    let dests: Vec<NodeId> = procs.iter().copied().filter(|&p| p != src).collect();
    let mut um = UnicastMulticast::new(src, &dests, 128, Duration::from_us(10));
    let mut sim = NetworkSim::new(&topo, router, SimConfig::paper());
    for s in um.initial_sends(Time::ZERO) {
        sim.submit(s).unwrap();
    }
    let out = sim.run_with_hook(&mut um);
    assert!(out.all_delivered());
    um.makespan(&out).unwrap().as_us_f64()
}

/// Builds the comparison row for one network size.
pub fn run_row(switches: usize, target_rel: f64, max_reps: u64, seed: u64) -> BroadcastRow {
    let mut spam_ctl = PrecisionController::new(target_rel, ConfidenceLevel::P95, 3, max_reps);
    crate::sweep::replicate_parallel(&mut spam_ctl, crate::split_seed(seed, 10), |s| {
        spam_broadcast_us(switches, s)
    });
    let mut soft = RunningStats::new();
    // The software scheme is far slower per replication; a handful of
    // replications suffices for a ratio that is stable to a few percent.
    let soft_reps = 5.min(max_reps);
    for i in 0..soft_reps {
        soft.push(software_broadcast_us(
            switches,
            crate::split_seed(seed, 20 + i),
        ));
    }
    let d = (switches - 1) as u64;
    let startup = Duration::from_us(10);
    let spam_us = spam_ctl.stats().mean();
    let software_us = soft.mean();
    let bound_d_minus_1_us = software_multicast_lower_bound(d, startup).as_us_f64();
    let bound_d_us = software_multicast_lower_bound(d + 1, startup).as_us_f64();
    BroadcastRow {
        nodes: switches,
        spam_us,
        software_us,
        bound_d_minus_1_us,
        bound_d_us,
        speedup_vs_bound: bound_d_us / spam_us,
        speedup_vs_software: software_us / spam_us,
        reps: spam_ctl.count(),
        spam_ci_us: spam_ctl.interval().map(|ci| ci.half_width).unwrap_or(0.0),
        spam_target_met: spam_ctl.met_target(),
        software_reps: soft_reps,
        software_ci_us: simstats::ConfidenceInterval::from_stats(&soft, ConfidenceLevel::P95)
            .map(|ci| ci.half_width)
            .unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miniature_comparison_has_the_paper_shape() {
        // 32 nodes: SPAM ~11 µs, bound = ceil(log2(32+..)) * 10 µs = 50-60,
        // simulated software slower than the bound.
        let row = run_row(32, 0.05, 16, 77);
        assert!(row.spam_us < 14.0, "SPAM broadcast {} µs", row.spam_us);
        assert_eq!(row.bound_d_minus_1_us, 50.0); // d=31 -> 5 phases
        assert_eq!(row.bound_d_us, 60.0); // d=32 -> 6 phases
        assert!(
            row.software_us >= row.bound_d_minus_1_us,
            "simulated software {} beat its own lower bound {}",
            row.software_us,
            row.bound_d_minus_1_us
        );
        assert!(row.speedup_vs_bound > 3.0);
        assert!(row.speedup_vs_software > 3.0);
    }
}
