//! The latency-anatomy report: *where* each routing arm spends its
//! end-to-end latency, per fault regime.
//!
//! The paper's headline (SPAM beats software multicast by 3.4–5.0× under
//! faults) is a ratio of aggregate means; this experiment explains the
//! ratio. Each arm runs the same mixed unicast/multicast workload with
//! tracing enabled; every delivered message's latency is decomposed —
//! exactly, in integer nanoseconds — into startup, blocking, route-setup,
//! wire, and stall phases by [`spam_trace::decompose_run`], and the
//! per-phase distributions are reported per `(arm, regime)`. The runner
//! re-asserts the exact-partition invariant on every message before
//! reporting anything: a decomposition that does not sum to the measured
//! latency is a bug, not a figure.
//!
//! Regimes:
//! * `fault_free` — the pristine fabric;
//! * `links20` — 20 % of links statically dead (both arms route the
//!   degraded fabric after reconfiguration);
//! * `storm20` — a live mid-run storm killing 20 % of links (SPAM only:
//!   live reconfiguration is the hardware arm's regime by construction).

use crate::{split_seed, PointSummary};
use spam_scenario::{
    ArrivalSpec, EngineSpec, FaultModelSpec, FaultsSpec, PolicySpec, RoutingSpec, ScenarioSpec,
    StrategySpec, TopologySpec, TrafficSpec,
};
use spam_trace::{decompose_run, summarize, AnatomySummary, MessageAnatomy};
use std::fmt::Write as _;
use std::path::Path;
use wormsim::LatencyParams;

/// Phase names, in pipeline order; also the CSV row order.
pub const PHASES: [&str; 5] = ["startup", "blocking", "route_setup", "wire", "stall"];

/// One `(arm, regime)` cell of the report.
#[derive(Debug, Clone)]
pub struct AnatomyCell {
    /// Routing arm: `spam` or `software`.
    pub arm: &'static str,
    /// Fault regime: `fault_free`, `links20`, or `storm20`.
    pub regime: &'static str,
    /// Aggregated decomposition over every delivered message of every
    /// replication.
    pub summary: AnatomySummary,
}

fn arm_routing(arm: &str) -> RoutingSpec {
    match arm {
        "spam" => RoutingSpec::Spam {
            policy: PolicySpec::MinResidualDistance,
        },
        "software" => RoutingSpec::SoftwareMulticast,
        other => unreachable!("unknown arm {other}"),
    }
}

fn regime_faults(regime: &str, seed: u64) -> FaultsSpec {
    match regime {
        "fault_free" => FaultsSpec::None,
        "links20" => FaultsSpec::Static {
            model: FaultModelSpec::IidLinks { rate: 0.20 },
            seed,
        },
        "storm20" => FaultsSpec::Storm {
            model: FaultModelSpec::IidLinks { rate: 0.20 },
            seed,
            window_start_us: 20,
            window_end_us: 120,
            bursts: 3,
        },
        other => unreachable!("unknown regime {other}"),
    }
}

fn spec_for(arm: &str, regime: &str, switches: usize, messages: usize) -> ScenarioSpec {
    ScenarioSpec {
        name: format!("anatomy-{arm}-{regime}"),
        description: "latency-anatomy workload (mixed unicast/multicast)".to_string(),
        topology: TopologySpec {
            switches,
            seed: 9,
            side: None,
            strategy: StrategySpec::ConnectedGrowth,
            ports: 8,
        },
        routing: arm_routing(arm),
        traffic: TrafficSpec::Mixed {
            unicast_fraction: 0.5,
            multicast_dests: 8,
            rate_per_node_per_us: 0.02,
            len: 128,
            messages,
            arrival: ArrivalSpec::Poisson,
        },
        faults: regime_faults(regime, 0x5071),
        engine: EngineSpec {
            trace: true,
            ..EngineSpec::default()
        },
        seed: 23,
        replications: 1,
        horizon_us: None,
    }
}

/// The `(arm, regime)` grid: both arms on `fault_free` and `links20`,
/// SPAM alone on the live `storm20`.
pub const GRID: [(&str, &str); 5] = [
    ("spam", "fault_free"),
    ("software", "fault_free"),
    ("spam", "links20"),
    ("software", "links20"),
    ("spam", "storm20"),
];

/// Runs the full grid. `quick` shrinks the network, message count, and
/// replication count for CI. Panics if any delivered message's phases
/// fail to sum exactly to its end-to-end latency — the report's defining
/// invariant.
pub fn run_latency_anatomy(quick: bool) -> Vec<AnatomyCell> {
    let (switches, messages, reps) = if quick { (32, 100, 1) } else { (64, 250, 3) };
    let latency = LatencyParams::paper();
    GRID.iter()
        .map(|&(arm, regime)| {
            let mut anatomies: Vec<MessageAnatomy> = Vec::new();
            for rep in 0..reps {
                let mut spec = spec_for(arm, regime, switches, messages);
                spec.seed = split_seed(spec.seed, rep as u64);
                let (out, topo) = spam_scenario::run_once_with_topology(&spec, rep, None)
                    .unwrap_or_else(|e| panic!("{}: {e:?}", spec.name));
                let delivered = out.messages.iter().filter(|m| m.is_complete()).count();
                let decomposed =
                    decompose_run(&topo, &out, &latency, spec.engine.extra_header_flits);
                assert_eq!(
                    decomposed.len(),
                    delivered,
                    "{}: every delivered message must decompose",
                    spec.name
                );
                for a in &decomposed {
                    assert_eq!(
                        a.phase_sum(),
                        a.end_to_end,
                        "{}: phases must sum exactly for {:?}",
                        spec.name,
                        a.msg
                    );
                }
                anatomies.extend(decomposed);
            }
            AnatomyCell {
                arm,
                regime,
                summary: summarize(&anatomies)
                    .unwrap_or_else(|| panic!("{arm}/{regime}: no delivered messages")),
            }
        })
        .collect()
}

/// Writes the decomposition table as CSV:
/// `arm,regime,phase,mean_us,p50_us,p99_us,share,messages`.
pub fn write_anatomy_csv(path: &Path, cells: &[AnatomyCell]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut body = String::from("arm,regime,phase,mean_us,p50_us,p99_us,share,messages\n");
    for c in cells {
        for p in &c.summary.phases {
            writeln!(
                body,
                "{},{},{},{:.4},{:.4},{:.4},{:.4},{}",
                c.arm,
                c.regime,
                p.phase,
                p.mean_us,
                p.p50_us,
                p.p99_us,
                p.share,
                c.summary.messages
            )
            .expect("string write");
        }
    }
    std::fs::write(path, body)
}

/// The machine-readable record: one series per `(arm, regime)`, one
/// point per phase (`x` = phase index in [`PHASES`] order, `mean` =
/// mean µs, `reps` = messages aggregated).
pub fn anatomy_bench_json(cells: &[AnatomyCell], quick: bool) -> crate::report::BenchJson {
    crate::report::BenchJson {
        name: "latency_anatomy".to_string(),
        params: vec![
            ("quick".to_string(), quick.to_string()),
            ("phases".to_string(), PHASES.join(",")),
            ("workload".to_string(), "mixed u0.5 m8 len128".to_string()),
            (
                "regimes".to_string(),
                "fault_free,links20,storm20".to_string(),
            ),
        ],
        series: cells
            .iter()
            .map(|c| {
                (
                    format!("{}@{}", c.arm, c.regime),
                    c.summary
                        .phases
                        .iter()
                        .enumerate()
                        .map(|(i, p)| PointSummary {
                            x: i as f64,
                            mean: p.mean_us,
                            ci_half_width: 0.0,
                            reps: c.summary.messages as u64,
                            target_met: true,
                        })
                        .collect(),
                )
            })
            .collect(),
    }
}

/// Renders the table for the terminal.
pub fn anatomy_table(cells: &[AnatomyCell]) -> String {
    let mut out = String::new();
    writeln!(
        out,
        "  {:<10} {:<11} {:>6} {:>10} | {:>9} {:>9} {:>11} {:>9} {:>9}",
        "arm", "regime", "msgs", "e2e µs", "startup", "blocking", "route_setup", "wire", "stall"
    )
    .unwrap();
    for c in cells {
        let shares: Vec<String> = c
            .summary
            .phases
            .iter()
            .map(|p| format!("{:.1}%", p.share * 100.0))
            .collect();
        writeln!(
            out,
            "  {:<10} {:<11} {:>6} {:>10.1} | {:>9} {:>9} {:>11} {:>9} {:>9}",
            c.arm,
            c.regime,
            c.summary.messages,
            c.summary.end_to_end_us.0,
            shares[0],
            shares[1],
            shares[2],
            shares[3],
            shares[4],
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_grid_produces_exact_decompositions() {
        // `run_latency_anatomy` asserts exactness internally; surviving
        // the call is the property. Check shape on top.
        let cells = run_latency_anatomy(true);
        assert_eq!(cells.len(), GRID.len());
        for c in &cells {
            assert_eq!(c.summary.phases.len(), PHASES.len());
            assert!(c.summary.messages > 0);
            let share_sum: f64 = c.summary.phases.iter().map(|p| p.share).sum();
            assert!(
                (share_sum - 1.0).abs() < 1e-9,
                "{}/{}: shares sum to {share_sum}",
                c.arm,
                c.regime
            );
        }
        // The mechanism the report exists to show: software multicast
        // expands each multicast into a cascade of engine-level
        // unicasts, every one re-paying the full 10 µs startup; SPAM
        // delivers the same application workload as single worms. The
        // aggregate startup bill is therefore proportional to the
        // engine-message count.
        let messages = |arm: &str| {
            cells
                .iter()
                .find(|c| c.arm == arm && c.regime == "fault_free")
                .unwrap()
                .summary
                .messages
        };
        assert!(
            messages("software") > 2 * messages("spam"),
            "software multicast re-pays startup per forwarding stage: \
             {} engine messages vs SPAM's {}",
            messages("software"),
            messages("spam")
        );
    }

    #[test]
    fn csv_and_json_render() {
        let cells = run_latency_anatomy(true);
        let dir = std::env::temp_dir().join("spam_anatomy_test");
        let csv = dir.join("latency_anatomy.csv");
        write_anatomy_csv(&csv, &cells).unwrap();
        let body = std::fs::read_to_string(&csv).unwrap();
        assert!(body.starts_with("arm,regime,phase,"));
        // 5 phases per cell plus the header.
        assert_eq!(body.lines().count(), 1 + cells.len() * PHASES.len());
        let bench = anatomy_bench_json(&cells, true);
        assert_eq!(bench.series.len(), cells.len());
        let table = anatomy_table(&cells);
        assert!(table.contains("spam"));
        assert!(table.contains("software"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
