//! Parallel replication control.
//!
//! Each replication is an independent seeded simulation (no shared mutable
//! state), so they fan out perfectly across threads with
//! `std::thread::scope`. Batches of `available_parallelism` replications
//! run between stopping-rule checks; seeds are consumed in order, so the
//! final statistics are independent of thread scheduling.

use simstats::PrecisionController;

/// The generic parallel replication driver every sweep builds on: runs
/// seeded replications of `rep` in deterministic seed order, fanning each
/// batch of `available_parallelism` runs across scoped threads, and feeds
/// the results **in seed order** to `consume`, which folds them into the
/// caller's stopping state and returns `true` to stop. Results past the
/// stop point (the rest of the final batch) are discarded, so the
/// statistics are independent of thread scheduling.
///
/// `rep(seed)` must be a pure function of its seed.
pub fn replicate_parallel_with<T, F>(base_seed: u64, rep: F, mut consume: impl FnMut(T) -> bool)
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let batch = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut next = 0u64;
    loop {
        let seeds: Vec<u64> = (0..batch as u64)
            .map(|i| crate::split_seed(base_seed, next + i))
            .collect();
        next += batch as u64;
        let results: Vec<T> = std::thread::scope(|s| {
            let rep = &rep;
            let handles: Vec<_> = seeds
                .iter()
                .map(|&seed| s.spawn(move || rep(seed)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("replication panicked"))
                .collect()
        });
        for r in results {
            if consume(r) {
                return;
            }
        }
    }
}

/// Runs seeded replications of `rep` in parallel until `controller` is
/// satisfied. Returns the number of replications executed.
///
/// `rep(seed)` must be a pure function of its seed.
pub fn replicate_parallel<F>(controller: &mut PrecisionController, base_seed: u64, rep: F) -> u64
where
    F: Fn(u64) -> f64 + Sync,
{
    if !controller.satisfied() {
        replicate_parallel_with(base_seed, rep, |r| {
            controller.push(r);
            controller.satisfied()
        });
    }
    controller.count()
}

/// Sequential variant for contexts where the caller already parallelizes
/// (criterion benches).
pub fn replicate_sequential<F>(controller: &mut PrecisionController, base_seed: u64, rep: F) -> u64
where
    F: Fn(u64) -> f64,
{
    let mut i = 0u64;
    while !controller.satisfied() {
        controller.push(rep(crate::split_seed(base_seed, i)));
        i += 1;
    }
    controller.count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use simstats::{ConfidenceLevel, PrecisionController};

    fn noisy(seed: u64) -> f64 {
        // Deterministic pseudo-noise around 100.
        100.0 + ((seed % 21) as f64 - 10.0)
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let mut c1 = PrecisionController::new(0.02, ConfidenceLevel::P95, 3, 500);
        let n1 = replicate_sequential(&mut c1, 7, noisy);
        let mut c2 = PrecisionController::new(0.02, ConfidenceLevel::P95, 3, 500);
        let n2 = replicate_parallel(&mut c2, 7, noisy);
        // The parallel runner may overshoot by at most one batch, but the
        // mean must agree on the common prefix and both meet the target.
        assert!(c1.met_target());
        assert!(c2.met_target());
        assert!(n2 >= n1 || n2 + 64 >= n1);
        assert!((c1.stats().mean() - c2.stats().mean()).abs() < 2.0);
    }

    #[test]
    fn constant_function_stops_at_min_reps() {
        let mut c = PrecisionController::new(0.01, ConfidenceLevel::P95, 3, 100);
        let n = replicate_parallel(&mut c, 1, |_| 42.0);
        assert!(n >= 3);
        assert!(c.met_target());
        assert_eq!(c.stats().mean(), 42.0);
    }
}
