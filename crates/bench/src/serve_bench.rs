//! Cold-vs-warm service latency over the committed corpus.
//!
//! Starts a real [`spam_serve::Daemon`], attaches a client over a unix
//! socketpair, and replays every committed golden scenario through it
//! **twice in one process**. Pass 1 builds every artifact (cold); pass 2
//! must be served from the content-addressed cache (warm). The measured
//! quantity is client-observed request latency — send `run`, read the
//! last result line — which is exactly what the cache is supposed to
//! shrink. The run doubles as the CI smoke: it fails unless pass 2 hit
//! the cache and produced byte-identical digests, and unless the daemon
//! shuts down cleanly.

use crate::report::BenchJson;
use crate::PointSummary;
use spam_scenario::json::{parse, Json};
use spam_scenario::{load_dir, ScenarioSpec};
use spam_serve::{CacheConfig, Daemon, ServeConfig, ServeCore};
use std::io::{BufRead, BufReader, Lines, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Instant;

/// One scenario's measured request latencies (whole request: all
/// replications, queue wait included — the client's view).
#[derive(Debug, Clone)]
pub struct ScenarioCost {
    /// Scenario name from the spec.
    pub name: String,
    /// Replications executed (result lines per request).
    pub reps: u32,
    /// Pass-1 latency, µs (every artifact built).
    pub cold_us: f64,
    /// Pass-2 latency, µs (every artifact cached).
    pub warm_us: f64,
}

/// Aggregate outcome of the two-pass replay.
#[derive(Debug)]
pub struct ServeBenchOutcome {
    /// Per-scenario costs, corpus order.
    pub per_scenario: Vec<ScenarioCost>,
    /// Cache hits after both passes.
    pub hits: u64,
    /// Cache misses after both passes (all from pass 1).
    pub misses: u64,
}

impl ServeBenchOutcome {
    /// Total cold-pass latency, µs.
    pub fn total_cold_us(&self) -> f64 {
        self.per_scenario.iter().map(|c| c.cold_us).sum()
    }

    /// Total warm-pass latency, µs.
    pub fn total_warm_us(&self) -> f64 {
        self.per_scenario.iter().map(|c| c.warm_us).sum()
    }
}

fn expect_line(lines: &mut Lines<BufReader<UnixStream>>, what: &str) -> String {
    let line = lines
        .next()
        .unwrap_or_else(|| panic!("daemon closed the stream while waiting for {what}"))
        .unwrap_or_else(|e| panic!("read error waiting for {what}: {e}"));
    assert!(
        !line.contains("\"type\":\"error\""),
        "daemon rejected {what}: {line}"
    );
    line
}

/// Sends one `run` and reads until its last replication's result line,
/// returning (elapsed µs, per-rep digests).
fn timed_request(
    tx: &mut UnixStream,
    lines: &mut Lines<BufReader<UnixStream>>,
    spec: &ScenarioSpec,
) -> (f64, Vec<String>) {
    let reps = spec.replications.max(1) as usize;
    let req = format!(
        r#"{{"op":"run","spec":{}}}"#,
        spec.to_json().to_string_compact()
    );
    let start = Instant::now();
    writeln!(tx, "{req}").expect("request written");
    let queued = expect_line(lines, &spec.name);
    assert!(queued.contains("\"queued\""), "{queued}");
    let mut digests = Vec::with_capacity(reps);
    while digests.len() < reps {
        let line = expect_line(lines, &spec.name);
        if !line.contains("\"type\":\"result\"") {
            continue;
        }
        let doc = parse(&line).expect("result lines parse");
        digests.push(
            doc.get("digest")
                .and_then(Json::as_str)
                .expect("digest field")
                .to_string(),
        );
    }
    (start.elapsed().as_secs_f64() * 1e6, digests)
}

fn cache_stats_of(tx: &mut UnixStream, lines: &mut Lines<BufReader<UnixStream>>) -> (u64, u64) {
    writeln!(tx, r#"{{"op":"stats"}}"#).expect("stats written");
    let line = expect_line(lines, "stats");
    let doc = parse(&line).expect("stats line parses");
    let cache = doc.get("cache").expect("cache object");
    let get = |k: &str| {
        cache
            .get(k)
            .and_then(|v| v.as_num()?.as_u64())
            .unwrap_or_else(|| panic!("stats.cache.{k} missing: {line}"))
    };
    (get("hits"), get("misses"))
}

/// Replays `corpus_dir` twice through one daemon and returns the
/// measured costs. Panics (failing the smoke) if the warm pass misses
/// the cache, any digest diverges between passes, or shutdown is
/// unclean.
pub fn run(corpus_dir: &Path, limit: Option<usize>) -> ServeBenchOutcome {
    let mut specs: Vec<ScenarioSpec> = load_dir(corpus_dir)
        .expect("corpus loads")
        .into_iter()
        .map(|(_, s)| s)
        .collect();
    if let Some(n) = limit {
        specs.truncate(n);
    }
    assert!(!specs.is_empty(), "empty corpus");

    let daemon = Daemon::start(ServeCore::new(ServeConfig {
        cache: CacheConfig {
            max_entries: 256,
            max_bytes: usize::MAX,
        },
        ..ServeConfig::default()
    }));
    let (client, server) = UnixStream::pair().expect("socketpair");
    daemon.attach(server.try_clone().expect("server reader"), server);
    let mut tx = client.try_clone().expect("client writer");
    let mut lines = BufReader::new(client).lines();

    writeln!(tx, r#"{{"op":"hello","client":"serve-bench"}}"#).expect("hello written");
    expect_line(&mut lines, "hello");

    let mut cold = Vec::with_capacity(specs.len());
    for spec in &specs {
        cold.push(timed_request(&mut tx, &mut lines, spec));
    }
    let (hits_cold, misses_cold) = cache_stats_of(&mut tx, &mut lines);
    assert!(misses_cold > 0, "cold pass built nothing?");

    let mut per_scenario = Vec::with_capacity(specs.len());
    for (spec, (cold_us, cold_digests)) in specs.iter().zip(&cold) {
        let (warm_us, warm_digests) = timed_request(&mut tx, &mut lines, spec);
        assert_eq!(
            &warm_digests, cold_digests,
            "{}: warm digests diverged from cold",
            spec.name
        );
        per_scenario.push(ScenarioCost {
            name: spec.name.clone(),
            reps: spec.replications.max(1),
            cold_us: *cold_us,
            warm_us,
        });
    }
    let (hits, misses) = cache_stats_of(&mut tx, &mut lines);
    assert!(
        hits > hits_cold,
        "warm pass recorded no cache hits ({hits} vs {hits_cold})"
    );
    assert_eq!(misses, misses_cold, "warm pass built artifacts");

    writeln!(tx, r#"{{"op":"shutdown"}}"#).expect("shutdown written");
    daemon.join().expect("clean shutdown");
    ServeBenchOutcome {
        per_scenario,
        hits,
        misses,
    }
}

/// Packs the outcome as the standard `BENCH_serve.json` record: one
/// cold and one warm series over scenario index, totals in `params`.
/// Warm points set `target_met` when warm beat cold for that scenario.
pub fn serve_bench_json(out: &ServeBenchOutcome) -> BenchJson {
    let point = |i: usize, us: f64, reps: u32, met: bool| PointSummary {
        x: i as f64,
        mean: us,
        ci_half_width: 0.0,
        reps: reps as u64,
        target_met: met,
    };
    let cold: Vec<PointSummary> = out
        .per_scenario
        .iter()
        .enumerate()
        .map(|(i, c)| point(i, c.cold_us, c.reps, true))
        .collect();
    let warm: Vec<PointSummary> = out
        .per_scenario
        .iter()
        .enumerate()
        .map(|(i, c)| point(i, c.warm_us, c.reps, c.warm_us < c.cold_us))
        .collect();
    BenchJson {
        name: "serve".to_string(),
        params: vec![
            ("scenarios".to_string(), out.per_scenario.len().to_string()),
            (
                "scenario_names".to_string(),
                out.per_scenario
                    .iter()
                    .map(|c| c.name.as_str())
                    .collect::<Vec<_>>()
                    .join(","),
            ),
            ("cache_hits".to_string(), out.hits.to_string()),
            ("cache_misses".to_string(), out.misses.to_string()),
            (
                "total_cold_us".to_string(),
                format!("{:.1}", out.total_cold_us()),
            ),
            (
                "total_warm_us".to_string(),
                format!("{:.1}", out.total_warm_us()),
            ),
            (
                "speedup".to_string(),
                format!("{:.2}", out.total_cold_us() / out.total_warm_us().max(1.0)),
            ),
        ],
        series: vec![("cold_us".to_string(), cold), ("warm_us".to_string(), warm)],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_pass_replay_hits_and_matches() {
        let out = run(Path::new("../../scenarios"), Some(3));
        assert_eq!(out.per_scenario.len(), 3);
        assert!(out.hits > 0);
        assert!(out.total_cold_us() > 0.0 && out.total_warm_us() > 0.0);
        let bench = serve_bench_json(&out);
        assert_eq!(bench.series.len(), 2);
        assert_eq!(bench.series[0].1.len(), 3);
    }
}
