//! The fault sweep — SPAM beyond the paper's pristine networks.
//!
//! Sweeps link-fault rate × multicast size on the §4 irregular networks:
//! each replication draws a fresh 64-switch lattice network, kills links
//! i.i.d. at the given rate, reconfigures the largest surviving component
//! (up*/down* relabeling with root re-selection, crate `spam-faults`),
//! and then measures one multicast to destinations drawn from the
//! survivors — SPAM's single multi-head worm versus binomial software
//! multicast over classic up*/down* unicasts, both routed on the *same*
//! degraded instance. Replication control follows the paper's §4 protocol
//! (95 % CI within the target fraction of the mean).
//!
//! The headline question: does SPAM's startup advantage survive when the
//! network degrades and routes lengthen? (It does — the gap *widens*,
//! because software multicast pays per-phase startups on ever-longer
//! paths, while SPAM still pays one.)

use crate::{paper_network, PointSummary};
use baselines::{UnicastMulticast, UpDownUnicastRouting};
use netgraph::NodeId;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use simstats::PrecisionController;
use spam_core::SpamRouting;
use spam_faults::{DegradedNetwork, FaultModel};
use wormsim::{MessageSpec, NetworkSim, SimConfig};

/// Configuration of a fault sweep.
#[derive(Debug, Clone)]
pub struct FaultSweepConfig {
    /// Switches (= processors) in the pristine network.
    pub switches: usize,
    /// Link-fault rates to sweep (probability each link is dead).
    pub rates: Vec<f64>,
    /// Multicast destination counts to sweep (clamped per replication to
    /// the survivors available).
    pub dest_counts: Vec<usize>,
    /// Flits per message.
    pub len: u32,
    /// Relative CI target (the paper uses 0.01).
    pub target_rel: f64,
    /// Replication budget per point and arm.
    pub max_reps: u64,
    /// RNG stream.
    pub seed: u64,
}

impl FaultSweepConfig {
    /// The default sweep: 64-switch networks, fault rates 0–25 %,
    /// multicast sizes 8 and 32, 128-flit messages, 1 % CI.
    pub fn paper(switches: usize) -> Self {
        FaultSweepConfig {
            switches,
            rates: vec![0.0, 0.05, 0.10, 0.15, 0.20, 0.25],
            dest_counts: vec![8, 32],
            len: 128,
            target_rel: 0.01,
            max_reps: 600,
            seed: 0xFA_017,
        }
    }

    /// A fast, loose-CI variant for smoke tests and CI.
    pub fn quick(switches: usize) -> Self {
        FaultSweepConfig {
            rates: vec![0.0, 0.10, 0.20],
            target_rel: 0.05,
            max_reps: 24,
            ..Self::paper(switches)
        }
    }
}

/// One finished sweep cell: both arms at a (rate, dest-count) point.
#[derive(Debug, Clone)]
pub struct FaultPoint {
    /// Link-fault rate.
    pub rate: f64,
    /// Requested destination count.
    pub dests: usize,
    /// SPAM single-worm multicast latency (µs); `x` is the rate.
    pub spam: PointSummary,
    /// Binomial software multicast over up*/down* unicasts (µs).
    pub software: PointSummary,
    /// Mean fraction of nodes surviving into the largest component.
    pub component_fraction: f64,
}

/// One degraded instance: the reconfigured network plus a source and a
/// destination set drawn from its largest component. Deterministic in
/// `(switches, rate, dests, seed)` so the SPAM and software arms of the
/// comparison see identical damage and identical destination sets.
fn degraded_instance(
    switches: usize,
    rate: f64,
    dests: usize,
    seed: u64,
) -> (DegradedNetwork, NodeId, Vec<NodeId>) {
    // A salt loop guards the (vanishing at these rates) case where the
    // largest component is too small to host a multicast.
    for salt in 0..32u64 {
        let s = crate::split_seed(seed, 0xFA + salt);
        let base = paper_network(switches, crate::split_seed(s, 0xA));
        let plan = FaultModel::IidLinks { rate }.sample(&base, None, crate::split_seed(s, 0xB));
        let net = DegradedNetwork::build(&base, &plan, None);
        let procs = match net.largest() {
            Some(c) => c.processors(&net.topo),
            None => continue,
        };
        if procs.len() < 2 {
            continue;
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(crate::split_seed(s, 0xC));
        let src = procs[rng.gen_range(0..procs.len())];
        let mut others: Vec<NodeId> = procs.into_iter().filter(|&p| p != src).collect();
        others.shuffle(&mut rng);
        others.truncate(dests);
        return (net, src, others);
    }
    panic!("no routable component after 32 attempts (rate {rate}, seed {seed})");
}

/// One paired replication: both arms measured on **one** degraded
/// instance (the topology, fault plan, relabeling, and destination draw
/// are built once and shared). Returns `(spam µs, software µs)`. Panics
/// if either scheme fails to deliver to every reachable destination —
/// the reconfiguration guarantee this sweep certifies.
pub fn paired_replication(
    switches: usize,
    rate: f64,
    dests: usize,
    len: u32,
    seed: u64,
) -> (f64, f64) {
    let (net, src, targets) = degraded_instance(switches, rate, dests, seed);
    let comp = net.largest().expect("instance has a component");
    let cfg = SimConfig::paper();

    // Arm 1: SPAM, one multi-head worm.
    let spam = SpamRouting::new(&net.topo, &comp.labeling);
    let mut sim = NetworkSim::new(&net.topo, spam, cfg);
    sim.submit(MessageSpec::multicast(src, targets.clone(), len))
        .unwrap();
    let out = sim.run();
    assert!(
        out.all_delivered(),
        "SPAM failed on degraded network (rate {rate}, seed {seed}): error {:?}, deadlock {:?}",
        out.error,
        out.deadlock
    );
    let spam_us = out.messages[0].latency().expect("delivered").as_us_f64();

    // Arm 2: binomial software multicast over up*/down* unicasts.
    let router = UpDownUnicastRouting::new(&net.topo, &comp.labeling);
    let mut um = UnicastMulticast::new(src, &targets, len, cfg.latency.startup);
    let mut sim = NetworkSim::new(&net.topo, router, cfg);
    for spec in um.initial_sends(desim::Time::ZERO) {
        sim.submit(spec).unwrap();
    }
    let out = sim.run_with_hook(&mut um);
    assert!(
        out.all_delivered(),
        "up*/down* software multicast failed (rate {rate}, seed {seed}): error {:?}, deadlock {:?}",
        out.error,
        out.deadlock
    );
    (spam_us, um.makespan(&out).expect("complete").as_us_f64())
}

/// SPAM arm of [`paired_replication`] alone (tests, spot checks).
pub fn spam_replication(switches: usize, rate: f64, dests: usize, len: u32, seed: u64) -> f64 {
    paired_replication(switches, rate, dests, len, seed).0
}

/// Software arm of [`paired_replication`] alone (tests, spot checks).
pub fn software_replication(switches: usize, rate: f64, dests: usize, len: u32, seed: u64) -> f64 {
    paired_replication(switches, rate, dests, len, seed).1
}

/// Parallel paired-replication control: like
/// [`crate::sweep::replicate_parallel`], but each seed produces one
/// `(spam, software)` pair pushed into two controllers, and the loop runs
/// until **both** are satisfied. Seeds are consumed in order (via
/// [`crate::sweep::replicate_parallel_with`]), so results are independent
/// of thread scheduling.
fn replicate_paired<F>(
    spam_ctl: &mut PrecisionController,
    soft_ctl: &mut PrecisionController,
    base_seed: u64,
    rep: F,
) where
    F: Fn(u64) -> (f64, f64) + Sync,
{
    if spam_ctl.satisfied() && soft_ctl.satisfied() {
        return;
    }
    crate::sweep::replicate_parallel_with(base_seed, rep, |(a, b)| {
        spam_ctl.push(a);
        soft_ctl.push(b);
        spam_ctl.satisfied() && soft_ctl.satisfied()
    });
}

/// Mean largest-component node fraction at a fault rate (fixed sample
/// count; descriptive, not CI-controlled).
fn mean_component_fraction(switches: usize, rate: f64, seed: u64, samples: u64) -> f64 {
    let mut acc = 0.0;
    for i in 0..samples {
        let s = crate::split_seed(seed, 0x1_000 + i);
        let base = paper_network(switches, crate::split_seed(s, 0xA));
        let plan = FaultModel::IidLinks { rate }.sample(&base, None, crate::split_seed(s, 0xB));
        acc += DegradedNetwork::build(&base, &plan, None).largest_component_fraction(&base);
    }
    acc / samples as f64
}

/// Runs the full sweep; one [`FaultPoint`] per (rate, dest-count) cell.
pub fn run(cfg: &FaultSweepConfig) -> Vec<FaultPoint> {
    let mut out = Vec::new();
    for &k in &cfg.dest_counts {
        for &rate in &cfg.rates {
            let stream = crate::split_seed(cfg.seed, (k as u64) << 32 | (rate * 1e4) as u64);
            let controller = || {
                PrecisionController::new(
                    cfg.target_rel,
                    simstats::ConfidenceLevel::P95,
                    3,
                    cfg.max_reps,
                )
            };
            let (mut spam_ctl, mut soft_ctl) = (controller(), controller());
            replicate_paired(&mut spam_ctl, &mut soft_ctl, stream, |s: u64| {
                paired_replication(cfg.switches, rate, k, cfg.len, s)
            });
            let summarize = |ctl: &PrecisionController| {
                let ci = ctl.interval().expect("at least 3 reps");
                PointSummary {
                    x: rate,
                    mean: ci.mean,
                    ci_half_width: ci.half_width,
                    reps: ctl.count(),
                    target_met: ctl.met_target(),
                }
            };
            let spam = summarize(&spam_ctl);
            let software = summarize(&soft_ctl);
            out.push(FaultPoint {
                rate,
                dests: k,
                spam,
                software,
                component_fraction: mean_component_fraction(cfg.switches, rate, stream, 32),
            });
        }
    }
    out
}

/// Writes the sweep's CSV (`results/fault_sweep.csv` shape).
pub fn write_csv(path: &std::path::Path, points: &[FaultPoint]) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "fault_rate,dests,spam_latency_us,spam_ci_us,spam_reps,spam_met,\
         software_latency_us,software_ci_us,software_reps,software_met,\
         speedup,largest_component_frac"
    )?;
    for p in points {
        writeln!(
            f,
            "{},{},{:.4},{:.4},{},{},{:.4},{:.4},{},{},{:.3},{:.4}",
            p.rate,
            p.dests,
            p.spam.mean,
            p.spam.ci_half_width,
            p.spam.reps,
            p.spam.target_met,
            p.software.mean,
            p.software.ci_half_width,
            p.software.reps,
            p.software.target_met,
            p.software.mean / p.spam.mean,
            p.component_fraction
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replications_are_deterministic() {
        assert_eq!(
            spam_replication(24, 0.15, 4, 32, 7),
            spam_replication(24, 0.15, 4, 32, 7)
        );
        assert_eq!(
            software_replication(24, 0.15, 4, 32, 7),
            software_replication(24, 0.15, 4, 32, 7)
        );
    }

    #[test]
    fn both_arms_see_the_same_instance() {
        let (a, src_a, dests_a) = degraded_instance(24, 0.2, 5, 3);
        let (b, src_b, dests_b) = degraded_instance(24, 0.2, 5, 3);
        assert_eq!(src_a, src_b);
        assert_eq!(dests_a, dests_b);
        assert_eq!(a.topo.num_channels(), b.topo.num_channels());
    }

    #[test]
    fn spam_beats_software_even_degraded() {
        // Miniature sweep cell: one startup vs ceil(log2(d+1)) startups
        // dominates even at a 20% link-fault rate.
        let mut spam_acc = 0.0;
        let mut soft_acc = 0.0;
        for seed in 0..6 {
            spam_acc += spam_replication(24, 0.2, 7, 64, seed);
            soft_acc += software_replication(24, 0.2, 7, 64, seed);
        }
        assert!(
            soft_acc > spam_acc * 2.0,
            "software {soft_acc} vs spam {spam_acc}"
        );
    }

    #[test]
    fn pristine_rate_matches_fig2_style_latency() {
        // rate 0.0 reduces to an ordinary single multicast: above the
        // 10 µs startup floor, below saturation.
        let us = spam_replication(32, 0.0, 8, 128, 11);
        assert!(us > 10.0 && us < 20.0, "latency {us} µs out of range");
    }

    #[test]
    fn quick_sweep_produces_all_cells() {
        let cfg = FaultSweepConfig {
            switches: 16,
            rates: vec![0.0, 0.2],
            dest_counts: vec![2, 4],
            len: 16,
            target_rel: 0.25,
            max_reps: 4,
            seed: 1,
        };
        let pts = run(&cfg);
        assert_eq!(pts.len(), 4);
        for p in &pts {
            assert!(p.spam.mean > 0.0);
            assert!(p.software.mean > p.spam.mean, "software pays startups");
            assert!(p.component_fraction > 0.0 && p.component_fraction <= 1.0);
        }
        // More damage, smaller surviving component (on average).
        assert!(pts[0].component_fraction >= pts[1].component_fraction);
    }
}
