//! Checkpoint cost measurement: snapshot size, per-checkpoint encode
//! overhead, and restore time, swept over the paper's network sizes
//! (64 → 1024 switches) under the Figure 3 mixed workload.
//!
//! Three series, `x` = switch count:
//! * `snapshot_kib` — mean sealed snapshot size (KiB);
//! * `checkpoint_write_us` — mean wall-clock cost of one checkpoint
//!   (encode + checksum + sink store), measured as the runtime delta
//!   between a checkpointed run and an identical plain run divided by
//!   the number of checkpoints taken;
//! * `restore_us` — mean wall-clock cost of rebuilding a live engine
//!   from one mid-run snapshot (decode + validation, not the remainder
//!   of the run).

use crate::report::BenchJson;
use crate::{paper_network, PointSummary};
use desim::Duration;
use spam_core::SpamRouting;
use std::time::Instant;
use traffic::MixedTrafficConfig;
use updown::{RootSelection, UpDownLabeling};
use wormsim::{CheckpointSink, NetworkSim, SimConfig};

/// One network size's measurements.
#[derive(Debug, Clone)]
pub struct SnapshotCost {
    /// Switch count.
    pub switches: usize,
    /// Checkpoints taken during the instrumented run.
    pub checkpoints: usize,
    /// Mean sealed snapshot size, bytes.
    pub mean_bytes: f64,
    /// Mean per-checkpoint write cost, µs.
    pub write_us: f64,
    /// Mean restore cost, µs.
    pub restore_us: f64,
}

fn workload(switches: usize) -> MixedTrafficConfig {
    // Enough load to keep worms in flight at every size without the
    // biggest sweep point taking minutes: 4 messages per processor.
    MixedTrafficConfig::figure3(0.25, 8, switches * 4)
}

/// Measures one network size. Deterministic workload; the only
/// nondeterminism is the wall clock.
pub fn measure(switches: usize, seed: u64) -> SnapshotCost {
    let topo = paper_network(switches, seed);
    let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
    let stream = workload(switches)
        .generate(&topo, seed ^ 0x5eed)
        .expect("workload fits the paper network");
    let cfg = SimConfig::paper();

    let fresh = |checkpoint: Option<(Duration, CheckpointSink)>| {
        let mut sim = NetworkSim::new(&topo, SpamRouting::new(&topo, &ud), cfg);
        if let Some((every, sink)) = checkpoint {
            sim.enable_checkpoints(every, sink);
        }
        for m in stream.iter().cloned() {
            sim.submit(m)
                .expect("stream was generated for this topology");
        }
        sim
    };

    // Plain run: baseline wall time and the horizon that sizes the
    // checkpoint cadence (~8 checkpoints per run).
    let t0 = Instant::now();
    let out = fresh(None).run();
    let plain = t0.elapsed();
    let every = Duration::from_ns((out.end_time.as_ns() / 8).max(1));

    let (sink, kept) = CheckpointSink::keep_all();
    let t0 = Instant::now();
    fresh(Some((every, sink))).run();
    let checkpointed = t0.elapsed();
    let kept = match kept.lock() {
        Ok(g) => g.clone(),
        Err(p) => p.into_inner().clone(),
    };
    let n = kept.len().max(1);
    let mean_bytes = kept.iter().map(|(_, b)| b.len() as f64).sum::<f64>() / n as f64;
    let write_us = checkpointed.saturating_sub(plain).as_secs_f64() * 1e6 / n as f64;

    // Restore cost: rebuild from the mid-run snapshot a few times.
    let restore_us = match kept.get(kept.len() / 2) {
        Some((_, bytes)) => {
            const ITERS: u32 = 5;
            let t0 = Instant::now();
            for _ in 0..ITERS {
                NetworkSim::restore(&topo, SpamRouting::new(&topo, &ud), cfg, bytes)
                    .expect("own snapshot restores");
            }
            t0.elapsed().as_secs_f64() * 1e6 / f64::from(ITERS)
        }
        None => 0.0,
    };

    SnapshotCost {
        switches,
        checkpoints: kept.len(),
        mean_bytes,
        write_us,
        restore_us,
    }
}

/// The full sweep as a [`BenchJson`] record (`BENCH_snapshot.json`).
pub fn snapshot_bench_json(costs: &[SnapshotCost], seed: u64) -> BenchJson {
    let point = |x: f64, mean: f64, reps: u64| PointSummary {
        x,
        mean,
        ci_half_width: 0.0,
        reps,
        target_met: true,
    };
    let series = vec![
        (
            "snapshot_kib".to_string(),
            costs
                .iter()
                .map(|c| {
                    point(
                        c.switches as f64,
                        c.mean_bytes / 1024.0,
                        c.checkpoints as u64,
                    )
                })
                .collect(),
        ),
        (
            "checkpoint_write_us".to_string(),
            costs
                .iter()
                .map(|c| point(c.switches as f64, c.write_us, c.checkpoints as u64))
                .collect(),
        ),
        (
            "restore_us".to_string(),
            costs
                .iter()
                .map(|c| point(c.switches as f64, c.restore_us, 5))
                .collect(),
        ),
    ];
    BenchJson {
        name: "snapshot".to_string(),
        params: vec![
            ("seed".to_string(), seed.to_string()),
            (
                "sizes".to_string(),
                costs
                    .iter()
                    .map(|c| c.switches.to_string())
                    .collect::<Vec<_>>()
                    .join("/"),
            ),
            (
                "workload".to_string(),
                "fig3 mixed, 4 msgs/proc".to_string(),
            ),
        ],
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_measures_and_serializes() {
        let cost = measure(24, 3);
        assert!(cost.checkpoints >= 1, "cadence must fire: {cost:?}");
        assert!(cost.mean_bytes > 0.0);
        let bench = snapshot_bench_json(&[cost], 3);
        assert_eq!(bench.name, "snapshot");
        assert_eq!(bench.series.len(), 3);
    }
}
