//! The reconfiguration sweep — SPAM through a *live* fault storm.
//!
//! The static fault sweep (`fault_sweep`) measures SPAM on networks that
//! were already degraded when the run started. This sweep measures the
//! transient instead: a stream of multicasts is in flight on a pristine
//! §4 lattice when a storm of link deaths strikes in bursts, worms caught
//! holding dead channels are torn down, the surviving fabric relabels
//! itself (incremental up*/down* reconfiguration), and traffic submitted
//! after each burst routes on the new epoch's labeling.
//!
//! Two arms on **identical damage and identical traffic**:
//!
//! * **live** — the storm strikes mid-run (`FaultSchedule::storm`);
//! * **static** — the same deaths collapsed to time zero
//!   (`FaultSchedule::collapsed_at`), i.e. the PR-2 regime where the
//!   network is degraded before any worm starts.
//!
//! The gap between the arms isolates the *transient*: the live arm loses
//! worms to teardowns and pays a latency penalty routing around fresh
//! damage, but also banks every delivery the pre-storm epochs complete on
//! fabric the static arm never had — so its delivered fraction can land
//! on either side of the control. Replication control follows the
//! paper's §4 protocol (95 % CI on the per-replication mean latency of
//! delivered messages); per-epoch latency statistics are aggregated
//! across replications by merging each replication's Welford accumulators
//! ([`RunningStats::merge`]) and latency histograms
//! ([`simstats::Histogram::merge`]).

use crate::{paper_labeling, paper_network, PointSummary};
use desim::Time;
use netgraph::NodeId;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use simstats::{ConfidenceInterval, ConfidenceLevel, Histogram, PrecisionController, RunningStats};
use spam_core::SpamRouting;
use spam_faults::FaultModel;
use spam_reconfig::{EpochRouting, FaultSchedule, ReconfigScenario};
use wormsim::{MessageSpec, NetworkSim, SimConfig, SimOutcome};

/// Configuration of a reconfiguration sweep.
#[derive(Debug, Clone)]
pub struct ReconfigSweepConfig {
    /// Switches (= processors) in the pristine network.
    pub switches: usize,
    /// Storm intensities to sweep: the fraction of links killed over the
    /// whole storm (0.0 = control cell, no faults).
    pub storm_rates: Vec<f64>,
    /// Multicast destination counts to sweep.
    pub dest_counts: Vec<usize>,
    /// Messages per replication (the traffic stream the storm hits).
    pub messages: usize,
    /// Inter-arrival spacing of the stream, in µs.
    pub spacing_us: u64,
    /// Bursts per storm (= relabeling epochs beyond the first).
    pub bursts: usize,
    /// Flits per message.
    pub len: u32,
    /// Relative CI target for the latency means.
    pub target_rel: f64,
    /// Replication budget per cell.
    pub max_reps: u64,
    /// RNG stream.
    pub seed: u64,
}

impl ReconfigSweepConfig {
    /// The default sweep: 64-switch lattices, storms killing 0–30 % of
    /// links in 3 bursts under a 48-message multicast stream.
    pub fn paper(switches: usize) -> Self {
        ReconfigSweepConfig {
            switches,
            storm_rates: vec![0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30],
            dest_counts: vec![4, 16],
            messages: 48,
            spacing_us: 2,
            bursts: 3,
            len: 64,
            target_rel: 0.02,
            max_reps: 400,
            seed: 0x05EC_0F16,
        }
    }

    /// A fast, loose-CI variant for smoke tests and CI.
    pub fn quick(switches: usize) -> Self {
        ReconfigSweepConfig {
            storm_rates: vec![0.0, 0.10, 0.30],
            messages: 32,
            target_rel: 0.10,
            max_reps: 12,
            ..Self::paper(switches)
        }
    }
}

/// Everything one replication reports for both arms.
#[derive(Debug, Clone)]
pub struct StormReplication {
    /// Mean latency (µs) of delivered messages, live arm (`None` if the
    /// storm delivered nothing).
    pub live_latency_us: Option<f64>,
    /// Mean latency (µs) of delivered messages, static arm.
    pub static_latency_us: Option<f64>,
    /// Live-arm verdicts `(delivered, torn_down, unreachable)`.
    pub live_counts: (u64, u64, u64),
    /// Static-arm verdicts `(delivered, torn_down, unreachable)`.
    pub static_counts: (u64, u64, u64),
    /// Messages submitted.
    pub total: u64,
    /// Live-arm per-epoch delivered-latency accumulators (index = epoch).
    pub live_epoch_latency: Vec<RunningStats>,
    /// Live-arm delivered-latency histogram (µs).
    pub live_hist: Histogram,
    /// Static-arm delivered-latency histogram (µs).
    pub static_hist: Histogram,
}

/// Histogram geometry shared by every replication so cells can merge.
/// The range is generous (1 ms at 0.5 µs resolution) so congested tails
/// on large `--switches` runs stay in range instead of vanishing into the
/// overflow bucket and silently understating the p95 column.
fn latency_histogram() -> Histogram {
    Histogram::new(0.0, 1000.0, 2000)
}

fn verdict_counts(out: &SimOutcome) -> (u64, u64, u64) {
    let c = &out.counters;
    (
        c.messages_completed,
        c.messages_torn_down,
        c.messages_unreachable,
    )
}

/// One replication: build a pristine lattice and a multicast stream, then
/// run the identical (damage, traffic) pair through the live storm and
/// the static-degraded control. Deterministic in
/// `(switches, rate, dests, seed)`.
#[allow(clippy::too_many_arguments)]
pub fn storm_replication(
    switches: usize,
    rate: f64,
    dests: usize,
    messages: usize,
    spacing_us: u64,
    bursts: usize,
    len: u32,
    seed: u64,
) -> StormReplication {
    let base = paper_network(switches, crate::split_seed(seed, 0xA));
    let ud = paper_labeling(&base);
    // The storm strikes the middle half of the stream's startup-shifted
    // arrival window, so worms are in flight at every burst.
    let span_us = messages as u64 * spacing_us;
    let window = (
        Time::from_us(10 + span_us / 4),
        Time::from_us(10 + span_us * 3 / 4),
    );
    let schedule = if rate > 0.0 {
        FaultSchedule::storm(
            &FaultModel::IidLinks { rate },
            &base,
            None,
            window,
            bursts,
            crate::split_seed(seed, 0xB),
        )
    } else {
        FaultSchedule::default()
    };

    let procs: Vec<NodeId> = base.processors().collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(crate::split_seed(seed, 0xC));
    let specs: Vec<MessageSpec> = (0..messages)
        .map(|i| {
            let src = procs[rng.gen_range(0..procs.len())];
            let mut others: Vec<NodeId> = procs.iter().copied().filter(|&p| p != src).collect();
            others.shuffle(&mut rng);
            others.truncate(dests);
            MessageSpec::multicast(src, others, len).at(Time::from_us(i as u64 * spacing_us))
        })
        .collect();

    let run = |schedule: &FaultSchedule, routing: EpochRouting<'_>| -> SimOutcome {
        let mut sim = NetworkSim::new(&base, routing, SimConfig::paper());
        schedule.install(&mut sim);
        for s in &specs {
            sim.submit(s.clone()).unwrap();
        }
        sim.run()
    };

    let scenario = ReconfigScenario::build(&base, &ud, &schedule);
    let live = run(&schedule, scenario.routing(&base));

    // Static control: the same deaths collapsed to time zero. Every
    // message routes on the post-damage labeling, so build only that one
    // epoch — a pristine epoch-0 router would be dead weight (a full
    // RoutingTables build per replication that no message ever uses).
    let collapsed = schedule.collapsed_at(Time::ZERO);
    let view = collapsed.view_at(&base, Time::ZERO);
    let (static_ud, _) = ud
        .relabel_after(&view)
        .expect("a switch survives the storm");
    let static_mask = view.alive_channel_mask();
    let static_router = SpamRouting::new_masked(&base, &static_ud, &static_mask);
    let stat = run(
        &collapsed,
        EpochRouting::new(Vec::new(), vec![static_router]),
    );
    assert!(
        live.all_accounted(),
        "live arm lost messages (rate {rate}, seed {seed}): {:?} {:?}",
        live.error,
        live.deadlock
    );
    assert!(
        stat.all_accounted(),
        "static arm lost messages (rate {rate}, seed {seed}): {:?} {:?}",
        stat.error,
        stat.deadlock
    );

    let mut live_epoch_latency: Vec<RunningStats> = vec![RunningStats::new(); live.num_epochs()];
    let mut live_hist = latency_histogram();
    for m in live.messages.iter().filter(|m| m.is_complete()) {
        let us = m.latency().expect("complete").as_us_f64();
        live_epoch_latency[live.epoch_of(m.spec.gen_time)].push(us);
        live_hist.record(us);
    }
    let mut static_hist = latency_histogram();
    for us in stat.latencies_us(|_| true) {
        static_hist.record(us);
    }

    StormReplication {
        live_latency_us: live.mean_latency_us(|_| true),
        static_latency_us: stat.mean_latency_us(|_| true),
        live_counts: verdict_counts(&live),
        static_counts: verdict_counts(&stat),
        total: specs.len() as u64,
        live_epoch_latency,
        live_hist,
        static_hist,
    }
}

/// One finished sweep cell.
#[derive(Debug, Clone)]
pub struct ReconfigPoint {
    /// Storm intensity (fraction of links killed).
    pub rate: f64,
    /// Multicast destination count.
    pub dests: usize,
    /// Live-arm delivered latency (µs); `x` is the rate.
    pub live: PointSummary,
    /// Static-degraded control latency (µs).
    pub static_: PointSummary,
    /// Live-arm mean delivered fraction.
    pub live_delivered_frac: f64,
    /// Live-arm mean torn-down fraction.
    pub live_torn_frac: f64,
    /// Live-arm mean unreachable fraction.
    pub live_unreachable_frac: f64,
    /// Static-arm mean delivered fraction.
    pub static_delivered_frac: f64,
    /// Static-arm mean unreachable fraction.
    pub static_unreachable_frac: f64,
    /// Live-arm 95th-percentile delivered latency (µs), from the merged
    /// cell-level histogram.
    pub live_p95_us: Option<f64>,
    /// Static-arm 95th-percentile delivered latency (µs).
    pub static_p95_us: Option<f64>,
    /// Per-epoch delivered latency of the live arm (`x` = epoch index),
    /// merged across replications.
    pub epoch_latency: Vec<PointSummary>,
}

/// Runs the full sweep; one [`ReconfigPoint`] per (rate, dest-count) cell.
pub fn run(cfg: &ReconfigSweepConfig) -> Vec<ReconfigPoint> {
    let mut out = Vec::new();
    for &k in &cfg.dest_counts {
        for &rate in &cfg.storm_rates {
            let stream = crate::split_seed(cfg.seed, (k as u64) << 32 | (rate * 1e4) as u64);
            let controller =
                || PrecisionController::new(cfg.target_rel, ConfidenceLevel::P95, 3, cfg.max_reps);
            let (mut live_ctl, mut static_ctl) = (controller(), controller());
            let mut fracs = [RunningStats::new(); 5];
            let mut epoch_stats: Vec<RunningStats> = Vec::new();
            let mut live_hist = latency_histogram();
            let mut static_hist = latency_histogram();
            let mut reps = 0u64;
            crate::sweep::replicate_parallel_with(
                stream,
                |s: u64| {
                    storm_replication(
                        cfg.switches,
                        rate,
                        k,
                        cfg.messages,
                        cfg.spacing_us,
                        cfg.bursts,
                        cfg.len,
                        s,
                    )
                },
                |r: StormReplication| {
                    reps += 1;
                    if let Some(l) = r.live_latency_us {
                        live_ctl.push(l);
                    }
                    if let Some(l) = r.static_latency_us {
                        static_ctl.push(l);
                    }
                    let t = r.total as f64;
                    fracs[0].push(r.live_counts.0 as f64 / t);
                    fracs[1].push(r.live_counts.1 as f64 / t);
                    fracs[2].push(r.live_counts.2 as f64 / t);
                    fracs[3].push(r.static_counts.0 as f64 / t);
                    fracs[4].push(r.static_counts.2 as f64 / t);
                    // Streaming per-epoch aggregation: merge this
                    // replication's Welford accumulators and histograms
                    // into the cell's.
                    if epoch_stats.len() < r.live_epoch_latency.len() {
                        epoch_stats.resize(r.live_epoch_latency.len(), RunningStats::new());
                    }
                    for (cell, rep) in epoch_stats.iter_mut().zip(&r.live_epoch_latency) {
                        cell.merge(rep);
                    }
                    live_hist.merge(&r.live_hist);
                    static_hist.merge(&r.static_hist);
                    reps >= cfg.max_reps || (live_ctl.satisfied() && static_ctl.satisfied())
                },
            );
            let summarize = |ctl: &PrecisionController| match ctl.interval() {
                Some(ci) => PointSummary {
                    x: rate,
                    mean: ci.mean,
                    ci_half_width: ci.half_width,
                    reps: ctl.count(),
                    target_met: ctl.met_target(),
                },
                // A cell can starve an arm entirely (e.g. heavy storms on
                // tiny networks leave the static arm with no delivered
                // messages at all): report NaN, not a panic — the JSON
                // writer turns it into `null`.
                None => PointSummary {
                    x: rate,
                    mean: f64::NAN,
                    ci_half_width: f64::NAN,
                    reps: ctl.count(),
                    target_met: false,
                },
            };
            let epoch_latency = epoch_stats
                .iter()
                .enumerate()
                .map(|(e, s)| {
                    let ci = ConfidenceInterval::from_stats(s, ConfidenceLevel::P95);
                    PointSummary {
                        x: e as f64,
                        mean: s.mean(),
                        ci_half_width: ci.map_or(0.0, |c| c.half_width),
                        reps: s.count(),
                        target_met: true,
                    }
                })
                .collect();
            out.push(ReconfigPoint {
                rate,
                dests: k,
                live: summarize(&live_ctl),
                static_: summarize(&static_ctl),
                live_delivered_frac: fracs[0].mean(),
                live_torn_frac: fracs[1].mean(),
                live_unreachable_frac: fracs[2].mean(),
                static_delivered_frac: fracs[3].mean(),
                static_unreachable_frac: fracs[4].mean(),
                live_p95_us: live_hist.percentile(95.0),
                static_p95_us: static_hist.percentile(95.0),
                epoch_latency,
            });
        }
    }
    out
}

/// Writes the sweep's CSV (`results/reconfig_sweep.csv` shape).
pub fn write_csv(path: &std::path::Path, points: &[ReconfigPoint]) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "storm_rate,dests,live_latency_us,live_ci_us,live_reps,live_met,\
         live_delivered_frac,live_torn_frac,live_unreachable_frac,live_p95_us,\
         static_latency_us,static_ci_us,static_delivered_frac,static_unreachable_frac,\
         static_p95_us,latency_penalty"
    )?;
    for p in points {
        writeln!(
            f,
            "{},{},{:.4},{:.4},{},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.3}",
            p.rate,
            p.dests,
            p.live.mean,
            p.live.ci_half_width,
            p.live.reps,
            p.live.target_met,
            p.live_delivered_frac,
            p.live_torn_frac,
            p.live_unreachable_frac,
            p.live_p95_us.unwrap_or(f64::NAN),
            p.static_.mean,
            p.static_.ci_half_width,
            p.static_delivered_frac,
            p.static_unreachable_frac,
            p.static_p95_us.unwrap_or(f64::NAN),
            p.live.mean / p.static_.mean,
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rep(seed: u64) -> StormReplication {
        storm_replication(16, 0.2, 3, 12, 2, 2, 32, seed)
    }

    #[test]
    fn replications_are_deterministic() {
        let (a, b) = (rep(5), rep(5));
        assert_eq!(a.live_latency_us, b.live_latency_us);
        assert_eq!(a.live_counts, b.live_counts);
        assert_eq!(a.static_counts, b.static_counts);
    }

    #[test]
    fn zero_rate_arms_are_identical_and_lossless() {
        let r = storm_replication(16, 0.0, 3, 12, 2, 2, 32, 9);
        assert_eq!(r.live_counts, (r.total, 0, 0));
        assert_eq!(r.static_counts, (r.total, 0, 0));
        assert_eq!(r.live_latency_us, r.static_latency_us);
        assert_eq!(r.live_epoch_latency.len(), 1, "no faults, one epoch");
    }

    #[test]
    fn storms_tear_down_worms_only_in_the_live_arm() {
        // Accumulate a few replications of a heavy storm under dense
        // in-flight traffic. Teardowns exist only in the live arm (the
        // static arm's damage predates every worm), verdicts partition
        // both arms, and the live arm delivers at least the pre-storm
        // epoch — often *more* than the static arm, because messages
        // submitted before a burst complete on fabric that still exists.
        let mut live_delivered = 0;
        let mut torn = 0;
        for seed in 0..6 {
            let r = storm_replication(24, 0.3, 4, 16, 2, 2, 48, seed);
            live_delivered += r.live_counts.0;
            torn += r.live_counts.1;
            assert_eq!(r.live_counts.0 + r.live_counts.1 + r.live_counts.2, r.total);
            assert_eq!(
                r.static_counts.0 + r.static_counts.2,
                r.total,
                "static damage causes no teardowns, only unreachables"
            );
            assert_eq!(r.static_counts.1, 0);
        }
        assert!(torn > 0, "a 30% mid-run storm must catch some worms");
        assert!(live_delivered > 0, "the pre-storm epoch always lands");
    }

    #[test]
    fn quick_sweep_produces_all_cells() {
        let cfg = ReconfigSweepConfig {
            switches: 16,
            storm_rates: vec![0.0, 0.25],
            dest_counts: vec![2, 4],
            messages: 10,
            spacing_us: 2,
            bursts: 2,
            len: 16,
            target_rel: 0.25,
            max_reps: 4,
            seed: 1,
        };
        let pts = run(&cfg);
        assert_eq!(pts.len(), 4);
        for p in &pts {
            assert!(p.live.mean > 0.0);
            // The static arm may starve entirely on a tiny heavily-damaged
            // network (all dests unreachable): NaN mean, never negative.
            assert!(p.static_.mean > 0.0 || p.static_.mean.is_nan());
            assert!(p.live_delivered_frac > 0.0 && p.live_delivered_frac <= 1.0);
            assert!(!p.epoch_latency.is_empty());
            if p.rate == 0.0 {
                assert_eq!(p.live_delivered_frac, 1.0);
                assert_eq!(p.live_torn_frac, 0.0);
            }
        }
    }
}
