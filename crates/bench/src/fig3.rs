//! Figure 3: latency versus average arrival rate under mixed traffic
//! (90 % unicast / 10 % multicast) in a 128-node network, for multicast
//! sizes 8, 16, 32 and 64.
//!
//! The paper's observation: even under heavy load, latency is largely
//! independent of the multicast destination count, with saturation setting
//! in past ~0.03 messages/µs/node.

use crate::{paper_labeling, paper_network, PointSummary};
use simstats::PrecisionController;
use spam_core::SpamRouting;
use traffic::MixedTrafficConfig;
use wormsim::{NetworkSim, SimConfig};

/// Configuration of a Figure 3 sweep.
#[derive(Debug, Clone)]
pub struct Fig3Config {
    /// Network size in switches (128 in the paper).
    pub switches: usize,
    /// Multicast sizes (one curve each): 8, 16, 32, 64.
    pub multicast_sizes: Vec<usize>,
    /// Arrival rates in messages/µs/node (x axis: 0.005 – 0.04).
    pub rates: Vec<f64>,
    /// Messages simulated per replication.
    pub messages: usize,
    /// Fraction of messages discarded as warm-up.
    pub warmup_frac: f64,
    /// Relative CI target across replications.
    pub target_rel: f64,
    /// Replication budget per point.
    pub max_reps: u64,
    /// RNG stream.
    pub seed: u64,
}

impl Fig3Config {
    /// The paper's sweep (steady-state-sized replications).
    pub fn paper() -> Self {
        Fig3Config {
            switches: 128,
            multicast_sizes: vec![8, 16, 32, 64],
            rates: vec![0.005, 0.01, 0.015, 0.02, 0.025, 0.03, 0.035, 0.04],
            messages: 4000,
            warmup_frac: 0.1,
            target_rel: 0.01,
            max_reps: 200,
            seed: 0x5EED_F163,
        }
    }

    /// Small variant for smoke tests and criterion benches.
    pub fn quick() -> Self {
        Fig3Config {
            switches: 32,
            multicast_sizes: vec![4, 8],
            rates: vec![0.005, 0.02],
            messages: 400,
            warmup_frac: 0.1,
            target_rel: 0.10,
            max_reps: 6,
            seed: 0x5EED_F163,
        }
    }
}

/// One replication: mean message latency (µs) over the post-warm-up
/// window of a mixed-traffic run.
pub fn mixed_traffic_mean_latency_us(
    switches: usize,
    rate: f64,
    multicast_size: usize,
    messages: usize,
    warmup_frac: f64,
    seed: u64,
) -> f64 {
    let topo = paper_network(switches, crate::split_seed(seed, 0xA));
    let ud = paper_labeling(&topo);
    let spam = SpamRouting::new(&topo, &ud);
    let stream = MixedTrafficConfig::figure3(rate, multicast_size, messages)
        .generate(&topo, crate::split_seed(seed, 0xB))
        .expect("valid mixed-traffic config");
    let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper());
    for spec in stream {
        sim.submit(spec).unwrap();
    }
    let out = sim.run();
    assert!(
        out.all_delivered(),
        "Fig.3 replication deadlocked (seed {seed}): {:?}",
        out.deadlock
    );
    let warmup = (messages as f64 * warmup_frac) as u64;
    out.mean_latency_us(|m| m.spec.tag >= warmup)
        .expect("messages completed")
}

/// One curve (fixed multicast size) across the rate sweep.
pub fn run_curve(cfg: &Fig3Config, multicast_size: usize) -> Vec<PointSummary> {
    cfg.rates
        .iter()
        .map(|&rate| {
            let mut ctl = PrecisionController::new(
                cfg.target_rel,
                simstats::ConfidenceLevel::P95,
                3,
                cfg.max_reps,
            );
            let stream = crate::split_seed(
                cfg.seed,
                (multicast_size as u64) << 32 | (rate * 1e6) as u64,
            );
            crate::sweep::replicate_parallel(&mut ctl, stream, |s| {
                mixed_traffic_mean_latency_us(
                    cfg.switches,
                    rate,
                    multicast_size,
                    cfg.messages,
                    cfg.warmup_frac,
                    s,
                )
            });
            let ci = ctl.interval().expect("at least 3 reps");
            PointSummary {
                x: rate,
                mean: ci.mean,
                ci_half_width: ci.half_width,
                reps: ctl.count(),
                target_met: ctl.met_target(),
            }
        })
        .collect()
}

/// The whole figure: one curve per multicast size.
pub fn run(cfg: &Fig3Config) -> Vec<(usize, Vec<PointSummary>)> {
    cfg.multicast_sizes
        .iter()
        .map(|&k| (k, run_curve(cfg, k)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_is_deterministic() {
        let a = mixed_traffic_mean_latency_us(24, 0.01, 4, 150, 0.1, 5);
        let b = mixed_traffic_mean_latency_us(24, 0.01, 4, 150, 0.1, 5);
        assert_eq!(a, b);
        assert!(a > 10.0, "latency {a} below the startup floor");
    }

    #[test]
    fn latency_rises_with_load() {
        let lo = mixed_traffic_mean_latency_us(24, 0.004, 4, 400, 0.1, 9);
        let hi = mixed_traffic_mean_latency_us(24, 0.08, 4, 400, 0.1, 9);
        assert!(hi > lo, "latency must rise with load: {lo} !< {hi}");
    }
}
