//! Figure 2: latency versus number of destinations for a single multicast
//! in 128- and 256-node networks.
//!
//! Each replication draws a fresh §4 network, a random source, and a
//! uniform destination set, then measures the latency of one SPAM
//! multicast in an otherwise idle network. Replications continue until the
//! 95 % CI is within the configured fraction of the mean (1 % in the
//! paper).
//!
//! The paper's headline result: the curve is essentially **flat** — a
//! single multi-head worm reaches 4 or 128 destinations in nearly the same
//! time — and the 256-node broadcast stays under 14 µs.

use crate::{paper_labeling, paper_network, PointSummary};
use netgraph::NodeId;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use simstats::PrecisionController;
use spam_core::SpamRouting;
use wormsim::{MessageSpec, NetworkSim, SimConfig};

/// Configuration of a Figure 2 sweep.
#[derive(Debug, Clone)]
pub struct Fig2Config {
    /// Network size in switches (= processors): 128 or 256 in the paper.
    pub switches: usize,
    /// Destination counts to sweep.
    pub dest_counts: Vec<usize>,
    /// Flits per message (128).
    pub len: u32,
    /// Relative CI target (0.01).
    pub target_rel: f64,
    /// Replication budget per point.
    pub max_reps: u64,
    /// RNG stream.
    pub seed: u64,
}

impl Fig2Config {
    /// The paper's sweep for an `n`-node network: destination counts at
    /// every power of two plus the broadcast, 128-flit messages, 1 % CI.
    pub fn paper(switches: usize) -> Self {
        let mut dest_counts = vec![1usize, 2];
        let mut k = 4;
        while k < switches - 1 {
            dest_counts.push(k);
            k *= 2;
        }
        dest_counts.push(switches - 1); // broadcast
        Fig2Config {
            switches,
            dest_counts,
            len: 128,
            target_rel: 0.01,
            max_reps: 2000,
            seed: 0x5EED_F162,
        }
    }

    /// A faster, looser variant for smoke tests and criterion benches.
    pub fn quick(switches: usize) -> Self {
        Fig2Config {
            target_rel: 0.05,
            max_reps: 64,
            ..Self::paper(switches)
        }
    }
}

/// One replication: fresh network + one timed multicast. Returns µs.
pub fn single_multicast_latency_us(switches: usize, dests: usize, len: u32, seed: u64) -> f64 {
    let topo = paper_network(switches, crate::split_seed(seed, 0xA));
    let ud = paper_labeling(&topo);
    let spam = SpamRouting::new(&topo, &ud);
    let mut rng = rand::rngs::StdRng::seed_from_u64(crate::split_seed(seed, 0xB));
    let procs: Vec<NodeId> = topo.processors().collect();
    let src = procs[rng.gen_range(0..procs.len())];
    let mut others: Vec<NodeId> = procs.iter().copied().filter(|&p| p != src).collect();
    others.shuffle(&mut rng);
    others.truncate(dests);
    let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper());
    sim.submit(MessageSpec::multicast(src, others, len))
        .unwrap();
    let out = sim.run();
    assert!(
        out.all_delivered(),
        "Fig.2 replication deadlocked (seed {seed})"
    );
    out.messages[0].latency().expect("delivered").as_us_f64()
}

/// Runs the full sweep; one [`PointSummary`] per destination count.
pub fn run(cfg: &Fig2Config) -> Vec<PointSummary> {
    cfg.dest_counts
        .iter()
        .map(|&k| {
            let mut ctl = PrecisionController::new(
                cfg.target_rel,
                simstats::ConfidenceLevel::P95,
                3,
                cfg.max_reps,
            );
            let stream = crate::split_seed(cfg.seed, k as u64);
            crate::sweep::replicate_parallel(&mut ctl, stream, |s| {
                single_multicast_latency_us(cfg.switches, k, cfg.len, s)
            });
            let ci = ctl.interval().expect("at least 3 reps");
            PointSummary {
                x: k as f64,
                mean: ci.mean,
                ci_half_width: ci.half_width,
                reps: ctl.count(),
                target_met: ctl.met_target(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_replication_is_deterministic_and_sane() {
        let a = single_multicast_latency_us(32, 8, 128, 42);
        let b = single_multicast_latency_us(32, 8, 128, 42);
        assert_eq!(a, b);
        // Startup alone is 10 µs; a 32-node network adds a few hundred ns.
        assert!(a > 10.0 && a < 20.0, "latency {a} µs out of range");
    }

    #[test]
    fn latency_is_flat_in_destination_count() {
        // The Figure 2 shape at miniature scale: broadcast costs at most
        // ~20 % more than a unicast.
        let cfg = Fig2Config {
            target_rel: 0.05,
            max_reps: 24,
            ..Fig2Config::paper(32)
        };
        let pts = run(&cfg);
        let uni = pts.first().unwrap().mean;
        let bcast = pts.last().unwrap().mean;
        assert!(bcast < uni * 1.2, "multicast not flat: {uni} -> {bcast}");
        // And every point is above the startup floor.
        for p in &pts {
            assert!(p.mean > 10.0);
            assert!(p.reps >= 3);
        }
    }
}
