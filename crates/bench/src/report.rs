//! Result output: CSV files, terminal-friendly ASCII plots, and the
//! machine-readable `BENCH_<name>.json` records, so every figure binary
//! archives its data (human- and machine-readable) and shows the curve
//! shape inline.

use crate::PointSummary;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// Writes `(x, mean, ci, reps)` rows as CSV.
pub fn write_csv(path: &Path, header: &str, rows: &[PointSummary]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{header}")?;
    for r in rows {
        writeln!(
            f,
            "{},{:.4},{:.4},{},{}",
            r.x, r.mean, r.ci_half_width, r.reps, r.target_met
        )?;
    }
    Ok(())
}

/// A machine-readable benchmark record. Every figure binary emits one as
/// `BENCH_<name>.json` next to its CSVs via [`write_bench_json`], seeding
/// the repo's perf-trajectory record: same schema across binaries, so
/// tooling can diff runs over time without parsing per-binary CSVs.
#[derive(Debug, Clone)]
pub struct BenchJson {
    /// Benchmark name; the file is `BENCH_<name>.json`.
    pub name: String,
    /// Free-form configuration key/value pairs (sizes, seeds, CI targets).
    pub params: Vec<(String, String)>,
    /// Named data series, each a list of summarized points.
    pub series: Vec<(String, Vec<PointSummary>)>,
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A finite JSON number, or `null` (JSON has no NaN/inf).
fn json_num(x: f64) -> String {
    if x.is_finite() {
        // `{:?}` is the shortest round-trippable representation.
        format!("{x:?}")
    } else {
        "null".to_string()
    }
}

/// Writes `dir/BENCH_<name>.json`, returning the path.
///
/// Also drops an identical `BENCH_<name>.json` in the current directory
/// (the repo root, when run via `cargo run`): the records under
/// `results/` are gitignored working artifacts, while the root copies
/// are committed as the perf-trajectory record — every binary used to
/// hand-copy (or forget to), so the dual write lives here instead.
///
/// The workspace's `serde` is a no-op offline shim, so the JSON is
/// hand-rolled here — one schema for every benchmark binary.
pub fn write_bench_json(dir: &Path, bench: &BenchJson) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let file = format!("BENCH_{}.json", bench.name);
    let path = dir.join(&file);
    let mut body = String::new();
    writeln!(body, "{{").unwrap();
    writeln!(body, "  \"schema\": 1,").unwrap();
    writeln!(body, "  \"name\": \"{}\",", json_escape(&bench.name)).unwrap();
    writeln!(body, "  \"params\": {{").unwrap();
    for (i, (k, v)) in bench.params.iter().enumerate() {
        let comma = if i + 1 < bench.params.len() { "," } else { "" };
        writeln!(
            body,
            "    \"{}\": \"{}\"{comma}",
            json_escape(k),
            json_escape(v)
        )
        .unwrap();
    }
    writeln!(body, "  }},").unwrap();
    writeln!(body, "  \"series\": [").unwrap();
    for (si, (name, points)) in bench.series.iter().enumerate() {
        writeln!(body, "    {{").unwrap();
        writeln!(body, "      \"name\": \"{}\",", json_escape(name)).unwrap();
        writeln!(body, "      \"points\": [").unwrap();
        for (pi, p) in points.iter().enumerate() {
            let comma = if pi + 1 < points.len() { "," } else { "" };
            writeln!(
                body,
                "        {{\"x\": {}, \"mean\": {}, \"ci_half_width\": {}, \
                 \"reps\": {}, \"target_met\": {}}}{comma}",
                json_num(p.x),
                json_num(p.mean),
                json_num(p.ci_half_width),
                p.reps,
                p.target_met
            )
            .unwrap();
        }
        writeln!(body, "      ]").unwrap();
        let comma = if si + 1 < bench.series.len() { "," } else { "" };
        writeln!(body, "    }}{comma}").unwrap();
    }
    writeln!(body, "  ]").unwrap();
    writeln!(body, "}}").unwrap();
    std::fs::write(&path, &body)?;
    if path.as_path() != Path::new(&file) {
        std::fs::write(&file, &body)?;
    }
    Ok(path)
}

/// Renders one or more named series as an ASCII scatter plot, mimicking
/// the paper's figures well enough to eyeball the shape.
pub fn ascii_plot(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[(String, Vec<PointSummary>)],
    height: usize,
) -> String {
    const MARKS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let mut out = String::new();
    let all: Vec<&PointSummary> = series.iter().flat_map(|(_, v)| v.iter()).collect();
    if all.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let (x_min, x_max) = all
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.x), hi.max(p.x))
        });
    let (y_min, y_max) = all
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.mean), hi.max(p.mean))
        });
    let y_pad = ((y_max - y_min) * 0.08).max(0.5);
    let (y_lo, y_hi) = (y_min - y_pad, y_max + y_pad);
    let width = 64usize;
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        for p in pts {
            let xf = if x_max > x_min {
                (p.x - x_min) / (x_max - x_min)
            } else {
                0.5
            };
            let yf = (p.mean - y_lo) / (y_hi - y_lo);
            let col = ((xf * (width - 1) as f64).round() as usize).min(width - 1);
            let row = height - 1 - ((yf * (height - 1) as f64).round() as usize).min(height - 1);
            grid[row][col] = MARKS[si % MARKS.len()];
        }
    }
    writeln!(out, "{title}").unwrap();
    writeln!(out, "{y_label}").unwrap();
    for (i, row) in grid.iter().enumerate() {
        let y_val = y_hi - (y_hi - y_lo) * i as f64 / (height - 1) as f64;
        writeln!(out, "{y_val:>8.1} |{}", row.iter().collect::<String>()).unwrap();
    }
    writeln!(out, "{:>9}+{}", "", "-".repeat(width)).unwrap();
    writeln!(
        out,
        "{:>10}{:<32}{:>32}",
        "",
        format!("{x_min:.3}"),
        format!("{x_max:.3}")
    )
    .unwrap();
    writeln!(out, "{:>10}{x_label}", "").unwrap();
    for (si, (name, _)) in series.iter().enumerate() {
        writeln!(out, "  {} {}", MARKS[si % MARKS.len()], name).unwrap();
    }
    out
}

/// Formats a table of `(label, point)` rows.
pub fn labelled_table(title: &str, rows: &[(String, PointSummary)]) -> String {
    let mut out = String::new();
    writeln!(out, "{title}").unwrap();
    writeln!(
        out,
        "  {:<24} {:>12} {:>12} {:>6} {:>7}",
        "arm", "mean (µs)", "±95% CI", "reps", "met 1%"
    )
    .unwrap();
    for (label, p) in rows {
        writeln!(
            out,
            "  {:<24} {:>12.3} {:>12.3} {:>6} {:>7}",
            label, p.mean, p.ci_half_width, p.reps, p.target_met
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<PointSummary> {
        v.iter()
            .map(|&(x, mean)| PointSummary {
                x,
                mean,
                ci_half_width: 0.1,
                reps: 5,
                target_met: true,
            })
            .collect()
    }

    #[test]
    fn csv_round_trips() {
        let dir = std::env::temp_dir().join("spam_bench_test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            "x,mean,ci,reps,met",
            &pts(&[(1.0, 11.0), (2.0, 12.0)]),
        )
        .unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("x,mean,ci,reps,met\n"));
        assert_eq!(body.lines().count(), 3);
        assert!(body.contains("11.0000"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_json_is_valid_and_complete() {
        let dir = std::env::temp_dir().join("spam_bench_json_test");
        let bench = BenchJson {
            name: "unit_test".to_string(),
            params: vec![
                ("switches".to_string(), "64".to_string()),
                ("note".to_string(), "has \"quotes\"".to_string()),
            ],
            series: vec![
                ("a".to_string(), pts(&[(1.0, 11.0), (2.0, 12.5)])),
                ("b".to_string(), pts(&[(1.0, 20.0)])),
            ],
        };
        let path = write_bench_json(&dir, &bench).unwrap();
        assert!(path.ends_with("BENCH_unit_test.json"));
        // The committed-record copy lands in the current directory too.
        let root_copy = Path::new("BENCH_unit_test.json");
        assert!(root_copy.exists(), "root copy missing");
        let body = std::fs::read_to_string(&path).unwrap();
        assert_eq!(body, std::fs::read_to_string(root_copy).unwrap());
        std::fs::remove_file(root_copy).ok();
        assert!(body.contains("\"schema\": 1"));
        assert!(body.contains("\"switches\": \"64\""));
        assert!(body.contains("has \\\"quotes\\\""));
        assert!(body.contains("\"mean\": 12.5"));
        // Structural sanity: balanced braces/brackets, no trailing commas.
        assert_eq!(body.matches('{').count(), body.matches('}').count());
        assert_eq!(body.matches('[').count(), body.matches(']').count());
        assert!(!body.contains(",\n      ]"));
        assert!(!body.contains(",\n  }"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn json_num_handles_non_finite() {
        assert_eq!(json_num(1.5), "1.5");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
    }

    #[test]
    fn ascii_plot_contains_markers_and_labels() {
        let s = vec![
            ("8 dests".to_string(), pts(&[(0.005, 11.0), (0.04, 60.0)])),
            ("64 dests".to_string(), pts(&[(0.005, 12.0), (0.04, 70.0)])),
        ];
        let plot = ascii_plot("Fig 3", "rate", "latency µs", &s, 12);
        assert!(plot.contains("Fig 3"));
        assert!(plot.contains('*'));
        assert!(plot.contains('o'));
        assert!(plot.contains("8 dests"));
        assert!(plot.contains("0.040"));
    }

    #[test]
    fn empty_plot_is_graceful() {
        let plot = ascii_plot("t", "x", "y", &[], 5);
        assert!(plot.contains("no data"));
    }

    #[test]
    fn table_renders_rows() {
        let t = labelled_table(
            "Ablation",
            &[("lowest-id".into(), pts(&[(0.0, 11.5)])[0].clone())],
        );
        assert!(t.contains("lowest-id"));
        assert!(t.contains("11.5"));
    }
}
