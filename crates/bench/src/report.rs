//! Result output: CSV files plus terminal-friendly ASCII plots, so every
//! figure binary both archives its data and shows the curve shape inline.

use crate::PointSummary;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// Writes `(x, mean, ci, reps)` rows as CSV.
pub fn write_csv(path: &Path, header: &str, rows: &[PointSummary]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{header}")?;
    for r in rows {
        writeln!(
            f,
            "{},{:.4},{:.4},{},{}",
            r.x, r.mean, r.ci_half_width, r.reps, r.target_met
        )?;
    }
    Ok(())
}

/// Renders one or more named series as an ASCII scatter plot, mimicking
/// the paper's figures well enough to eyeball the shape.
pub fn ascii_plot(
    title: &str,
    x_label: &str,
    y_label: &str,
    series: &[(String, Vec<PointSummary>)],
    height: usize,
) -> String {
    const MARKS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];
    let mut out = String::new();
    let all: Vec<&PointSummary> = series.iter().flat_map(|(_, v)| v.iter()).collect();
    if all.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let (x_min, x_max) = all
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.x), hi.max(p.x))
        });
    let (y_min, y_max) = all
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), p| {
            (lo.min(p.mean), hi.max(p.mean))
        });
    let y_pad = ((y_max - y_min) * 0.08).max(0.5);
    let (y_lo, y_hi) = (y_min - y_pad, y_max + y_pad);
    let width = 64usize;
    let mut grid = vec![vec![' '; width]; height];
    for (si, (_, pts)) in series.iter().enumerate() {
        for p in pts {
            let xf = if x_max > x_min {
                (p.x - x_min) / (x_max - x_min)
            } else {
                0.5
            };
            let yf = (p.mean - y_lo) / (y_hi - y_lo);
            let col = ((xf * (width - 1) as f64).round() as usize).min(width - 1);
            let row = height - 1 - ((yf * (height - 1) as f64).round() as usize).min(height - 1);
            grid[row][col] = MARKS[si % MARKS.len()];
        }
    }
    writeln!(out, "{title}").unwrap();
    writeln!(out, "{y_label}").unwrap();
    for (i, row) in grid.iter().enumerate() {
        let y_val = y_hi - (y_hi - y_lo) * i as f64 / (height - 1) as f64;
        writeln!(out, "{y_val:>8.1} |{}", row.iter().collect::<String>()).unwrap();
    }
    writeln!(out, "{:>9}+{}", "", "-".repeat(width)).unwrap();
    writeln!(
        out,
        "{:>10}{:<32}{:>32}",
        "",
        format!("{x_min:.3}"),
        format!("{x_max:.3}")
    )
    .unwrap();
    writeln!(out, "{:>10}{x_label}", "").unwrap();
    for (si, (name, _)) in series.iter().enumerate() {
        writeln!(out, "  {} {}", MARKS[si % MARKS.len()], name).unwrap();
    }
    out
}

/// Formats a table of `(label, point)` rows.
pub fn labelled_table(title: &str, rows: &[(String, PointSummary)]) -> String {
    let mut out = String::new();
    writeln!(out, "{title}").unwrap();
    writeln!(
        out,
        "  {:<24} {:>12} {:>12} {:>6} {:>7}",
        "arm", "mean (µs)", "±95% CI", "reps", "met 1%"
    )
    .unwrap();
    for (label, p) in rows {
        writeln!(
            out,
            "  {:<24} {:>12.3} {:>12.3} {:>6} {:>7}",
            label, p.mean, p.ci_half_width, p.reps, p.target_met
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(v: &[(f64, f64)]) -> Vec<PointSummary> {
        v.iter()
            .map(|&(x, mean)| PointSummary {
                x,
                mean,
                ci_half_width: 0.1,
                reps: 5,
                target_met: true,
            })
            .collect()
    }

    #[test]
    fn csv_round_trips() {
        let dir = std::env::temp_dir().join("spam_bench_test");
        let path = dir.join("t.csv");
        write_csv(
            &path,
            "x,mean,ci,reps,met",
            &pts(&[(1.0, 11.0), (2.0, 12.0)]),
        )
        .unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.starts_with("x,mean,ci,reps,met\n"));
        assert_eq!(body.lines().count(), 3);
        assert!(body.contains("11.0000"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn ascii_plot_contains_markers_and_labels() {
        let s = vec![
            ("8 dests".to_string(), pts(&[(0.005, 11.0), (0.04, 60.0)])),
            ("64 dests".to_string(), pts(&[(0.005, 12.0), (0.04, 70.0)])),
        ];
        let plot = ascii_plot("Fig 3", "rate", "latency µs", &s, 12);
        assert!(plot.contains("Fig 3"));
        assert!(plot.contains('*'));
        assert!(plot.contains('o'));
        assert!(plot.contains("8 dests"));
        assert!(plot.contains("0.040"));
    }

    #[test]
    fn empty_plot_is_graceful() {
        let plot = ascii_plot("t", "x", "y", &[], 5);
        assert!(plot.contains("no data"));
    }

    #[test]
    fn table_renders_rows() {
        let t = labelled_table(
            "Ablation",
            &[("lowest-id".into(), pts(&[(0.0, 11.5)])[0].clone())],
        );
        assert!(t.contains("lowest-id"));
        assert!(t.contains("11.5"));
    }
}
