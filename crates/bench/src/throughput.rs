//! Engine throughput: how many simulator events (and delivered messages)
//! per wall-clock second the hot path sustains under saturating multicast
//! load, across network sizes.
//!
//! Unlike every other benchmark in this crate, the measured quantity is
//! *wall-clock* performance of the simulator itself, not simulated
//! latency: this is the harness behind the repo's "as fast as the hardware
//! allows" north star. The workload is deliberately brutal for the hot
//! path — every processor injects several multi-destination worms at time
//! zero, so the network saturates immediately and stays backlogged until
//! the last tail drains: maximal OCRQ contention, maximal flit-replication
//! traffic, maximal event density.
//!
//! Determinism: the traffic pattern depends only on `(seed, switches)`, so
//! two engines (or two revisions of one engine) given the same config
//! simulate byte-identical runs — the *simulated* outcome is asserted
//! stable via checksum fields, making events/sec comparisons apples to
//! apples.

use crate::{paper_labeling, paper_network, split_seed};
use netgraph::NodeId;
use spam_core::SpamRouting;
use std::time::Instant;
use wormsim::{MessageSpec, NetworkSim, SimConfig};

/// Workload parameters for one throughput sweep.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Network sizes (switch counts) to sweep.
    pub sizes: Vec<usize>,
    /// Multicasts injected per processor (all at time zero).
    pub msgs_per_proc: usize,
    /// Destinations per multicast.
    pub dests: usize,
    /// Worm length in flits.
    pub len: u32,
    /// Timed repetitions per size (best-of, to shed scheduler noise).
    pub reps: usize,
    /// Base seed for topology + traffic.
    pub seed: u64,
}

impl ThroughputConfig {
    /// The full sweep: 64 → 1024 switches. Two 8-destination multicasts
    /// per processor, all at time zero, keep every size deeply backlogged
    /// (hundreds of simultaneous worms against ~a hundred concurrently
    /// holdable channel sets) while the whole sweep stays runnable on a
    /// single core — including on the slow pre-refactor engine the
    /// committed baseline was recorded with.
    pub fn full() -> Self {
        ThroughputConfig {
            sizes: vec![64, 128, 256, 512, 1024],
            msgs_per_proc: 2,
            dests: 8,
            len: 32,
            reps: 2,
            seed: 2024,
        }
    }

    /// A CI-sized sweep (seconds, not minutes).
    pub fn quick() -> Self {
        ThroughputConfig {
            sizes: vec![64, 256],
            msgs_per_proc: 2,
            dests: 8,
            len: 32,
            reps: 2,
            seed: 2024,
        }
    }
}

/// Measured throughput at one network size.
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    /// Switch count (= processor count) of the network.
    pub switches: usize,
    /// Messages submitted.
    pub messages: u64,
    /// Engine events processed in one run.
    pub events: u64,
    /// Flits delivered in one run.
    pub flits_delivered: u64,
    /// Segment-state lookups on the event path (each was a hash-map probe
    /// before the arena refactor; an array index after).
    pub seg_lookups: u64,
    /// Simulated end time of the run (ns) — a determinism checksum.
    pub sim_end_ns: u64,
    /// Best wall-clock seconds over the configured repetitions.
    pub wall_s: f64,
    /// Events per wall-clock second (best rep).
    pub events_per_sec: f64,
    /// Delivered messages per wall-clock second (best rep).
    pub msgs_per_sec: f64,
}

/// Builds the deterministic saturating-multicast message list for one
/// network.
fn traffic(procs: &[NodeId], cfg: &ThroughputConfig, seed: u64) -> Vec<MessageSpec> {
    let mut specs = Vec::with_capacity(procs.len() * cfg.msgs_per_proc);
    for (pi, &src) in procs.iter().enumerate() {
        for m in 0..cfg.msgs_per_proc {
            // Deterministic distinct destination set: stride around the
            // processor ring from a seeded offset.
            let mix = split_seed(seed, (pi * cfg.msgs_per_proc + m) as u64);
            let start = (mix as usize) % procs.len();
            let mut stride = 1 + (mix >> 32) as usize % (procs.len() - 1);
            let mut dests = Vec::with_capacity(cfg.dests);
            let mut at = start;
            let mut collisions = 0;
            let mut degraded = false;
            while dests.len() < cfg.dests.min(procs.len() - 1) {
                at = (at + stride) % procs.len();
                let d = procs[at];
                if d != src && !dests.contains(&d) {
                    dests.push(d);
                    collisions = 0;
                } else {
                    collisions += 1;
                    if collisions > 2 * procs.len() {
                        // A collision streak this long proves the strided
                        // walk is stuck (e.g. stride len-1 cancels the +1
                        // phase shift and re-probes one slot forever).
                        // Degrade to *pure* linear probing — no phase
                        // shift — which visits every slot, so it always
                        // terminates (dests < procs). Unreachable on
                        // walks that were already terminating, so
                        // recorded baselines are unaffected.
                        degraded = true;
                        stride = 1;
                    }
                    if !degraded {
                        at += 1; // collision: fall through to the next slot
                    }
                }
            }
            specs.push(MessageSpec::multicast(src, dests, cfg.len).tag((pi * 31 + m) as u64));
        }
    }
    specs
}

/// Runs the sweep, one point per network size.
pub fn run(cfg: &ThroughputConfig) -> Vec<ThroughputPoint> {
    cfg.sizes
        .iter()
        .map(|&switches| run_one(cfg, switches))
        .collect()
}

/// Runs (and times) the saturating workload on one network size.
pub fn run_one(cfg: &ThroughputConfig, switches: usize) -> ThroughputPoint {
    let topo = paper_network(switches, split_seed(cfg.seed, switches as u64));
    let ud = paper_labeling(&topo);
    let spam = SpamRouting::new(&topo, &ud);
    let procs: Vec<NodeId> = topo.processors().collect();
    let specs = traffic(&procs, cfg, split_seed(cfg.seed, 0x7AFF));

    let mut best: Option<ThroughputPoint> = None;
    for _ in 0..cfg.reps.max(1) {
        let mut sim = NetworkSim::new(&topo, spam.clone(), SimConfig::paper());
        for s in &specs {
            sim.submit(s.clone()).expect("throughput spec valid");
        }
        let t0 = Instant::now();
        let out = sim.run();
        let wall = t0.elapsed().as_secs_f64();
        assert!(
            out.all_delivered(),
            "throughput workload must complete: {:?} {:?}",
            out.error,
            out.deadlock
        );
        let point = ThroughputPoint {
            switches,
            messages: out.messages.len() as u64,
            events: out.counters.events,
            flits_delivered: out.counters.flits_delivered,
            seg_lookups: out.counters.seg_lookups,
            sim_end_ns: out.end_time.as_ns(),
            wall_s: wall,
            events_per_sec: out.counters.events as f64 / wall,
            msgs_per_sec: out.counters.messages_completed as f64 / wall,
        };
        match &best {
            Some(b) if b.wall_s <= point.wall_s => {}
            _ => best = Some(point),
        }
    }
    best.expect("at least one rep")
}

/// Writes the sweep as CSV.
pub fn write_csv(path: &std::path::Path, points: &[ThroughputPoint]) -> std::io::Result<()> {
    use std::io::Write as _;
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "switches,messages,events,flits_delivered,seg_lookups,sim_end_ns,wall_s,events_per_sec,msgs_per_sec"
    )?;
    for p in points {
        writeln!(
            f,
            "{},{},{},{},{},{},{:.6},{:.1},{:.1}",
            p.switches,
            p.messages,
            p.events,
            p.flits_delivered,
            p.seg_lookups,
            p.sim_end_ns,
            p.wall_s,
            p.events_per_sec,
            p.msgs_per_sec
        )?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_is_deterministic_and_valid() {
        let topo = paper_network(16, 1);
        let procs: Vec<NodeId> = topo.processors().collect();
        let cfg = ThroughputConfig {
            sizes: vec![16],
            msgs_per_proc: 2,
            dests: 4,
            len: 8,
            reps: 1,
            seed: 7,
        };
        let a = traffic(&procs, &cfg, 99);
        let b = traffic(&procs, &cfg, 99);
        assert_eq!(a, b, "same seed, same traffic");
        assert_eq!(a.len(), procs.len() * 2);
        for s in &a {
            s.validate(&topo).expect("every spec valid");
            assert_eq!(s.dests.len(), 4);
        }
    }

    #[test]
    fn stuck_stride_walks_terminate() {
        // Regression: a seeded stride of procs.len()-1 cancels the +1
        // collision phase shift and used to re-probe one slot forever.
        // This exact (seed, size, dests) draws such a stride on a
        // 16-processor network.
        let topo = paper_network(16, split_seed(2024, 16));
        let procs: Vec<NodeId> = topo.processors().collect();
        let cfg = ThroughputConfig {
            sizes: vec![16],
            msgs_per_proc: 2,
            dests: 8,
            len: 32,
            reps: 1,
            seed: 2024,
        };
        let specs = traffic(&procs, &cfg, split_seed(2024, 0x7AFF));
        assert_eq!(specs.len(), 32);
        for s in &specs {
            s.validate(&topo).expect("every spec valid");
            assert_eq!(s.dests.len(), 8);
        }
    }

    #[test]
    fn degraded_walks_terminate_on_small_even_rings() {
        // Step-2 probing (a +1 phase shift on top of stride 1) stays on
        // one parity class of an even ring and can spin forever when
        // that class fills up; pure linear probing cannot. Sweep many
        // seeds on the tightest configuration (8 of 9 eligible
        // destinations on a 10-ring): every walk must terminate.
        let topo = paper_network(10, 5);
        let procs: Vec<NodeId> = topo.processors().collect();
        let cfg = ThroughputConfig {
            sizes: vec![10],
            msgs_per_proc: 2,
            dests: 8,
            len: 32,
            reps: 1,
            seed: 0,
        };
        for seed in 0..200 {
            for s in traffic(&procs, &cfg, seed) {
                assert_eq!(s.dests.len(), 8, "seed {seed}");
                s.validate(&topo).expect("every spec valid");
            }
        }
    }

    #[test]
    fn tiny_sweep_completes_and_counts_events() {
        let cfg = ThroughputConfig {
            sizes: vec![16],
            msgs_per_proc: 1,
            dests: 2,
            len: 4,
            reps: 1,
            seed: 3,
        };
        let pts = run(&cfg);
        assert_eq!(pts.len(), 1);
        assert!(pts[0].events > 0);
        assert!(pts[0].events_per_sec > 0.0);
        assert_eq!(pts[0].messages, 16);
    }

    #[test]
    fn repeated_runs_simulate_identically() {
        let cfg = ThroughputConfig {
            sizes: vec![16],
            msgs_per_proc: 1,
            dests: 3,
            len: 8,
            reps: 1,
            seed: 11,
        };
        let a = run_one(&cfg, 16);
        let b = run_one(&cfg, 16);
        assert_eq!(a.events, b.events);
        assert_eq!(a.sim_end_ns, b.sim_end_ns);
        assert_eq!(a.flits_delivered, b.flits_delivered);
    }
}
