//! Executing a scenario corpus directory: every committed
//! `*.scenario.json` runs from JSON alone, and each produces a
//! per-scenario CSV plus one combined `BENCH_scenario_corpus.json`
//! record through the shared [`crate::report`] module.

use crate::report::BenchJson;
use crate::PointSummary;
use spam_scenario::{run_spec, CorpusError, ScenarioReport, ScenarioSpec};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// One executed corpus entry.
#[derive(Debug, Clone)]
pub struct CorpusResult {
    /// The scenario file.
    pub path: PathBuf,
    /// The (possibly quickened) spec that ran.
    pub spec: ScenarioSpec,
    /// The execution report.
    pub report: ScenarioReport,
}

/// Why a corpus run failed.
#[derive(Debug)]
pub enum CorpusRunError {
    /// The directory failed to load.
    Load(CorpusError),
    /// One scenario failed to execute.
    Run {
        /// The offending file.
        path: PathBuf,
        /// The typed reason.
        error: spam_scenario::SpecError,
    },
}

impl std::fmt::Display for CorpusRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusRunError::Load(e) => write!(f, "{e}"),
            CorpusRunError::Run { path, error } => write!(f, "{}: {error}", path.display()),
        }
    }
}

impl std::error::Error for CorpusRunError {}

/// Loads and executes every scenario under `dir`, in filename order.
/// `quick` caps message counts and replications
/// ([`ScenarioSpec::quicken`]).
pub fn run_corpus(dir: &Path, quick: bool) -> Result<Vec<CorpusResult>, CorpusRunError> {
    let corpus = spam_scenario::load_dir(dir).map_err(CorpusRunError::Load)?;
    let mut out = Vec::with_capacity(corpus.len());
    for (path, mut spec) in corpus {
        if quick {
            spec.quicken();
        }
        let report = run_spec(&spec).map_err(|error| CorpusRunError::Run {
            path: path.clone(),
            error,
        })?;
        out.push(CorpusResult { path, spec, report });
    }
    Ok(out)
}

/// Writes one scenario's per-replication CSV
/// (`<out_dir>/<name>.csv`), returning the path.
pub fn write_scenario_csv(out_dir: &Path, report: &ScenarioReport) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join(format!("{}.csv", report.name));
    let mut f = std::fs::File::create(&path)?;
    writeln!(
        f,
        "rep,submitted,delivered,torn_down,unreachable,\
         mean_latency_us,p50_us,p99_us,events,end_time_us,clean"
    )?;
    let opt = |v: Option<f64>| v.map_or(String::new(), |x| format!("{x:.4}"));
    for r in &report.reps {
        writeln!(
            f,
            "{},{},{},{},{},{},{},{},{},{:.3},{}",
            r.rep,
            r.submitted,
            r.delivered,
            r.torn_down,
            r.unreachable,
            opt(r.mean_latency_us),
            opt(r.p50_us),
            opt(r.p99_us),
            r.events,
            r.end_time_us,
            r.clean
        )?;
    }
    Ok(path)
}

/// Writes the combined corpus summary CSV, one row per scenario.
pub fn write_corpus_csv(path: &Path, results: &[CorpusResult]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "scenario,reps,submitted,delivered,torn_down,unreachable,mean_latency_us,all_clean"
    )?;
    for r in results {
        let (d, t, u) = r.report.totals();
        let submitted: u64 = r.report.reps.iter().map(|x| x.submitted).sum();
        writeln!(
            f,
            "{},{},{submitted},{d},{t},{u},{},{}",
            r.report.name,
            r.report.reps.len(),
            r.report
                .mean_latency_us()
                .map_or(String::new(), |x| format!("{x:.4}")),
            r.report.all_clean()
        )?;
    }
    Ok(())
}

/// The corpus as one [`BenchJson`] record: one series per scenario, one
/// point per replication (`x` = replication index, `mean` = that
/// replication's mean latency in µs).
pub fn corpus_bench_json(results: &[CorpusResult], quick: bool) -> BenchJson {
    let series = results
        .iter()
        .map(|r| {
            let points = r
                .report
                .reps
                .iter()
                .map(|rep| PointSummary {
                    x: rep.rep as f64,
                    mean: rep.mean_latency_us.unwrap_or(f64::NAN),
                    ci_half_width: 0.0,
                    reps: 1,
                    target_met: rep.clean,
                })
                .collect();
            (r.report.name.clone(), points)
        })
        .collect();
    BenchJson {
        name: "scenario_corpus".to_string(),
        params: vec![
            ("scenarios".to_string(), results.len().to_string()),
            ("quick".to_string(), quick.to_string()),
        ],
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus(dir: &Path) {
        let _ = std::fs::remove_dir_all(dir);
        std::fs::create_dir_all(dir).unwrap();
        let mut spec = ScenarioSpec::example("tiny-fig2");
        spec.topology.switches = 12;
        spec.topology.seed = 5;
        spec.traffic = spam_scenario::TrafficSpec::SingleMulticast { dests: 4, len: 32 };
        std::fs::write(dir.join("tiny.scenario.json"), spec.to_json_string()).unwrap();
    }

    #[test]
    fn corpus_runs_and_reports() {
        let dir = std::env::temp_dir().join("spam_bench_corpus_test");
        tiny_corpus(&dir);
        let results = run_corpus(&dir, true).unwrap();
        assert_eq!(results.len(), 1);
        let report = &results[0].report;
        assert!(report.all_clean());
        assert!(report.mean_latency_us().unwrap() > 10.0, "startup floor");

        let out = dir.join("out");
        let csv = write_scenario_csv(&out, report).unwrap();
        let body = std::fs::read_to_string(csv).unwrap();
        assert!(body.starts_with("rep,submitted,"));
        assert_eq!(body.lines().count(), 1 + report.reps.len());

        let combined = out.join("scenario_corpus.csv");
        write_corpus_csv(&combined, &results).unwrap();
        let body = std::fs::read_to_string(&combined).unwrap();
        assert!(body.contains("tiny-fig2"));

        let bench = corpus_bench_json(&results, true);
        assert_eq!(bench.series.len(), 1);
        assert_eq!(bench.series[0].0, "tiny-fig2");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_corpus_is_a_typed_error() {
        let dir = std::env::temp_dir().join("spam_bench_corpus_bad_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.scenario.json"), "{\"name\": \"x\"}").unwrap();
        assert!(matches!(
            run_corpus(&dir, false),
            Err(CorpusRunError::Load(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
