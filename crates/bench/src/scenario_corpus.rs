//! Executing a scenario corpus directory: every committed
//! `*.scenario.json` runs from JSON alone, and each produces a
//! per-scenario CSV plus one combined `BENCH_scenario_corpus.json`
//! record through the shared [`crate::report`] module.

use crate::report::BenchJson;
use crate::PointSummary;
use spam_scenario::{run_spec, CorpusError, ScenarioReport, ScenarioSpec, SpecError};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// How one corpus entry ended. A sweep is crash-safe: one scenario's
/// typed failure never aborts the rest, and a resume journal lets an
/// interrupted sweep skip what already finished.
#[derive(Debug, Clone)]
pub enum CorpusStatus {
    /// The scenario executed; here is its report.
    Ok(ScenarioReport),
    /// The scenario failed with a typed error (recorded, not fatal).
    Failed(SpecError),
    /// The resume journal says this scenario already completed.
    Skipped,
}

impl CorpusStatus {
    /// Short status word for CSV/status columns.
    pub fn word(&self) -> &'static str {
        match self {
            CorpusStatus::Ok(_) => "ok",
            CorpusStatus::Failed(_) => "error",
            CorpusStatus::Skipped => "skipped",
        }
    }

    /// The report, when the scenario ran.
    pub fn report(&self) -> Option<&ScenarioReport> {
        match self {
            CorpusStatus::Ok(r) => Some(r),
            _ => None,
        }
    }
}

/// One executed corpus entry.
#[derive(Debug, Clone)]
pub struct CorpusResult {
    /// The scenario file.
    pub path: PathBuf,
    /// The (possibly quickened) spec that ran.
    pub spec: ScenarioSpec,
    /// How the run ended.
    pub status: CorpusStatus,
}

/// Why a corpus run failed outright (only the directory load can; a
/// single scenario's failure is a per-entry [`CorpusStatus::Failed`]).
#[derive(Debug)]
pub enum CorpusRunError {
    /// The directory failed to load.
    Load(CorpusError),
}

impl std::fmt::Display for CorpusRunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusRunError::Load(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CorpusRunError {}

/// Names already recorded in a resume journal (one scenario name per
/// line). A missing journal is an empty set.
fn journal_names(path: &Path) -> Vec<String> {
    std::fs::read_to_string(path)
        .map(|s| s.lines().map(str::to_string).collect())
        .unwrap_or_default()
}

/// Appends one completed scenario to the journal, flushing immediately
/// so a crash between scenarios loses at most the one in flight.
fn journal_append(path: &Path, name: &str) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{name}")?;
    f.sync_all()
}

/// Loads and executes every scenario under `dir`, in filename order.
/// `quick` caps message counts and replications
/// ([`ScenarioSpec::quicken`]). A scenario that fails is recorded as
/// [`CorpusStatus::Failed`] and the sweep continues. With a `journal`
/// path, scenarios named in the journal are skipped and each completed
/// scenario is appended as it finishes — rerunning the same command
/// after a crash resumes where the sweep died.
pub fn run_corpus_journaled(
    dir: &Path,
    quick: bool,
    journal: Option<&Path>,
) -> Result<Vec<CorpusResult>, CorpusRunError> {
    let corpus = spam_scenario::load_dir(dir).map_err(CorpusRunError::Load)?;
    let done = journal.map(journal_names).unwrap_or_default();
    let mut out = Vec::with_capacity(corpus.len());
    for (path, mut spec) in corpus {
        if quick {
            spec.quicken();
        }
        if done.contains(&spec.name) {
            out.push(CorpusResult {
                path,
                spec,
                status: CorpusStatus::Skipped,
            });
            continue;
        }
        let status = match run_spec(&spec) {
            Ok(report) => {
                if let Some(j) = journal {
                    // Journal I/O failure must not invalidate the run;
                    // it only costs resumability.
                    if let Err(e) = journal_append(j, &report.name) {
                        eprintln!("corpus journal {}: {e}", j.display());
                    }
                }
                CorpusStatus::Ok(report)
            }
            Err(error) => CorpusStatus::Failed(error),
        };
        out.push(CorpusResult { path, spec, status });
    }
    Ok(out)
}

/// [`run_corpus_journaled`] without a resume journal.
pub fn run_corpus(dir: &Path, quick: bool) -> Result<Vec<CorpusResult>, CorpusRunError> {
    run_corpus_journaled(dir, quick, None)
}

/// Writes one scenario's per-replication CSV
/// (`<out_dir>/<name>.csv`), returning the path.
pub fn write_scenario_csv(out_dir: &Path, report: &ScenarioReport) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(out_dir)?;
    let path = out_dir.join(format!("{}.csv", report.name));
    let mut f = std::fs::File::create(&path)?;
    writeln!(
        f,
        "rep,submitted,delivered,torn_down,unreachable,\
         mean_latency_us,p50_us,p99_us,events,end_time_us,clean"
    )?;
    let opt = |v: Option<f64>| v.map_or(String::new(), |x| format!("{x:.4}"));
    for r in &report.reps {
        writeln!(
            f,
            "{},{},{},{},{},{},{},{},{},{:.3},{}",
            r.rep,
            r.submitted,
            r.delivered,
            r.torn_down,
            r.unreachable,
            opt(r.mean_latency_us),
            opt(r.p50_us),
            opt(r.p99_us),
            r.events,
            r.end_time_us,
            r.clean
        )?;
    }
    Ok(path)
}

/// Writes the combined corpus summary CSV, one row per scenario —
/// including a status row for scenarios that failed or were skipped, so
/// a partial sweep still leaves a complete, honest record.
pub fn write_corpus_csv(path: &Path, results: &[CorpusResult]) -> std::io::Result<()> {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(
        f,
        "scenario,status,reps,submitted,delivered,torn_down,unreachable,\
         mean_latency_us,all_clean,detail"
    )?;
    for r in results {
        match &r.status {
            CorpusStatus::Ok(report) => {
                let (d, t, u) = report.totals();
                let submitted: u64 = report.reps.iter().map(|x| x.submitted).sum();
                writeln!(
                    f,
                    "{},ok,{},{submitted},{d},{t},{u},{},{},",
                    report.name,
                    report.reps.len(),
                    report
                        .mean_latency_us()
                        .map_or(String::new(), |x| format!("{x:.4}")),
                    report.all_clean()
                )?;
            }
            CorpusStatus::Failed(e) => {
                // Typed failure detail, commas stripped to keep the row
                // one CSV record.
                let detail = e.to_string().replace(',', ";");
                writeln!(f, "{},error,,,,,,,,{detail}", r.spec.name)?;
            }
            CorpusStatus::Skipped => {
                writeln!(f, "{},skipped,,,,,,,,resume journal", r.spec.name)?;
            }
        }
    }
    Ok(())
}

/// The corpus as one [`BenchJson`] record: one series per scenario, one
/// point per replication (`x` = replication index, `mean` = that
/// replication's mean latency in µs).
pub fn corpus_bench_json(results: &[CorpusResult], quick: bool) -> BenchJson {
    let series = results
        .iter()
        .filter_map(|r| {
            let report = r.status.report()?;
            let points = report
                .reps
                .iter()
                .map(|rep| PointSummary {
                    x: rep.rep as f64,
                    mean: rep.mean_latency_us.unwrap_or(f64::NAN),
                    ci_half_width: 0.0,
                    reps: 1,
                    target_met: rep.clean,
                })
                .collect();
            Some((report.name.clone(), points))
        })
        .collect();
    let count = |s: &str| {
        results
            .iter()
            .filter(|r| r.status.word() == s)
            .count()
            .to_string()
    };
    BenchJson {
        name: "scenario_corpus".to_string(),
        params: vec![
            ("scenarios".to_string(), results.len().to_string()),
            ("ok".to_string(), count("ok")),
            ("failed".to_string(), count("error")),
            ("skipped".to_string(), count("skipped")),
            ("quick".to_string(), quick.to_string()),
        ],
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus(dir: &Path) {
        let _ = std::fs::remove_dir_all(dir);
        std::fs::create_dir_all(dir).unwrap();
        let mut spec = ScenarioSpec::example("tiny-fig2");
        spec.topology.switches = 12;
        spec.topology.seed = 5;
        spec.traffic = spam_scenario::TrafficSpec::SingleMulticast { dests: 4, len: 32 };
        std::fs::write(dir.join("tiny.scenario.json"), spec.to_json_string()).unwrap();
    }

    #[test]
    fn corpus_runs_and_reports() {
        let dir = std::env::temp_dir().join("spam_bench_corpus_test");
        tiny_corpus(&dir);
        let results = run_corpus(&dir, true).unwrap();
        assert_eq!(results.len(), 1);
        let report = results[0].status.report().expect("scenario ran");
        assert!(report.all_clean());
        assert!(report.mean_latency_us().unwrap() > 10.0, "startup floor");

        let out = dir.join("out");
        let csv = write_scenario_csv(&out, report).unwrap();
        let body = std::fs::read_to_string(csv).unwrap();
        assert!(body.starts_with("rep,submitted,"));
        assert_eq!(body.lines().count(), 1 + report.reps.len());

        let combined = out.join("scenario_corpus.csv");
        write_corpus_csv(&combined, &results).unwrap();
        let body = std::fs::read_to_string(&combined).unwrap();
        assert!(body.contains("tiny-fig2,ok,"));

        let bench = corpus_bench_json(&results, true);
        assert_eq!(bench.series.len(), 1);
        assert_eq!(bench.series[0].0, "tiny-fig2");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bad_corpus_is_a_typed_error() {
        let dir = std::env::temp_dir().join("spam_bench_corpus_bad_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.scenario.json"), "{\"name\": \"x\"}").unwrap();
        assert!(matches!(
            run_corpus(&dir, false),
            Err(CorpusRunError::Load(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn one_failing_scenario_does_not_abort_the_sweep() {
        let dir = std::env::temp_dir().join("spam_bench_corpus_partial_test");
        tiny_corpus(&dir);
        // A spec that validates but fails at run time: static damage so
        // severe no component survives.
        let mut doomed = ScenarioSpec::example("aaa-doomed");
        doomed.topology.switches = 8;
        doomed.traffic = spam_scenario::TrafficSpec::SingleMulticast { dests: 2, len: 32 };
        doomed.faults = spam_scenario::FaultsSpec::Static {
            model: spam_scenario::FaultModelSpec::IidSwitches { rate: 1.0 },
            seed: 1,
        };
        std::fs::write(dir.join("doomed.scenario.json"), doomed.to_json_string()).unwrap();

        let results = run_corpus(&dir, true).unwrap();
        assert_eq!(results.len(), 2);
        let by_name = |n: &str| {
            results
                .iter()
                .find(|r| r.spec.name == n)
                .unwrap_or_else(|| panic!("{n} missing"))
        };
        assert!(matches!(
            by_name("aaa-doomed").status,
            CorpusStatus::Failed(_)
        ));
        assert!(matches!(by_name("tiny-fig2").status, CorpusStatus::Ok(_)));

        // The combined CSV records both, with a status per row.
        let combined = dir.join("out/scenario_corpus.csv");
        write_corpus_csv(&combined, &results).unwrap();
        let body = std::fs::read_to_string(&combined).unwrap();
        assert!(body.contains("aaa-doomed,error,"), "{body}");
        assert!(body.contains("tiny-fig2,ok,"), "{body}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_journal_skips_completed_scenarios() {
        let dir = std::env::temp_dir().join("spam_bench_corpus_resume_test");
        tiny_corpus(&dir);
        let journal = dir.join("out/.journal");

        let first = run_corpus_journaled(&dir, true, Some(&journal)).unwrap();
        assert!(matches!(first[0].status, CorpusStatus::Ok(_)));
        let recorded = std::fs::read_to_string(&journal).unwrap();
        assert_eq!(recorded.trim(), "tiny-fig2");

        // Second sweep with the same journal: nothing reruns.
        let second = run_corpus_journaled(&dir, true, Some(&journal)).unwrap();
        assert!(matches!(second[0].status, CorpusStatus::Skipped));
        std::fs::remove_dir_all(&dir).ok();
    }
}
