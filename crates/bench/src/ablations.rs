//! Ablation studies from DESIGN.md (all grounded in §5's future-work
//! discussion).
//!
//! * **A — root selection**: the spanning-tree root shapes every route;
//!   §5 notes that "judicious selection of spanning trees ... may have
//!   significant effects on performance".
//! * **B — input-buffer depth**: §5: "by using larger input buffers ...
//!   message latency could potentially be further reduced"; the headline
//!   theorem only needs depth 1.
//! * **C — destination partitioning**: §5's proposed mitigation of the
//!   root hot-spot: split one worm into several tree-contiguous worms.
//! * **D — SPAM vs software multicast** across destination counts: the
//!   end-to-end framing of the paper's motivation (Figure 2 + the §4
//!   in-text claim combined).

use crate::{paper_network, PointSummary};
use baselines::{UnicastMulticast, UpDownUnicastRouting};
use desim::{Duration, Time};
use netgraph::NodeId;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use simstats::{ConfidenceLevel, PrecisionController};
use spam_core::{partition_specs, PartitionStrategy, SpamRouting};
use traffic::{DestinationSampler, MixedTrafficConfig};
use updown::{RootSelection, UpDownLabeling};
use wormsim::{MessageSpec, NetworkSim, SimConfig};

/// Common knobs for the ablation sweeps.
#[derive(Debug, Clone, Copy)]
pub struct AblationConfig {
    /// Network size in switches.
    pub switches: usize,
    /// Relative CI target.
    pub target_rel: f64,
    /// Replication budget per point.
    pub max_reps: u64,
    /// RNG stream.
    pub seed: u64,
}

impl AblationConfig {
    /// Paper-scale defaults (128 nodes, 1 % CI).
    pub fn paper() -> Self {
        AblationConfig {
            switches: 128,
            target_rel: 0.01,
            max_reps: 1000,
            seed: 0x0AB1_A7E5,
        }
    }

    /// Fast defaults for smoke tests.
    pub fn quick() -> Self {
        AblationConfig {
            switches: 32,
            target_rel: 0.05,
            max_reps: 24,
            seed: 0x0AB1_A7E5,
        }
    }
}

fn point(ctl: &PrecisionController, x: f64) -> PointSummary {
    let ci = ctl.interval().expect("at least 3 reps");
    PointSummary {
        x,
        mean: ci.mean,
        ci_half_width: ci.half_width,
        reps: ctl.count(),
        target_met: ctl.met_target(),
    }
}

// ---------------------------------------------------------------- A: root

/// Mean single-multicast latency under one root policy.
fn root_policy_rep(switches: usize, root: RootSelection, dests: usize, seed: u64) -> f64 {
    let topo = paper_network(switches, crate::split_seed(seed, 0xA));
    let ud = UpDownLabeling::build(&topo, root);
    let spam = SpamRouting::new(&topo, &ud);
    let mut rng = rand::rngs::StdRng::seed_from_u64(crate::split_seed(seed, 0xB));
    let procs: Vec<NodeId> = topo.processors().collect();
    let src = procs[rng.gen_range(0..procs.len())];
    let mut others: Vec<NodeId> = procs.iter().copied().filter(|&p| p != src).collect();
    others.shuffle(&mut rng);
    others.truncate(dests);
    let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper());
    sim.submit(MessageSpec::multicast(src, others, 128))
        .unwrap();
    let out = sim.run();
    assert!(out.all_delivered());
    out.messages[0].latency().unwrap().as_us_f64()
}

/// Ablation A: multicast latency per root-selection policy (x = policy
/// index in the returned label order).
pub fn run_root_selection(cfg: &AblationConfig, dests: usize) -> Vec<(String, PointSummary)> {
    let policies: [(&str, RootSelection); 4] = [
        ("lowest-id", RootSelection::LowestId),
        ("max-degree", RootSelection::MaxDegree),
        ("min-eccentricity", RootSelection::MinEccentricity),
        ("random", RootSelection::RandomSeeded(cfg.seed)),
    ];
    policies
        .iter()
        .enumerate()
        .map(|(i, (name, root))| {
            let mut ctl =
                PrecisionController::new(cfg.target_rel, ConfidenceLevel::P95, 3, cfg.max_reps);
            crate::sweep::replicate_parallel(
                &mut ctl,
                crate::split_seed(cfg.seed, i as u64),
                |s| root_policy_rep(cfg.switches, *root, dests, s),
            );
            (name.to_string(), point(&ctl, i as f64))
        })
        .collect()
}

// ------------------------------------------------------------- B: buffers

/// Ablation B: mixed-traffic latency versus buffer depth (§5).
pub fn run_buffer_depth(
    cfg: &AblationConfig,
    depths: &[usize],
    rate: f64,
    messages: usize,
) -> Vec<PointSummary> {
    depths
        .iter()
        .map(|&depth| {
            let mut ctl =
                PrecisionController::new(cfg.target_rel, ConfidenceLevel::P95, 3, cfg.max_reps);
            crate::sweep::replicate_parallel(
                &mut ctl,
                crate::split_seed(cfg.seed, depth as u64),
                |s| {
                    let topo = paper_network(cfg.switches, crate::split_seed(s, 0xA));
                    let ud = crate::paper_labeling(&topo);
                    let spam = SpamRouting::new(&topo, &ud);
                    let stream = MixedTrafficConfig::figure3(rate, 8, messages)
                        .generate(&topo, crate::split_seed(s, 0xB))
                        .expect("valid mixed-traffic config");
                    let mut sim =
                        NetworkSim::new(&topo, spam, SimConfig::paper().with_buffers(depth, depth));
                    for spec in stream {
                        sim.submit(spec).unwrap();
                    }
                    let out = sim.run();
                    assert!(out.all_delivered());
                    let warmup = (messages / 10) as u64;
                    out.mean_latency_us(|m| m.spec.tag >= warmup).unwrap()
                },
            );
            point(&ctl, depth as f64)
        })
        .collect()
}

// ----------------------------------------------------------- C: partition

/// Strategies compared by ablation C.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionArm {
    /// One worm for all destinations (plain SPAM).
    SingleWorm,
    /// §5's proposal: tree-contiguous groups, one worm each.
    Subtrees {
        /// Group budget.
        max_groups: usize,
    },
    /// Naive id-sorted chunks.
    IdChunks {
        /// Number of chunks.
        groups: usize,
    },
}

impl PartitionArm {
    /// Short label for reports.
    pub fn label(&self) -> String {
        match self {
            PartitionArm::SingleWorm => "single-worm".into(),
            PartitionArm::Subtrees { max_groups } => format!("subtrees({max_groups})"),
            PartitionArm::IdChunks { groups } => format!("id-chunks({groups})"),
        }
    }
}

/// One replication of ablation C: clustered destination set, background
/// unicast traffic, measure the makespan until *all* groups delivered.
fn partition_rep(
    switches: usize,
    dests: usize,
    arm: PartitionArm,
    background: usize,
    seed: u64,
) -> f64 {
    let topo = paper_network(switches, crate::split_seed(seed, 0xA));
    let ud = crate::paper_labeling(&topo);
    let spam = SpamRouting::new(&topo, &ud);
    let mut rng = rand::rngs::StdRng::seed_from_u64(crate::split_seed(seed, 0xB));
    let procs: Vec<NodeId> = topo.processors().collect();
    let src = procs[rng.gen_range(0..procs.len())];
    let dset = DestinationSampler::UniformRandom { count: dests }
        .sample(&topo, src, &mut rng)
        .expect("enough processors");
    let base = MessageSpec::multicast(src, dset, 128).tag(1000);
    let specs = match arm {
        PartitionArm::SingleWorm => vec![base],
        PartitionArm::Subtrees { max_groups } => partition_specs(
            &ud,
            &base,
            PartitionStrategy::SubtreesUnderLca { max_groups },
            1000,
        ),
        PartitionArm::IdChunks { groups } => {
            partition_specs(&ud, &base, PartitionStrategy::IdChunks { groups }, 1000)
        }
    };
    let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper());
    for s in &specs {
        sim.submit(s.clone()).unwrap();
    }
    // Background unicasts make the root hot-spot matter.
    for i in 0..background {
        let a = procs[rng.gen_range(0..procs.len())];
        let b = DestinationSampler::UniformRandom { count: 1 }
            .sample(&topo, a, &mut rng)
            .expect("enough processors");
        sim.submit(
            MessageSpec::multicast(a, b, 128)
                .at(Time::from_ns(rng.gen_range(0..5_000)))
                .tag(i as u64),
        )
        .unwrap();
    }
    let out = sim.run();
    assert!(out.all_delivered());
    // Makespan over the multicast's groups.
    out.messages
        .iter()
        .filter(|m| m.spec.tag >= 1000)
        .map(|m| m.completed_at.unwrap().since(m.spec.gen_time).as_us_f64())
        .fold(0.0, f64::max)
}

/// Ablation C: multicast makespan per partitioning arm.
pub fn run_partition(
    cfg: &AblationConfig,
    dests: usize,
    background: usize,
    arms: &[PartitionArm],
) -> Vec<(String, PointSummary)> {
    arms.iter()
        .enumerate()
        .map(|(i, arm)| {
            let mut ctl =
                PrecisionController::new(cfg.target_rel, ConfidenceLevel::P95, 3, cfg.max_reps);
            crate::sweep::replicate_parallel(
                &mut ctl,
                crate::split_seed(cfg.seed, 0xC0 + i as u64),
                |s| partition_rep(cfg.switches, dests, *arm, background, s),
            );
            (arm.label(), point(&ctl, i as f64))
        })
        .collect()
}

// ------------------------------------------------------------ D: baseline

/// Ablation D: SPAM vs simulated software multicast latency across
/// destination counts. Returns `(dests, spam, software)` summaries.
pub fn run_baseline_comparison(
    cfg: &AblationConfig,
    dest_counts: &[usize],
) -> Vec<(usize, PointSummary, PointSummary)> {
    dest_counts
        .iter()
        .map(|&k| {
            let mut spam_ctl =
                PrecisionController::new(cfg.target_rel, ConfidenceLevel::P95, 3, cfg.max_reps);
            crate::sweep::replicate_parallel(
                &mut spam_ctl,
                crate::split_seed(cfg.seed, k as u64),
                |s| crate::fig2::single_multicast_latency_us(cfg.switches, k, 128, s),
            );
            let mut soft_ctl = PrecisionController::new(
                cfg.target_rel.max(0.03),
                ConfidenceLevel::P95,
                3,
                cfg.max_reps.min(50),
            );
            crate::sweep::replicate_parallel(
                &mut soft_ctl,
                crate::split_seed(cfg.seed, 0xD000 + k as u64),
                |s| software_multicast_us(cfg.switches, k, s),
            );
            (k, point(&spam_ctl, k as f64), point(&soft_ctl, k as f64))
        })
        .collect()
}

/// Simulated binomial unicast-based multicast to `k` random destinations.
fn software_multicast_us(switches: usize, k: usize, seed: u64) -> f64 {
    let topo = paper_network(switches, crate::split_seed(seed, 0xA));
    let ud = crate::paper_labeling(&topo);
    let router = UpDownUnicastRouting::new(&topo, &ud);
    let mut rng = rand::rngs::StdRng::seed_from_u64(crate::split_seed(seed, 0xB));
    let procs: Vec<NodeId> = topo.processors().collect();
    let src = procs[rng.gen_range(0..procs.len())];
    let dests = DestinationSampler::UniformRandom { count: k }
        .sample(&topo, src, &mut rng)
        .expect("enough processors");
    let mut um = UnicastMulticast::new(src, &dests, 128, Duration::from_us(10));
    let mut sim = NetworkSim::new(&topo, router, SimConfig::paper());
    for s in um.initial_sends(Time::ZERO) {
        sim.submit(s).unwrap();
    }
    let out = sim.run_with_hook(&mut um);
    assert!(out.all_delivered());
    um.makespan(&out).unwrap().as_us_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_selection_arms_all_run() {
        let cfg = AblationConfig {
            switches: 24,
            target_rel: 0.10,
            max_reps: 8,
            seed: 3,
        };
        let rows = run_root_selection(&cfg, 8);
        assert_eq!(rows.len(), 4);
        for (name, p) in &rows {
            assert!(p.mean > 10.0, "{name} mean {}", p.mean);
        }
    }

    #[test]
    fn buffer_depth_never_hurts() {
        let cfg = AblationConfig {
            switches: 24,
            target_rel: 0.10,
            max_reps: 6,
            seed: 4,
        };
        let pts = run_buffer_depth(&cfg, &[1, 4], 0.02, 200);
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].mean <= pts[0].mean * 1.02,
            "deeper buffers regressed latency: {} -> {}",
            pts[0].mean,
            pts[1].mean
        );
    }

    #[test]
    fn partition_arms_all_deliver() {
        let cfg = AblationConfig {
            switches: 24,
            target_rel: 0.2,
            max_reps: 4,
            seed: 5,
        };
        let rows = run_partition(
            &cfg,
            12,
            8,
            &[
                PartitionArm::SingleWorm,
                PartitionArm::Subtrees { max_groups: 4 },
                PartitionArm::IdChunks { groups: 4 },
            ],
        );
        assert_eq!(rows.len(), 3);
        for (label, p) in &rows {
            assert!(p.mean > 10.0, "{label}: {}", p.mean);
        }
    }

    #[test]
    fn spam_beats_software_multicast() {
        let cfg = AblationConfig {
            switches: 24,
            target_rel: 0.10,
            max_reps: 8,
            seed: 6,
        };
        let rows = run_baseline_comparison(&cfg, &[8]);
        let (_, spam, soft) = &rows[0];
        assert!(
            soft.mean > spam.mean * 2.0,
            "software {} not clearly slower than SPAM {}",
            soft.mean,
            spam.mean
        );
    }
}
