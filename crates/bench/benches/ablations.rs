//! Criterion benches for the ablation arms (DESIGN.md A–D) at smoke
//! scale: one replication per iteration, so `cargo bench` exercises every
//! experiment code path and tracks simulator throughput per configuration.

use baselines::{UnicastMulticast, UpDownUnicastRouting};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use desim::{Duration, Time};
use netgraph::NodeId;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use spam_bench::{paper_labeling, paper_network};
use spam_core::{SelectionPolicy, SpamRouting};
use std::hint::black_box;
use updown::{RootSelection, UpDownLabeling};
use wormsim::{MessageSpec, NetworkSim, SimConfig};

/// One 32-destination multicast on a fixed 64-switch network.
fn multicast_once(
    topo: &netgraph::Topology,
    spam: &SpamRouting<'_>,
    cfg: SimConfig,
    seed: u64,
) -> f64 {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let procs: Vec<NodeId> = topo.processors().collect();
    let mut dests = procs.clone();
    dests.shuffle(&mut rng);
    let src = dests.pop().unwrap();
    dests.truncate(32);
    let mut sim = NetworkSim::new(topo, spam.clone(), cfg);
    sim.submit(MessageSpec::multicast(src, dests, 128)).unwrap();
    let out = sim.run();
    assert!(out.all_delivered());
    out.messages[0].latency().unwrap().as_us_f64()
}

fn bench_buffer_depth(c: &mut Criterion) {
    let topo = paper_network(64, 3);
    let ud = paper_labeling(&topo);
    let spam = SpamRouting::new(&topo, &ud);
    let mut g = c.benchmark_group("ablation_buffer_depth_multicast");
    g.sample_size(10);
    for depth in [1usize, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &d| {
            let cfg = SimConfig::paper().with_buffers(d, d);
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(multicast_once(&topo, &spam, cfg, seed))
            });
        });
    }
    g.finish();
}

fn bench_selection_policies(c: &mut Criterion) {
    let topo = paper_network(64, 3);
    let ud = paper_labeling(&topo);
    let base = SpamRouting::new(&topo, &ud);
    let mut g = c.benchmark_group("ablation_selection_policy_multicast");
    g.sample_size(10);
    for (name, policy) in [
        ("min-distance", SelectionPolicy::MinResidualDistance),
        ("first-legal", SelectionPolicy::FirstLegal),
        ("random", SelectionPolicy::RandomLegal { seed: 9 }),
    ] {
        let spam = base.with_policy(policy);
        g.bench_with_input(BenchmarkId::from_parameter(name), &spam, |b, s| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(multicast_once(&topo, s, SimConfig::paper(), seed))
            });
        });
    }
    g.finish();
}

fn bench_root_policies(c: &mut Criterion) {
    let topo = paper_network(64, 3);
    let mut g = c.benchmark_group("ablation_root_policy_multicast");
    g.sample_size(10);
    for (name, root) in [
        ("lowest-id", RootSelection::LowestId),
        ("min-eccentricity", RootSelection::MinEccentricity),
    ] {
        let ud = UpDownLabeling::build(&topo, root);
        let spam = SpamRouting::new(&topo, &ud);
        // Move `ud` lifetime issues aside by benching inside the scope.
        g.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(multicast_once(&topo, &spam, SimConfig::paper(), seed))
            });
        });
    }
    g.finish();
}

fn bench_spam_vs_software(c: &mut Criterion) {
    let topo = paper_network(64, 3);
    let ud = paper_labeling(&topo);
    let mut g = c.benchmark_group("ablation_baseline_32dests");
    g.sample_size(10);
    let spam = SpamRouting::new(&topo, &ud);
    g.bench_function("spam_one_worm", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(multicast_once(&topo, &spam, SimConfig::paper(), seed))
        });
    });
    let router = UpDownUnicastRouting::new(&topo, &ud);
    g.bench_function("software_binomial", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let procs: Vec<NodeId> = topo.processors().collect();
            let mut dests = procs.clone();
            dests.shuffle(&mut rng);
            let src = dests.pop().unwrap();
            dests.truncate(32);
            let mut um = UnicastMulticast::new(src, &dests, 128, Duration::from_us(10));
            let mut sim = NetworkSim::new(&topo, router.clone(), SimConfig::paper());
            for s in um.initial_sends(Time::ZERO) {
                sim.submit(s).unwrap();
            }
            let out = sim.run_with_hook(&mut um);
            black_box(um.makespan(&out).unwrap().as_us_f64())
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_buffer_depth,
    bench_selection_policies,
    bench_root_policies,
    bench_spam_vs_software
);
criterion_main!(benches);
