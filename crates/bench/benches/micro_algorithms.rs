//! Micro-benchmarks of the algorithmic building blocks: up*/down*
//! labeling, SPAM distance-table construction, per-hop routing decisions,
//! LCA queries, and destination partitioning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use netgraph::NodeId;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use spam_bench::{paper_labeling, paper_network};
use spam_core::{partition_destinations, PartitionStrategy, Phase, RoutingTables, SpamRouting};
use std::hint::black_box;
use updown::{RootSelection, UpDownLabeling};

fn bench_labeling(c: &mut Criterion) {
    let mut g = c.benchmark_group("updown_labeling_build");
    for switches in [128usize, 256] {
        let topo = paper_network(switches, 7);
        g.bench_with_input(BenchmarkId::from_parameter(switches), &topo, |b, t| {
            b.iter(|| black_box(UpDownLabeling::build(t, RootSelection::LowestId)));
        });
    }
    g.finish();
}

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("spam_routing_tables_build");
    g.sample_size(10);
    for switches in [128usize, 256] {
        let topo = paper_network(switches, 7);
        let ud = paper_labeling(&topo);
        g.bench_with_input(
            BenchmarkId::from_parameter(switches),
            &(&topo, &ud),
            |b, (t, u)| {
                b.iter(|| black_box(RoutingTables::build(t, u)));
            },
        );
    }
    g.finish();
}

fn bench_route_decisions(c: &mut Criterion) {
    let topo = paper_network(128, 7);
    let ud = paper_labeling(&topo);
    let spam = SpamRouting::new(&topo, &ud);
    let switches: Vec<NodeId> = topo.switches().collect();
    let procs: Vec<NodeId> = topo.processors().collect();
    c.bench_function("spam_legal_moves_per_hop", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            let node = switches[i % switches.len()];
            let target = procs[(i * 7) % procs.len()];
            black_box(spam.legal_moves(node, Phase::Up, target))
        });
    });
    c.bench_function("updown_lca_of_64", |b| {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut dests = procs.clone();
        dests.shuffle(&mut rng);
        dests.truncate(64);
        b.iter(|| black_box(ud.lca_of(&dests)));
    });
}

fn bench_partitioning(c: &mut Criterion) {
    let topo = paper_network(128, 7);
    let ud = paper_labeling(&topo);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut dests: Vec<NodeId> = topo.processors().collect();
    dests.shuffle(&mut rng);
    dests.truncate(64);
    c.bench_function("partition_subtrees_64dests", |b| {
        b.iter(|| {
            black_box(partition_destinations(
                &ud,
                &dests,
                PartitionStrategy::SubtreesUnderLca { max_groups: 4 },
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_labeling,
    bench_tables,
    bench_route_decisions,
    bench_partitioning
);
criterion_main!(benches);
