//! Criterion bench for the Figure 3 experiment: wall-clock cost of one
//! mixed-traffic replication (topology + stream generation + simulation)
//! at a light and a heavy arrival rate, and for a small and a large
//! multicast size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use spam_bench::fig3::mixed_traffic_mean_latency_us;
use std::hint::black_box;

fn bench_mixed_traffic(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_mixed_traffic_64n_500msgs");
    g.sample_size(10);
    for (rate, k) in [(0.005f64, 8usize), (0.03, 8), (0.005, 32)] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("rate{rate}_k{k}")),
            &(rate, k),
            |b, &(rate, k)| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    black_box(mixed_traffic_mean_latency_us(64, rate, k, 500, 0.1, seed))
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_mixed_traffic);
criterion_main!(benches);
