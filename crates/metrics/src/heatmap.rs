//! Lattice-shaped congestion heatmaps.
//!
//! The §4 networks place switches on an integer lattice
//! ([`LatticeLayout`] remembers which cell each switch occupies), so
//! per-channel congestion totals have a natural spatial rendering: fold
//! every channel's [`ChannelAccum`] into the lattice cell of the switch
//! that *transmits* on it (injection channels bill the switch their
//! processor attaches to), and the result localizes hot spots — a
//! hotspot workload lights the cells around the hot node, an incast
//! lights the sink's neighborhood, a storm smears heat along the
//! surviving up*/down* trunks.

use crate::channels::ChannelAccum;
use netgraph::gen::lattice::LatticeLayout;
use netgraph::Topology;
use std::fmt::Write as _;

/// One lattice cell's folded congestion totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CellHeat {
    /// Switch node id occupying this cell, if any.
    pub switch: Option<u32>,
    /// Channels folded into this cell.
    pub channels: u32,
    /// Summed per-channel totals.
    pub heat: ChannelAccum,
}

/// A `side x side` grid of [`CellHeat`]s. Cells without a switch stay
/// at their default (zero) heat.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CongestionHeatmap {
    /// Lattice side length.
    pub side: usize,
    /// Row-major cells, `side * side` of them.
    pub cells: Vec<CellHeat>,
}

/// Which accumulator field a rendering or ranking keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeatKey {
    /// Wire-busy nanoseconds.
    BusyNs,
    /// Acquisition count.
    Acquisitions,
    /// OCRQ depth integral (entry-nanoseconds).
    OcrqWaitNs,
    /// Failed-acquisition stall count.
    HeaderStalls,
}

impl HeatKey {
    /// Extracts the keyed field.
    pub fn of(self, a: &ChannelAccum) -> u64 {
        match self {
            HeatKey::BusyNs => a.busy_ns,
            HeatKey::Acquisitions => a.acquisitions,
            HeatKey::OcrqWaitNs => a.ocrq_wait_ns,
            HeatKey::HeaderStalls => a.header_stalls,
        }
    }

    /// The CSV/JSON field name.
    pub fn name(self) -> &'static str {
        match self {
            HeatKey::BusyNs => "busy_ns",
            HeatKey::Acquisitions => "acquisitions",
            HeatKey::OcrqWaitNs => "ocrq_wait_ns",
            HeatKey::HeaderStalls => "header_stalls",
        }
    }
}

impl CongestionHeatmap {
    /// Folds per-channel totals onto the lattice. `accums` is indexed by
    /// `ChannelId` and must cover every channel of `topo`; each channel
    /// bills the switch transmitting on it (for processor-to-switch
    /// injection channels, the receiving switch).
    ///
    /// # Panics
    ///
    /// Panics if `accums` and the topology disagree on channel count.
    pub fn build(topo: &Topology, layout: &LatticeLayout, accums: &[ChannelAccum]) -> Self {
        assert_eq!(
            accums.len(),
            topo.num_channels(),
            "one accumulator per channel"
        );
        let mut cells = vec![CellHeat::default(); layout.side * layout.side];
        for (s, &cell) in layout.cell.iter().enumerate() {
            cells[cell].switch = Some(s as u32);
        }
        for c in topo.channel_ids() {
            let ch = topo.channel(c);
            let owner = if topo.is_switch(ch.src) {
                ch.src
            } else {
                // Injection channel: a processor transmits only to its
                // own switch.
                ch.dst
            };
            let cell = layout.cell[owner.index()];
            cells[cell].channels += 1;
            cells[cell].heat.fold(&accums[c.index()]);
        }
        CongestionHeatmap {
            side: layout.side,
            cells,
        }
    }

    /// Grand totals over every cell (equivalently, every channel).
    pub fn totals(&self) -> ChannelAccum {
        let mut t = ChannelAccum::default();
        for c in &self.cells {
            t.fold(&c.heat);
        }
        t
    }

    /// Cells holding a switch, as `(row, col, &CellHeat)`.
    pub fn occupied(&self) -> impl Iterator<Item = (usize, usize, &CellHeat)> {
        let side = self.side;
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.switch.is_some())
            .map(move |(i, c)| (i / side, i % side, c))
    }

    /// The fraction of `key`'s grand total carried by the `k` hottest
    /// cells — the localization headline ("the top 4 cells carry 62 % of
    /// all OCRQ waiting"). Returns 0 when the grand total is zero.
    pub fn top_share(&self, k: usize, key: HeatKey) -> f64 {
        let total: u64 = self.cells.iter().map(|c| key.of(&c.heat)).sum();
        if total == 0 {
            return 0.0;
        }
        let mut vals: Vec<u64> = self.cells.iter().map(|c| key.of(&c.heat)).collect();
        vals.sort_unstable_by(|a, b| b.cmp(a));
        let top: u64 = vals.iter().take(k).sum();
        top as f64 / total as f64
    }

    /// CSV of every occupied cell:
    /// `row,col,switch,channels,busy_ns,acquisitions,ocrq_wait_ns,header_stalls`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "row,col,switch,channels,busy_ns,acquisitions,ocrq_wait_ns,header_stalls\n",
        );
        for (row, col, c) in self.occupied() {
            writeln!(
                out,
                "{},{},{},{},{},{},{},{}",
                row,
                col,
                c.switch.expect("occupied"),
                c.channels,
                c.heat.busy_ns,
                c.heat.acquisitions,
                c.heat.ocrq_wait_ns,
                c.heat.header_stalls
            )
            .expect("string write");
        }
        out
    }

    /// Hand-rolled JSON (the workspace `serde` is a no-op shim): the
    /// grid side, grand totals, and one record per occupied cell.
    pub fn to_json(&self) -> String {
        let t = self.totals();
        let mut out = String::new();
        writeln!(out, "{{").unwrap();
        writeln!(out, "  \"schema\": 1,").unwrap();
        writeln!(out, "  \"side\": {},", self.side).unwrap();
        writeln!(
            out,
            "  \"totals\": {{\"busy_ns\": {}, \"acquisitions\": {}, \
             \"ocrq_wait_ns\": {}, \"header_stalls\": {}}},",
            t.busy_ns, t.acquisitions, t.ocrq_wait_ns, t.header_stalls
        )
        .unwrap();
        writeln!(out, "  \"cells\": [").unwrap();
        let occupied: Vec<(usize, usize, &CellHeat)> = self.occupied().collect();
        for (i, (row, col, c)) in occupied.iter().enumerate() {
            let comma = if i + 1 < occupied.len() { "," } else { "" };
            writeln!(
                out,
                "    {{\"row\": {}, \"col\": {}, \"switch\": {}, \"channels\": {}, \
                 \"busy_ns\": {}, \"acquisitions\": {}, \"ocrq_wait_ns\": {}, \
                 \"header_stalls\": {}}}{comma}",
                row,
                col,
                c.switch.expect("occupied"),
                c.channels,
                c.heat.busy_ns,
                c.heat.acquisitions,
                c.heat.ocrq_wait_ns,
                c.heat.header_stalls
            )
            .unwrap();
        }
        writeln!(out, "  ]").unwrap();
        writeln!(out, "}}").unwrap();
        out
    }

    /// Terminal rendering: one character per cell, ramped by the keyed
    /// value relative to the grid maximum (`.` cold, `@` hottest, space
    /// for unoccupied cells).
    pub fn ascii(&self, key: HeatKey) -> String {
        const RAMP: [char; 9] = ['.', ':', '-', '=', '+', '*', '#', '%', '@'];
        let max = self
            .cells
            .iter()
            .map(|c| key.of(&c.heat))
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        writeln!(out, "heat: {} (max {} per cell)", key.name(), max).unwrap();
        for row in 0..self.side {
            for col in 0..self.side {
                let c = &self.cells[row * self.side + col];
                let ch = match c.switch {
                    None => ' ',
                    Some(_) if max == 0 => RAMP[0],
                    Some(_) => {
                        let v = key.of(&c.heat);
                        let idx = ((v as u128 * (RAMP.len() as u128 - 1)) / max as u128) as usize;
                        RAMP[idx]
                    }
                };
                out.push(ch);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::gen::lattice::IrregularConfig;

    fn sample() -> (Topology, LatticeLayout) {
        IrregularConfig::with_switches(16).generate_with_layout(7)
    }

    fn loaded(topo: &Topology) -> Vec<ChannelAccum> {
        topo.channel_ids()
            .map(|c| ChannelAccum {
                busy_ns: 10 * (c.index() as u64 + 1),
                acquisitions: 1,
                ocrq_wait_ns: c.index() as u64,
                header_stalls: 0,
            })
            .collect()
    }

    #[test]
    fn totals_conserve_channel_sums() {
        let (topo, layout) = sample();
        let accums = loaded(&topo);
        let map = CongestionHeatmap::build(&topo, &layout, &accums);
        let t = map.totals();
        assert_eq!(t.busy_ns, accums.iter().map(|a| a.busy_ns).sum::<u64>());
        assert_eq!(t.acquisitions, accums.len() as u64);
        assert_eq!(
            t.ocrq_wait_ns,
            accums.iter().map(|a| a.ocrq_wait_ns).sum::<u64>()
        );
        let folded_channels: u32 = map.cells.iter().map(|c| c.channels).sum();
        assert_eq!(folded_channels as usize, topo.num_channels());
    }

    #[test]
    fn every_switch_occupies_exactly_one_cell() {
        let (topo, layout) = sample();
        let accums = vec![ChannelAccum::default(); topo.num_channels()];
        let map = CongestionHeatmap::build(&topo, &layout, &accums);
        let occupied: Vec<u32> = map.cells.iter().filter_map(|c| c.switch).collect();
        assert_eq!(occupied.len(), topo.num_switches());
        let mut sorted = occupied.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), occupied.len());
    }

    #[test]
    fn top_share_ranks_hot_cells() {
        let (topo, layout) = sample();
        let mut accums = vec![ChannelAccum::default(); topo.num_channels()];
        // All heat on one channel: its cell carries 100 %.
        accums[0].ocrq_wait_ns = 999;
        let map = CongestionHeatmap::build(&topo, &layout, &accums);
        assert_eq!(map.top_share(1, HeatKey::OcrqWaitNs), 1.0);
        assert_eq!(map.top_share(1, HeatKey::HeaderStalls), 0.0, "zero total");
        // Uniform heat: k cells carry ~k/switches of the total.
        let uniform: Vec<ChannelAccum> = (0..topo.num_channels())
            .map(|_| ChannelAccum {
                acquisitions: 1,
                ..ChannelAccum::default()
            })
            .collect();
        let umap = CongestionHeatmap::build(&topo, &layout, &uniform);
        let share = umap.top_share(4, HeatKey::Acquisitions);
        assert!(share < 0.6, "uniform heat cannot concentrate: {share}");
    }

    #[test]
    fn exports_render_and_agree() {
        let (topo, layout) = sample();
        let accums = loaded(&topo);
        let map = CongestionHeatmap::build(&topo, &layout, &accums);
        let csv = map.to_csv();
        assert!(csv.starts_with("row,col,switch,"));
        assert_eq!(csv.lines().count(), 1 + topo.num_switches());
        let json = map.to_json();
        assert!(json.contains("\"schema\": 1"));
        assert!(json.contains(&format!("\"side\": {}", layout.side)));
        assert_eq!(json.matches("\"row\":").count(), topo.num_switches());
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let art = map.ascii(HeatKey::BusyNs);
        assert_eq!(art.lines().count(), 1 + map.side);
        assert!(art.contains('@'), "the max cell renders hottest");
    }

    #[test]
    #[should_panic(expected = "one accumulator per channel")]
    fn wrong_accum_length_panics() {
        let (topo, layout) = sample();
        CongestionHeatmap::build(&topo, &layout, &[]);
    }
}
