//! Ring-buffered gauge time-series.
//!
//! A [`GaugeSample`] is one instant's snapshot of every engine gauge the
//! telemetry layer tracks; a [`GaugeSeries`] holds samples in a
//! preallocated ring. The ring never reallocates after construction —
//! when full it overwrites the oldest sample and keeps counting — so
//! sampling stays zero-alloc at steady state no matter how long the run
//! is (pinned by `wormsim`'s counting-allocator test target).

use desim::QueueOccupancy;

/// One sampling instant's gauge snapshot. Plain `Copy` data so recording
/// a sample is a store, never an allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GaugeSample {
    /// Sampling instant (sim time, ns).
    pub at_ns: u64,
    /// Event-queue occupancy: per-wheel-level occupied slots, overflow
    /// length, and total pending events.
    pub queue: QueueOccupancy,
    /// Messages with at least one in-flight worm.
    pub live_worms: u32,
    /// Live worm segments across all messages.
    pub live_segments: u32,
    /// Total OCRQ entries across all channels.
    pub ocrq_total: u32,
    /// Deepest single OCRQ at this instant.
    pub ocrq_max: u32,
    /// Routing epoch in effect (number of fault boundaries passed).
    pub epoch: u32,
    /// Running total of fully delivered messages.
    pub delivered: u64,
    /// Running total of messages torn down by live reconfiguration.
    pub torn_down: u64,
    /// Running total of messages with unreachable destinations.
    pub unreachable: u64,
}

/// A fixed-capacity ring of [`GaugeSample`]s in chronological order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GaugeSeries {
    buf: Vec<GaugeSample>,
    cap: usize,
    /// Index of the oldest sample once the ring has wrapped.
    head: usize,
    /// Samples ever recorded, including overwritten ones.
    total: u64,
}

impl GaugeSeries {
    /// An empty series that will retain at most `cap` samples. The full
    /// backing store is allocated here, up front.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(
            cap > 0,
            "a GaugeSeries needs capacity for at least one sample"
        );
        GaugeSeries {
            buf: Vec::with_capacity(cap),
            cap,
            head: 0,
            total: 0,
        }
    }

    /// Records a sample; overwrites the oldest once full. Never allocates
    /// (capacity was reserved at construction).
    #[inline]
    pub fn push(&mut self, s: GaugeSample) {
        if self.buf.len() < self.cap {
            self.buf.push(s);
        } else {
            self.buf[self.head] = s;
            self.head += 1;
            if self.head == self.cap {
                self.head = 0;
            }
        }
        self.total += 1;
    }

    /// Samples currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum retained samples.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Samples ever recorded, including any the ring has overwritten.
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// True when recording has overwritten at least one sample.
    pub fn wrapped(&self) -> bool {
        self.total > self.cap as u64
    }

    /// Retained samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &GaugeSample> {
        let (tail, front) = self.buf.split_at(self.head);
        front.iter().chain(tail.iter())
    }

    /// The most recent sample, if any.
    pub fn latest(&self) -> Option<&GaugeSample> {
        if self.buf.is_empty() {
            None
        } else if self.buf.len() < self.cap {
            self.buf.last()
        } else {
            let i = if self.head == 0 {
                self.cap - 1
            } else {
                self.head - 1
            };
            Some(&self.buf[i])
        }
    }

    /// The maximum of `key` over retained samples (`None` when empty).
    pub fn peak<K: Ord + Copy>(&self, key: impl Fn(&GaugeSample) -> K) -> Option<K> {
        self.iter().map(key).max()
    }

    /// The ring's complete raw state — `(capacity, head, total, buffer in
    /// physical order)` — for snapshots. Pair with
    /// [`GaugeSeries::from_raw_parts`].
    pub fn raw_parts(&self) -> (usize, usize, u64, &[GaugeSample]) {
        (self.cap, self.head, self.total, &self.buf)
    }

    /// Rebuilds a ring from [`GaugeSeries::raw_parts`] state, restoring the
    /// physical buffer layout (and therefore iteration order and the
    /// overwrite cursor) exactly. Errors on states `push` could never have
    /// produced, so corrupted snapshot input surfaces as a typed error.
    pub fn from_raw_parts(
        cap: usize,
        head: usize,
        total: u64,
        buf: Vec<GaugeSample>,
    ) -> Result<Self, &'static str> {
        if cap == 0 {
            return Err("gauge series capacity must be non-zero");
        }
        if buf.len() > cap {
            return Err("gauge series buffer exceeds its capacity");
        }
        if buf.len() < cap && head != 0 {
            return Err("gauge series head set before the ring wrapped");
        }
        if buf.len() == cap && head >= cap {
            return Err("gauge series head out of bounds");
        }
        if total < buf.len() as u64 {
            return Err("gauge series total below retained count");
        }
        let mut buf = buf;
        buf.reserve_exact(cap - buf.len());
        Ok(GaugeSeries {
            buf,
            cap,
            head,
            total,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ns: u64) -> GaugeSample {
        GaugeSample {
            at_ns: ns,
            ..GaugeSample::default()
        }
    }

    #[test]
    fn fills_then_wraps_keeping_newest() {
        let mut s = GaugeSeries::with_capacity(3);
        assert!(s.is_empty());
        assert_eq!(s.latest(), None);
        for ns in 1..=5 {
            s.push(at(ns * 10));
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.capacity(), 3);
        assert_eq!(s.total_recorded(), 5);
        assert!(s.wrapped());
        let times: Vec<u64> = s.iter().map(|g| g.at_ns).collect();
        assert_eq!(times, vec![30, 40, 50], "oldest first, oldest two evicted");
        assert_eq!(s.latest().unwrap().at_ns, 50);
    }

    #[test]
    fn under_capacity_is_in_push_order() {
        let mut s = GaugeSeries::with_capacity(8);
        s.push(at(1));
        s.push(at(2));
        assert!(!s.wrapped());
        assert_eq!(s.iter().map(|g| g.at_ns).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(s.latest().unwrap().at_ns, 2);
        assert_eq!(s.peak(|g| g.at_ns), Some(2));
    }

    #[test]
    fn push_never_allocates_after_construction() {
        let mut s = GaugeSeries::with_capacity(4);
        let cap_ptr = s.buf.capacity();
        for ns in 0..100 {
            s.push(at(ns));
        }
        assert_eq!(s.buf.capacity(), cap_ptr, "ring must not reallocate");
        assert_eq!(s.total_recorded(), 100);
    }

    #[test]
    fn exact_boundary_wrap() {
        let mut s = GaugeSeries::with_capacity(2);
        s.push(at(1));
        s.push(at(2));
        assert!(!s.wrapped());
        assert_eq!(s.latest().unwrap().at_ns, 2);
        s.push(at(3));
        assert!(s.wrapped());
        assert_eq!(s.iter().map(|g| g.at_ns).collect::<Vec<_>>(), vec![2, 3]);
        assert_eq!(s.latest().unwrap().at_ns, 3);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn zero_capacity_panics() {
        GaugeSeries::with_capacity(0);
    }

    #[test]
    fn raw_parts_round_trip_preserves_ring_exactly() {
        let mut s = GaugeSeries::with_capacity(3);
        for ns in 1..=5 {
            s.push(at(ns * 10));
        }
        let (cap, head, total, buf) = s.raw_parts();
        let mut r = GaugeSeries::from_raw_parts(cap, head, total, buf.to_vec()).unwrap();
        assert_eq!(r, s);
        // The restored ring keeps overwriting from the same cursor.
        s.push(at(60));
        r.push(at(60));
        assert_eq!(r, s);
        assert_eq!(r.buf.capacity(), cap, "restored ring is fully reserved");
    }

    #[test]
    fn raw_parts_rejects_impossible_states() {
        assert!(GaugeSeries::from_raw_parts(0, 0, 0, vec![]).is_err());
        assert!(GaugeSeries::from_raw_parts(2, 0, 3, vec![at(1), at(2), at(3)]).is_err());
        assert!(GaugeSeries::from_raw_parts(3, 1, 1, vec![at(1)]).is_err());
        assert!(GaugeSeries::from_raw_parts(2, 2, 2, vec![at(1), at(2)]).is_err());
        assert!(GaugeSeries::from_raw_parts(2, 0, 1, vec![at(1), at(2)]).is_err());
    }
}
