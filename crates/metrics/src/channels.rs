//! Per-channel congestion accumulators.
//!
//! A [`ChannelAccum`] is the full-run congestion bill for one
//! unidirectional channel; a [`ChannelScoreboard`] holds one per channel
//! plus the bookkeeping needed to integrate OCRQ waiting time exactly.
//! Everything is preallocated at enable time and updated with plain
//! stores, so the hooks the engine calls per event are allocation-free.
//!
//! Exact conservation laws these accumulators obey (proptested at the
//! workspace level):
//!
//! * `sum(busy_ns) == wire_transfers * channel_propagation_ns` — every
//!   wire transfer, including flits dropped on a dying link, bills its
//!   propagation time to exactly one channel;
//! * `sum(acquisitions over a message's channel set) == Counters::acquisitions`-derived
//!   totals — each all-or-nothing acquisition increments every channel it
//!   grabbed exactly once.

/// Full-run congestion totals for one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChannelAccum {
    /// Nanoseconds this channel's wire spent transferring flits.
    pub busy_ns: u64,
    /// Times this channel was grabbed by an all-or-nothing acquisition.
    pub acquisitions: u64,
    /// Exact time-integral of OCRQ depth over the run (entry-nanoseconds:
    /// two requesters parked 50 ns contribute 100).
    pub ocrq_wait_ns: u64,
    /// Times a parked header's all-or-nothing acquisition failed with
    /// this channel among the unavailable outputs.
    pub header_stalls: u64,
}

impl ChannelAccum {
    /// Adds another accumulator's totals into this one.
    #[inline]
    pub fn fold(&mut self, other: &ChannelAccum) {
        self.busy_ns += other.busy_ns;
        self.acquisitions += other.acquisitions;
        self.ocrq_wait_ns += other.ocrq_wait_ns;
        self.header_stalls += other.header_stalls;
    }

    /// True when nothing was ever recorded against this channel.
    pub fn is_zero(&self) -> bool {
        *self == ChannelAccum::default()
    }
}

/// The engine-facing accumulator set: one [`ChannelAccum`] per channel,
/// plus the last-change timestamp each channel's OCRQ integral is carried
/// up to. All vectors are sized once, at enable time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelScoreboard {
    accums: Vec<ChannelAccum>,
    ocrq_last_ns: Vec<u64>,
}

impl ChannelScoreboard {
    /// A zeroed scoreboard for `num_channels` channels.
    pub fn new(num_channels: usize) -> Self {
        ChannelScoreboard {
            accums: vec![ChannelAccum::default(); num_channels],
            ocrq_last_ns: vec![0; num_channels],
        }
    }

    /// Number of channels tracked.
    pub fn len(&self) -> usize {
        self.accums.len()
    }

    /// True for the degenerate zero-channel scoreboard.
    pub fn is_empty(&self) -> bool {
        self.accums.is_empty()
    }

    /// Bills `ns` of wire time to channel `ch`.
    #[inline]
    pub fn wire_busy(&mut self, ch: usize, ns: u64) {
        self.accums[ch].busy_ns += ns;
    }

    /// Records a successful acquisition grabbing channel `ch`.
    #[inline]
    pub fn acquired(&mut self, ch: usize) {
        self.accums[ch].acquisitions += 1;
    }

    /// Records a failed all-or-nothing acquisition that found channel
    /// `ch` unavailable.
    #[inline]
    pub fn header_stall(&mut self, ch: usize) {
        self.accums[ch].header_stalls += 1;
    }

    /// Carries channel `ch`'s OCRQ-depth integral up to `now_ns`, given
    /// that the queue held `depth` entries since the last carry. Call
    /// with the depth *before* a push/pop/removal (and once more at end
    /// of run with the final depth) and the integral is exact.
    #[inline]
    pub fn ocrq_carry(&mut self, ch: usize, depth: usize, now_ns: u64) {
        let dt = now_ns.saturating_sub(self.ocrq_last_ns[ch]);
        self.accums[ch].ocrq_wait_ns += depth as u64 * dt;
        self.ocrq_last_ns[ch] = now_ns;
    }

    /// The per-channel totals.
    pub fn accums(&self) -> &[ChannelAccum] {
        &self.accums
    }

    /// Consumes the scoreboard, yielding the per-channel totals.
    pub fn into_accums(self) -> Vec<ChannelAccum> {
        self.accums
    }

    /// The scoreboard's complete raw state — per-channel accumulators plus
    /// the last OCRQ integration instant per channel — for snapshots. Pair
    /// with [`ChannelScoreboard::from_raw_parts`].
    pub fn raw_parts(&self) -> (&[ChannelAccum], &[u64]) {
        (&self.accums, &self.ocrq_last_ns)
    }

    /// Rebuilds a scoreboard from [`ChannelScoreboard::raw_parts`] state.
    /// Errors when the two halves disagree on the channel count, so
    /// corrupted snapshot input surfaces as a typed error.
    pub fn from_raw_parts(
        accums: Vec<ChannelAccum>,
        ocrq_last_ns: Vec<u64>,
    ) -> Result<Self, &'static str> {
        if accums.len() != ocrq_last_ns.len() {
            return Err("scoreboard halves disagree on channel count");
        }
        Ok(ChannelScoreboard {
            accums,
            ocrq_last_ns,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate_per_channel() {
        let mut sb = ChannelScoreboard::new(3);
        assert_eq!(sb.len(), 3);
        sb.wire_busy(0, 10);
        sb.wire_busy(0, 10);
        sb.acquired(1);
        sb.header_stall(2);
        assert_eq!(sb.accums()[0].busy_ns, 20);
        assert_eq!(sb.accums()[1].acquisitions, 1);
        assert_eq!(sb.accums()[2].header_stalls, 1);
        assert!(sb.accums()[1].ocrq_wait_ns == 0);
    }

    #[test]
    fn ocrq_integral_is_exact_piecewise_constant_area() {
        let mut sb = ChannelScoreboard::new(1);
        // Depth 0 until t=100, then 2 until t=150, then 1 until t=170.
        sb.ocrq_carry(0, 0, 100);
        sb.ocrq_carry(0, 2, 150);
        sb.ocrq_carry(0, 1, 170);
        assert_eq!(sb.accums()[0].ocrq_wait_ns, 2 * 50 + 20);
    }

    #[test]
    fn fold_sums_every_field() {
        let mut a = ChannelAccum {
            busy_ns: 1,
            acquisitions: 2,
            ocrq_wait_ns: 3,
            header_stalls: 4,
        };
        let b = ChannelAccum {
            busy_ns: 10,
            acquisitions: 20,
            ocrq_wait_ns: 30,
            header_stalls: 40,
        };
        a.fold(&b);
        assert_eq!(
            a,
            ChannelAccum {
                busy_ns: 11,
                acquisitions: 22,
                ocrq_wait_ns: 33,
                header_stalls: 44,
            }
        );
        assert!(!a.is_zero());
        assert!(ChannelAccum::default().is_zero());
    }

    #[test]
    fn raw_parts_round_trip_resumes_integration() {
        let mut sb = ChannelScoreboard::new(2);
        sb.ocrq_carry(0, 2, 100);
        sb.wire_busy(1, 30);
        let (accums, last) = sb.raw_parts();
        let mut restored =
            ChannelScoreboard::from_raw_parts(accums.to_vec(), last.to_vec()).unwrap();
        // Integrating further from the restored state matches the original.
        sb.ocrq_carry(0, 1, 150);
        restored.ocrq_carry(0, 1, 150);
        assert_eq!(restored.accums(), sb.accums());
        assert!(ChannelScoreboard::from_raw_parts(vec![ChannelAccum::default()], vec![]).is_err());
    }
}
