//! The run-report layer: one glanceable summary per finished run.
//!
//! [`RunReport`] condenses a [`RunMetrics`] into the numbers an operator
//! scans first — sampling coverage, gauge peaks, final message
//! accounting, and the two most interesting channels (busiest wire, most
//! OCRQ-contended) — with a terminal rendering. It is pure derivation:
//! building a report reads the metrics and touches nothing else.

use crate::channels::ChannelAccum;
use crate::RunMetrics;
use std::fmt::Write as _;

/// Summary statistics derived from one run's [`RunMetrics`].
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Samples ever recorded (including ring-evicted ones).
    pub samples: u64,
    /// Sampling cadence, ns.
    pub sample_every_ns: u64,
    /// Peak pending-event count across samples.
    pub peak_queue_len: usize,
    /// Peak live-worm count.
    pub peak_live_worms: u32,
    /// Peak live-segment count.
    pub peak_live_segments: u32,
    /// Peak total OCRQ entries.
    pub peak_ocrq_total: u32,
    /// Peak single-channel OCRQ depth.
    pub peak_ocrq_max: u32,
    /// Epoch in effect at the last sample.
    pub final_epoch: u32,
    /// Delivered / torn-down / unreachable totals at the last sample.
    pub delivered: u64,
    /// Torn-down total at the last sample.
    pub torn_down: u64,
    /// Unreachable total at the last sample.
    pub unreachable: u64,
    /// `(channel id, accum)` with the largest `busy_ns`, if any heat.
    pub busiest_channel: Option<(usize, ChannelAccum)>,
    /// `(channel id, accum)` with the largest `ocrq_wait_ns`, if any.
    pub most_contended_channel: Option<(usize, ChannelAccum)>,
}

fn argmax_by(
    accums: &[ChannelAccum],
    key: impl Fn(&ChannelAccum) -> u64,
) -> Option<(usize, ChannelAccum)> {
    accums
        .iter()
        .enumerate()
        .max_by_key(|(_, a)| key(a))
        .filter(|(_, a)| key(a) > 0)
        .map(|(i, a)| (i, *a))
}

impl RunReport {
    /// Derives the report.
    pub fn from_metrics(m: &RunMetrics) -> Self {
        let s = &m.series;
        let last = s.latest();
        RunReport {
            samples: s.total_recorded(),
            sample_every_ns: m.sample_every_ns,
            peak_queue_len: s.peak(|g| g.queue.len).unwrap_or(0),
            peak_live_worms: s.peak(|g| g.live_worms).unwrap_or(0),
            peak_live_segments: s.peak(|g| g.live_segments).unwrap_or(0),
            peak_ocrq_total: s.peak(|g| g.ocrq_total).unwrap_or(0),
            peak_ocrq_max: s.peak(|g| g.ocrq_max).unwrap_or(0),
            final_epoch: last.map_or(0, |g| g.epoch),
            delivered: last.map_or(0, |g| g.delivered),
            torn_down: last.map_or(0, |g| g.torn_down),
            unreachable: last.map_or(0, |g| g.unreachable),
            busiest_channel: argmax_by(&m.channels, |a| a.busy_ns),
            most_contended_channel: argmax_by(&m.channels, |a| a.ocrq_wait_ns),
        }
    }

    /// Terminal rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        writeln!(
            out,
            "telemetry: {} samples @ {} ns",
            self.samples, self.sample_every_ns
        )
        .unwrap();
        writeln!(
            out,
            "  peaks: queue {} events, {} worms / {} segments in flight, \
             OCRQ {} total / {} deepest",
            self.peak_queue_len,
            self.peak_live_worms,
            self.peak_live_segments,
            self.peak_ocrq_total,
            self.peak_ocrq_max
        )
        .unwrap();
        writeln!(
            out,
            "  at last sample: epoch {}, {} delivered, {} torn down, {} unreachable",
            self.final_epoch, self.delivered, self.torn_down, self.unreachable
        )
        .unwrap();
        match self.busiest_channel {
            Some((ch, a)) => writeln!(
                out,
                "  busiest wire: channel {ch} ({} ns busy, {} acquisitions)",
                a.busy_ns, a.acquisitions
            )
            .unwrap(),
            None => writeln!(out, "  busiest wire: none (no wire traffic)").unwrap(),
        }
        match self.most_contended_channel {
            Some((ch, a)) => writeln!(
                out,
                "  most contended: channel {ch} ({} entry-ns OCRQ wait, {} header stalls)",
                a.ocrq_wait_ns, a.header_stalls
            )
            .unwrap(),
            None => writeln!(out, "  most contended: none (no OCRQ waiting)").unwrap(),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::GaugeSample;
    use crate::MetricsConfig;

    #[test]
    fn report_reflects_peaks_and_finals() {
        let mut m = RunMetrics::new(&MetricsConfig::every_ns(100), 2);
        let mut g = GaugeSample {
            at_ns: 100,
            live_worms: 3,
            ocrq_total: 5,
            ocrq_max: 4,
            delivered: 1,
            ..GaugeSample::default()
        };
        g.queue.len = 40;
        m.series.push(g);
        let mut g2 = GaugeSample {
            at_ns: 200,
            live_worms: 1,
            epoch: 2,
            delivered: 7,
            torn_down: 1,
            ..GaugeSample::default()
        };
        g2.queue.len = 10;
        m.series.push(g2);
        m.channels[0].busy_ns = 500;
        m.channels[1].ocrq_wait_ns = 900;

        let r = RunReport::from_metrics(&m);
        assert_eq!(r.samples, 2);
        assert_eq!(r.peak_queue_len, 40);
        assert_eq!(r.peak_live_worms, 3);
        assert_eq!(r.peak_ocrq_total, 5);
        assert_eq!(r.final_epoch, 2);
        assert_eq!(r.delivered, 7);
        assert_eq!(r.torn_down, 1);
        assert_eq!(r.busiest_channel.unwrap().0, 0);
        assert_eq!(r.most_contended_channel.unwrap().0, 1);

        let text = r.render();
        assert!(text.contains("2 samples @ 100 ns"));
        assert!(text.contains("channel 0 (500 ns busy"));
        assert!(text.contains("channel 1 (900 entry-ns"));
    }

    #[test]
    fn empty_metrics_report_is_graceful() {
        let m = RunMetrics::new(&MetricsConfig::every_ns(50), 0);
        let r = RunReport::from_metrics(&m);
        assert_eq!(r.samples, 0);
        assert_eq!(r.busiest_channel, None);
        let text = r.render();
        assert!(text.contains("none (no wire traffic)"));
        assert!(text.contains("none (no OCRQ waiting)"));
    }
}
