#![warn(missing_docs)]

//! # spam-metrics — deterministic sim-time telemetry
//!
//! Fabric-over-time observability for the wormhole engine. Where
//! `spam-trace` explains *one message's* latency, this crate watches the
//! *whole fabric*: a periodic sampler snapshots engine gauges into a
//! preallocated ring-buffered time-series, and per-channel accumulators
//! fold into a lattice-shaped congestion heatmap that localizes hot
//! channels in space.
//!
//! The pieces:
//!
//! * [`MetricsConfig`] — sampling cadence + ring capacity (derivable
//!   from a horizon so long runs keep the tail);
//! * [`GaugeSample`] / [`GaugeSeries`] — per-instant gauge snapshots
//!   (event-queue occupancy per wheel level, live worms/segments, OCRQ
//!   depth, routing epoch, delivery/teardown running totals) in a ring
//!   that never reallocates after construction;
//! * [`ChannelAccum`] / [`ChannelScoreboard`] — per-channel congestion
//!   totals (wire-busy ns, acquisitions, exact OCRQ-depth time
//!   integrals, header stalls) with allocation-free record hooks;
//! * [`CongestionHeatmap`] — the accumulators folded onto the
//!   [`netgraph::gen::lattice::LatticeLayout`] grid, with CSV/JSON
//!   export and a terminal rendering;
//! * [`RunReport`] — the one-screen run summary.
//!
//! Two contracts the engine integration keeps (and the workspace test
//! suite pins): telemetry is a **pure observer** — enabling it changes
//! no simulated outcome, byte for byte — and recording is **zero-alloc
//! at steady state** — everything is preallocated when metrics are
//! enabled.

pub mod channels;
pub mod heatmap;
pub mod report;
pub mod series;

pub use channels::{ChannelAccum, ChannelScoreboard};
pub use heatmap::{CellHeat, CongestionHeatmap, HeatKey};
pub use report::RunReport;
pub use series::{GaugeSample, GaugeSeries};

use desim::Duration;

/// Default ring capacity when none is derived from a horizon.
pub const DEFAULT_SERIES_CAPACITY: usize = 4096;

/// How telemetry samples: the cadence and how many samples the ring
/// retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Gauge-sampling period.
    pub sample_every: Duration,
    /// Ring capacity, in samples.
    pub capacity: usize,
}

impl MetricsConfig {
    /// A cadence of `ns` nanoseconds with the default ring capacity.
    ///
    /// # Panics
    ///
    /// Panics on a zero cadence (the sampler would never fire).
    pub fn every_ns(ns: u64) -> Self {
        assert!(ns > 0, "sampling cadence must be non-zero");
        MetricsConfig {
            sample_every: Duration::from_ns(ns),
            capacity: DEFAULT_SERIES_CAPACITY,
        }
    }

    /// Replaces the ring capacity.
    ///
    /// # Panics
    ///
    /// Panics on zero capacity.
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "series capacity must be non-zero");
        self.capacity = capacity;
        self
    }

    /// A cadence of `ns` with capacity sized so a run of `horizon_ns`
    /// keeps every sample (clamped to `[16, 1 << 20]` so degenerate
    /// horizons stay sane).
    pub fn for_horizon(ns: u64, horizon_ns: u64) -> Self {
        let cfg = Self::every_ns(ns);
        let wanted = (horizon_ns / ns).saturating_add(2);
        cfg.with_capacity((wanted as usize).clamp(16, 1 << 20))
    }
}

/// Everything telemetry recorded about one run: the gauge series and the
/// per-channel accumulators. Carried on `wormsim::SimOutcome` when
/// metrics were enabled; excluded from outcome digests by construction
/// (telemetry observes, it never participates).
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Sampling cadence used, ns.
    pub sample_every_ns: u64,
    /// The gauge time-series.
    pub series: GaugeSeries,
    /// Per-channel congestion totals, indexed by `ChannelId`.
    pub channels: Vec<ChannelAccum>,
}

impl RunMetrics {
    /// A fresh, fully preallocated recording surface for `num_channels`
    /// channels.
    pub fn new(cfg: &MetricsConfig, num_channels: usize) -> Self {
        RunMetrics {
            sample_every_ns: cfg.sample_every.as_ns(),
            series: GaugeSeries::with_capacity(cfg.capacity),
            channels: vec![ChannelAccum::default(); num_channels],
        }
    }

    /// Derives the run report.
    pub fn report(&self) -> RunReport {
        RunReport::from_metrics(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_constructors_validate() {
        let c = MetricsConfig::every_ns(250);
        assert_eq!(c.sample_every.as_ns(), 250);
        assert_eq!(c.capacity, DEFAULT_SERIES_CAPACITY);
        assert_eq!(c.with_capacity(7).capacity, 7);
    }

    #[test]
    fn horizon_capacity_keeps_every_sample() {
        let c = MetricsConfig::for_horizon(1_000, 2_000_000);
        assert!(c.capacity >= 2_000, "2 ms / 1 µs = 2000 samples retained");
        assert_eq!(MetricsConfig::for_horizon(1_000, 0).capacity, 16);
        assert_eq!(
            MetricsConfig::for_horizon(1, u64::MAX).capacity,
            1 << 20,
            "clamped"
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_cadence_panics() {
        MetricsConfig::every_ns(0);
    }

    #[test]
    fn run_metrics_preallocates() {
        let m = RunMetrics::new(&MetricsConfig::every_ns(100).with_capacity(32), 12);
        assert_eq!(m.series.capacity(), 32);
        assert_eq!(m.channels.len(), 12);
        assert_eq!(m.sample_every_ns, 100);
        assert!(m.series.is_empty());
    }
}
