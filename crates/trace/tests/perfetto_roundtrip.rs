//! Round-trip validation of the Perfetto exporter: the emitted bytes
//! parse as a valid length-delimited `TracePacket` stream, every packet
//! decodes, slices balance per track, and the committed example artifact
//! under `results/` stays decodable.

use spam_scenario::{
    EngineSpec, FaultsSpec, PolicySpec, RoutingSpec, ScenarioSpec, StrategySpec, TopologySpec,
    TrafficSpec,
};
use spam_trace::proto::{decode_fields, decode_packets, find_bytes, find_varint, FieldValue};
use std::collections::HashMap;

/// `TracePacket` field numbers used by the exporter.
const PACKET_TRACK_EVENT: u32 = 11;
const PACKET_TRACK_DESCRIPTOR: u32 = 60;
const EVENT_TYPE: u32 = 9;
const EVENT_TRACK_UUID: u32 = 11;
const DESC_UUID: u32 = 1;

fn traced_multicast_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "perfetto-roundtrip".to_string(),
        description: "one multicast for exporter validation".to_string(),
        topology: TopologySpec {
            switches: 24,
            seed: 7,
            side: None,
            strategy: StrategySpec::ConnectedGrowth,
            ports: 8,
        },
        routing: RoutingSpec::Spam {
            policy: PolicySpec::MinResidualDistance,
        },
        traffic: TrafficSpec::SingleMulticast { dests: 6, len: 128 },
        faults: FaultsSpec::None,
        engine: EngineSpec {
            trace: true,
            ..EngineSpec::default()
        },
        seed: 11,
        replications: 1,
        horizon_us: None,
    }
}

/// Structural validity of one exported trace: all packets decode; slice
/// begins and ends balance on every track; every referenced track has a
/// descriptor.
fn assert_valid_perfetto(bytes: &[u8]) {
    let packets = decode_packets(bytes).expect("file is a TracePacket stream");
    assert!(!packets.is_empty());
    let mut declared = Vec::new();
    let mut balance: HashMap<u64, i64> = HashMap::new();
    let mut events = 0usize;
    for p in packets {
        let fields = decode_fields(p).expect("packet decodes");
        assert!(
            fields
                .iter()
                .any(|(f, _)| *f == PACKET_TRACK_EVENT || *f == PACKET_TRACK_DESCRIPTOR),
            "every packet carries a track event or a descriptor"
        );
        if let Some(desc) = find_bytes(p, PACKET_TRACK_DESCRIPTOR).unwrap() {
            declared.push(find_varint(desc, DESC_UUID).unwrap().expect("uuid"));
        }
        if let Some(ev) = find_bytes(p, PACKET_TRACK_EVENT).unwrap() {
            events += 1;
            let ty = find_varint(ev, EVENT_TYPE).unwrap().expect("event type");
            let track = find_varint(ev, EVENT_TRACK_UUID).unwrap().expect("track");
            assert!(
                declared.contains(&track),
                "track {track} used before declaration"
            );
            match ty {
                1 => *balance.entry(track).or_default() += 1, // begin
                2 => *balance.entry(track).or_default() -= 1, // end
                3 => {}                                       // instant
                other => panic!("unexpected TrackEvent type {other}"),
            }
            // Each event packet must also carry a raw varint field check:
            // decode_fields above already proved wire-format validity.
            for (f, v) in decode_fields(ev).unwrap() {
                if f == EVENT_TYPE {
                    assert!(matches!(v, FieldValue::Varint(_)));
                }
            }
        }
    }
    assert!(events > 0, "an exported run has events");
    for (track, b) in balance {
        assert_eq!(b, 0, "unbalanced slices on track {track}");
    }
}

#[test]
fn exported_multicast_run_round_trips() {
    let spec = traced_multicast_spec();
    let (out, topo) = spam_scenario::run_once_with_topology(&spec, 0, None).unwrap();
    assert!(out.all_delivered());
    assert!(!out.trace.events.is_empty(), "tracing was enabled");
    let bytes = spam_trace::export(&topo, &out);
    assert_valid_perfetto(&bytes);
}

#[test]
fn exported_storm_run_round_trips() {
    let mut spec = traced_multicast_spec();
    spec.traffic = TrafficSpec::BroadcastStorm {
        len: 64,
        stagger_ns: 2_000,
    };
    spec.faults = FaultsSpec::Storm {
        model: spam_scenario::FaultModelSpec::IidLinks { rate: 0.15 },
        seed: 3,
        window_start_us: 5,
        window_end_us: 40,
        bursts: 2,
    };
    let (out, topo) = spam_scenario::run_once_with_topology(&spec, 0, None).unwrap();
    let bytes = spam_trace::export(&topo, &out);
    assert_valid_perfetto(&bytes);
}

/// The committed example artifact (written by the `latency_anatomy`
/// bench bin) must stay parseable — this is the acceptance gate for the
/// file in `results/`.
#[test]
fn committed_example_trace_decodes() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/fig2_single_multicast.perfetto-trace"
    );
    let bytes = std::fs::read(path)
        .expect("committed Perfetto example exists (generate with `cargo run -p spam-bench --bin latency_anatomy`)");
    assert_valid_perfetto(&bytes);
}
