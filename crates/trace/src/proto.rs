//! A minimal protobuf wire-format writer and reader.
//!
//! The workspace builds offline, so — like `spam-scenario`'s hand-rolled
//! `json.rs` — there is no protobuf dependency to lean on. Perfetto's
//! trace format only needs two wire types (varint and length-delimited),
//! so the ~hundred lines here cover everything the exporter emits, plus a
//! reader used by the round-trip tests to prove the files parse.

/// Protobuf wire types used by the Perfetto track-event subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireType {
    /// Wire type 0: base-128 varint.
    Varint,
    /// Wire type 2: length-delimited bytes (nested messages, strings).
    LengthDelimited,
}

/// Appends a base-128 varint.
pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.push(byte);
            return;
        }
        buf.push(byte | 0x80);
    }
}

/// Appends a field tag (field number + wire type).
pub fn put_tag(buf: &mut Vec<u8>, field: u32, wire: WireType) {
    let wt = match wire {
        WireType::Varint => 0,
        WireType::LengthDelimited => 2,
    };
    put_varint(buf, ((field as u64) << 3) | wt);
}

/// Appends `field: varint-value`.
pub fn put_varint_field(buf: &mut Vec<u8>, field: u32, v: u64) {
    put_tag(buf, field, WireType::Varint);
    put_varint(buf, v);
}

/// Appends `field: length-delimited bytes` (nested message or string).
pub fn put_bytes_field(buf: &mut Vec<u8>, field: u32, data: &[u8]) {
    put_tag(buf, field, WireType::LengthDelimited);
    put_varint(buf, data.len() as u64);
    buf.extend_from_slice(data);
}

/// Appends `field: utf-8 string`.
pub fn put_string_field(buf: &mut Vec<u8>, field: u32, s: &str) {
    put_bytes_field(buf, field, s.as_bytes());
}

/// Why a buffer is not a valid message in our protobuf subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// A varint ran past the end of the buffer (or exceeded 64 bits).
    BadVarint,
    /// A length-delimited field claimed more bytes than remain.
    Truncated,
    /// A field used a wire type the subset never writes (fixed32/64,
    /// groups).
    UnsupportedWireType(u8),
}

/// One decoded field value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldValue<'a> {
    /// Wire type 0.
    Varint(u64),
    /// Wire type 2.
    Bytes(&'a [u8]),
}

/// Reads a varint, advancing `pos`.
fn read_varint(data: &[u8], pos: &mut usize) -> Result<u64, ProtoError> {
    let mut v: u64 = 0;
    for shift in (0..64).step_by(7) {
        let byte = *data.get(*pos).ok_or(ProtoError::BadVarint)?;
        *pos += 1;
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(ProtoError::BadVarint)
}

/// Decodes a message into its `(field number, value)` sequence.
pub fn decode_fields(data: &[u8]) -> Result<Vec<(u32, FieldValue<'_>)>, ProtoError> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < data.len() {
        let key = read_varint(data, &mut pos)?;
        let field = (key >> 3) as u32;
        match key & 0x7 {
            0 => out.push((field, FieldValue::Varint(read_varint(data, &mut pos)?))),
            2 => {
                let len = read_varint(data, &mut pos)? as usize;
                let end = pos.checked_add(len).ok_or(ProtoError::Truncated)?;
                if end > data.len() {
                    return Err(ProtoError::Truncated);
                }
                out.push((field, FieldValue::Bytes(&data[pos..end])));
                pos = end;
            }
            wt => return Err(ProtoError::UnsupportedWireType(wt as u8)),
        }
    }
    Ok(out)
}

/// Splits a Perfetto trace file into its `TracePacket` payloads: the file
/// is one `Trace` message, i.e. `repeated TracePacket packet = 1`.
pub fn decode_packets(trace: &[u8]) -> Result<Vec<&[u8]>, ProtoError> {
    let mut out = Vec::new();
    for (field, value) in decode_fields(trace)? {
        if field == 1 {
            match value {
                FieldValue::Bytes(b) => out.push(b),
                FieldValue::Varint(_) => return Err(ProtoError::UnsupportedWireType(0)),
            }
        }
    }
    Ok(out)
}

/// First varint value of `field` in `msg`, if present.
pub fn find_varint(msg: &[u8], field: u32) -> Result<Option<u64>, ProtoError> {
    Ok(decode_fields(msg)?.into_iter().find_map(|(f, v)| match v {
        FieldValue::Varint(x) if f == field => Some(x),
        _ => None,
    }))
}

/// First length-delimited value of `field` in `msg`, if present.
pub fn find_bytes(msg: &[u8], field: u32) -> Result<Option<&[u8]>, ProtoError> {
    Ok(decode_fields(msg)?.into_iter().find_map(|(f, v)| match v {
        FieldValue::Bytes(b) if f == field => Some(b),
        _ => None,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundary_values() {
        for v in [0u64, 1, 127, 128, 300, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), Ok(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn fields_round_trip() {
        let mut buf = Vec::new();
        put_varint_field(&mut buf, 8, 12_345);
        put_string_field(&mut buf, 23, "hop wait");
        put_varint_field(&mut buf, 10, 1);
        let fields = decode_fields(&buf).unwrap();
        assert_eq!(
            fields,
            vec![
                (8, FieldValue::Varint(12_345)),
                (23, FieldValue::Bytes(b"hop wait".as_slice())),
                (10, FieldValue::Varint(1)),
            ]
        );
        assert_eq!(find_varint(&buf, 8), Ok(Some(12_345)));
        assert_eq!(find_bytes(&buf, 23), Ok(Some(b"hop wait".as_slice())));
        assert_eq!(find_varint(&buf, 99), Ok(None));
    }

    #[test]
    fn packet_framing_round_trips() {
        let mut p1 = Vec::new();
        put_varint_field(&mut p1, 8, 10);
        let mut p2 = Vec::new();
        put_varint_field(&mut p2, 8, 20);
        let mut file = Vec::new();
        put_bytes_field(&mut file, 1, &p1);
        put_bytes_field(&mut file, 1, &p2);
        let packets = decode_packets(&file).unwrap();
        assert_eq!(packets, vec![p1.as_slice(), p2.as_slice()]);
    }

    #[test]
    fn truncation_and_bad_varints_are_typed_errors() {
        let mut buf = Vec::new();
        put_bytes_field(&mut buf, 1, &[1, 2, 3]);
        buf.pop();
        assert_eq!(decode_packets(&buf), Err(ProtoError::Truncated));
        // Ten continuation bytes never terminate a 64-bit varint.
        let bad = vec![0x80u8; 11];
        assert_eq!(decode_fields(&bad), Err(ProtoError::BadVarint));
        // Wire type 5 (fixed32) is outside the subset.
        let fixed = vec![0x0d, 0, 0, 0, 0];
        assert_eq!(
            decode_fields(&fixed),
            Err(ProtoError::UnsupportedWireType(5))
        );
    }
}
