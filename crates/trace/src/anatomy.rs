//! Latency anatomy: an exact decomposition of each delivered message's
//! end-to-end latency into protocol phases.
//!
//! For the last-completing destination, the critical chain
//! source → router₁ → … → routerₕ → dest visits `h + 1` channels. Using
//! the recorded instants — `s` (startup done), `aⱼ` (acquisition of the
//! j-th chain channel), `vⱼ` (its header wire arrival), `rⱼ₊₁` (the next
//! request) and `T` (tail delivery) — the interval `[gen, T]` splits into
//! consecutive segments, each of which carries a modeled minimum
//! (router setup, wire propagation) plus a nonnegative residual
//! (queueing or stall). Summing the pieces telescopes back to `T − gen`
//! **exactly**, in integer nanoseconds; this is asserted by tests and by
//! the `latency_anatomy` bench before it reports anything.
//!
//! Phases:
//! * **startup** — the §4 software send overhead at the source.
//! * **blocking** — OCRQ waits (request → acquire) plus time a header sat
//!   unprocessed in an input buffer before its routing decision.
//! * **route_setup** — the modeled 40 ns per-router decision cost.
//! * **wire** — ideal propagation: one header crossing per chain channel
//!   plus the pipelined drain of the remaining `worm_len − 1` flits.
//! * **stall** — replication back-pressure: time the header spent parked
//!   in output buffers behind blocked siblings, and tail-drain delay
//!   beyond the ideal pipeline (bubbles on other branches).

use crate::spans::{MessageSpans, SpanSet};
use desim::Duration;
use netgraph::{NodeId, Topology};
use wormsim::{LatencyParams, MsgId, SimOutcome};

/// One message's exact latency decomposition, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MessageAnatomy {
    /// The message.
    pub msg: MsgId,
    /// The last-completing destination (the one defining end-to-end
    /// latency per the paper's §4).
    pub dest: NodeId,
    /// Routers on the critical chain.
    pub hops: usize,
    /// `completion − gen_time`.
    pub end_to_end: Duration,
    /// Source software startup.
    pub startup: Duration,
    /// OCRQ waits plus input-buffer queueing.
    pub blocking: Duration,
    /// Modeled per-router decision cost (`hops × router_setup`).
    pub route_setup: Duration,
    /// Ideal wire time (`(hops + worm_len) × channel_prop`).
    pub wire: Duration,
    /// Replication/drain stall beyond the ideal pipeline.
    pub stall: Duration,
}

impl MessageAnatomy {
    /// Sum of the five phases; equals [`MessageAnatomy::end_to_end`] by
    /// construction.
    pub fn phase_sum(&self) -> Duration {
        self.startup + self.blocking + self.route_setup + self.wire + self.stall
    }

    /// The phases as `(name, duration)` pairs, in pipeline order.
    pub fn phases(&self) -> [(&'static str, Duration); 5] {
        [
            ("startup", self.startup),
            ("blocking", self.blocking),
            ("route_setup", self.route_setup),
            ("wire", self.wire),
            ("stall", self.stall),
        ]
    }
}

/// Checked `a − b` in nanoseconds: `None` signals a trace that violates
/// the engine's timing model (never observed; a defence, not a path).
fn sub(a: desim::Time, b: desim::Time) -> Option<u64> {
    a.as_ns().checked_sub(b.as_ns())
}

/// Decomposes one delivered message. Returns `None` for undelivered
/// messages, or when the trace lacks the needed events (tracing off).
pub fn decompose_message(
    topo: &Topology,
    out: &SimOutcome,
    spans: &MessageSpans,
    latency: &LatencyParams,
    extra_header_flits: u32,
    msg: MsgId,
) -> Option<MessageAnatomy> {
    let mr = &out.messages[msg.index()];
    let done = mr.completed_at?;
    // The destination whose tail arrived last defines end-to-end latency.
    let dest = mr
        .spec
        .dests
        .iter()
        .zip(&mr.dest_done_at)
        .find(|(_, t)| *t == &Some(done))
        .map(|(d, _)| *d)?;
    let gen = mr.spec.gen_time;
    let s = spans.source_ready?;
    let chain = spans.path_to(topo, dest)?;
    let hops = chain.len().checked_sub(1)?; // routers = channels − 1
    let worm_len = mr.spec.len as u64 + extra_header_flits as u64;
    let setup_ns = latency.router_setup.as_ns();
    let prop_ns = latency.channel_prop.as_ns();

    let startup = sub(s, gen)?;
    let mut blocking = sub(chain[0].acquired?, s)?; // source OCRQ wait
    let mut stall = 0u64;
    for j in 0..hops {
        let a_j = chain[j].acquired?;
        let v_j = chain[j].header_arrived?;
        let r_next = chain[j + 1].requested?;
        let a_next = chain[j + 1].acquired?;
        // Wire crossing of chain[j]: ideal `prop`, excess is output-buffer
        // back-pressure (stall).
        stall += sub(v_j, a_j)?.checked_sub(prop_ns)?;
        // Router processing: ideal `setup`, excess is input-buffer
        // queueing (blocking).
        blocking += sub(r_next, v_j)?.checked_sub(setup_ns)?;
        // OCRQ wait at this router.
        blocking += sub(a_next, r_next)?;
    }
    // Drain on the consumption channel: header crossing plus the
    // pipelined body, ideal `worm_len × prop`; excess is stall.
    let drain = sub(done, chain[hops].acquired?)?;
    stall += drain.checked_sub(worm_len * prop_ns)?;

    let route_setup = hops as u64 * setup_ns;
    let wire = (hops as u64 + worm_len) * prop_ns;
    let anatomy = MessageAnatomy {
        msg,
        dest,
        hops,
        end_to_end: done.since(gen),
        startup: Duration::from_ns(startup),
        blocking: Duration::from_ns(blocking),
        route_setup: Duration::from_ns(route_setup),
        wire: Duration::from_ns(wire),
        stall: Duration::from_ns(stall),
    };
    debug_assert_eq!(anatomy.phase_sum(), anatomy.end_to_end);
    Some(anatomy)
}

/// Decomposes every delivered message of a traced run.
pub fn decompose_run(
    topo: &Topology,
    out: &SimOutcome,
    latency: &LatencyParams,
    extra_header_flits: u32,
) -> Vec<MessageAnatomy> {
    let spans = SpanSet::derive(out);
    (0..out.messages.len())
        .filter_map(|i| {
            let msg = MsgId(i as u32);
            decompose_message(
                topo,
                out,
                spans.of_msg(msg),
                latency,
                extra_header_flits,
                msg,
            )
        })
        .collect()
}

/// Distribution summary of one phase over a set of messages, in µs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseStats {
    /// Phase name.
    pub phase: &'static str,
    /// Mean, µs.
    pub mean_us: f64,
    /// Median (nearest-rank), µs.
    pub p50_us: f64,
    /// 99th percentile (nearest-rank), µs.
    pub p99_us: f64,
    /// This phase's share of summed end-to-end latency, in `[0, 1]`.
    pub share: f64,
}

/// Aggregate anatomy over a message population.
#[derive(Debug, Clone, PartialEq)]
pub struct AnatomySummary {
    /// Messages aggregated.
    pub messages: usize,
    /// Mean critical-chain router count.
    pub mean_hops: f64,
    /// End-to-end latency stats, µs: `(mean, p50, p99)`.
    pub end_to_end_us: (f64, f64, f64),
    /// Per-phase stats, in pipeline order.
    pub phases: Vec<PhaseStats>,
}

fn pct(sorted: &[f64], p: f64) -> f64 {
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn dist(mut xs: Vec<f64>) -> (f64, f64, f64) {
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    (mean, pct(&xs, 0.50), pct(&xs, 0.99))
}

/// Summarizes a population of message anatomies. Returns `None` for an
/// empty population.
pub fn summarize(anatomies: &[MessageAnatomy]) -> Option<AnatomySummary> {
    if anatomies.is_empty() {
        return None;
    }
    let total_ns: u64 = anatomies.iter().map(|a| a.end_to_end.as_ns()).sum();
    let (mean, p50, p99) = dist(anatomies.iter().map(|a| a.end_to_end.as_us_f64()).collect());
    let phases = ["startup", "blocking", "route_setup", "wire", "stall"]
        .iter()
        .enumerate()
        .map(|(i, name)| {
            let ns: Vec<u64> = anatomies.iter().map(|a| a.phases()[i].1.as_ns()).collect();
            let (mean_us, p50_us, p99_us) = dist(ns.iter().map(|&n| n as f64 / 1_000.0).collect());
            PhaseStats {
                phase: name,
                mean_us,
                p50_us,
                p99_us,
                share: if total_ns == 0 {
                    0.0
                } else {
                    ns.iter().sum::<u64>() as f64 / total_ns as f64
                },
            }
        })
        .collect();
    Some(AnatomySummary {
        messages: anatomies.len(),
        mean_hops: anatomies.iter().map(|a| a.hops as f64).sum::<f64>() / anatomies.len() as f64,
        end_to_end_us: (mean, p50, p99),
        phases,
    })
}
