//! Deriving per-message spans from a protocol-level event trace.
//!
//! The engine's [`wormsim::Trace`] is a flat chronological list of
//! protocol actions. This module folds it into a per-message view — for
//! each worm, the channel-keyed timestamps of its lifecycle (request,
//! acquisition, header wire arrival, release), plus deliveries, bubbles,
//! and teardown — and reconstructs the critical chain to any destination
//! by walking the acquisition tree upstream. Everything downstream
//! (latency anatomy, Perfetto export) consumes this view.

use desim::Time;
use netgraph::{ChannelId, NodeId, Topology};
use wormsim::{MsgId, SimOutcome, TraceEvent};

/// The recorded lifecycle of one message on one channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopTimes {
    /// The channel.
    pub channel: ChannelId,
    /// When the header enqueued an OCRQ request for this channel. `None`
    /// for the injection channel: the source's request instant *is*
    /// [`MessageSpans::source_ready`] (enqueue happens in the same event).
    pub requested: Option<Time>,
    /// When the all-or-nothing acquisition that included this channel
    /// succeeded.
    pub acquired: Option<Time>,
    /// When the tail replication released this channel.
    pub released: Option<Time>,
    /// When the header flit finished crossing this channel's wire.
    pub header_arrived: Option<Time>,
}

impl HopTimes {
    fn new(channel: ChannelId) -> Self {
        HopTimes {
            channel,
            requested: None,
            acquired: None,
            released: None,
            header_arrived: None,
        }
    }
}

/// All spans of one message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MessageSpans {
    /// The message.
    pub msg: MsgId,
    /// Send initiation (before startup).
    pub gen_time: Time,
    /// Startup completed at the source; also the instant the injection
    /// channel was requested.
    pub source_ready: Option<Time>,
    /// Per-channel lifecycle times, in first-touch order.
    pub hops: Vec<HopTimes>,
    /// Bubble insertions: `(receiving channel, when)`.
    pub bubbles: Vec<(ChannelId, Time)>,
    /// Tail arrivals: `(destination processor, when)`.
    pub deliveries: Vec<(NodeId, Time)>,
    /// Teardown verdict, if a fault killed the worm mid-flight.
    pub torn_down: Option<(ChannelId, Time)>,
}

impl MessageSpans {
    fn new(msg: MsgId, gen_time: Time) -> Self {
        MessageSpans {
            msg,
            gen_time,
            source_ready: None,
            hops: Vec::new(),
            bubbles: Vec::new(),
            deliveries: Vec::new(),
            torn_down: None,
        }
    }

    fn hop_mut(&mut self, ch: ChannelId) -> &mut HopTimes {
        if let Some(i) = self.hops.iter().position(|h| h.channel == ch) {
            return &mut self.hops[i];
        }
        self.hops.push(HopTimes::new(ch));
        self.hops.last_mut().expect("just pushed")
    }

    /// The hop record for `ch`, if the message ever touched it.
    pub fn hop(&self, ch: ChannelId) -> Option<&HopTimes> {
        self.hops.iter().find(|h| h.channel == ch)
    }

    /// Reconstructs the channel chain from the source to `dest`, in
    /// travel order (injection channel first, consumption channel last).
    ///
    /// The worm's acquisitions form a tree rooted at the source, so the
    /// chain is recovered by walking upstream: from the consumption
    /// channel (the unique acquired channel whose topological destination
    /// is `dest`), repeatedly pair the current channel's request with the
    /// latest header arrival at the requesting router that does not
    /// follow it. Returns `None` if the message never reached `dest` or
    /// the trace is incomplete (e.g. tracing was off).
    pub fn path_to(&self, topo: &Topology, dest: NodeId) -> Option<Vec<HopTimes>> {
        let mut cur = *self
            .hops
            .iter()
            .find(|h| h.acquired.is_some() && topo.channel(h.channel).dst == dest)?;
        let mut rev = vec![cur];
        // The walk visits each tree edge at most once; cap it so a
        // malformed trace cannot loop.
        for _ in 0..self.hops.len() {
            let req = match cur.requested {
                // Injection channel: requested at the source processor
                // itself, which is the root of the tree.
                None => return Some(reversed(rev)),
                Some(t) => t,
            };
            let router = topo.channel(cur.channel).src;
            let prev = self
                .hops
                .iter()
                .filter(|h| topo.channel(h.channel).dst == router)
                .filter(|h| h.header_arrived.is_some_and(|v| v <= req))
                .max_by_key(|h| h.header_arrived)?;
            cur = *prev;
            rev.push(cur);
        }
        None
    }
}

fn reversed(mut v: Vec<HopTimes>) -> Vec<HopTimes> {
    v.reverse();
    v
}

/// Spans of every message of one run, plus network-level instants.
#[derive(Debug, Clone, Default)]
pub struct SpanSet {
    /// One entry per message, indexed by [`MsgId`].
    pub messages: Vec<MessageSpans>,
    /// Link-death instants from the fault schedule: `(forward channel,
    /// when)`.
    pub link_downs: Vec<(ChannelId, Time)>,
}

impl SpanSet {
    /// Folds a run's trace into per-message spans. The outcome must come
    /// from a run with tracing enabled; with tracing off every message's
    /// span record is empty (but present).
    pub fn derive(out: &SimOutcome) -> SpanSet {
        let mut set = SpanSet {
            messages: out
                .messages
                .iter()
                .enumerate()
                .map(|(i, m)| MessageSpans::new(MsgId(i as u32), m.spec.gen_time))
                .collect(),
            link_downs: Vec::new(),
        };
        for e in &out.trace.events {
            match e {
                TraceEvent::SourceReady { msg, at, .. } => {
                    set.messages[msg.index()].source_ready = Some(*at);
                }
                TraceEvent::Requested {
                    msg, channels, at, ..
                } => {
                    let m = &mut set.messages[msg.index()];
                    for &c in channels.iter() {
                        m.hop_mut(c).requested = Some(*at);
                    }
                }
                TraceEvent::Acquired {
                    msg, channels, at, ..
                } => {
                    let m = &mut set.messages[msg.index()];
                    for &c in channels.iter() {
                        m.hop_mut(c).acquired = Some(*at);
                    }
                }
                TraceEvent::Released {
                    msg, channels, at, ..
                } => {
                    let m = &mut set.messages[msg.index()];
                    for &c in channels.iter() {
                        m.hop_mut(c).released = Some(*at);
                    }
                }
                TraceEvent::HeaderArrived { msg, channel, at } => {
                    let hop = set.messages[msg.index()].hop_mut(*channel);
                    if hop.header_arrived.is_none() {
                        hop.header_arrived = Some(*at);
                    }
                }
                TraceEvent::Bubble {
                    msg, channel, at, ..
                } => {
                    set.messages[msg.index()].bubbles.push((*channel, *at));
                }
                TraceEvent::DeliveredTail { msg, dest, at } => {
                    set.messages[msg.index()].deliveries.push((*dest, *at));
                }
                TraceEvent::TornDown { msg, channel, at } => {
                    set.messages[msg.index()].torn_down = Some((*channel, *at));
                }
                TraceEvent::LinkDown { channel, at } => {
                    set.link_downs.push((*channel, *at));
                }
            }
        }
        set
    }

    /// Spans of `msg`.
    pub fn of_msg(&self, msg: MsgId) -> &MessageSpans {
        &self.messages[msg.index()]
    }
}
