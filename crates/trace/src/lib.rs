//! Observability for wormhole runs: spans, latency anatomy, and Perfetto
//! export on top of `wormsim`'s protocol-level event trace.
//!
//! The engine records *what happened* — requests, acquisitions, header
//! arrivals, releases, deliveries — as a flat [`wormsim::Trace`]. This
//! crate turns that record into *explanations*:
//!
//! * [`SpanSet`] — per-message, channel-keyed lifecycle timestamps, with
//!   critical-chain reconstruction ([`MessageSpans::path_to`]);
//! * [`decompose_run`] / [`MessageAnatomy`] — an exact partition of each
//!   delivered message's end-to-end latency into startup, blocking,
//!   route-setup, wire, and stall phases (the five terms sum to
//!   `completion − gen_time` in integer nanoseconds);
//! * [`export`] — a Perfetto track-event protobuf file that renders the
//!   run in `ui.perfetto.dev`: one track per message, one per channel,
//!   plus network-level fault/epoch instants.
//!
//! Tracing stays a pure observer: enabling it changes no outcome, and the
//! disabled path is pinned allocation-free by `wormsim`'s counting-
//! allocator test target.
//!
//! ```
//! use desim::Time;
//! use netgraph::Topology;
//! use wormsim::routing::OracleRouting;
//! use wormsim::{MessageSpec, NetworkSim, SimConfig};
//!
//! // p2 -- s0 -- s1 -- p3 : one unicast across two switches.
//! let mut b = Topology::builder();
//! let s0 = b.add_switch();
//! let s1 = b.add_switch();
//! let p2 = b.add_processor();
//! let p3 = b.add_processor();
//! b.link(p2, s0).unwrap();
//! b.link(s0, s1).unwrap();
//! b.link(s1, p3).unwrap();
//! let topo = b.build();
//!
//! let mut oracle = OracleRouting::new(&topo);
//! oracle.add_unicast_path(0, &[p2, s0, s1, p3]).unwrap();
//!
//! let cfg = SimConfig::paper();
//! let mut sim = NetworkSim::new(&topo, oracle, cfg);
//! sim.enable_trace();
//! sim.submit(MessageSpec::unicast(p2, p3, 128).tag(0).at(Time::ZERO)).unwrap();
//! let out = sim.run();
//!
//! // The uncontended run decomposes into pure startup + setup + wire.
//! let anatomy = spam_trace::decompose_run(&topo, &out, &cfg.latency, 0);
//! assert_eq!(anatomy.len(), 1);
//! let a = &anatomy[0];
//! assert_eq!(a.phase_sum(), a.end_to_end);
//! assert_eq!(a.startup.as_ns(), 10_000);
//! assert_eq!(a.route_setup.as_ns(), 80);
//! assert_eq!(a.wire.as_ns(), 1_300);
//! assert_eq!(a.blocking.as_ns(), 0);
//! assert_eq!(a.stall.as_ns(), 0);
//!
//! let bytes = spam_trace::export(&topo, &out);
//! assert!(!spam_trace::proto::decode_packets(&bytes).unwrap().is_empty());
//! ```

#![warn(missing_docs)]

pub mod anatomy;
pub mod perfetto;
pub mod proto;
pub mod spans;

pub use anatomy::{
    decompose_message, decompose_run, summarize, AnatomySummary, MessageAnatomy, PhaseStats,
};
pub use perfetto::{channel_track, export, msg_track, PerfettoWriter};
pub use spans::{HopTimes, MessageSpans, SpanSet};
