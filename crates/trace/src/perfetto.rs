//! Perfetto track-event export.
//!
//! Emits the subset of Perfetto's `Trace` protobuf that `ui.perfetto.dev`
//! needs to render a run: a `TrackDescriptor` per track, then
//! `TrackEvent` slices and instants stamped with the simulation's
//! nanosecond clock. Tracks:
//!
//! * one **message track** per worm, carrying the critical-chain slices
//!   (startup, inject wait, per-hop wire/route/OCRQ segments, drain) plus
//!   instants for each delivery, bubble insertion, and teardown;
//! * one **channel track** per touched channel, carrying its occupancy
//!   slices (acquire → release), named by the owning message;
//! * one **network track** for link-death and epoch-boundary instants.
//!
//! Field numbers follow `perfetto/trace/trace_packet.proto` and
//! `track_event.proto`; the writer is the hand-rolled subset in
//! [`crate::proto`].

use crate::spans::{MessageSpans, SpanSet};
use desim::Time;
use netgraph::{ChannelId, Topology};
use wormsim::{MsgId, SimOutcome};

use crate::proto::{put_bytes_field, put_string_field, put_varint_field};

/// `TracePacket.timestamp`.
const PACKET_TIMESTAMP: u32 = 8;
/// `TracePacket.trusted_packet_sequence_id`.
const PACKET_SEQUENCE_ID: u32 = 10;
/// `TracePacket.track_event`.
const PACKET_TRACK_EVENT: u32 = 11;
/// `TracePacket.sequence_flags`.
const PACKET_SEQUENCE_FLAGS: u32 = 13;
/// `TracePacket.track_descriptor`.
const PACKET_TRACK_DESCRIPTOR: u32 = 60;

/// `TrackDescriptor.uuid` / `.name` / `.parent_uuid`.
const DESC_UUID: u32 = 1;
const DESC_NAME: u32 = 2;
const DESC_PARENT_UUID: u32 = 5;

/// `TrackEvent.type` / `.track_uuid` / `.name` (non-interned).
const EVENT_TYPE: u32 = 9;
const EVENT_TRACK_UUID: u32 = 11;
const EVENT_NAME: u32 = 23;

/// `TrackEvent.Type` values.
const TYPE_SLICE_BEGIN: u64 = 1;
const TYPE_SLICE_END: u64 = 2;
const TYPE_INSTANT: u64 = 3;

/// `SEQ_INCREMENTAL_STATE_CLEARED`: first packet of a sequence.
const SEQ_CLEARED: u64 = 1;

/// The network (global instants) track.
const NETWORK_TRACK: u64 = 1;
/// Message track uuids start here (`+ MsgId`).
const MSG_TRACK_BASE: u64 = 0x0010_0000;
/// Channel track uuids start here (`+ ChannelId`).
const CH_TRACK_BASE: u64 = 0x0020_0000;

/// Incremental writer for one Perfetto trace file.
pub struct PerfettoWriter {
    buf: Vec<u8>,
    first: bool,
}

impl Default for PerfettoWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl PerfettoWriter {
    /// An empty trace.
    pub fn new() -> Self {
        PerfettoWriter {
            buf: Vec::new(),
            first: true,
        }
    }

    fn packet(&mut self, body: &[u8]) {
        let mut pkt = Vec::with_capacity(body.len() + 8);
        pkt.extend_from_slice(body);
        put_varint_field(&mut pkt, PACKET_SEQUENCE_ID, 1);
        if self.first {
            put_varint_field(&mut pkt, PACKET_SEQUENCE_FLAGS, SEQ_CLEARED);
            self.first = false;
        }
        put_bytes_field(&mut self.buf, 1, &pkt);
    }

    /// Declares a track.
    pub fn track(&mut self, uuid: u64, name: &str, parent: Option<u64>) {
        let mut desc = Vec::new();
        put_varint_field(&mut desc, DESC_UUID, uuid);
        put_string_field(&mut desc, DESC_NAME, name);
        if let Some(p) = parent {
            put_varint_field(&mut desc, DESC_PARENT_UUID, p);
        }
        let mut body = Vec::new();
        put_bytes_field(&mut body, PACKET_TRACK_DESCRIPTOR, &desc);
        self.packet(&body);
    }

    fn event(&mut self, track: u64, at: Time, ty: u64, name: Option<&str>) {
        let mut ev = Vec::new();
        put_varint_field(&mut ev, EVENT_TYPE, ty);
        put_varint_field(&mut ev, EVENT_TRACK_UUID, track);
        if let Some(n) = name {
            put_string_field(&mut ev, EVENT_NAME, n);
        }
        let mut body = Vec::new();
        put_varint_field(&mut body, PACKET_TIMESTAMP, at.as_ns());
        put_bytes_field(&mut body, PACKET_TRACK_EVENT, &ev);
        self.packet(&body);
    }

    /// Opens a named slice on `track`.
    pub fn slice_begin(&mut self, track: u64, at: Time, name: &str) {
        self.event(track, at, TYPE_SLICE_BEGIN, Some(name));
    }

    /// Closes the innermost open slice on `track`.
    pub fn slice_end(&mut self, track: u64, at: Time) {
        self.event(track, at, TYPE_SLICE_END, None);
    }

    /// A zero-duration marker on `track`.
    pub fn instant(&mut self, track: u64, at: Time, name: &str) {
        self.event(track, at, TYPE_INSTANT, Some(name));
    }

    /// A complete `[begin, end]` slice.
    pub fn slice(&mut self, track: u64, begin: Time, end: Time, name: &str) {
        self.slice_begin(track, begin, name);
        self.slice_end(track, end);
    }

    /// The finished trace file bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }
}

/// The track uuid of a message.
pub fn msg_track(m: MsgId) -> u64 {
    MSG_TRACK_BASE + m.0 as u64
}

/// The track uuid of a channel.
pub fn channel_track(c: ChannelId) -> u64 {
    CH_TRACK_BASE + c.0 as u64
}

fn emit_message(w: &mut PerfettoWriter, topo: &Topology, spans: &MessageSpans) {
    let track = msg_track(spans.msg);
    if let Some(ready) = spans.source_ready {
        w.slice(track, spans.gen_time, ready, "startup");
        // The critical chain to the last delivery, when reconstructable,
        // renders as consecutive slices; otherwise only instants appear.
        if let Some((dest, _)) = spans.deliveries.iter().max_by_key(|(_, at)| *at) {
            if let Some(chain) = spans.path_to(topo, *dest) {
                if let Some(a0) = chain[0].acquired {
                    w.slice(track, ready, a0, "inject wait");
                }
                for pair in chain.windows(2) {
                    let (cur, next) = (&pair[0], &pair[1]);
                    let (Some(a), Some(v)) = (cur.acquired, cur.header_arrived) else {
                        continue;
                    };
                    w.slice(track, a, v, &format!("wire ch{}", cur.channel.0));
                    if let (Some(r), Some(an)) = (next.requested, next.acquired) {
                        let router = topo.channel(cur.channel).dst;
                        w.slice(track, v, r, &format!("route @s{}", router.0));
                        w.slice(track, r, an, &format!("ocrq @s{}", router.0));
                    }
                }
                if let (Some(a_last), Some((_, done))) = (
                    chain.last().and_then(|h| h.acquired),
                    spans.deliveries.iter().max_by_key(|(_, at)| *at),
                ) {
                    w.slice(track, a_last, *done, "drain");
                }
            }
        }
    }
    for &(dest, at) in &spans.deliveries {
        w.instant(track, at, &format!("tail @p{}", dest.0));
    }
    for &(ch, at) in &spans.bubbles {
        w.instant(track, at, &format!("bubble ch{}", ch.0));
    }
    if let Some((ch, at)) = spans.torn_down {
        w.instant(track, at, &format!("torn down ch{}", ch.0));
    }
}

/// Exports a traced run as a Perfetto trace file. Tracks are declared for
/// the network, every message, and every channel any worm touched; the
/// result loads directly in `ui.perfetto.dev`.
pub fn export(topo: &Topology, out: &SimOutcome) -> Vec<u8> {
    let spans = SpanSet::derive(out);
    let mut w = PerfettoWriter::new();
    w.track(NETWORK_TRACK, "network", None);

    for m in &spans.messages {
        let spec = &out.messages[m.msg.index()].spec;
        let kind = if spec.dests.len() == 1 {
            "uni"
        } else {
            "multi"
        };
        w.track(
            msg_track(m.msg),
            &format!(
                "m{} {} p{}→{}d",
                m.msg.0,
                kind,
                spec.src.0,
                spec.dests.len()
            ),
            None,
        );
    }

    // Channel tracks, in channel-id order for determinism.
    let mut touched: Vec<ChannelId> = spans
        .messages
        .iter()
        .flat_map(|m| m.hops.iter().map(|h| h.channel))
        .collect();
    touched.sort_by_key(|c| c.0);
    touched.dedup();
    for &c in &touched {
        let ch = topo.channel(c);
        w.track(
            channel_track(c),
            &format!("ch{} {}→{}", c.0, ch.src.0, ch.dst.0),
            None,
        );
    }

    for m in &spans.messages {
        emit_message(&mut w, topo, m);
        // Occupancy slices: a channel has one owner at a time, so these
        // never overlap on a track. A missing release (teardown or an
        // unfinished run) closes at the teardown instant or run end.
        for h in &m.hops {
            if let Some(acq) = h.acquired {
                let rel = h
                    .released
                    .or(m.torn_down.map(|(_, at)| at))
                    .unwrap_or(out.end_time);
                w.slice(channel_track(h.channel), acq, rel, &format!("m{}", m.msg.0));
            }
        }
    }

    for &(c, at) in &spans.link_downs {
        w.instant(NETWORK_TRACK, at, &format!("link down ch{}", c.0));
    }
    for (i, &t) in out.fault_times.iter().enumerate() {
        w.instant(NETWORK_TRACK, t, &format!("epoch {}", i + 1));
    }
    w.into_bytes()
}
