//! Typed daemon failures.
//!
//! Every way a request stream can go wrong — malformed JSONL, an unknown
//! operation, a full work queue, a stale resume cursor, a poisoned cache
//! artifact — maps to exactly one [`ServeError`] variant, serialized back
//! to the client as a typed error line. Client input never panics the
//! daemon; the exhaustive `serve_error_table` integration test pins one
//! concrete trigger per variant.

use spam_scenario::SpecError;
use spam_snapshot::SnapshotError;
use std::fmt;

/// Everything that can go wrong handling a scenario-service request.
#[derive(Debug)]
pub enum ServeError {
    /// The line was not valid JSON, not an object, a field had the wrong
    /// shape, or the operation was used out of sequence (e.g. `run`
    /// before `hello`).
    Protocol {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// The `op` field named no known operation.
    UnknownOp {
        /// The operation name the client sent.
        got: String,
    },
    /// A required request field was absent.
    MissingField {
        /// Dotted path of the missing field (e.g. `hello.client`).
        field: &'static str,
    },
    /// The embedded scenario failed structural decoding or semantic
    /// validation ([`SpecError`] carries the detail).
    Spec(SpecError),
    /// The work queue is at capacity. This is backpressure, not failure:
    /// the request consumed no cursor and can be retried verbatim once
    /// results drain.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// A resume or ack cursor outside the retained window — either ahead
    /// of everything ever produced or behind the oldest retained result.
    UnknownCursor {
        /// The cursor the client asked for.
        requested: u64,
        /// Oldest cursor still retained (replay can start at `oldest`).
        oldest: u64,
        /// The cursor the next result will take.
        next: u64,
    },
    /// A cache artifact or manifest failed an integrity check: container
    /// checksum mismatch, a stored fingerprint that does not match its
    /// own prefix, or a fingerprint collision on the hit path.
    CachePoisoned {
        /// What failed to verify.
        detail: String,
    },
    /// An operating-system I/O failure (socket or manifest file).
    Io {
        /// The OS error text.
        detail: String,
    },
}

impl ServeError {
    /// Stable machine-readable variant tag — the `error` field of the
    /// wire-format error line, pinned by the error-table suite.
    pub fn variant_name(&self) -> &'static str {
        match self {
            ServeError::Protocol { .. } => "Protocol",
            ServeError::UnknownOp { .. } => "UnknownOp",
            ServeError::MissingField { .. } => "MissingField",
            ServeError::Spec(_) => "Spec",
            ServeError::QueueFull { .. } => "QueueFull",
            ServeError::UnknownCursor { .. } => "UnknownCursor",
            ServeError::CachePoisoned { .. } => "CachePoisoned",
            ServeError::Io { .. } => "Io",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Protocol { detail } => write!(f, "protocol violation: {detail}"),
            ServeError::UnknownOp { got } => write!(f, "unknown op {got:?}"),
            ServeError::MissingField { field } => write!(f, "missing required field {field}"),
            ServeError::Spec(e) => write!(f, "scenario rejected: {e}"),
            ServeError::QueueFull { capacity } => {
                write!(
                    f,
                    "work queue full ({capacity} pending); retry after results drain"
                )
            }
            ServeError::UnknownCursor {
                requested,
                oldest,
                next,
            } => write!(
                f,
                "cursor {requested} outside retained window [{oldest}, {next})"
            ),
            ServeError::CachePoisoned { detail } => write!(f, "cache poisoned: {detail}"),
            ServeError::Io { detail } => write!(f, "i/o failure: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Spec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpecError> for ServeError {
    fn from(e: SpecError) -> Self {
        ServeError::Spec(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io {
            detail: e.to_string(),
        }
    }
}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::CachePoisoned {
            detail: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_every_variant() {
        let errs = [
            ServeError::Protocol { detail: "x".into() },
            ServeError::UnknownOp { got: "y".into() },
            ServeError::MissingField { field: "op" },
            ServeError::QueueFull { capacity: 4 },
            ServeError::UnknownCursor {
                requested: 9,
                oldest: 2,
                next: 5,
            },
            ServeError::CachePoisoned {
                detail: "bad checksum".into(),
            },
            ServeError::Io {
                detail: "gone".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
            assert!(!e.variant_name().is_empty());
        }
    }
}
