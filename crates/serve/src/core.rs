//! The single-threaded service state machine.
//!
//! [`ServeCore`] owns the cache, the bounded work queue, and every
//! client's cursor log. It is deliberately free of I/O and threads:
//! [`ServeCore::handle_line`] turns one request line into response
//! lines, [`ServeCore::step`] executes one queued job into cursor-stream
//! lines. The daemon wraps it in a lock; tests drive it directly, which
//! makes request-order determinism trivial to pin.
//!
//! ## Cursor semantics
//!
//! Results for a client form a single monotonic stream starting at
//! cursor 1, regardless of connections. The server retains each line
//! until the client acks past it (low watermark); `hello` with
//! `resume_from: c` replays everything after `c`. Two watermarks bound
//! the replay window: the ack trims from the front, and a per-client
//! byte budget drops the oldest unacked lines under pressure — resuming
//! below the window is a typed [`ServeError::UnknownCursor`], never a
//! silent gap.

use crate::cache::{ArtifactCache, CacheConfig};
use crate::error::ServeError;
use crate::protocol::{self, Request};
use spam_scenario::{outcome_digest, run_with_artifacts, ScenarioSpec};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;

/// Daemon-level knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bounded work-queue depth; a `run` beyond this is a typed
    /// `QueueFull` response, not a panic or an unbounded buffer.
    pub queue_capacity: usize,
    /// Artifact-cache budgets.
    pub cache: CacheConfig,
    /// Retained-backlog byte budget per client (unacked result lines
    /// kept for replay).
    pub backlog_budget: usize,
    /// Where to persist the cache manifest on shutdown (and load it
    /// from on start). `None` disables persistence.
    pub persist_path: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 32,
            cache: CacheConfig::default(),
            backlog_budget: 4 << 20,
            persist_path: None,
        }
    }
}

/// Per-connection state: which logical client (if any) this connection
/// has identified as via `hello`. Owned by the transport, passed into
/// [`ServeCore::handle_line`].
#[derive(Debug, Default)]
pub struct Session {
    client: Option<String>,
}

impl Session {
    /// A connection that has not said `hello` yet.
    pub fn new() -> Self {
        Session::default()
    }

    /// The logical client this connection speaks for, once greeted.
    pub fn client(&self) -> Option<&str> {
        self.client.as_deref()
    }
}

#[derive(Default)]
struct ClientLog {
    /// Cursor the next result line will take (first result is 1).
    next_cursor: u64,
    /// Retained `(cursor, line)` pairs awaiting ack.
    backlog: VecDeque<(u64, String)>,
    backlog_bytes: usize,
}

impl ClientLog {
    fn fresh() -> Self {
        ClientLog {
            next_cursor: 1,
            ..ClientLog::default()
        }
    }

    /// Oldest cursor a resume can start after (the replay window's low
    /// edge). With an empty backlog only `next_cursor - 1` is valid.
    fn oldest_retained(&self) -> u64 {
        self.backlog.front().map_or(self.next_cursor, |(c, _)| *c)
    }

    fn push(&mut self, line: String, budget: usize) -> u64 {
        let cursor = self.next_cursor;
        self.next_cursor += 1;
        self.backlog_bytes += line.len();
        self.backlog.push_back((cursor, line));
        // Retention watermark: shed the oldest unacked lines beyond the
        // byte budget (a resume below this window gets UnknownCursor).
        while self.backlog_bytes > budget && self.backlog.len() > 1 {
            if let Some((_, l)) = self.backlog.pop_front() {
                self.backlog_bytes -= l.len();
            }
        }
        cursor
    }

    fn ack(&mut self, through: u64) {
        while self.backlog.front().is_some_and(|(c, _)| *c <= through) {
            if let Some((_, l)) = self.backlog.pop_front() {
                self.backlog_bytes -= l.len();
            }
        }
    }
}

struct Job {
    client: String,
    spec: Box<ScenarioSpec>,
}

/// Lines produced by executing one job, addressed to a logical client
/// (the transport decides whether that client currently has a live
/// connection; the lines are retained for replay either way).
pub struct StepOutput {
    /// The logical client whose cursor stream grew.
    pub client: String,
    /// The new cursor-stream lines, in order.
    pub lines: Vec<String>,
}

/// The scenario-service state machine. See the module docs.
pub struct ServeCore {
    cfg: ServeConfig,
    cache: ArtifactCache,
    clients: HashMap<String, ClientLog>,
    queue: VecDeque<Job>,
    draining: bool,
}

impl ServeCore {
    /// A cold-cache core.
    pub fn new(cfg: ServeConfig) -> Self {
        let cache = ArtifactCache::new(cfg.cache);
        Self::with_cache(cfg, cache)
    }

    /// A core around an existing (e.g. manifest-loaded) cache.
    pub fn with_cache(cfg: ServeConfig, cache: ArtifactCache) -> Self {
        ServeCore {
            cfg,
            cache,
            clients: HashMap::new(),
            queue: VecDeque::new(),
            draining: false,
        }
    }

    /// The configuration this core runs under.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Cache counters (also embedded in every result line).
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats()
    }

    /// True once a `shutdown` request was accepted.
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// True while queued jobs remain.
    pub fn has_work(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Handles one request line from a connection, returning the
    /// response lines to write on that same connection (for `hello`,
    /// the acknowledgement followed by the replayed backlog). Never
    /// panics on client input — malformed requests come back as typed
    /// error lines.
    pub fn handle_line(&mut self, session: &mut Session, line: &str) -> Vec<String> {
        match self.handle_inner(session, line) {
            Ok(lines) => lines,
            Err(e) => vec![protocol::error_line(&e)],
        }
    }

    fn handle_inner(
        &mut self,
        session: &mut Session,
        line: &str,
    ) -> Result<Vec<String>, ServeError> {
        match protocol::parse_request(line)? {
            Request::Hello {
                client,
                resume_from,
            } => {
                let log = self
                    .clients
                    .entry(client.clone())
                    .or_insert_with(ClientLog::fresh);
                let oldest = log.oldest_retained();
                let next = log.next_cursor;
                // Valid resumes: at or after the oldest retained line
                // minus one (its predecessor was acked/shed), strictly
                // before anything not yet produced.
                if resume_from + 1 < oldest || resume_from >= next {
                    return Err(ServeError::UnknownCursor {
                        requested: resume_from,
                        oldest,
                        next,
                    });
                }
                let replay: Vec<String> = log
                    .backlog
                    .iter()
                    .filter(|(c, _)| *c > resume_from)
                    .map(|(_, l)| l.clone())
                    .collect();
                let mut out = Vec::with_capacity(replay.len() + 1);
                out.push(protocol::hello_line(&client, next, replay.len()));
                out.extend(replay);
                session.client = Some(client);
                Ok(out)
            }
            Request::Run { spec } => {
                let client = session.client.clone().ok_or_else(|| ServeError::Protocol {
                    detail: "hello required before run".into(),
                })?;
                if self.draining {
                    return Err(ServeError::Protocol {
                        detail: "daemon is draining; no new work accepted".into(),
                    });
                }
                spec.validate()?;
                if self.queue.len() >= self.cfg.queue_capacity {
                    return Err(ServeError::QueueFull {
                        capacity: self.cfg.queue_capacity,
                    });
                }
                let ack = protocol::queued_line(&spec.name, spec.replications);
                self.queue.push_back(Job { client, spec });
                Ok(vec![ack])
            }
            Request::Ack { cursor } => {
                let client = session
                    .client
                    .as_deref()
                    .ok_or_else(|| ServeError::Protocol {
                        detail: "hello required before ack".into(),
                    })?;
                // The hello above created the log; a missing entry here
                // would be a state-machine bug, not client input.
                let log = self
                    .clients
                    .get_mut(client)
                    .ok_or_else(|| ServeError::Protocol {
                        detail: "client has no cursor log".into(),
                    })?;
                if cursor >= log.next_cursor {
                    return Err(ServeError::UnknownCursor {
                        requested: cursor,
                        oldest: log.oldest_retained(),
                        next: log.next_cursor,
                    });
                }
                log.ack(cursor);
                Ok(vec![protocol::acked_line(cursor, log.backlog.len())])
            }
            Request::Stats => Ok(vec![protocol::stats_line(
                &self.cache.stats(),
                self.queue.len(),
                self.cfg.queue_capacity,
                self.clients.len(),
                self.draining,
            )]),
            Request::Shutdown => {
                self.draining = true;
                Ok(vec![protocol::shutdown_line(self.queue.len())])
            }
        }
    }

    /// Executes the oldest queued job: one cache lookup + simulation per
    /// replication, each appended to the owning client's cursor stream.
    /// A deterministic per-replication failure (e.g. the sampled faults
    /// leave no surviving component) becomes a cursored error line and
    /// ends the job. Returns `None` when the queue is empty.
    pub fn step(&mut self) -> Option<StepOutput> {
        let job = self.queue.pop_front()?;
        let mut lines = Vec::new();
        let reps = job.spec.replications.max(1);
        for rep in 0..reps {
            match self.run_rep(&job.spec, rep) {
                Ok(line) => lines.push(self.push_to(&job.client, line)),
                Err(e) => {
                    // Spec faults surface their precise variant (e.g.
                    // NoSurvivingComponent); server-side faults (cache
                    // poisoning) keep the ServeError variant.
                    let (variant, detail) = match &e {
                        ServeError::Spec(se) => (se.variant_name(), se.to_string()),
                        other => (other.variant_name(), other.to_string()),
                    };
                    let line =
                        protocol::cursored_error_line(0, &job.spec.name, rep, variant, &detail);
                    lines.push(self.push_to(&job.client, line));
                    break;
                }
            }
        }
        Some(StepOutput {
            client: job.client,
            lines,
        })
    }

    fn run_rep(&mut self, spec: &ScenarioSpec, rep: u32) -> Result<String, ServeError> {
        let (arts, hit) = self.cache.lookup(spec, rep)?;
        let out = run_with_artifacts(spec, rep, None, &arts)?;
        let digest = outcome_digest(&out);
        Ok(protocol::result_line(
            0, // cursor patched by push_to
            &protocol::ResultMeta {
                scenario: &spec.name,
                rep,
                reps: spec.replications,
                artifact_hit: hit,
                digest,
            },
            &out,
            &self.cache.stats(),
        ))
    }

    /// Assigns the next cursor for `client` and retains the line. The
    /// line is produced with a placeholder cursor of 0 and rewritten
    /// here, keeping cursor assignment in exactly one place.
    fn push_to(&mut self, client: &str, line: String) -> String {
        let log = self
            .clients
            .entry(client.to_string())
            .or_insert_with(ClientLog::fresh);
        let cursor = log.next_cursor;
        let line = line.replacen("\"cursor\":0", &format!("\"cursor\":{cursor}"), 1);
        log.push(line.clone(), self.cfg.backlog_budget);
        line
    }

    /// Persists the cache manifest if a persist path is configured.
    pub fn persist(&self) -> Result<(), ServeError> {
        if let Some(path) = &self.cfg.persist_path {
            self.cache.save_manifest(path)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spam_scenario::json::{parse, Json};

    fn run_line(spec: &ScenarioSpec) -> String {
        format!(
            r#"{{"op":"run","spec":{}}}"#,
            spec.to_json().to_string_compact()
        )
    }

    fn small_spec(name: &str, seed: u64) -> ScenarioSpec {
        let mut spec = ScenarioSpec::example(name);
        spec.topology.switches = 16;
        spec.topology.seed = seed;
        spec.traffic = spam_scenario::TrafficSpec::SingleMulticast { dests: 4, len: 64 };
        spec.replications = 2;
        spec
    }

    #[test]
    fn full_request_cycle_streams_cursored_results() {
        let mut core = ServeCore::new(ServeConfig::default());
        let mut sess = Session::new();
        let hello = core.handle_line(&mut sess, r#"{"op":"hello","client":"c1"}"#);
        assert_eq!(hello.len(), 1);
        assert_eq!(sess.client(), Some("c1"));

        let spec = small_spec("cycle", 5);
        let queued = core.handle_line(&mut sess, &run_line(&spec));
        assert!(queued[0].contains("\"queued\""));
        assert!(core.has_work());

        let out = core.step().unwrap();
        assert_eq!(out.client, "c1");
        assert_eq!(out.lines.len(), 2);
        for (i, l) in out.lines.iter().enumerate() {
            let doc = parse(l).unwrap();
            assert_eq!(doc.get("type").and_then(Json::as_str), Some("result"));
            let cursor = doc.get("cursor").and_then(|v| v.as_num()?.as_u64());
            assert_eq!(cursor, Some(i as u64 + 1));
        }
        // Rep 0 misses, rep 1 misses too (its own prefix fingerprint
        // differs by rep) — resubmit hits both.
        core.handle_line(&mut sess, &run_line(&spec));
        let warm = core.step().unwrap();
        for l in &warm.lines {
            assert!(l.contains("\"artifact\":\"hit\""), "{l}");
        }
        let st = core.cache_stats();
        assert_eq!((st.hits, st.misses), (2, 2));
    }

    #[test]
    fn resume_replays_exactly_the_unacked_suffix() {
        let mut core = ServeCore::new(ServeConfig::default());
        let mut sess = Session::new();
        core.handle_line(&mut sess, r#"{"op":"hello","client":"c1"}"#);
        core.handle_line(&mut sess, &run_line(&small_spec("resume", 5)));
        let first = core.step().unwrap();
        assert_eq!(first.lines.len(), 2);

        // Reconnect having durably seen cursor 1.
        let mut sess2 = Session::new();
        let replay = core.handle_line(
            &mut sess2,
            r#"{"op":"hello","client":"c1","resume_from":1}"#,
        );
        assert_eq!(replay.len(), 2, "hello + one replayed line");
        assert_eq!(replay[1], first.lines[1]);

        // Ack everything; a fresh resume from 2 replays nothing.
        let acked = core.handle_line(&mut sess2, r#"{"op":"ack","cursor":2}"#);
        assert!(acked[0].contains("\"retained\":0"));
        let replay = core.handle_line(
            &mut sess2,
            r#"{"op":"hello","client":"c1","resume_from":2}"#,
        );
        assert_eq!(replay.len(), 1);
        // ...but resuming below the acked watermark is typed.
        let err = core.handle_line(
            &mut sess2,
            r#"{"op":"hello","client":"c1","resume_from":0}"#,
        );
        assert!(err[0].contains("UnknownCursor"), "{}", err[0]);
    }

    #[test]
    fn queue_full_is_backpressure_without_a_cursor() {
        let mut core = ServeCore::new(ServeConfig {
            queue_capacity: 1,
            ..ServeConfig::default()
        });
        let mut sess = Session::new();
        core.handle_line(&mut sess, r#"{"op":"hello","client":"c1"}"#);
        let spec = small_spec("qf", 5);
        assert!(core.handle_line(&mut sess, &run_line(&spec))[0].contains("queued"));
        let rejected = core.handle_line(&mut sess, &run_line(&spec));
        assert!(rejected[0].contains("QueueFull"), "{}", rejected[0]);
        // Drain one job; the retry is accepted.
        core.step().unwrap();
        assert!(core.handle_line(&mut sess, &run_line(&spec))[0].contains("queued"));
    }

    #[test]
    fn run_before_hello_and_drain_refusal_are_typed() {
        let mut core = ServeCore::new(ServeConfig::default());
        let mut sess = Session::new();
        let spec = small_spec("nohello", 5);
        let err = core.handle_line(&mut sess, &run_line(&spec));
        assert!(err[0].contains("\"Protocol\""), "{}", err[0]);
        core.handle_line(&mut sess, r#"{"op":"hello","client":"c1"}"#);
        core.handle_line(&mut sess, r#"{"op":"shutdown"}"#);
        assert!(core.draining());
        let err = core.handle_line(&mut sess, &run_line(&spec));
        assert!(err[0].contains("draining"), "{}", err[0]);
    }
}
