//! Content-addressed artifact cache.
//!
//! Keyed on [`spam_scenario::spec_fingerprint`] — a streaming FNV-1a
//! over the spec's topology + fault prefix and replication index, the
//! exact inputs that determine the expensive environment artifacts
//! (topology, up*/down* labeling, degraded survivor, storm epoch chain).
//! Two requests that differ only in traffic, seeds downstream of the
//! prefix, routing, or engine knobs share an entry and skip straight to
//! traffic generation.
//!
//! The hit path is allocation-free: fingerprint the borrowed spec, probe
//! the map, verify the stored [`ArtifactPrefix`] field-by-field (a
//! fingerprint collision is a typed [`ServeError::CachePoisoned`], never
//! a silently wrong artifact), bump the LRU tick, clone the `Arc`. The
//! `cache_zero_alloc` guard pins this at exactly zero.
//!
//! Eviction is LRU under two budgets — entry count and approximate
//! resident bytes ([`ScenarioArtifacts::approx_bytes`]). The cache
//! persists across restarts as a `SPAMSNAP` manifest of canonical prefix
//! JSON (artifacts themselves are rebuilt deterministically on load, so
//! the manifest stays small and version-tolerant).

use crate::error::ServeError;
use spam_scenario::{spec_fingerprint, ArtifactPrefix, ScenarioArtifacts, ScenarioSpec};
use spam_snapshot::{SnapReader, SnapWriter};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Section tag for the manifest index (entry count).
const TAG_CACHE_INDEX: u32 = 0x5643_0001;
/// Section tag for one cached entry (fingerprint + canonical prefix).
const TAG_CACHE_ENTRY: u32 = 0x5643_0002;

/// Cache sizing knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum resident entries (LRU evicts beyond this).
    pub max_entries: usize,
    /// Approximate resident-byte budget across all entries. A single
    /// entry larger than the whole budget is kept (the cache never
    /// evicts down to empty).
    pub max_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            max_entries: 64,
            max_bytes: 256 << 20,
        }
    }
}

/// Monotonic hit/miss/eviction counters plus current occupancy —
/// embedded in every result line so clients observe cache behavior
/// in-band.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups served from a resident entry.
    pub hits: u64,
    /// Lookups that had to build artifacts.
    pub misses: u64,
    /// Entries evicted by the LRU budgets.
    pub evictions: u64,
    /// Resident entries right now.
    pub entries: usize,
    /// Approximate resident bytes right now.
    pub bytes: usize,
}

struct Entry {
    arts: Arc<ScenarioArtifacts>,
    bytes: usize,
    last_used: u64,
}

/// The content-addressed artifact store. Single-threaded by design —
/// the daemon owns it behind its state lock, so lookups stay
/// deterministic in request order.
pub struct ArtifactCache {
    cfg: CacheConfig,
    map: HashMap<u64, Entry>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ArtifactCache {
    /// An empty cache with the given budgets.
    pub fn new(cfg: CacheConfig) -> Self {
        ArtifactCache {
            cfg,
            map: HashMap::new(),
            bytes: 0,
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Fetches (or builds and inserts) the artifacts for `spec`'s
    /// replication `rep`. Returns the artifacts and whether this was a
    /// hit. A build failure is the spec's fault ([`ServeError::Spec`]);
    /// a fingerprint collision against a resident entry is
    /// [`ServeError::CachePoisoned`].
    pub fn lookup(
        &mut self,
        spec: &ScenarioSpec,
        rep: u32,
    ) -> Result<(Arc<ScenarioArtifacts>, bool), ServeError> {
        let fp = spec_fingerprint(spec, rep);
        self.tick += 1;
        if let Some(e) = self.map.get_mut(&fp) {
            if !e.arts.prefix.matches(spec, rep) {
                return Err(ServeError::CachePoisoned {
                    detail: format!("fingerprint collision on {fp:#018x}"),
                });
            }
            e.last_used = self.tick;
            self.hits += 1;
            return Ok((Arc::clone(&e.arts), true));
        }
        self.misses += 1;
        let arts = Arc::new(ArtifactPrefix::of(spec, rep).build()?);
        self.insert(fp, arts.clone());
        Ok((arts, false))
    }

    fn insert(&mut self, fp: u64, arts: Arc<ScenarioArtifacts>) {
        let bytes = arts.approx_bytes();
        self.bytes += bytes;
        self.map.insert(
            fp,
            Entry {
                arts,
                bytes,
                last_used: self.tick,
            },
        );
        self.evict_to_budget();
    }

    fn evict_to_budget(&mut self) {
        while self.map.len() > 1
            && (self.map.len() > self.cfg.max_entries || self.bytes > self.cfg.max_bytes)
        {
            // O(n) LRU scan; n is bounded by max_entries and lookups
            // dominate, so a heap buys nothing here.
            let Some((&victim, _)) = self.map.iter().min_by_key(|(_, e)| e.last_used) else {
                return;
            };
            if let Some(e) = self.map.remove(&victim) {
                self.bytes -= e.bytes;
                self.evictions += 1;
            }
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
            bytes: self.bytes,
        }
    }

    /// Serializes the manifest: one section per resident entry, oldest
    /// first (so a reload replays insertions in LRU order), each holding
    /// the fingerprint plus the canonical prefix JSON it must match.
    pub fn manifest_bytes(&self) -> Vec<u8> {
        let mut order: Vec<(&u64, &Entry)> = self.map.iter().collect();
        order.sort_by_key(|(_, e)| e.last_used);
        let mut w = SnapWriter::new();
        w.begin();
        let patch = w.begin_section(TAG_CACHE_INDEX);
        w.put_len(order.len());
        w.end_section(patch);
        for (fp, e) in order {
            let patch = w.begin_section(TAG_CACHE_ENTRY);
            w.put_u64(*fp);
            w.put_str(&e.arts.prefix.canonical_json());
            w.end_section(patch);
        }
        w.seal().to_vec()
    }

    /// Writes the manifest to `path` ([`ServeError::Io`] on failure).
    pub fn save_manifest(&self, path: &Path) -> Result<(), ServeError> {
        std::fs::write(path, self.manifest_bytes())?;
        Ok(())
    }

    /// Rebuilds a warm cache from manifest bytes. Every entry is
    /// checksum-verified by the container, its stored fingerprint is
    /// recomputed from the decoded prefix, and its artifacts are rebuilt
    /// deterministically. Any mismatch is [`ServeError::CachePoisoned`] —
    /// the caller decides whether to start cold instead.
    pub fn from_manifest_bytes(bytes: &[u8], cfg: CacheConfig) -> Result<Self, ServeError> {
        let mut r = SnapReader::open(bytes)?;
        r.expect_section(TAG_CACHE_INDEX)?;
        let count = r.get_len()?;
        let mut cache = ArtifactCache::new(cfg);
        for _ in 0..count {
            r.expect_section(TAG_CACHE_ENTRY)?;
            let fp = r.get_u64()?;
            let text = r.get_str()?;
            let prefix = ArtifactPrefix::from_canonical_json(text).map_err(|e| {
                ServeError::CachePoisoned {
                    detail: format!("manifest prefix does not decode: {e}"),
                }
            })?;
            if prefix.fingerprint() != fp {
                return Err(ServeError::CachePoisoned {
                    detail: format!(
                        "manifest fingerprint {fp:#018x} does not match its own prefix"
                    ),
                });
            }
            let arts = prefix.build().map_err(|e| ServeError::CachePoisoned {
                detail: format!("manifest prefix does not build: {e}"),
            })?;
            cache.tick += 1;
            cache.insert(fp, Arc::new(arts));
        }
        r.finish()?;
        Ok(cache)
    }

    /// Loads a warm cache from a manifest file. A missing or unreadable
    /// file is [`ServeError::Io`]; a corrupt one is
    /// [`ServeError::CachePoisoned`].
    pub fn load_manifest(path: &Path, cfg: CacheConfig) -> Result<Self, ServeError> {
        let bytes = std::fs::read(path)?;
        Self::from_manifest_bytes(&bytes, cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_spec(switches: usize, seed: u64) -> ScenarioSpec {
        let mut spec = ScenarioSpec::example("cache-test");
        spec.topology.switches = switches;
        spec.topology.seed = seed;
        spec.traffic = spam_scenario::TrafficSpec::SingleMulticast { dests: 4, len: 64 };
        spec.replications = 1;
        spec
    }

    #[test]
    fn hit_shares_artifacts_and_counts() {
        let mut cache = ArtifactCache::new(CacheConfig::default());
        let spec = small_spec(16, 3);
        let (a, hit_a) = cache.lookup(&spec, 0).unwrap();
        assert!(!hit_a);
        // Traffic-only change: same prefix, must hit and share the Arc.
        let mut warm = spec.clone();
        warm.seed ^= 0xdead_beef;
        warm.name = "different-name".into();
        let (b, hit_b) = cache.lookup(&warm, 0).unwrap();
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        assert!(s.bytes > 0);
    }

    #[test]
    fn lru_eviction_respects_entry_budget() {
        let mut cache = ArtifactCache::new(CacheConfig {
            max_entries: 2,
            max_bytes: usize::MAX,
        });
        let specs: Vec<_> = (0..3).map(|i| small_spec(16, i)).collect();
        for s in &specs {
            cache.lookup(s, 0).unwrap();
        }
        let st = cache.stats();
        assert_eq!((st.entries, st.evictions), (2, 1));
        // Oldest (seed 0) was evicted; seed 1 and 2 still hit.
        assert!(cache.lookup(&specs[2], 0).unwrap().1);
        assert!(cache.lookup(&specs[1], 0).unwrap().1);
        assert!(!cache.lookup(&specs[0], 0).unwrap().1);
    }

    #[test]
    fn byte_budget_evicts_but_keeps_last_entry() {
        // A budget smaller than any one entry: each insert evicts the
        // previous entry but the newest always survives.
        let mut cache = ArtifactCache::new(CacheConfig {
            max_entries: 8,
            max_bytes: 1,
        });
        for i in 0..3 {
            cache.lookup(&small_spec(16, i), 0).unwrap();
            assert_eq!(cache.stats().entries, 1);
        }
        assert_eq!(cache.stats().evictions, 2);
    }

    #[test]
    fn manifest_round_trips_a_warm_cache() {
        let mut cache = ArtifactCache::new(CacheConfig::default());
        let specs: Vec<_> = (0..3).map(|i| small_spec(16 + i as usize, 7)).collect();
        for s in &specs {
            cache.lookup(s, 0).unwrap();
        }
        let bytes = cache.manifest_bytes();
        let mut warm = ArtifactCache::from_manifest_bytes(&bytes, CacheConfig::default()).unwrap();
        assert_eq!(warm.stats().entries, 3);
        // Every original spec now hits without a rebuild.
        for s in &specs {
            assert!(warm.lookup(s, 0).unwrap().1);
        }
        assert_eq!(warm.stats().misses, 0);
    }

    #[test]
    fn corrupt_manifest_is_typed_not_a_panic() {
        let mut cache = ArtifactCache::new(CacheConfig::default());
        cache.lookup(&small_spec(16, 1), 0).unwrap();
        let mut bytes = cache.manifest_bytes();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let err = ArtifactCache::from_manifest_bytes(&bytes, CacheConfig::default())
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err.variant_name(), "CachePoisoned");
    }
}
