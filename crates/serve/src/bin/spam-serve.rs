//! `spam-serve` — the scenario-service daemon binary.
//!
//! ```text
//! spam-serve [--socket PATH] [--queue-capacity N] [--cache-entries N]
//!            [--cache-bytes N] [--persist PATH]
//! ```
//!
//! Without `--socket`, serves JSONL on stdin/stdout and treats stdin
//! EOF as a shutdown request (drain the queue, persist the manifest,
//! exit 0) — the mode the CI smoke job and `serve_bench` use. With
//! `--socket PATH`, listens on a unix socket and serves each accepted
//! connection until a client sends `shutdown`.
//!
//! With `--persist PATH`, the cache manifest is written there on
//! shutdown and loaded on start; a corrupt or stale manifest is
//! reported on stderr and the daemon starts cold (a poisoned cache
//! must never block service).

use spam_serve::{ArtifactCache, Daemon, ServeConfig, ServeCore};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    socket: Option<PathBuf>,
    cfg: ServeConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        socket: None,
        cfg: ServeConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--socket" => args.socket = Some(PathBuf::from(value("--socket")?)),
            "--persist" => args.cfg.persist_path = Some(PathBuf::from(value("--persist")?)),
            "--queue-capacity" => {
                args.cfg.queue_capacity = value("--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("--queue-capacity: {e}"))?;
            }
            "--cache-entries" => {
                args.cfg.cache.max_entries = value("--cache-entries")?
                    .parse()
                    .map_err(|e| format!("--cache-entries: {e}"))?;
            }
            "--cache-bytes" => {
                args.cfg.cache.max_bytes = value("--cache-bytes")?
                    .parse()
                    .map_err(|e| format!("--cache-bytes: {e}"))?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Warm-start policy: a loadable manifest seeds the cache; a missing
/// one is a normal cold start; a corrupt one is reported and ignored.
fn open_cache(cfg: &ServeConfig) -> ArtifactCache {
    let Some(path) = &cfg.persist_path else {
        return ArtifactCache::new(cfg.cache);
    };
    if !path.exists() {
        return ArtifactCache::new(cfg.cache);
    }
    match ArtifactCache::load_manifest(path, cfg.cache) {
        Ok(cache) => {
            eprintln!(
                "spam-serve: warm start, {} cached artifact(s) from {}",
                cache.stats().entries,
                path.display()
            );
            cache
        }
        Err(e) => {
            eprintln!(
                "spam-serve: ignoring manifest {}: {e}; starting cold",
                path.display()
            );
            ArtifactCache::new(cfg.cache)
        }
    }
}

fn serve_stdio(core: ServeCore) -> Result<(), String> {
    let daemon = Daemon::start(core);
    let handle = daemon.attach(std::io::stdin(), std::io::stdout());
    // EOF on stdin ends the reader; drain whatever is still queued.
    let _ = handle.join();
    daemon.request_shutdown();
    daemon.join().map_err(|e| e.to_string())
}

fn serve_socket(core: ServeCore, path: &std::path::Path) -> Result<(), String> {
    use std::os::unix::net::UnixListener;
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path).map_err(|e| format!("bind {path:?}: {e}"))?;
    eprintln!("spam-serve: listening on {}", path.display());
    let daemon = Daemon::start(core);
    // Poll accept so a client-requested shutdown can end the loop.
    listener.set_nonblocking(true).map_err(|e| e.to_string())?;
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                stream.set_nonblocking(false).map_err(|e| e.to_string())?;
                let reader = stream.try_clone().map_err(|e| e.to_string())?;
                daemon.attach(reader, stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if daemon.is_finished() {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(50));
            }
            Err(e) => return Err(e.to_string()),
        }
    }
    let res = daemon.join().map_err(|e| e.to_string());
    let _ = std::fs::remove_file(path);
    res
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("spam-serve: {e}");
            return ExitCode::from(2);
        }
    };
    let cache = open_cache(&args.cfg);
    let core = ServeCore::with_cache(args.cfg.clone(), cache);
    let res = match &args.socket {
        Some(path) => serve_socket(core, path),
        None => serve_stdio(core),
    };
    match res {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("spam-serve: {e}");
            ExitCode::FAILURE
        }
    }
}
