//! The JSONL wire protocol.
//!
//! One JSON object per line in each direction. Requests carry an `op`
//! tag (`hello`, `run`, `ack`, `stats`, `shutdown`); responses carry a
//! `type` tag. Result and run-error lines are the *cursor stream*: they
//! carry a per-client monotonic cursor and are retained server-side for
//! replay until acked, so they contain only deterministic fields (no
//! wall-clock timing — latency is the client's to measure) and an
//! interrupted-then-resumed stream concatenates byte-identically to an
//! uninterrupted one. Everything else (`queued`, `acked`, `stats`,
//! immediate errors) is transient connection chatter and is never
//! replayed.

use crate::cache::CacheStats;
use crate::error::ServeError;
use spam_scenario::json::{parse, Json, Num};
use spam_scenario::ScenarioSpec;
use wormsim::SimOutcome;

/// A decoded client request.
#[derive(Debug)]
pub enum Request {
    /// Attach (or re-attach) as `client`, replaying retained results
    /// after cursor `resume_from` (0 = from the beginning).
    Hello {
        /// Logical client identity — cursor state is keyed on this, not
        /// on the connection.
        client: String,
        /// Last cursor the client acknowledges having durably received.
        resume_from: u64,
    },
    /// Enqueue a scenario; each replication streams one result line.
    Run {
        /// The decoded scenario document.
        spec: Box<ScenarioSpec>,
    },
    /// Trim the retained backlog through `cursor`.
    Ack {
        /// Highest cursor the client has durably received.
        cursor: u64,
    },
    /// Report queue/cache/client occupancy.
    Stats,
    /// Drain the queue, persist the cache manifest, and exit.
    Shutdown,
}

fn obj_fields<'a>(v: &'a Json, what: &str) -> Result<&'a [(String, Json)], ServeError> {
    match v {
        Json::Obj(fields) => Ok(fields),
        _ => Err(ServeError::Protocol {
            detail: format!("{what} must be a JSON object"),
        }),
    }
}

fn str_field(v: &Json, what: &str) -> Result<String, ServeError> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| ServeError::Protocol {
            detail: format!("{what} must be a string"),
        })
}

fn u64_field(v: &Json, what: &str) -> Result<u64, ServeError> {
    v.as_num()
        .and_then(|n| n.as_u64())
        .ok_or_else(|| ServeError::Protocol {
            detail: format!("{what} must be a non-negative integer"),
        })
}

/// Parses one request line. Every malformed shape is a typed error —
/// this function cannot panic on any input (fuzzed by the error-table
/// suite).
pub fn parse_request(line: &str) -> Result<Request, ServeError> {
    let doc = parse(line).map_err(|e| ServeError::Protocol {
        detail: format!("bad JSONL: {e}"),
    })?;
    let fields = obj_fields(&doc, "request")?;
    let op = fields
        .iter()
        .find(|(k, _)| k == "op")
        .map(|(_, v)| v)
        .ok_or(ServeError::MissingField { field: "op" })?;
    let op = op.as_str().ok_or_else(|| ServeError::Protocol {
        detail: "op must be a string".into(),
    })?;
    match op {
        "hello" => {
            let client = doc
                .get("client")
                .ok_or(ServeError::MissingField {
                    field: "hello.client",
                })
                .and_then(|v| str_field(v, "hello.client"))?;
            let resume_from = match doc.get("resume_from") {
                Some(v) => u64_field(v, "hello.resume_from")?,
                None => 0,
            };
            Ok(Request::Hello {
                client,
                resume_from,
            })
        }
        "run" => {
            let spec = doc
                .get("spec")
                .ok_or(ServeError::MissingField { field: "run.spec" })?;
            let spec = ScenarioSpec::from_value(spec)?;
            Ok(Request::Run {
                spec: Box::new(spec),
            })
        }
        "ack" => {
            let cursor = doc
                .get("cursor")
                .ok_or(ServeError::MissingField {
                    field: "ack.cursor",
                })
                .and_then(|v| u64_field(v, "ack.cursor"))?;
            Ok(Request::Ack { cursor })
        }
        "stats" => Ok(Request::Stats),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ServeError::UnknownOp {
            got: other.to_string(),
        }),
    }
}

fn u(v: u64) -> Json {
    Json::Num(Num::U(v))
}

fn uz(v: usize) -> Json {
    Json::Num(Num::U(v as u64))
}

fn s(v: &str) -> Json {
    Json::Str(v.to_string())
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn cache_obj(st: &CacheStats) -> Json {
    obj(vec![
        ("hits", u(st.hits)),
        ("misses", u(st.misses)),
        ("evictions", u(st.evictions)),
        ("entries", uz(st.entries)),
        ("bytes", uz(st.bytes)),
    ])
}

/// The `hello` acknowledgement. `replayed` lines follow immediately on
/// the same connection.
pub fn hello_line(client: &str, next_cursor: u64, replayed: usize) -> String {
    obj(vec![
        ("type", s("hello")),
        ("client", s(client)),
        ("next_cursor", u(next_cursor)),
        ("replayed", uz(replayed)),
    ])
    .to_string_compact()
}

/// Transient acceptance of a `run` request (not part of the cursor
/// stream — a reconnect re-learns progress from result lines).
pub fn queued_line(scenario: &str, reps: u32) -> String {
    obj(vec![
        ("type", s("queued")),
        ("scenario", s(scenario)),
        ("reps", u(reps as u64)),
    ])
    .to_string_compact()
}

/// Transient acknowledgement of an `ack` (backlog trimmed through
/// `cursor`).
pub fn acked_line(cursor: u64, retained: usize) -> String {
    obj(vec![
        ("type", s("acked")),
        ("cursor", u(cursor)),
        ("retained", uz(retained)),
    ])
    .to_string_compact()
}

/// Identity of one completed replication: which scenario, which rep,
/// whether its environment came from the artifact cache, and its
/// [`spam_scenario::outcome_digest`].
#[derive(Debug, Clone)]
pub struct ResultMeta<'a> {
    /// Scenario name from the spec.
    pub scenario: &'a str,
    /// Zero-based replication index.
    pub rep: u32,
    /// Total replications in the request.
    pub reps: u32,
    /// Whether the environment was served from the artifact cache.
    pub artifact_hit: bool,
    /// The outcome digest for this replication.
    pub digest: u64,
}

/// One completed replication on the cursor stream. Only deterministic
/// fields: the digest is [`spam_scenario::outcome_digest`], `artifact`
/// says whether the environment came from the cache, and the embedded
/// counters snapshot the cache as of this result.
pub fn result_line(cursor: u64, meta: &ResultMeta, out: &SimOutcome, cache: &CacheStats) -> String {
    obj(vec![
        ("type", s("result")),
        ("cursor", u(cursor)),
        ("scenario", s(meta.scenario)),
        ("rep", u(meta.rep as u64)),
        ("reps", u(meta.reps as u64)),
        (
            "artifact",
            s(if meta.artifact_hit { "hit" } else { "miss" }),
        ),
        ("digest", s(&format!("{:#018x}", meta.digest))),
        ("end_time_ns", u(out.end_time.as_ns())),
        ("quiescent", Json::Bool(out.quiescent)),
        ("messages", uz(out.messages.len())),
        ("delivered", u(out.counters.messages_completed)),
        ("torn_down", u(out.counters.messages_torn_down)),
        ("unreachable", u(out.counters.messages_unreachable)),
        ("events", u(out.counters.events)),
        ("cache", cache_obj(cache)),
    ])
    .to_string_compact()
}

/// A per-replication failure on the cursor stream (e.g. the sampled
/// fault pattern left no surviving component — a deterministic property
/// of the spec). Cursored — a resumed client sees it again, exactly
/// like a result. `variant` is `SpecError::variant_name` for spec
/// faults or [`ServeError::variant_name`] for server-side ones.
pub fn cursored_error_line(
    cursor: u64,
    scenario: &str,
    rep: u32,
    variant: &str,
    detail: &str,
) -> String {
    obj(vec![
        ("type", s("error")),
        ("cursor", u(cursor)),
        ("scenario", s(scenario)),
        ("rep", u(rep as u64)),
        ("error", s(variant)),
        ("detail", s(detail)),
    ])
    .to_string_compact()
}

/// An immediate (uncursored) error response to the offending request.
/// Variant-specific fields ride along so clients can react in a typed
/// way: `QueueFull` carries the capacity, `UnknownCursor` the retained
/// window.
pub fn error_line(err: &ServeError) -> String {
    let mut fields = vec![
        ("type", s("error")),
        ("error", s(err.variant_name())),
        ("detail", s(&err.to_string())),
    ];
    match err {
        ServeError::QueueFull { capacity } => {
            fields.push(("capacity", uz(*capacity)));
            fields.push(("retry", Json::Bool(true)));
        }
        ServeError::UnknownCursor {
            requested,
            oldest,
            next,
        } => {
            fields.push(("requested", u(*requested)));
            fields.push(("oldest", u(*oldest)));
            fields.push(("next", u(*next)));
        }
        _ => {}
    }
    obj(fields).to_string_compact()
}

/// Occupancy report.
pub fn stats_line(
    cache: &CacheStats,
    queue_depth: usize,
    queue_capacity: usize,
    clients: usize,
    draining: bool,
) -> String {
    obj(vec![
        ("type", s("stats")),
        ("queue_depth", uz(queue_depth)),
        ("queue_capacity", uz(queue_capacity)),
        ("clients", uz(clients)),
        ("draining", Json::Bool(draining)),
        ("cache", cache_obj(cache)),
    ])
    .to_string_compact()
}

/// Acknowledges `shutdown`: `pending` jobs will still drain onto the
/// cursor stream before the daemon exits.
pub fn shutdown_line(pending: usize) -> String {
    obj(vec![("type", s("shutdown")), ("pending", uz(pending))]).to_string_compact()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_parse_and_misparse_typed() {
        assert!(matches!(
            parse_request(r#"{"op":"hello","client":"c1","resume_from":4}"#),
            Ok(Request::Hello { ref client, resume_from: 4 }) if client == "c1"
        ));
        assert!(matches!(
            parse_request(r#"{"op":"stats"}"#),
            Ok(Request::Stats)
        ));
        let cases = [
            ("not json at all", "Protocol"),
            ("[1,2,3]", "Protocol"),
            (r#"{"client":"x"}"#, "MissingField"),
            (r#"{"op":"hello"}"#, "MissingField"),
            (r#"{"op":"hello","client":7}"#, "Protocol"),
            (r#"{"op":"frobnicate"}"#, "UnknownOp"),
            (r#"{"op":"run"}"#, "MissingField"),
            (r#"{"op":"run","spec":{"name":"x"}}"#, "Spec"),
            (r#"{"op":"ack"}"#, "MissingField"),
            (r#"{"op":"ack","cursor":-3}"#, "Protocol"),
        ];
        for (line, variant) in cases {
            let err = parse_request(line).map(|_| ()).unwrap_err();
            assert_eq!(err.variant_name(), variant, "line: {line}");
        }
    }

    #[test]
    fn lines_are_single_line_json() {
        let lines = [
            hello_line("c", 5, 2),
            queued_line("sc", 3),
            acked_line(4, 1),
            error_line(&ServeError::QueueFull { capacity: 8 }),
            stats_line(&CacheStats::default(), 0, 8, 1, false),
            shutdown_line(0),
        ];
        for l in lines {
            assert!(!l.contains('\n'), "JSONL framing: {l}");
            let doc = parse(&l).unwrap();
            assert!(doc.get("type").is_some());
        }
    }

    #[test]
    fn queue_full_line_carries_typed_backpressure() {
        let l = error_line(&ServeError::QueueFull { capacity: 2 });
        let doc = parse(&l).unwrap();
        assert_eq!(doc.get("error").and_then(Json::as_str), Some("QueueFull"));
        assert_eq!(doc.get("retry").and_then(Json::as_bool), Some(true));
        assert_eq!(
            doc.get("capacity").and_then(|v| v.as_num()?.as_u64()),
            Some(2)
        );
    }
}
