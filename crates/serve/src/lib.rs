#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # spam-serve — the scenario-request daemon
//!
//! A long-running service that turns the batch simulator into an
//! amortized one. Clients stream [`spam_scenario::ScenarioSpec`]s as
//! JSONL (stdin or a unix socket); the daemon executes them through a
//! **content-addressed artifact cache** keyed on the spec's
//! topology + fault prefix ([`spam_scenario::spec_fingerprint`]), so a
//! parameter sweep that varies traffic, seeds, routing, or engine knobs
//! over a fixed fabric pays the expensive environment construction —
//! topology generation, up*/down* labeling, fault degradation, storm
//! epoch chains, routing tables — once, not per request. The
//! `serve_cache_differential` suite pins the contract that makes this
//! safe: warm results are byte-identical (same
//! [`spam_scenario::outcome_digest`]) to cold ones.
//!
//! The pieces:
//!
//! * [`ArtifactCache`] — fingerprint-keyed store with LRU + byte-budget
//!   eviction, hit/miss/eviction counters surfaced in every response,
//!   and a `SPAMSNAP` manifest for warm restarts.
//! * [`ServeCore`] — the single-threaded state machine: bounded work
//!   queue with typed backpressure ([`ServeError::QueueFull`] is a
//!   response, not a panic), per-client monotonic result cursors with
//!   ack-trimmed replay for reconnect/resume.
//! * [`protocol`] — the JSONL request/response codec; every malformed
//!   input maps to a [`ServeError`] variant (pinned one-per-variant by
//!   the error-table suite).
//! * [`Daemon`] — the threaded transport: worker + per-connection
//!   readers, all writes serialized under the state lock.
//!
//! ```
//! use spam_serve::{ServeConfig, ServeCore, Session};
//!
//! let mut core = ServeCore::new(ServeConfig::default());
//! let mut session = Session::new();
//! core.handle_line(&mut session, r#"{"op":"hello","client":"doc"}"#);
//! let mut spec = spam_scenario::ScenarioSpec::example("doc-serve");
//! spec.topology.switches = 16;
//! spec.traffic = spam_scenario::TrafficSpec::SingleMulticast { dests: 4, len: 64 };
//! let line = format!(r#"{{"op":"run","spec":{}}}"#, spec.to_json().to_string_compact());
//! core.handle_line(&mut session, &line);
//! let out = core.step().unwrap();
//! assert!(out.lines[0].contains(r#""artifact":"miss""#));
//! // Same prefix again: the environment comes from the cache.
//! core.handle_line(&mut session, &line);
//! assert!(core.step().unwrap().lines[0].contains(r#""artifact":"hit""#));
//! ```

pub mod cache;
pub mod core;
pub mod daemon;
pub mod error;
pub mod protocol;

pub use crate::core::{ServeConfig, ServeCore, Session, StepOutput};
pub use cache::{ArtifactCache, CacheConfig, CacheStats};
pub use daemon::Daemon;
pub use error::ServeError;
