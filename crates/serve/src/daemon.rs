//! The threaded transport around [`ServeCore`].
//!
//! One worker thread executes queued jobs; one reader thread per
//! attached connection feeds request lines in. All state transitions
//! and all socket writes happen under the single state lock, which
//! makes the cursor stream race-free by construction: a result is
//! appended to the client's backlog and written to its live connection
//! atomically, so a concurrent reconnect-with-replay can neither miss
//! it nor see it twice.
//!
//! Connections are transports, clients are identities: a client that
//! drops mid-stream loses nothing (unwritable lines stay retained) and
//! re-attaches with `hello {resume_from}` on a new connection.

use crate::core::{ServeCore, Session};
use crate::error::ServeError;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

struct Shared {
    core: ServeCore,
    writers: HashMap<String, SharedWriter>,
    /// Worker exit status once it drained and persisted.
    finished: Option<Result<(), String>>,
}

struct Inner {
    state: Mutex<Shared>,
    work: Condvar,
}

/// A running scenario-service daemon.
pub struct Daemon {
    inner: Arc<Inner>,
    worker: Option<JoinHandle<()>>,
}

impl Daemon {
    /// Starts the worker thread around `core` (cold or manifest-warmed).
    pub fn start(core: ServeCore) -> Self {
        let inner = Arc::new(Inner {
            state: Mutex::new(Shared {
                core,
                writers: HashMap::new(),
                finished: None,
            }),
            work: Condvar::new(),
        });
        let worker = {
            let inner = Arc::clone(&inner);
            std::thread::spawn(move || worker_loop(&inner))
        };
        Daemon {
            inner,
            worker: Some(worker),
        }
    }

    /// Attaches one connection: spawns a reader thread that feeds lines
    /// into the core and writes responses back. The thread exits on EOF
    /// or read error; the daemon itself keeps running.
    pub fn attach<R, W>(&self, reader: R, writer: W) -> JoinHandle<()>
    where
        R: Read + Send + 'static,
        W: Write + Send + 'static,
    {
        let inner = Arc::clone(&self.inner);
        std::thread::spawn(move || {
            let shared: SharedWriter = Arc::new(Mutex::new(Box::new(writer)));
            let mut session = Session::new();
            let mut registered: Option<String> = None;
            for line in BufReader::new(reader).lines() {
                let Ok(line) = line else { break };
                if line.trim().is_empty() {
                    continue;
                }
                let Ok(mut st) = inner.state.lock() else {
                    break;
                };
                let responses = st.core.handle_line(&mut session, &line);
                // First successful hello on this connection routes the
                // client's live result stream here.
                if let Some(client) = session.client() {
                    if registered.as_deref() != Some(client) {
                        registered = Some(client.to_string());
                        st.writers.insert(client.to_string(), Arc::clone(&shared));
                    }
                }
                let ok = {
                    let Ok(mut w) = shared.lock() else { break };
                    write_lines(&mut **w, &responses)
                };
                if !ok {
                    // The connection died mid-response; stop routing
                    // live results at it.
                    if let Some(client) = &registered {
                        st.writers.remove(client);
                    }
                    break;
                }
                drop(st);
                inner.work.notify_all();
            }
        })
    }

    /// Requests a drain-and-exit, exactly as a client `shutdown` op
    /// would (used by the binary when stdin reaches EOF).
    pub fn request_shutdown(&self) {
        let mut session = Session::new();
        if let Ok(mut st) = self.inner.state.lock() {
            st.core.handle_line(&mut session, r#"{"op":"shutdown"}"#);
        }
        self.inner.work.notify_all();
    }

    /// True once the worker has drained the queue after a shutdown
    /// request and persisted the manifest (accept loops poll this).
    pub fn is_finished(&self) -> bool {
        self.inner
            .state
            .lock()
            .map(|st| st.finished.is_some())
            .unwrap_or(true)
    }

    /// Waits for the worker to drain the queue and persist the cache
    /// manifest. Returns the persist outcome.
    pub fn join(mut self) -> Result<(), ServeError> {
        if let Some(h) = self.worker.take() {
            let _ = h.join();
        }
        let st = self.inner.state.lock().map_err(|_| ServeError::Io {
            detail: "daemon state poisoned".into(),
        })?;
        match &st.finished {
            Some(Ok(())) => Ok(()),
            Some(Err(detail)) => Err(ServeError::Io {
                detail: detail.clone(),
            }),
            None => Err(ServeError::Io {
                detail: "worker exited without finishing".into(),
            }),
        }
    }
}

fn write_lines(w: &mut dyn Write, lines: &[String]) -> bool {
    for l in lines {
        if writeln!(w, "{l}").is_err() {
            return false;
        }
    }
    w.flush().is_ok()
}

fn worker_loop(inner: &Inner) {
    let Ok(mut st) = inner.state.lock() else {
        return;
    };
    loop {
        while !st.core.has_work() {
            if st.core.draining() {
                let res = st.core.persist().map_err(|e| e.to_string());
                st.finished = Some(res);
                inner.work.notify_all();
                return;
            }
            st = match inner.work.wait(st) {
                Ok(g) => g,
                Err(_) => return,
            };
        }
        // Execute under the lock: simulation time is the product here,
        // and holding the lock keeps append-to-backlog + live-write
        // atomic against reconnect replays.
        if let Some(out) = st.core.step() {
            if let Some(w) = st.writers.get(&out.client).map(Arc::clone) {
                let ok = match w.lock() {
                    Ok(mut w) => write_lines(&mut **w, &out.lines),
                    Err(_) => false,
                };
                if !ok {
                    st.writers.remove(&out.client);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::core::ServeConfig;
    use spam_scenario::ScenarioSpec;
    use std::os::unix::net::UnixStream;

    #[test]
    fn daemon_streams_results_over_a_socketpair() {
        let daemon = Daemon::start(ServeCore::new(ServeConfig::default()));
        let (client, server) = UnixStream::pair().unwrap();
        daemon.attach(server.try_clone().unwrap(), server);

        let mut spec = ScenarioSpec::example("daemon-smoke");
        spec.topology.switches = 16;
        spec.traffic = spam_scenario::TrafficSpec::SingleMulticast { dests: 4, len: 64 };
        spec.replications = 1;
        let mut tx = client.try_clone().unwrap();
        writeln!(tx, r#"{{"op":"hello","client":"c1"}}"#).unwrap();
        writeln!(
            tx,
            r#"{{"op":"run","spec":{}}}"#,
            spec.to_json().to_string_compact()
        )
        .unwrap();

        let mut lines = BufReader::new(client).lines();
        let hello = lines.next().unwrap().unwrap();
        assert!(hello.contains("\"hello\""), "{hello}");
        let queued = lines.next().unwrap().unwrap();
        assert!(queued.contains("\"queued\""), "{queued}");
        let result = lines.next().unwrap().unwrap();
        assert!(result.contains("\"result\""), "{result}");
        assert!(result.contains("\"cursor\":1"), "{result}");

        writeln!(tx, r#"{{"op":"shutdown"}}"#).unwrap();
        drop(tx);
        daemon.join().unwrap();
    }
}
