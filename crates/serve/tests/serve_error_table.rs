//! The error table: one concrete trigger per [`ServeError`] variant,
//! exercised through the public request path. The match below is
//! exhaustive on purpose — adding a variant without extending this
//! table is a compile error, and every trigger must come back as a
//! typed JSONL error line (never a panic, never a dropped connection).

use spam_scenario::json::{parse, Json};
use spam_scenario::ScenarioSpec;
use spam_serve::{ArtifactCache, CacheConfig, ServeConfig, ServeCore, ServeError, Session};

fn spec(name: &str) -> ScenarioSpec {
    let mut s = ScenarioSpec::example(name);
    s.topology.switches = 16;
    s.traffic = spam_scenario::TrafficSpec::SingleMulticast { dests: 4, len: 64 };
    s
}

fn run_line(s: &ScenarioSpec) -> String {
    format!(
        r#"{{"op":"run","spec":{}}}"#,
        s.to_json().to_string_compact()
    )
}

/// Sends `line` to a greeted core and returns the typed error variant
/// from the response.
fn error_variant_of(core: &mut ServeCore, session: &mut Session, line: &str) -> String {
    let resp = core.handle_line(session, line);
    assert_eq!(resp.len(), 1, "errors are single lines: {resp:?}");
    let doc = parse(&resp[0]).expect("error lines are valid JSON");
    assert_eq!(doc.get("type").and_then(Json::as_str), Some("error"));
    assert!(
        doc.get("detail").and_then(Json::as_str).is_some(),
        "error lines carry a human-readable detail"
    );
    doc.get("error")
        .and_then(Json::as_str)
        .expect("error lines carry the variant tag")
        .to_string()
}

#[test]
fn every_variant_has_a_concrete_trigger() {
    // Exhaustiveness guard: extending ServeError forces a new row here.
    let probe = ServeError::Protocol {
        detail: String::new(),
    };
    match probe {
        ServeError::Protocol { .. }
        | ServeError::UnknownOp { .. }
        | ServeError::MissingField { .. }
        | ServeError::Spec(_)
        | ServeError::QueueFull { .. }
        | ServeError::UnknownCursor { .. }
        | ServeError::CachePoisoned { .. }
        | ServeError::Io { .. } => {}
    }

    let mut core = ServeCore::new(ServeConfig {
        queue_capacity: 1,
        ..ServeConfig::default()
    });
    let mut session = Session::new();

    // Protocol: not JSON at all (plus: run before hello, below).
    assert_eq!(
        error_variant_of(&mut core, &mut session, "}{ definitely not json"),
        "Protocol"
    );
    // Protocol: JSON but not an object.
    assert_eq!(
        error_variant_of(&mut core, &mut session, "[1,2,3]"),
        "Protocol"
    );
    // Protocol: op exists but a field has the wrong type.
    assert_eq!(
        error_variant_of(&mut core, &mut session, r#"{"op":"hello","client":42}"#),
        "Protocol"
    );
    // Protocol: run without a hello (no client identity, no cursors).
    assert_eq!(
        error_variant_of(&mut core, &mut session, &run_line(&spec("early"))),
        "Protocol"
    );

    // MissingField: no op at all.
    assert_eq!(
        error_variant_of(&mut core, &mut session, r#"{"client":"c1"}"#),
        "MissingField"
    );
    // UnknownOp.
    assert_eq!(
        error_variant_of(&mut core, &mut session, r#"{"op":"frobnicate"}"#),
        "UnknownOp"
    );

    // UnknownCursor: a fresh client cannot resume from the future.
    assert_eq!(
        error_variant_of(
            &mut core,
            &mut session,
            r#"{"op":"hello","client":"c1","resume_from":9}"#
        ),
        "UnknownCursor"
    );

    // Greet properly; the remaining rows need an identity.
    let hello = core.handle_line(&mut session, r#"{"op":"hello","client":"c1"}"#);
    assert!(hello[0].contains("\"type\":\"hello\""));

    // Spec: a structurally broken scenario document.
    assert_eq!(
        error_variant_of(&mut core, &mut session, r#"{"op":"run","spec":{"name":1}}"#),
        "Spec"
    );
    // Spec: decodes but fails semantic validation.
    let mut bad = spec("invalid");
    bad.topology.switches = 1;
    assert_eq!(
        error_variant_of(&mut core, &mut session, &run_line(&bad)),
        "Spec"
    );

    // QueueFull: capacity 1, second enqueue bounces — and carries the
    // typed backpressure fields.
    let ok = core.handle_line(&mut session, &run_line(&spec("fills")));
    assert!(ok[0].contains("\"queued\""));
    let resp = core.handle_line(&mut session, &run_line(&spec("bounces")));
    let doc = parse(&resp[0]).expect("valid JSON");
    assert_eq!(doc.get("error").and_then(Json::as_str), Some("QueueFull"));
    assert_eq!(doc.get("retry").and_then(Json::as_bool), Some(true));

    // UnknownCursor again, via ack: nothing produced yet, so cursor 1
    // does not exist.
    assert_eq!(
        error_variant_of(&mut core, &mut session, r#"{"op":"ack","cursor":1}"#),
        "UnknownCursor"
    );

    // CachePoisoned: a manifest whose trailing checksum was flipped.
    let mut donor = ArtifactCache::new(CacheConfig::default());
    donor.lookup(&spec("donor"), 0).expect("donor builds");
    let mut bytes = donor.manifest_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xff;
    let poisoned = ArtifactCache::from_manifest_bytes(&bytes, CacheConfig::default())
        .map(|_| ())
        .expect_err("corrupt manifest must not load");
    assert_eq!(poisoned.variant_name(), "CachePoisoned");

    // CachePoisoned: a bit flip in the body (the container checksum or
    // header validation catches it before any prefix is trusted).
    let mut bytes = donor.manifest_bytes();
    bytes[13] ^= 0x01;
    assert_eq!(
        ArtifactCache::from_manifest_bytes(&bytes, CacheConfig::default())
            .map(|_| ())
            .expect_err("tampered manifest must not load")
            .variant_name(),
        "CachePoisoned"
    );

    // CachePoisoned: a *valid* container whose stored fingerprint lies
    // about its prefix — the semantic check, past the checksum. Built
    // with the snapshot writer against the pinned manifest layout
    // (index section 0x56430001, entry sections 0x56430002).
    let prefix_json = spam_scenario::ArtifactPrefix::of(&spec("liar"), 0).canonical_json();
    let mut w = spam_snapshot::SnapWriter::new();
    w.begin();
    let patch = w.begin_section(0x5643_0001);
    w.put_len(1);
    w.end_section(patch);
    let patch = w.begin_section(0x5643_0002);
    w.put_u64(0xbad0_bad0_bad0_bad0); // not the prefix's fingerprint
    w.put_str(&prefix_json);
    w.end_section(patch);
    let lying = w.seal().to_vec();
    let err = ArtifactCache::from_manifest_bytes(&lying, CacheConfig::default())
        .map(|_| ())
        .expect_err("fingerprint/prefix mismatch must not load");
    assert_eq!(err.variant_name(), "CachePoisoned");
    assert!(err.to_string().contains("does not match"), "{err}");

    // Io: a manifest path that does not exist.
    let missing = std::path::Path::new("/nonexistent/spam-serve-manifest.snap");
    assert_eq!(
        ArtifactCache::load_manifest(missing, CacheConfig::default())
            .map(|_| ())
            .expect_err("missing manifest is an I/O error")
            .variant_name(),
        "Io"
    );
}

/// A small malformed-input corpus: nothing here may panic, and every
/// response must be a parseable error line.
#[test]
fn malformed_lines_never_panic() {
    let mut core = ServeCore::new(ServeConfig::default());
    let mut session = Session::new();
    let corpus = [
        "",
        "   ",
        "\u{0}",
        "{",
        "}",
        "null",
        "true",
        "123",
        "\"op\"",
        r#"{"op":null}"#,
        r#"{"op":7}"#,
        r#"{"op":"run","spec":null}"#,
        r#"{"op":"run","spec":[]}"#,
        r#"{"op":"hello","client":""}"#,
        r#"{"op":"hello","resume_from":-1}"#,
        r#"{"op":"ack","cursor":1.5}"#,
        r#"{"op":"ack","cursor":18446744073709551616}"#,
    ];
    for line in corpus {
        let resp = core.handle_line(&mut session, line);
        for l in &resp {
            let doc = parse(l).unwrap_or_else(|e| panic!("unparseable response to {line:?}: {e}"));
            assert!(doc.get("type").is_some(), "untyped response to {line:?}");
        }
    }
}
