//! Reconnect/resume contract over a live daemon.
//!
//! A client consumes part of its result stream over a unix socketpair,
//! then its connection dies without acking. It reconnects with
//! `hello {resume_from: <last cursor it saw>}` and reads the rest. The
//! concatenation of the two partial streams must equal — byte for byte
//! — the stream an uninterrupted client of a fresh daemon receives for
//! the same requests: no gaps, no duplicates, identical cursors,
//! digests, and cache counters. This holds because cursor assignment,
//! backlog retention, and the live write happen atomically under the
//! daemon's state lock.

use spam_scenario::ScenarioSpec;
use spam_serve::{Daemon, ServeConfig, ServeCore};
use std::io::{BufRead, BufReader, Lines, Write};
use std::os::unix::net::UnixStream;

fn spec(name: &str, seed: u64, reps: u32) -> ScenarioSpec {
    let mut s = ScenarioSpec::example(name);
    s.topology.switches = 16;
    s.topology.seed = seed;
    s.traffic = spam_scenario::TrafficSpec::SingleMulticast { dests: 4, len: 64 };
    s.replications = reps;
    s
}

/// The two jobs every scenario below submits: 3 + 3 = 6 result lines.
fn requests() -> Vec<String> {
    vec![
        format!(
            r#"{{"op":"run","spec":{}}}"#,
            spec("resume-a", 11, 3).to_json().to_string_compact()
        ),
        format!(
            r#"{{"op":"run","spec":{}}}"#,
            spec("resume-b", 12, 3).to_json().to_string_compact()
        ),
    ]
}

fn connect(daemon: &Daemon) -> (UnixStream, Lines<BufReader<UnixStream>>) {
    let (client, server) = UnixStream::pair().expect("socketpair");
    daemon.attach(server.try_clone().expect("server read half"), server);
    let tx = client.try_clone().expect("client write half");
    (tx, BufReader::new(client).lines())
}

fn cursor_of(line: &str) -> u64 {
    let doc = spam_scenario::json::parse(line).expect("valid JSON line");
    doc.get("cursor")
        .and_then(|v| v.as_num()?.as_u64())
        .expect("cursor field")
}

/// Reads result lines until `want` of them have arrived.
fn read_results(lines: &mut Lines<BufReader<UnixStream>>, want: usize) -> Vec<String> {
    let mut out = Vec::new();
    while out.len() < want {
        let line = lines
            .next()
            .expect("stream stays open until satisfied")
            .expect("readable line");
        assert!(
            !line.contains("\"error\":"),
            "unexpected error line: {line}"
        );
        if line.contains("\"type\":\"result\"") {
            out.push(line);
        }
    }
    out
}

/// An uninterrupted client: submit everything, read all 6 results.
fn uninterrupted_stream() -> Vec<String> {
    let daemon = Daemon::start(ServeCore::new(ServeConfig::default()));
    let (mut tx, mut lines) = connect(&daemon);
    writeln!(tx, r#"{{"op":"hello","client":"c1"}}"#).unwrap();
    for r in requests() {
        writeln!(tx, "{r}").unwrap();
    }
    let results = read_results(&mut lines, 6);
    writeln!(tx, r#"{{"op":"shutdown"}}"#).unwrap();
    daemon.join().unwrap();
    results
}

#[test]
fn interrupted_plus_resumed_stream_equals_uninterrupted() {
    let reference = uninterrupted_stream();
    assert_eq!(
        reference.iter().map(|l| cursor_of(l)).collect::<Vec<_>>(),
        (1..=6).collect::<Vec<_>>(),
        "reference cursors are a gapless 1..=6"
    );

    // Interrupted run against a fresh daemon: same requests, but the
    // first connection dies after two results, unacked.
    let daemon = Daemon::start(ServeCore::new(ServeConfig::default()));
    let (mut tx, mut lines) = connect(&daemon);
    writeln!(tx, r#"{{"op":"hello","client":"c1"}}"#).unwrap();
    for r in requests() {
        writeln!(tx, "{r}").unwrap();
    }
    let head = read_results(&mut lines, 2);
    let last_seen = cursor_of(&head[1]);
    drop(tx);
    drop(lines); // connection gone: later results are retained, not delivered

    // Reconnect as the same logical client, resuming past what we saw.
    let (mut tx2, mut lines2) = connect(&daemon);
    writeln!(
        tx2,
        r#"{{"op":"hello","client":"c1","resume_from":{last_seen}}}"#
    )
    .unwrap();
    let hello = lines2.next().unwrap().unwrap();
    assert!(hello.contains("\"type\":\"hello\""), "{hello}");
    let tail = read_results(&mut lines2, 4);

    let combined: Vec<String> = head.into_iter().chain(tail).collect();
    assert_eq!(
        combined, reference,
        "concatenated interrupted stream must be byte-identical to the uninterrupted one"
    );

    // Ack everything, then confirm the backlog is really trimmed: a
    // resume from the acked watermark replays nothing.
    writeln!(tx2, r#"{{"op":"ack","cursor":6}}"#).unwrap();
    let acked = lines2.next().unwrap().unwrap();
    assert!(acked.contains("\"retained\":0"), "{acked}");
    let (mut tx3, mut lines3) = connect(&daemon);
    writeln!(tx3, r#"{{"op":"hello","client":"c1","resume_from":6}}"#).unwrap();
    let hello3 = lines3.next().unwrap().unwrap();
    assert!(hello3.contains("\"replayed\":0"), "{hello3}");

    writeln!(tx3, r#"{{"op":"shutdown"}}"#).unwrap();
    daemon.join().unwrap();
}
