//! Allocation discipline of the artifact-cache request path.
//!
//! Two pins, measured with a counting global allocator in a
//! single-threaded `harness = false` process (the libtest harness runs
//! tests on spawned threads and allocates on its own schedule, which
//! would blur exact counts):
//!
//! 1. **Hit lookups are allocation-free.** The steady state of a warm
//!    daemon is fingerprint → probe → verify prefix → bump LRU → clone
//!    `Arc`; none of it may touch the heap.
//! 2. **Insert/evict churn is reproducible.** The miss path necessarily
//!    allocates (it builds artifacts), so the pin is exact equality of
//!    allocation counts across two identical churn rounds — any drift
//!    would mean hidden state growing per round (leaked map capacity,
//!    log growth) inside the cache.

use spam_serve::{ArtifactCache, CacheConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pass-through to `System`; the counter is a side effect.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn count<R>(f: impl FnOnce() -> R) -> (R, u64) {
    let before = ALLOCS.load(Ordering::Relaxed);
    let r = f();
    (r, ALLOCS.load(Ordering::Relaxed) - before)
}

fn spec(seed: u64) -> spam_scenario::ScenarioSpec {
    let mut s = spam_scenario::ScenarioSpec::example("alloc-guard");
    s.topology.switches = 16;
    s.topology.seed = seed;
    s.traffic = spam_scenario::TrafficSpec::SingleMulticast { dests: 4, len: 64 };
    s
}

fn hit_lookups_are_allocation_free() {
    let mut cache = ArtifactCache::new(CacheConfig::default());
    let specs: Vec<_> = (0..4).map(spec).collect();
    for s in &specs {
        cache.lookup(s, 0).unwrap();
    }
    // Drop the Arc inside `count` too: a hit must not allocate even
    // including the handle's lifecycle.
    for s in &specs {
        let ((), n) = count(|| {
            let (arts, hit) = cache.lookup(s, 0).unwrap();
            assert!(hit);
            drop(arts);
        });
        assert_eq!(n, 0, "cache hit allocated {n} times");
    }
    assert_eq!(cache.stats().hits, 4);
    println!("ok - hit lookups are allocation-free");
}

fn churn_allocation_counts_are_reproducible() {
    // Budget of 2 entries, rotating 4 prefixes: every round is pure
    // insert+evict churn with zero hits.
    let mut cache = ArtifactCache::new(CacheConfig {
        max_entries: 2,
        max_bytes: usize::MAX,
    });
    let specs: Vec<_> = (0..4).map(spec).collect();
    let round = |cache: &mut ArtifactCache| {
        for s in &specs {
            let (_, hit) = cache.lookup(s, 0).unwrap();
            assert!(!hit, "rotation wider than the budget can never hit");
        }
    };
    // Warm-up round lets the map reach steady capacity.
    round(&mut cache);
    let ((), first) = count(|| round(&mut cache));
    let ((), second) = count(|| round(&mut cache));
    assert_eq!(
        first, second,
        "insert/evict churn drifted: {first} vs {second} allocations"
    );
    assert!(
        first > 0,
        "the miss path builds artifacts and must allocate"
    );
    assert_eq!(cache.stats().evictions, 4 * 3 - 2);
    println!("ok - churn allocation counts are reproducible ({first}/round)");
}

fn main() {
    hit_lookups_are_allocation_free();
    churn_allocation_counts_are_reproducible();
    println!("cache_zero_alloc: all pins held");
}
