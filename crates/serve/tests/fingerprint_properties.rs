//! Properties of the content-address: the fingerprint must partition
//! specs exactly by their artifact prefix (topology + faults +
//! replication index) — nothing more, nothing less.
//!
//! * **Insensitive** to everything downstream of the prefix: traffic,
//!   the traffic seed, replication *count*, routing, engine knobs, and
//!   the name share a key, so a sweep over them reuses one artifact.
//! * **Sensitive** to every prefix field: the randomized walk below
//!   drives [`spam_scenario::mutate_spec`] across the whole mutation
//!   palette and checks, for each mutant, that fingerprint equality is
//!   *equivalent* to prefix equality. (Equivalence, not per-axis
//!   classification: a palette draw can re-pick the current value, and
//!   the "seed" axis sometimes lands on the topology seed — only the
//!   resulting prefix says whether the key may change.)

use rand::rngs::StdRng;
use rand::SeedableRng;
use spam_scenario::{
    mutate_spec, spec_fingerprint, ArtifactPrefix, EngineSpec, FaultModelSpec, FaultsSpec,
    PolicySpec, RoutingSpec, ScenarioSpec, TrafficSpec,
};

fn base_spec() -> ScenarioSpec {
    let mut s = ScenarioSpec::example("fingerprint-base");
    s.topology.switches = 24;
    s.topology.seed = 9;
    s.traffic = TrafficSpec::SingleMulticast { dests: 4, len: 64 };
    s.replications = 2;
    s
}

#[test]
fn non_prefix_axes_share_a_key() {
    let base = base_spec();
    let key = spec_fingerprint(&base, 0);
    let mut variants = Vec::new();

    let mut v = base.clone();
    v.name = "renamed".into();
    v.description = "other words".into();
    variants.push(("name/description", v));

    let mut v = base.clone();
    v.seed ^= 0x5eed;
    variants.push(("traffic seed", v));

    let mut v = base.clone();
    v.traffic = TrafficSpec::SingleMulticast { dests: 6, len: 256 };
    variants.push(("traffic model", v));

    let mut v = base.clone();
    v.replications = 7;
    variants.push(("replication count", v));

    let mut v = base.clone();
    v.routing = RoutingSpec::Spam {
        policy: PolicySpec::FirstLegal,
    };
    variants.push(("routing policy", v));

    let mut v = base.clone();
    v.engine = EngineSpec {
        input_buffer_flits: 4,
        ..base.engine
    };
    variants.push(("engine buffers", v));

    let mut v = base.clone();
    v.horizon_us = Some(50_000);
    variants.push(("horizon", v));

    for (what, v) in variants {
        assert_eq!(
            spec_fingerprint(&v, 0),
            key,
            "{what} must not change the artifact key"
        );
        assert!(
            ArtifactPrefix::of(&base, 0).matches(&v, 0),
            "{what} must not change the prefix"
        );
    }
}

#[test]
fn prefix_fields_each_change_the_key() {
    let base = base_spec();
    let key = spec_fingerprint(&base, 0);

    let mut v = base.clone();
    v.topology.switches += 8;
    assert_ne!(spec_fingerprint(&v, 0), key, "switch count");

    let mut v = base.clone();
    v.topology.seed ^= 1;
    assert_ne!(spec_fingerprint(&v, 0), key, "topology seed");

    let mut v = base.clone();
    v.topology.side = Some(9);
    assert_ne!(spec_fingerprint(&v, 0), key, "lattice side");

    let mut v = base.clone();
    v.topology.ports += 1;
    assert_ne!(spec_fingerprint(&v, 0), key, "ports per switch");

    let mut v = base.clone();
    v.faults = FaultsSpec::Static {
        model: FaultModelSpec::IidLinks { rate: 0.05 },
        seed: 3,
    };
    assert_ne!(spec_fingerprint(&v, 0), key, "fault plan");

    // The replication index is part of the address: each rep samples
    // its own topology/fault streams.
    assert_ne!(spec_fingerprint(&base, 1), key, "replication index");
}

#[test]
fn fingerprint_equality_is_prefix_equality_under_mutation() {
    // PROPTEST_CASES-style budget: the walk restarts from the base spec
    // each round so mutants stay near the validated corpus shape.
    let rounds: u32 = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64);
    let base = base_spec();
    let mut rng = StdRng::seed_from_u64(0x5e21_f00d);
    let (mut same, mut diff) = (0u32, 0u32);
    for round in 0..rounds {
        let m = mutate_spec(&base, &mut rng);
        for rep in 0..2 {
            let equal_fp = spec_fingerprint(&m.spec, rep) == spec_fingerprint(&base, rep);
            let equal_prefix = ArtifactPrefix::of(&base, rep).matches(&m.spec, rep);
            assert_eq!(
                equal_fp, equal_prefix,
                "round {round} axis {}: fingerprint/prefix disagree (rep {rep})",
                m.axis
            );
            if equal_fp {
                same += 1;
            } else {
                diff += 1;
            }
        }
        // Round-tripping the mutant through canonical JSON preserves
        // its address exactly.
        let p = ArtifactPrefix::of(&m.spec, 0);
        let back = ArtifactPrefix::from_canonical_json(&p.canonical_json())
            .expect("canonical JSON round-trips");
        assert_eq!(back.fingerprint(), p.fingerprint(), "axis {}", m.axis);
    }
    // The mutation palette must have exercised both sides of the
    // equivalence, or the walk proves nothing.
    assert!(same > 0, "no mutation left the prefix intact");
    assert!(diff > 0, "no mutation changed the prefix");
}
