//! Interarrival-time processes.
//!
//! §4 drives the Figure 3 experiments with "a negative binomial
//! distribution with varying average arrival rates". The negative binomial
//! counts discrete slots (channel cycles here) between arrivals; with
//! dispersion `r = 1` it reduces to the geometric distribution — the
//! discrete memoryless process. Larger `r` gives smoother (less bursty)
//! arrivals at the same mean rate; the paper fixes only the mean, so the
//! dispersion is exposed as a knob (default 1).

use desim::Duration;
use rand::Rng;
use std::cell::Cell;

/// A stream of interarrival gaps.
pub trait ArrivalProcess {
    /// Draws the gap until the next arrival.
    fn next_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration;

    /// The configured mean gap.
    fn mean_gap(&self) -> Duration;
}

/// Constant-rate arrivals (useful for tests and worst-case bursts).
#[derive(Debug, Clone, Copy)]
pub struct Deterministic {
    /// The constant gap.
    pub gap: Duration,
}

impl ArrivalProcess for Deterministic {
    fn next_gap<R: Rng + ?Sized>(&self, _rng: &mut R) -> Duration {
        self.gap
    }

    fn mean_gap(&self) -> Duration {
        self.gap
    }
}

/// Poisson arrivals: exponentially distributed gaps.
#[derive(Debug, Clone, Copy)]
pub struct Poisson {
    mean_gap_ns: f64,
}

impl Poisson {
    /// Mean rate in messages per microsecond.
    pub fn with_rate_per_us(rate: f64) -> Self {
        assert!(rate > 0.0, "rate must be positive");
        Poisson {
            mean_gap_ns: 1_000.0 / rate,
        }
    }
}

impl ArrivalProcess for Poisson {
    fn next_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        // Inverse-CDF sampling; guard the open interval to avoid ln(0).
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        Duration::from_ns((-self.mean_gap_ns * u.ln()).round() as u64)
    }

    fn mean_gap(&self) -> Duration {
        Duration::from_ns(self.mean_gap_ns as u64)
    }
}

/// Negative binomial slot-count arrivals (§4's process).
///
/// The gap is `NB(r, p)` slots of `slot` duration each; the mean gap is
/// `r·(1−p)/p` slots. Parameterized by mean rate, the success probability
/// is solved as `p = r / (r + m)` where `m` is the mean gap in slots.
#[derive(Debug, Clone, Copy)]
pub struct NegativeBinomial {
    /// Dispersion (number of geometric components); `1` = geometric.
    pub r: u32,
    /// Success probability per slot.
    p: f64,
    /// Slot duration (the channel cycle, 10 ns, in the paper's setup).
    slot: Duration,
}

impl NegativeBinomial {
    /// Process with mean rate `rate` messages/µs, dispersion `r`, and the
    /// given slot duration.
    pub fn with_rate_per_us(rate: f64, r: u32, slot: Duration) -> Self {
        assert!(rate > 0.0 && r >= 1 && slot > Duration::ZERO);
        let mean_gap_ns = 1_000.0 / rate;
        let mean_slots = mean_gap_ns / slot.as_ns() as f64;
        assert!(mean_slots >= 1.0, "arrival rate too high for the slot size");
        NegativeBinomial {
            r,
            p: r as f64 / (r as f64 + mean_slots),
            slot,
        }
    }

    /// The paper's setting: 10 ns slots, geometric (r = 1).
    pub fn paper(rate_per_us: f64) -> Self {
        Self::with_rate_per_us(rate_per_us, 1, Duration::from_ns(10))
    }

    fn sample_geometric<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        // Failures before the first success, via inverse CDF.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        (u.ln() / (1.0 - self.p).ln()).floor() as u64
    }
}

impl ArrivalProcess for NegativeBinomial {
    fn next_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        let slots: u64 = (0..self.r).map(|_| self.sample_geometric(rng)).sum();
        self.slot.scaled(slots)
    }

    fn mean_gap(&self) -> Duration {
        let mean_slots = self.r as f64 * (1.0 - self.p) / self.p;
        Duration::from_ns((mean_slots * self.slot.as_ns() as f64) as u64)
    }
}

/// Draws an exponential duration with the given mean, in whole ns.
fn draw_exp_ns<R: Rng + ?Sized>(mean: Duration, rng: &mut R) -> u64 {
    if mean == Duration::ZERO {
        return 0;
    }
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    (-(mean.as_ns() as f64) * u.ln()).round() as u64
}

/// Sentinel: the ON-state budget has not been initialized yet.
const ONOFF_UNINIT: u64 = u64::MAX;

/// Two-state on/off modulation (an MMPP) wrapping any [`ArrivalProcess`].
///
/// While the source is ON, arrivals follow the inner process unchanged;
/// ON periods alternate with silent OFF periods, both exponentially
/// distributed. The result is the classic bursty-traffic model: trains of
/// arrivals at the inner rate separated by idle gaps, with squared
/// coefficient of variation well above the inner process's own.
///
/// Note the *in-burst* rate is the inner process's rate; the long-run
/// mean rate is scaled by the duty cycle `on / (on + off)`, which is what
/// [`OnOff::mean_gap`] reports.
#[derive(Debug, Clone)]
pub struct OnOff<P> {
    inner: P,
    mean_on: Duration,
    mean_off: Duration,
    /// Remaining ON-state budget in ns ([`ONOFF_UNINIT`] before the first
    /// draw). Interior mutability keeps the [`ArrivalProcess`] contract
    /// (`&self`) while the modulation state advances draw to draw.
    remaining_on_ns: Cell<u64>,
}

impl<P> OnOff<P> {
    /// Wraps `inner` with exponential ON/OFF periods of the given means.
    ///
    /// # Panics
    ///
    /// Panics if `mean_on` is zero (the source would never send). A zero
    /// `mean_off` is legal and reduces to the inner process.
    pub fn new(inner: P, mean_on: Duration, mean_off: Duration) -> Self {
        assert!(mean_on > Duration::ZERO, "mean ON period must be positive");
        OnOff {
            inner,
            mean_on,
            mean_off,
            remaining_on_ns: Cell::new(ONOFF_UNINIT),
        }
    }
}

impl<P: ArrivalProcess> ArrivalProcess for OnOff<P> {
    fn next_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        let mut rem = self.remaining_on_ns.get();
        if rem == ONOFF_UNINIT {
            // The source starts ON (first burst underway at time zero).
            rem = draw_exp_ns(self.mean_on, rng).max(1);
        }
        let on_gap = self.inner.next_gap(rng).as_ns();
        // Walk the gap through the ON budget; every exhaustion inserts one
        // OFF period and a fresh ON period.
        let mut left = on_gap;
        let mut off_total = 0u64;
        while left > rem {
            left -= rem;
            off_total += draw_exp_ns(self.mean_off, rng);
            rem = draw_exp_ns(self.mean_on, rng).max(1);
        }
        rem -= left;
        self.remaining_on_ns.set(rem);
        Duration::from_ns(on_gap + off_total)
    }

    fn mean_gap(&self) -> Duration {
        let duty =
            self.mean_on.as_ns() as f64 / (self.mean_on.as_ns() + self.mean_off.as_ns()) as f64;
        Duration::from_ns((self.inner.mean_gap().as_ns() as f64 / duty) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn empirical_mean<P: ArrivalProcess>(p: &P, n: usize, seed: u64) -> f64 {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| p.next_gap(&mut rng).as_ns() as f64)
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Deterministic {
            gap: Duration::from_us(3),
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(d.next_gap(&mut rng), Duration::from_us(3));
        }
        assert_eq!(d.mean_gap(), Duration::from_us(3));
    }

    #[test]
    fn poisson_mean_matches_rate() {
        // rate 0.02 /µs -> mean gap 50_000 ns.
        let p = Poisson::with_rate_per_us(0.02);
        let m = empirical_mean(&p, 60_000, 42);
        assert!(
            (m - 50_000.0).abs() < 1_500.0,
            "poisson mean {m} far from 50_000"
        );
    }

    #[test]
    fn negative_binomial_mean_matches_rate() {
        for r in [1u32, 3, 8] {
            let p = NegativeBinomial::with_rate_per_us(0.02, r, Duration::from_ns(10));
            let m = empirical_mean(&p, 60_000, 7 + r as u64);
            assert!(
                (m - 50_000.0).abs() < 2_000.0,
                "NB(r={r}) mean {m} far from 50_000"
            );
            // Configured mean agrees too.
            let cfg = p.mean_gap().as_ns() as f64;
            assert!((cfg - 50_000.0).abs() < 200.0, "configured mean {cfg}");
        }
    }

    #[test]
    fn higher_dispersion_reduces_variance() {
        let sample_var = |r: u32| {
            let p = NegativeBinomial::with_rate_per_us(0.02, r, Duration::from_ns(10));
            let mut rng = rand::rngs::StdRng::seed_from_u64(99);
            let xs: Vec<f64> = (0..40_000)
                .map(|_| p.next_gap(&mut rng).as_ns() as f64)
                .collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64
        };
        assert!(
            sample_var(8) < sample_var(1) * 0.5,
            "r=8 should be much smoother than geometric"
        );
    }

    #[test]
    fn paper_process_is_geometric_10ns_slots() {
        let p = NegativeBinomial::paper(0.01);
        assert_eq!(p.r, 1);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        // Gaps are multiples of the 10 ns slot.
        for _ in 0..100 {
            assert_eq!(p.next_gap(&mut rng).as_ns() % 10, 0);
        }
    }

    #[test]
    #[should_panic(expected = "too high")]
    fn impossible_rate_rejected() {
        // Mean gap below one slot cannot be represented.
        NegativeBinomial::with_rate_per_us(200.0, 1, Duration::from_ns(10));
    }

    #[test]
    fn onoff_duty_cycle_scales_the_mean() {
        // 50% duty cycle: long-run rate halves, so the mean gap doubles.
        let inner = Poisson::with_rate_per_us(0.02);
        let p = OnOff::new(inner, Duration::from_us(200), Duration::from_us(200));
        assert_eq!(p.mean_gap(), Duration::from_ns(100_000));
        let m = empirical_mean(&p, 60_000, 17);
        assert!(
            (m - 100_000.0).abs() < 5_000.0,
            "on/off mean {m} far from 100_000"
        );
    }

    #[test]
    fn onoff_is_burstier_than_its_inner_process() {
        let var = |mk: &dyn Fn() -> Box<dyn Fn(&mut rand::rngs::StdRng) -> f64>| {
            let f = mk();
            let mut rng = rand::rngs::StdRng::seed_from_u64(55);
            let xs: Vec<f64> = (0..40_000).map(|_| f(&mut rng)).collect();
            let mean = xs.iter().sum::<f64>() / xs.len() as f64;
            let v = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
            v / (mean * mean) // squared coefficient of variation
        };
        let plain = var(&|| {
            let p = Poisson::with_rate_per_us(0.02);
            Box::new(move |rng| p.next_gap(rng).as_ns() as f64)
        });
        let bursty = var(&|| {
            let p = OnOff::new(
                Poisson::with_rate_per_us(0.02),
                Duration::from_us(150),
                Duration::from_us(450),
            );
            Box::new(move |rng| p.next_gap(rng).as_ns() as f64)
        });
        assert!(
            bursty > plain * 1.5,
            "on/off CV² {bursty} not above inner CV² {plain}"
        );
    }

    #[test]
    fn onoff_zero_off_reduces_to_inner() {
        let p = OnOff::new(
            Deterministic {
                gap: Duration::from_us(2),
            },
            Duration::from_us(100),
            Duration::ZERO,
        );
        assert_eq!(p.mean_gap(), Duration::from_us(2));
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        for _ in 0..50 {
            assert_eq!(p.next_gap(&mut rng), Duration::from_us(2));
        }
    }

    #[test]
    #[should_panic(expected = "ON period")]
    fn onoff_rejects_zero_on_period() {
        OnOff::new(
            Poisson::with_rate_per_us(0.01),
            Duration::ZERO,
            Duration::from_us(1),
        );
    }
}
