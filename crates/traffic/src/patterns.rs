//! Workloads beyond the paper's two: hotspot concentration, lattice
//! coordinate permutations, client–server incast, and the broadcast
//! storm. Each is a pure function of `(topology, population, seed)` and
//! returns a time-sorted, tag-numbered stream of [`MessageSpec`]s, like
//! [`crate::MixedTrafficConfig`].

use crate::error::TrafficError;
use crate::workload::{rate_merged_stream, ArrivalKind};
use desim::Duration;
use netgraph::gen::lattice::LatticeLayout;
use netgraph::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wormsim::MessageSpec;

/// Hotspot traffic: every processor generates unicasts; a configurable
/// fraction of them aim at one of `hot_nodes` hot processors (the
/// lowest-id processors of the population — deterministic, so SPAM and
/// baseline arms contend for the same spots), the rest are uniform.
///
/// The classic saturation stressor: the links feeding the hot switches
/// serialize an outsized share of the offered load.
#[derive(Debug, Clone, Copy)]
pub struct HotspotConfig {
    /// Number of hot processors (≥ 1, at most the population size).
    pub hot_nodes: usize,
    /// Fraction of messages aimed at a hot processor, in `[0, 1]`.
    pub hot_fraction: f64,
    /// Mean arrival rate per node, messages/µs.
    pub rate_per_node_per_us: f64,
    /// Flits per message.
    pub message_len: u32,
    /// Total messages across all nodes.
    pub messages: usize,
    /// The arrival process.
    pub arrival: ArrivalKind,
}

impl HotspotConfig {
    /// Checks the configuration against a population of `available`
    /// processors.
    pub fn validate(&self, available: usize) -> Result<(), TrafficError> {
        if !(0.0..=1.0).contains(&self.hot_fraction) {
            return Err(TrafficError::BadFraction {
                what: "hot_fraction",
                value: self.hot_fraction,
            });
        }
        if available < 2 {
            return Err(TrafficError::TooFewSources {
                available,
                needed: 2,
            });
        }
        if self.hot_nodes == 0 || self.hot_nodes > available {
            return Err(TrafficError::NotEnoughProcessors {
                requested: self.hot_nodes,
                available,
            });
        }
        self.arrival.validate_rate(self.rate_per_node_per_us)
    }

    /// Generates the stream over every processor of the topology.
    pub fn generate(&self, topo: &Topology, seed: u64) -> Result<Vec<MessageSpec>, TrafficError> {
        let procs: Vec<NodeId> = topo.processors().collect();
        self.generate_within(topo, &procs, seed)
    }

    /// Generates the stream over the given processor population.
    pub fn generate_within(
        &self,
        _topo: &Topology,
        procs: &[NodeId],
        seed: u64,
    ) -> Result<Vec<MessageSpec>, TrafficError> {
        self.validate(procs.len())?;
        // Hot set: lowest ids of the population.
        let mut sorted: Vec<NodeId> = procs.to_vec();
        sorted.sort_unstable();
        let hot = &sorted[..self.hot_nodes];
        let hot_fraction = self.hot_fraction;
        let mut rng = StdRng::seed_from_u64(seed);
        rate_merged_stream(
            procs,
            self.messages,
            self.arrival,
            self.rate_per_node_per_us,
            self.message_len,
            &mut rng,
            |_, _, src, rng| {
                let candidates: &[NodeId] = if rng.gen_bool(hot_fraction) {
                    hot
                } else {
                    &sorted
                };
                // Uniform over candidates, skipping the source (when the
                // source is the only candidate — e.g. the lone hot node
                // sending hot traffic — fall back to the full population).
                let pick_excluding = |set: &[NodeId], rng: &mut StdRng| -> Option<NodeId> {
                    let n_other = set.iter().filter(|&&p| p != src).count();
                    if n_other == 0 {
                        return None;
                    }
                    let mut k = rng.gen_range(0..n_other);
                    for &p in set {
                        if p == src {
                            continue;
                        }
                        if k == 0 {
                            return Some(p);
                        }
                        k -= 1;
                    }
                    unreachable!("k < n_other")
                };
                // Config validation rejected populations of fewer than
                // two processors, so the all-processors fallback always
                // has a non-`src` pick.
                #[allow(clippy::expect_used)]
                let dest = pick_excluding(candidates, rng)
                    .or_else(|| pick_excluding(&sorted, rng))
                    .expect("population has >= 2 processors");
                Ok(vec![dest])
            },
        )
    }
}

/// The coordinate permutation a [`PermutationConfig`] applies on the
/// generator's integer lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PermutationPattern {
    /// `(row, col) → (col, row)`: matrix-transpose traffic, the classic
    /// adversary of dimension-ordered meshes.
    Transpose,
    /// `(row, col) → (side−1−row, side−1−col)`: on a `2^b`-sided lattice
    /// this is the per-bit complement of both coordinates; every message
    /// crosses the lattice center.
    BitComplement,
}

impl PermutationPattern {
    fn map(&self, side: usize, r: usize, c: usize) -> (usize, usize) {
        match self {
            PermutationPattern::Transpose => (c, r),
            PermutationPattern::BitComplement => (side - 1 - r, side - 1 - c),
        }
    }
}

/// Lattice-coordinate permutation traffic: every processor sends unicasts
/// to the processor whose switch sits at the permuted lattice coordinate
/// of its own switch.
///
/// The §4 networks are *irregular* — not every lattice cell is occupied —
/// so the permuted cell resolves to the nearest occupied switch of the
/// population (Manhattan distance, ties by switch id). Sources that map
/// to themselves stay silent, as in the classical permutation benchmarks.
#[derive(Debug, Clone, Copy)]
pub struct PermutationConfig {
    /// Which coordinate permutation.
    pub pattern: PermutationPattern,
    /// Mean arrival rate per node, messages/µs.
    pub rate_per_node_per_us: f64,
    /// Flits per message.
    pub message_len: u32,
    /// Messages each (non-silent) source sends.
    pub messages_per_node: usize,
    /// The arrival process.
    pub arrival: ArrivalKind,
}

impl PermutationConfig {
    /// Checks the configuration against a population of `available`
    /// processors.
    pub fn validate(&self, available: usize) -> Result<(), TrafficError> {
        if available < 2 {
            return Err(TrafficError::TooFewSources {
                available,
                needed: 2,
            });
        }
        if self.messages_per_node == 0 {
            return Err(TrafficError::ZeroDuration {
                what: "messages_per_node",
            });
        }
        self.arrival.validate_rate(self.rate_per_node_per_us)
    }

    /// The permutation itself: `dest[i]` is the partner of `procs[i]`
    /// (equal to `procs[i]` for self-maps, which stay silent).
    pub fn partners(
        &self,
        topo: &Topology,
        layout: &LatticeLayout,
        procs: &[NodeId],
    ) -> Vec<NodeId> {
        let cells: Vec<(usize, usize, NodeId)> = procs
            .iter()
            .map(|&p| {
                let s = topo.switch_of(p);
                let (r, c) = layout.position(s);
                (r, c, p)
            })
            .collect();
        procs
            .iter()
            .map(|&p| {
                let s = topo.switch_of(p);
                let (r, c) = layout.position(s);
                let (tr, tc) = self.pattern.map(layout.side, r, c);
                // Nearest occupied cell of the population; `cells` maps
                // the same processor list being iterated, so it is
                // non-empty here.
                #[allow(clippy::expect_used)]
                let (_, _, best) = cells
                    .iter()
                    .copied()
                    .min_by_key(|&(cr, cc, q)| (cr.abs_diff(tr) + cc.abs_diff(tc), q))
                    .expect("population not empty");
                best
            })
            .collect()
    }

    /// Generates the stream over every processor of the topology.
    pub fn generate(
        &self,
        topo: &Topology,
        layout: &LatticeLayout,
        seed: u64,
    ) -> Result<Vec<MessageSpec>, TrafficError> {
        let procs: Vec<NodeId> = topo.processors().collect();
        self.generate_within(topo, layout, &procs, seed)
    }

    /// Generates the stream over the given processor population.
    pub fn generate_within(
        &self,
        topo: &Topology,
        layout: &LatticeLayout,
        procs: &[NodeId],
        seed: u64,
    ) -> Result<Vec<MessageSpec>, TrafficError> {
        self.validate(procs.len())?;
        let partners = self.partners(topo, layout, procs);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut specs: Vec<MessageSpec> = Vec::new();
        for (i, (&src, &dst)) in procs.iter().zip(&partners).enumerate() {
            if src == dst {
                continue; // self-map: silent source
            }
            let g = self.arrival.generator(self.rate_per_node_per_us)?;
            let mut t = desim::Time::ZERO;
            for _ in 0..self.messages_per_node {
                t += g.next_gap(&mut rng);
                // Tag provisionally with the source index; re-tagged below.
                specs.push(
                    MessageSpec::unicast(src, dst, self.message_len)
                        .at(t)
                        .tag(i as u64),
                );
            }
        }
        // Deterministic global order: by time, then source index.
        specs.sort_by_key(|s| (s.gen_time, s.tag));
        for (i, s) in specs.iter_mut().enumerate() {
            s.tag = i as u64;
        }
        Ok(specs)
    }
}

/// Client–server incast: the `servers` lowest-id processors of the
/// population are servers; every other processor is a client streaming
/// unicasts to its (statically assigned, round-robin) server. The links
/// into the servers' switches become the bottleneck — the many-to-one
/// pattern behind datacenter incast collapse.
#[derive(Debug, Clone, Copy)]
pub struct IncastConfig {
    /// Number of servers (≥ 1; at least one client must remain).
    pub servers: usize,
    /// Mean arrival rate per *client*, messages/µs.
    pub rate_per_client_per_us: f64,
    /// Flits per message.
    pub message_len: u32,
    /// Total messages across all clients.
    pub messages: usize,
    /// The arrival process.
    pub arrival: ArrivalKind,
}

impl IncastConfig {
    /// Checks the configuration against a population of `available`
    /// processors.
    pub fn validate(&self, available: usize) -> Result<(), TrafficError> {
        if self.servers == 0 {
            return Err(TrafficError::NoDestinations);
        }
        if self.servers >= available {
            return Err(TrafficError::NotEnoughProcessors {
                requested: self.servers,
                available: available.saturating_sub(1),
            });
        }
        self.arrival.validate_rate(self.rate_per_client_per_us)
    }

    /// Generates the stream over every processor of the topology.
    pub fn generate(&self, topo: &Topology, seed: u64) -> Result<Vec<MessageSpec>, TrafficError> {
        let procs: Vec<NodeId> = topo.processors().collect();
        self.generate_within(topo, &procs, seed)
    }

    /// Generates the stream over the given processor population.
    pub fn generate_within(
        &self,
        _topo: &Topology,
        procs: &[NodeId],
        seed: u64,
    ) -> Result<Vec<MessageSpec>, TrafficError> {
        self.validate(procs.len())?;
        let mut sorted: Vec<NodeId> = procs.to_vec();
        sorted.sort_unstable();
        let (servers, clients) = sorted.split_at(self.servers);
        let mut rng = StdRng::seed_from_u64(seed);
        let servers: Vec<NodeId> = servers.to_vec();
        rate_merged_stream(
            clients,
            self.messages,
            self.arrival,
            self.rate_per_client_per_us,
            self.message_len,
            &mut rng,
            |_, client_idx, _, _| Ok(vec![servers[client_idx % servers.len()]]),
        )
    }
}

/// The broadcast storm: every processor of the population multicasts to
/// every other, all (near-)simultaneously — the worst case for channel
/// contention and the OCRQ machinery.
#[derive(Debug, Clone, Copy)]
pub struct BroadcastStormConfig {
    /// Flits per message.
    pub message_len: u32,
    /// Gap between consecutive sources' generation times (zero = all at
    /// the same instant).
    pub stagger: Duration,
}

impl BroadcastStormConfig {
    /// Generates the storm over every processor of the topology.
    pub fn generate(&self, topo: &Topology) -> Result<Vec<MessageSpec>, TrafficError> {
        let procs: Vec<NodeId> = topo.processors().collect();
        self.generate_within(topo, &procs)
    }

    /// Generates the storm over the given processor population.
    pub fn generate_within(
        &self,
        _topo: &Topology,
        procs: &[NodeId],
    ) -> Result<Vec<MessageSpec>, TrafficError> {
        if procs.len() < 2 {
            return Err(TrafficError::TooFewSources {
                available: procs.len(),
                needed: 2,
            });
        }
        let mut sorted: Vec<NodeId> = procs.to_vec();
        sorted.sort_unstable();
        Ok(sorted
            .iter()
            .enumerate()
            .map(|(i, &src)| {
                let dests: Vec<NodeId> = sorted.iter().copied().filter(|&p| p != src).collect();
                MessageSpec::multicast(src, dests, self.message_len)
                    .at(desim::Time::ZERO + self.stagger * i as u64)
                    .tag(i as u64)
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::gen::lattice::IrregularConfig;

    fn topo_with_layout() -> (Topology, LatticeLayout) {
        IrregularConfig::with_switches(32).generate_with_layout(1)
    }

    fn hotspot(messages: usize) -> HotspotConfig {
        HotspotConfig {
            hot_nodes: 2,
            hot_fraction: 0.7,
            rate_per_node_per_us: 0.02,
            message_len: 32,
            messages,
            arrival: ArrivalKind::NegativeBinomial { r: 1 },
        }
    }

    #[test]
    fn hotspot_concentrates_traffic() {
        let (t, _) = topo_with_layout();
        let specs = hotspot(3000).generate(&t, 5).unwrap();
        assert_eq!(specs.len(), 3000);
        let mut procs: Vec<NodeId> = t.processors().collect();
        procs.sort_unstable();
        let hot = &procs[..2];
        let to_hot =
            specs.iter().filter(|s| hot.contains(&s.dests[0])).count() as f64 / specs.len() as f64;
        // 70% aimed + a sliver of uniform traffic landing there anyway.
        assert!(
            (to_hot - 0.7).abs() < 0.05,
            "hot fraction {to_hot} far from 0.7"
        );
        for s in &specs {
            s.validate(&t).unwrap();
            assert!(s.is_unicast());
        }
    }

    #[test]
    fn hotspot_is_deterministic_and_validated() {
        let (t, _) = topo_with_layout();
        assert_eq!(
            hotspot(100).generate(&t, 9).unwrap(),
            hotspot(100).generate(&t, 9).unwrap()
        );
        let mut bad = hotspot(10);
        bad.hot_fraction = -0.1;
        assert!(matches!(
            bad.generate(&t, 0),
            Err(TrafficError::BadFraction { .. })
        ));
        bad = hotspot(10);
        bad.hot_nodes = 99;
        assert!(matches!(
            bad.generate(&t, 0),
            Err(TrafficError::NotEnoughProcessors { .. })
        ));
    }

    fn perm(pattern: PermutationPattern) -> PermutationConfig {
        PermutationConfig {
            pattern,
            rate_per_node_per_us: 0.02,
            message_len: 32,
            messages_per_node: 3,
            arrival: ArrivalKind::Deterministic,
        }
    }

    #[test]
    fn permutations_are_valid_streams() {
        let (t, layout) = topo_with_layout();
        for pattern in [
            PermutationPattern::Transpose,
            PermutationPattern::BitComplement,
        ] {
            let specs = perm(pattern).generate(&t, &layout, 3).unwrap();
            assert!(!specs.is_empty());
            for (i, s) in specs.iter().enumerate() {
                s.validate(&t).unwrap();
                assert!(s.is_unicast());
                assert_eq!(s.tag, i as u64);
            }
            for w in specs.windows(2) {
                assert!(w[0].gen_time <= w[1].gen_time);
            }
        }
    }

    #[test]
    fn transpose_partner_is_the_transposed_cell_when_occupied() {
        let (t, layout) = topo_with_layout();
        let procs: Vec<NodeId> = t.processors().collect();
        let cfg = perm(PermutationPattern::Transpose);
        let partners = cfg.partners(&t, &layout, &procs);
        for (&p, &q) in procs.iter().zip(&partners) {
            let (r, c) = layout.position(t.switch_of(p));
            let (qr, qc) = layout.position(t.switch_of(q));
            // If the exact transposed cell is occupied, it must be chosen.
            if let Some(&exact) = procs
                .iter()
                .find(|&&x| layout.position(t.switch_of(x)) == (c, r))
            {
                assert_eq!(q, exact);
            } else {
                // Otherwise the partner is at least lattice-close to it.
                assert!(qr.abs_diff(c) + qc.abs_diff(r) <= layout.side);
            }
        }
    }

    #[test]
    fn bit_complement_crosses_the_lattice() {
        let (t, layout) = topo_with_layout();
        let procs: Vec<NodeId> = t.processors().collect();
        let cfg = perm(PermutationPattern::BitComplement);
        let partners = cfg.partners(&t, &layout, &procs);
        let mut total_dist = 0usize;
        for (&p, &q) in procs.iter().zip(&partners) {
            let (r, c) = layout.position(t.switch_of(p));
            let (want_r, want_c) = (layout.side - 1 - r, layout.side - 1 - c);
            // If the complement cell is occupied, it must be chosen.
            if let Some(&exact) = procs
                .iter()
                .find(|&&x| layout.position(t.switch_of(x)) == (want_r, want_c))
            {
                assert_eq!(q, exact);
            }
            total_dist += layout.manhattan(t.switch_of(p), t.switch_of(q));
        }
        // Complement partners sit across the lattice: the mean partner
        // distance must be a sizable fraction of the lattice span.
        let mean = total_dist as f64 / procs.len() as f64;
        assert!(
            mean > layout.side as f64 * 0.5,
            "mean partner distance {mean} too small for side {}",
            layout.side
        );
    }

    fn incast(messages: usize) -> IncastConfig {
        IncastConfig {
            servers: 2,
            rate_per_client_per_us: 0.02,
            message_len: 32,
            messages,
            arrival: ArrivalKind::NegativeBinomial { r: 1 },
        }
    }

    #[test]
    fn incast_targets_only_servers() {
        let (t, _) = topo_with_layout();
        let specs = incast(500).generate(&t, 7).unwrap();
        assert_eq!(specs.len(), 500);
        let mut procs: Vec<NodeId> = t.processors().collect();
        procs.sort_unstable();
        let servers = &procs[..2];
        for s in &specs {
            s.validate(&t).unwrap();
            assert!(servers.contains(&s.dests[0]), "{} not a server", s.dests[0]);
            assert!(!servers.contains(&s.src), "servers don't send");
        }
        // Both servers receive traffic.
        for srv in servers {
            assert!(specs.iter().any(|s| s.dests[0] == *srv));
        }
    }

    #[test]
    fn incast_rejects_all_server_populations() {
        let (t, _) = topo_with_layout();
        let mut cfg = incast(10);
        cfg.servers = t.num_processors();
        assert!(matches!(
            cfg.generate(&t, 0),
            Err(TrafficError::NotEnoughProcessors { .. })
        ));
    }

    #[test]
    fn broadcast_storm_is_all_to_all() {
        let (t, _) = topo_with_layout();
        let cfg = BroadcastStormConfig {
            message_len: 16,
            stagger: Duration::from_ns(50),
        };
        let specs = cfg.generate(&t).unwrap();
        let n = t.num_processors();
        assert_eq!(specs.len(), n);
        for (i, s) in specs.iter().enumerate() {
            s.validate(&t).unwrap();
            assert_eq!(s.dests.len(), n - 1);
            assert_eq!(s.gen_time.as_ns(), 50 * i as u64);
        }
    }
}
