#![warn(missing_docs)]

//! # traffic — workload generation for the simulation experiments
//!
//! Reproduces the traffic models of §4:
//!
//! * **Single multicast** (Figure 2): one message, `k` uniformly chosen
//!   destinations, in an otherwise idle network.
//! * **Mixed traffic** (Figure 3): every processor generates messages with
//!   interarrival gaps drawn from a **negative binomial** distribution with
//!   a configurable mean arrival rate; 90 % of messages are unicasts, 10 %
//!   multicasts of a fixed destination-set size.
//!
//! The module also provides the destination samplers used by the §5
//! partitioning ablation (clustered destination sets) and a Poisson
//! process for sensitivity checks.

pub mod arrivals;
pub mod dests;
pub mod workload;

pub use arrivals::{ArrivalProcess, Deterministic, NegativeBinomial, Poisson};
pub use dests::DestinationSampler;
pub use workload::{ArrivalKind, MixedTrafficConfig};
