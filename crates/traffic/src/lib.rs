#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # traffic — workload generation for the simulation experiments
//!
//! Reproduces the traffic models of §4:
//!
//! * **Single multicast** (Figure 2): one message, `k` uniformly chosen
//!   destinations, in an otherwise idle network.
//! * **Mixed traffic** (Figure 3): every processor generates messages with
//!   interarrival gaps drawn from a **negative binomial** distribution with
//!   a configurable mean arrival rate; 90 % of messages are unicasts, 10 %
//!   multicasts of a fixed destination-set size.
//!
//! Beyond the paper, the workload library covers the classic evaluation
//! patterns of the interconnect literature — each composable with every
//! routing algorithm, fault plan, and queue implementation through the
//! `spam-scenario` crate:
//!
//! * **Hotspot** ([`HotspotConfig`]): a configurable fraction of unicasts
//!   aimed at a few hot processors.
//! * **Lattice permutations** ([`PermutationConfig`]): transpose and
//!   bit-complement partners mapped through the generator's
//!   [`netgraph::gen::lattice::LatticeLayout`].
//! * **Bursty on/off** ([`OnOff`]): a two-state MMPP wrapping any
//!   [`ArrivalProcess`].
//! * **Incast** ([`IncastConfig`]): many clients streaming to few servers.
//! * **Broadcast storm** ([`BroadcastStormConfig`]): all nodes multicast
//!   to all others simultaneously.
//! * **Closed loop** ([`ClosedLoopInjector`]): bounded outstanding
//!   messages per source, driven by completions.
//!
//! The module also provides the destination samplers used by the §5
//! partitioning ablation (clustered destination sets) and a Poisson
//! process for sensitivity checks. Generators return typed
//! [`TrafficError`]s — never panic — when a configuration cannot be
//! realized on a topology.

pub mod arrivals;
pub mod closed_loop;
pub mod dests;
pub mod error;
pub mod patterns;
pub mod workload;

pub use arrivals::{ArrivalProcess, Deterministic, NegativeBinomial, OnOff, Poisson};
pub use closed_loop::{ClosedLoopConfig, ClosedLoopInjector};
pub use dests::DestinationSampler;
pub use error::TrafficError;
pub use patterns::{
    BroadcastStormConfig, HotspotConfig, IncastConfig, PermutationConfig, PermutationPattern,
};
pub use workload::{ArrivalKind, MixedTrafficConfig};
