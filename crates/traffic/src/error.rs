//! Typed workload-generation errors.

use std::fmt;

/// Why a workload configuration cannot produce a stream on a given
/// topology (or population of processors).
///
/// Generators return these instead of panicking so a declarative scenario
/// layer can surface "this spec asks for a 64-destination multicast on a
/// 32-processor network" as a validation diagnostic rather than a crash.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TrafficError {
    /// A destination-set size exceeds the processors reachable from the
    /// source (the source itself never counts).
    NotEnoughProcessors {
        /// Destinations requested per message.
        requested: usize,
        /// Distinct non-source processors actually available.
        available: usize,
    },
    /// A sampler was asked for an empty destination set.
    NoDestinations,
    /// The generator needs more sources than the population provides
    /// (e.g. mixed traffic needs at least two processors; incast needs at
    /// least one client besides its servers).
    TooFewSources {
        /// Processors available.
        available: usize,
        /// Minimum the generator needs.
        needed: usize,
    },
    /// A probability-like knob is outside `[0, 1]`.
    BadFraction {
        /// Which knob (e.g. `"unicast_fraction"`, `"hot_fraction"`).
        what: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An arrival rate is zero, negative, or non-finite — no interarrival
    /// process can be built from it.
    NonPositiveRate {
        /// The offending rate (messages/µs).
        rate: f64,
    },
    /// The arrival rate implies a mean gap below one arrival slot — the
    /// discrete negative-binomial process cannot represent it.
    RateTooHigh {
        /// The offending rate (messages/µs).
        rate: f64,
    },
    /// A duration knob that must be positive (burst ON period, closed-loop
    /// window, per-source message quota, ...) is zero.
    ZeroDuration {
        /// Which knob.
        what: &'static str,
    },
    /// A duration knob too large to represent in nanoseconds.
    DurationTooLarge {
        /// Which knob.
        what: &'static str,
    },
}

impl fmt::Display for TrafficError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TrafficError::NotEnoughProcessors {
                requested,
                available,
            } => write!(
                f,
                "destination set of {requested} exceeds the {available} reachable processors"
            ),
            TrafficError::NoDestinations => write!(f, "destination set size must be at least 1"),
            TrafficError::TooFewSources { available, needed } => {
                write!(
                    f,
                    "workload needs {needed} processors, topology has {available}"
                )
            }
            TrafficError::BadFraction { what, value } => {
                write!(f, "{what} = {value} is not a probability in [0, 1]")
            }
            TrafficError::NonPositiveRate { rate } => {
                write!(f, "arrival rate {rate} msg/us is not positive and finite")
            }
            TrafficError::RateTooHigh { rate } => write!(
                f,
                "arrival rate {rate} msg/us implies a mean gap below one arrival slot"
            ),
            TrafficError::ZeroDuration { what } => write!(f, "{what} must be positive"),
            TrafficError::DurationTooLarge { what } => {
                write!(f, "{what} exceeds the representable nanosecond range")
            }
        }
    }
}

impl std::error::Error for TrafficError {}
