//! Destination-set samplers.

use crate::error::TrafficError;
use netgraph::{algo, NodeId, Topology};
use rand::seq::SliceRandom;
use rand::Rng;

/// How a multicast's destination set is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DestinationSampler {
    /// `count` distinct processors, uniformly at random, excluding the
    /// source (the Figure 2 / Figure 3 model).
    UniformRandom {
        /// Number of destinations.
        count: usize,
    },
    /// Every processor except the source.
    Broadcast,
    /// `count` processors nearest (by switch-graph BFS) to a random seed
    /// switch — "groups of contiguous nodes" for the §5 partitioning
    /// study, ties broken by node id.
    Cluster {
        /// Number of destinations.
        count: usize,
    },
}

impl DestinationSampler {
    /// Draws a destination set for a message from `src`, over every
    /// processor of the topology.
    ///
    /// Returns a typed [`TrafficError`] — never panics — when the request
    /// exceeds the available processors (e.g. a 64-destination multicast
    /// on a 2-processor network).
    pub fn sample<R: Rng + ?Sized>(
        &self,
        topo: &Topology,
        src: NodeId,
        rng: &mut R,
    ) -> Result<Vec<NodeId>, TrafficError> {
        let others: Vec<NodeId> = topo.processors().filter(|&p| p != src).collect();
        self.sample_others(topo, others, rng)
    }

    /// Like [`DestinationSampler::sample`], but draws only from the given
    /// processor population (e.g. the largest surviving component of a
    /// degraded network). `src` is excluded from the draw.
    pub fn sample_within<R: Rng + ?Sized>(
        &self,
        topo: &Topology,
        procs: &[NodeId],
        src: NodeId,
        rng: &mut R,
    ) -> Result<Vec<NodeId>, TrafficError> {
        let others: Vec<NodeId> = procs.iter().copied().filter(|&p| p != src).collect();
        self.sample_others(topo, others, rng)
    }

    /// Shared core: `others` is the candidate set (source already
    /// excluded).
    fn sample_others<R: Rng + ?Sized>(
        &self,
        topo: &Topology,
        mut others: Vec<NodeId>,
        rng: &mut R,
    ) -> Result<Vec<NodeId>, TrafficError> {
        let check = |count: usize| -> Result<(), TrafficError> {
            if count == 0 {
                return Err(TrafficError::NoDestinations);
            }
            if count > others.len() {
                return Err(TrafficError::NotEnoughProcessors {
                    requested: count,
                    available: others.len(),
                });
            }
            Ok(())
        };
        match *self {
            DestinationSampler::UniformRandom { count } => {
                check(count)?;
                others.shuffle(rng);
                others.truncate(count);
                Ok(others)
            }
            DestinationSampler::Broadcast => {
                check(1)?;
                Ok(others)
            }
            DestinationSampler::Cluster { count } => {
                check(count)?;
                let switches: Vec<NodeId> = topo.switches().collect();
                let seed = switches[rng.gen_range(0..switches.len())];
                let dist = algo::bfs_distances(topo, seed);
                others.sort_by_key(|p| (dist[p.index()], *p));
                others.truncate(count);
                Ok(others)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::gen::lattice::IrregularConfig;
    use rand::SeedableRng;

    fn setup() -> (Topology, Vec<NodeId>) {
        let t = IrregularConfig::with_switches(24).generate(5);
        let procs: Vec<NodeId> = t.processors().collect();
        (t, procs)
    }

    #[test]
    fn uniform_excludes_source_and_is_distinct() {
        let (t, procs) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let d = DestinationSampler::UniformRandom { count: 8 }
                .sample(&t, procs[0], &mut rng)
                .unwrap();
            assert_eq!(d.len(), 8);
            assert!(!d.contains(&procs[0]));
            let mut s = d.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 8, "duplicates drawn");
        }
    }

    #[test]
    fn broadcast_hits_everyone_else() {
        let (t, procs) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let d = DestinationSampler::Broadcast
            .sample(&t, procs[3], &mut rng)
            .unwrap();
        assert_eq!(d.len(), procs.len() - 1);
        assert!(!d.contains(&procs[3]));
    }

    #[test]
    fn cluster_is_bfs_tight() {
        let (t, procs) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let d = DestinationSampler::Cluster { count: 6 }
            .sample(&t, procs[0], &mut rng)
            .unwrap();
        assert_eq!(d.len(), 6);
        // The chosen processors must be closer to each other than a random
        // spread: check max pairwise distance is below the diameter.
        let diam = netgraph::algo::switch_diameter(&t);
        let max_pair = d
            .iter()
            .flat_map(|&a| {
                let dist = algo::bfs_distances(&t, a);
                d.iter().map(move |&b| dist[b.index()]).collect::<Vec<_>>()
            })
            .max()
            .unwrap();
        assert!(
            max_pair <= diam,
            "cluster spread {max_pair} exceeds diameter {diam}"
        );
    }

    #[test]
    fn sample_within_respects_the_population() {
        let (t, procs) = setup();
        let pop = &procs[..6];
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        for sampler in [
            DestinationSampler::UniformRandom { count: 3 },
            DestinationSampler::Broadcast,
            DestinationSampler::Cluster { count: 3 },
        ] {
            let d = sampler.sample_within(&t, pop, pop[0], &mut rng).unwrap();
            assert!(!d.contains(&pop[0]));
            for p in &d {
                assert!(pop.contains(p), "{p} outside the population");
            }
        }
    }

    #[test]
    fn oversized_request_is_a_typed_error() {
        let (t, procs) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        assert_eq!(
            DestinationSampler::UniformRandom { count: 1000 }.sample(&t, procs[0], &mut rng),
            Err(TrafficError::NotEnoughProcessors {
                requested: 1000,
                available: procs.len() - 1
            })
        );
        assert_eq!(
            DestinationSampler::UniformRandom { count: 0 }.sample(&t, procs[0], &mut rng),
            Err(TrafficError::NoDestinations)
        );
    }

    #[test]
    fn two_processor_topology_regressions() {
        // The smallest legal population: exactly one destination can ever
        // be drawn, and every oversized request must be a typed error —
        // not a clamp, not a spin, not a panic.
        let t = IrregularConfig::with_switches(2).generate(3);
        let procs: Vec<NodeId> = t.processors().collect();
        assert_eq!(procs.len(), 2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let ok = DestinationSampler::UniformRandom { count: 1 }
            .sample(&t, procs[0], &mut rng)
            .unwrap();
        assert_eq!(ok, vec![procs[1]]);
        assert_eq!(
            DestinationSampler::UniformRandom { count: 2 }.sample(&t, procs[0], &mut rng),
            Err(TrafficError::NotEnoughProcessors {
                requested: 2,
                available: 1
            })
        );
        assert_eq!(
            DestinationSampler::Cluster { count: 5 }.sample(&t, procs[1], &mut rng),
            Err(TrafficError::NotEnoughProcessors {
                requested: 5,
                available: 1
            })
        );
    }
}
