//! Destination-set samplers.

use netgraph::{algo, NodeId, Topology};
use rand::seq::SliceRandom;
use rand::Rng;

/// How a multicast's destination set is drawn.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DestinationSampler {
    /// `count` distinct processors, uniformly at random, excluding the
    /// source (the Figure 2 / Figure 3 model).
    UniformRandom {
        /// Number of destinations.
        count: usize,
    },
    /// Every processor except the source.
    Broadcast,
    /// `count` processors nearest (by switch-graph BFS) to a random seed
    /// switch — "groups of contiguous nodes" for the §5 partitioning
    /// study, ties broken by node id.
    Cluster {
        /// Number of destinations.
        count: usize,
    },
}

impl DestinationSampler {
    /// Draws a destination set for a message from `src`.
    ///
    /// # Panics
    ///
    /// Panics if the topology has fewer processors than requested
    /// (excluding the source).
    pub fn sample<R: Rng + ?Sized>(
        &self,
        topo: &Topology,
        src: NodeId,
        rng: &mut R,
    ) -> Vec<NodeId> {
        let mut others: Vec<NodeId> = topo.processors().filter(|&p| p != src).collect();
        match *self {
            DestinationSampler::UniformRandom { count } => {
                assert!(count >= 1 && count <= others.len(), "not enough processors");
                others.shuffle(rng);
                others.truncate(count);
                others
            }
            DestinationSampler::Broadcast => others,
            DestinationSampler::Cluster { count } => {
                assert!(count >= 1 && count <= others.len(), "not enough processors");
                let switches: Vec<NodeId> = topo.switches().collect();
                let seed = switches[rng.gen_range(0..switches.len())];
                let dist = algo::bfs_distances(topo, seed);
                others.sort_by_key(|p| (dist[p.index()], *p));
                others.truncate(count);
                others
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::gen::lattice::IrregularConfig;
    use rand::SeedableRng;

    fn setup() -> (Topology, Vec<NodeId>) {
        let t = IrregularConfig::with_switches(24).generate(5);
        let procs: Vec<NodeId> = t.processors().collect();
        (t, procs)
    }

    #[test]
    fn uniform_excludes_source_and_is_distinct() {
        let (t, procs) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        for _ in 0..50 {
            let d = DestinationSampler::UniformRandom { count: 8 }.sample(&t, procs[0], &mut rng);
            assert_eq!(d.len(), 8);
            assert!(!d.contains(&procs[0]));
            let mut s = d.clone();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), 8, "duplicates drawn");
        }
    }

    #[test]
    fn broadcast_hits_everyone_else() {
        let (t, procs) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let d = DestinationSampler::Broadcast.sample(&t, procs[3], &mut rng);
        assert_eq!(d.len(), procs.len() - 1);
        assert!(!d.contains(&procs[3]));
    }

    #[test]
    fn cluster_is_bfs_tight() {
        let (t, procs) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let d = DestinationSampler::Cluster { count: 6 }.sample(&t, procs[0], &mut rng);
        assert_eq!(d.len(), 6);
        // The chosen processors must be closer to each other than a random
        // spread: check max pairwise distance is below the diameter.
        let diam = netgraph::algo::switch_diameter(&t);
        let max_pair = d
            .iter()
            .flat_map(|&a| {
                let dist = algo::bfs_distances(&t, a);
                d.iter().map(move |&b| dist[b.index()]).collect::<Vec<_>>()
            })
            .max()
            .unwrap();
        assert!(
            max_pair <= diam,
            "cluster spread {max_pair} exceeds diameter {diam}"
        );
    }

    #[test]
    #[should_panic(expected = "not enough processors")]
    fn oversized_request_panics() {
        let (t, procs) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        DestinationSampler::UniformRandom { count: 1000 }.sample(&t, procs[0], &mut rng);
    }
}
