//! Full traffic streams: the Figure 3 mixed unicast/multicast workload.

use crate::arrivals::{ArrivalProcess, Deterministic, NegativeBinomial, Poisson};
use crate::dests::DestinationSampler;
use desim::{Duration, Time};
use netgraph::{NodeId, Topology};
use rand::Rng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use wormsim::MessageSpec;

/// Which arrival process drives each node's generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalKind {
    /// §4: negative binomial slot counts with dispersion `r` over 10 ns
    /// slots.
    NegativeBinomial {
        /// Dispersion; 1 = geometric.
        r: u32,
    },
    /// Exponential gaps (sensitivity analysis).
    Poisson,
    /// Fixed gaps (stress tests).
    Deterministic,
}

/// The Figure 3 workload: every processor independently generates
/// messages; each is a unicast with probability `unicast_fraction`,
/// otherwise a multicast with `multicast_dests` uniformly drawn
/// destinations.
#[derive(Debug, Clone, Copy)]
pub struct MixedTrafficConfig {
    /// Fraction of unicast messages (0.9 in the paper).
    pub unicast_fraction: f64,
    /// Destinations per multicast (8, 16, 32, 64 in Figure 3).
    pub multicast_dests: usize,
    /// Mean arrival rate per node, messages per microsecond
    /// (0.005 – 0.04 on the Figure 3 x-axis).
    pub rate_per_node_per_us: f64,
    /// Flits per message (128 in §4).
    pub message_len: u32,
    /// Total messages to generate across all nodes.
    pub messages: usize,
    /// The arrival process.
    pub arrival: ArrivalKind,
}

impl MixedTrafficConfig {
    /// The paper's Figure 3 configuration at a given rate and multicast
    /// size, for `messages` total messages.
    pub fn figure3(rate_per_node_per_us: f64, multicast_dests: usize, messages: usize) -> Self {
        MixedTrafficConfig {
            unicast_fraction: 0.9,
            multicast_dests,
            rate_per_node_per_us,
            message_len: 128,
            messages,
            arrival: ArrivalKind::NegativeBinomial { r: 1 },
        }
    }

    /// Generates the message stream (sorted by generation time).
    ///
    /// Every processor runs an independent arrival process; the merged
    /// stream is truncated to `self.messages` messages. Tags number the
    /// messages in generation order. Unicast destinations are uniform; a
    /// message is a multicast with probability `1 − unicast_fraction`.
    pub fn generate(&self, topo: &Topology, seed: u64) -> Vec<MessageSpec> {
        assert!(
            (0.0..=1.0).contains(&self.unicast_fraction),
            "unicast fraction must be a probability"
        );
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let procs: Vec<NodeId> = topo.processors().collect();
        assert!(procs.len() >= 2, "need at least two processors");
        assert!(
            self.multicast_dests < procs.len(),
            "multicast size must leave a source out"
        );

        // Per-node next-arrival heap: (time, node-index).
        let mut heap: BinaryHeap<Reverse<(Time, usize)>> = BinaryHeap::new();
        for (i, _) in procs.iter().enumerate() {
            let gap = self.draw_gap(&mut rng);
            heap.push(Reverse((Time::ZERO + gap, i)));
        }

        let mut specs = Vec::with_capacity(self.messages);
        while specs.len() < self.messages {
            let Reverse((t, i)) = heap.pop().expect("heap refilled every pop");
            let src = procs[i];
            let is_unicast = rng.gen_bool(self.unicast_fraction);
            let dests = if is_unicast {
                DestinationSampler::UniformRandom { count: 1 }.sample(topo, src, &mut rng)
            } else {
                DestinationSampler::UniformRandom {
                    count: self.multicast_dests,
                }
                .sample(topo, src, &mut rng)
            };
            specs.push(
                MessageSpec::multicast(src, dests, self.message_len)
                    .at(t)
                    .tag(specs.len() as u64),
            );
            let gap = self.draw_gap(&mut rng);
            heap.push(Reverse((t + gap, i)));
        }
        specs.sort_by_key(|s| (s.gen_time, s.tag));
        specs
    }

    fn draw_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        match self.arrival {
            ArrivalKind::NegativeBinomial { r } => NegativeBinomial::with_rate_per_us(
                self.rate_per_node_per_us,
                r,
                Duration::from_ns(10),
            )
            .next_gap(rng),
            ArrivalKind::Poisson => {
                Poisson::with_rate_per_us(self.rate_per_node_per_us).next_gap(rng)
            }
            ArrivalKind::Deterministic => Deterministic {
                gap: Duration::from_ns((1_000.0 / self.rate_per_node_per_us) as u64),
            }
            .next_gap(rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::gen::lattice::IrregularConfig;

    fn topo() -> Topology {
        IrregularConfig::with_switches(32).generate(1)
    }

    #[test]
    fn stream_is_sorted_and_tagged() {
        let t = topo();
        let specs = MixedTrafficConfig::figure3(0.02, 8, 200).generate(&t, 42);
        assert_eq!(specs.len(), 200);
        for w in specs.windows(2) {
            assert!(w[0].gen_time <= w[1].gen_time);
        }
        for s in &specs {
            s.validate(&t).unwrap();
            assert_eq!(s.len, 128);
        }
    }

    #[test]
    fn unicast_fraction_is_respected() {
        let t = topo();
        let specs = MixedTrafficConfig::figure3(0.02, 8, 3000).generate(&t, 7);
        let unicasts = specs.iter().filter(|s| s.is_unicast()).count();
        let frac = unicasts as f64 / specs.len() as f64;
        assert!(
            (frac - 0.9).abs() < 0.03,
            "unicast fraction {frac} far from 0.9"
        );
        // Multicasts have exactly the configured size.
        for s in specs.iter().filter(|s| !s.is_unicast()) {
            assert_eq!(s.dests.len(), 8);
        }
    }

    #[test]
    fn aggregate_rate_matches_configuration() {
        let t = topo();
        let cfg = MixedTrafficConfig::figure3(0.01, 8, 4000);
        let specs = cfg.generate(&t, 3);
        let span_us = specs.last().unwrap().gen_time.as_us_f64();
        // 32 nodes at 0.01 msg/µs each -> 0.32 msg/µs aggregate.
        let rate = specs.len() as f64 / span_us;
        assert!(
            (rate - 0.32).abs() < 0.05,
            "aggregate rate {rate} far from 0.32"
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let t = topo();
        let cfg = MixedTrafficConfig::figure3(0.02, 16, 100);
        assert_eq!(cfg.generate(&t, 5), cfg.generate(&t, 5));
        assert_ne!(cfg.generate(&t, 5), cfg.generate(&t, 6));
    }

    #[test]
    fn poisson_and_deterministic_also_work() {
        let t = topo();
        for arrival in [ArrivalKind::Poisson, ArrivalKind::Deterministic] {
            let cfg = MixedTrafficConfig {
                arrival,
                ..MixedTrafficConfig::figure3(0.02, 4, 50)
            };
            let specs = cfg.generate(&t, 1);
            assert_eq!(specs.len(), 50);
        }
    }

    #[test]
    fn sources_are_spread_across_nodes() {
        let t = topo();
        let specs = MixedTrafficConfig::figure3(0.02, 8, 2000).generate(&t, 11);
        let mut srcs: Vec<NodeId> = specs.iter().map(|s| s.src).collect();
        srcs.sort_unstable();
        srcs.dedup();
        assert!(
            srcs.len() >= 30,
            "only {} of 32 processors ever sent",
            srcs.len()
        );
    }
}
