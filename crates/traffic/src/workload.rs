//! Full traffic streams: the Figure 3 mixed unicast/multicast workload,
//! plus the shared rate-driven stream-merging core every open-loop
//! workload (mixed, hotspot, incast) builds on.

use crate::arrivals::{ArrivalProcess, Deterministic, NegativeBinomial, OnOff, Poisson};
use crate::dests::DestinationSampler;
use crate::error::TrafficError;
use desim::{Duration, Time};
use netgraph::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use wormsim::MessageSpec;

/// Which arrival process drives each node's generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalKind {
    /// §4: negative binomial slot counts with dispersion `r` over 10 ns
    /// slots.
    NegativeBinomial {
        /// Dispersion; 1 = geometric.
        r: u32,
    },
    /// Exponential gaps (sensitivity analysis).
    Poisson,
    /// Fixed gaps (stress tests).
    Deterministic,
    /// Bursty on/off arrivals: the §4 negative-binomial process modulated
    /// by a two-state MMPP ([`OnOff`]). The configured rate is the
    /// *in-burst* rate; the long-run rate is scaled by the duty cycle
    /// `on / (on + off)`.
    OnOff {
        /// Dispersion of the inner negative-binomial process.
        r: u32,
        /// Mean ON-state duration in µs (must be positive).
        mean_on_us: u64,
        /// Mean OFF-state duration in µs (zero = always on).
        mean_off_us: u64,
    },
}

impl ArrivalKind {
    /// Validates `rate` (messages/µs/source) and this kind's own knobs.
    /// Everything [`ArrivalKind::generator`] would assert on is caught
    /// here first, so a validated configuration never panics downstream.
    pub fn validate_rate(&self, rate: f64) -> Result<(), TrafficError> {
        if !(rate > 0.0 && rate.is_finite()) {
            return Err(TrafficError::NonPositiveRate { rate });
        }
        match *self {
            ArrivalKind::NegativeBinomial { r } => {
                // Mean gap must span at least one 10 ns slot.
                if 1_000.0 / rate < 10.0 {
                    return Err(TrafficError::RateTooHigh { rate });
                }
                check_dispersion(r)
            }
            ArrivalKind::OnOff {
                r,
                mean_on_us,
                mean_off_us,
            } => {
                if 1_000.0 / rate < 10.0 {
                    return Err(TrafficError::RateTooHigh { rate });
                }
                check_dispersion(r)?;
                if mean_on_us == 0 {
                    return Err(TrafficError::ZeroDuration {
                        what: "mean ON period",
                    });
                }
                // `Duration::from_us` multiplies by 1000; reject values
                // that would overflow the nanosecond representation.
                const MAX_US: u64 = u64::MAX / 1_000;
                if mean_on_us > MAX_US {
                    return Err(TrafficError::DurationTooLarge {
                        what: "mean ON period",
                    });
                }
                if mean_off_us > MAX_US {
                    return Err(TrafficError::DurationTooLarge {
                        what: "mean OFF period",
                    });
                }
                Ok(())
            }
            ArrivalKind::Poisson | ArrivalKind::Deterministic => {
                // The continuous kinds still need a representable gap:
                // past 1000 msg/µs the mean gap truncates to 0 ns and the
                // configured rate silently vanishes.
                if 1_000.0 / rate < 1.0 {
                    return Err(TrafficError::RateTooHigh { rate });
                }
                Ok(())
            }
        }
    }

    /// Builds one per-source gap generator at `rate` messages/µs.
    /// Stateless kinds share nothing; [`ArrivalKind::OnOff`] carries its
    /// modulation state, so every source needs its own generator.
    pub(crate) fn generator(&self, rate: f64) -> Result<ArrivalGen, TrafficError> {
        self.validate_rate(rate)?;
        Ok(match *self {
            ArrivalKind::NegativeBinomial { r } => ArrivalGen::Nb(
                NegativeBinomial::with_rate_per_us(rate, r, Duration::from_ns(10)),
            ),
            ArrivalKind::Poisson => ArrivalGen::Poisson(Poisson::with_rate_per_us(rate)),
            ArrivalKind::Deterministic => ArrivalGen::Det(Deterministic {
                gap: Duration::from_ns((1_000.0 / rate) as u64),
            }),
            ArrivalKind::OnOff {
                r,
                mean_on_us,
                mean_off_us,
            } => ArrivalGen::OnOff(OnOff::new(
                NegativeBinomial::with_rate_per_us(rate, r, Duration::from_ns(10)),
                Duration::from_us(mean_on_us),
                Duration::from_us(mean_off_us),
            )),
        })
    }
}

/// The negative-binomial dispersion must be at least 1 (the number of
/// geometric components); `NegativeBinomial::with_rate_per_us` asserts it.
fn check_dispersion(r: u32) -> Result<(), TrafficError> {
    if r == 0 {
        return Err(TrafficError::ZeroDuration {
            what: "negative-binomial dispersion r",
        });
    }
    Ok(())
}

/// One source's interarrival generator (enum dispatch: the trait method is
/// generic over the RNG, hence not object safe).
pub(crate) enum ArrivalGen {
    Nb(NegativeBinomial),
    Poisson(Poisson),
    Det(Deterministic),
    OnOff(OnOff<NegativeBinomial>),
}

impl ArrivalGen {
    pub(crate) fn next_gap<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        match self {
            ArrivalGen::Nb(p) => p.next_gap(rng),
            ArrivalGen::Poisson(p) => p.next_gap(rng),
            ArrivalGen::Det(p) => p.next_gap(rng),
            ArrivalGen::OnOff(p) => p.next_gap(rng),
        }
    }
}

/// Merges independent per-source arrival processes into one time-sorted,
/// tag-numbered stream of `messages` messages. `pick(msg_idx, src_idx,
/// src, rng)` chooses each message's destination set (and may consult
/// the RNG); `msg_idx` equals the final tag and `src_idx` indexes
/// `sources`.
///
/// This is the §4 generation protocol factored out: every open-loop
/// workload (mixed, hotspot, incast) is this merge plus a destination
/// policy.
pub(crate) fn rate_merged_stream(
    sources: &[NodeId],
    messages: usize,
    arrival: ArrivalKind,
    rate_per_source_per_us: f64,
    len: u32,
    rng: &mut StdRng,
    mut pick: impl FnMut(usize, usize, NodeId, &mut StdRng) -> Result<Vec<NodeId>, TrafficError>,
) -> Result<Vec<MessageSpec>, TrafficError> {
    if sources.is_empty() {
        return Err(TrafficError::TooFewSources {
            available: 0,
            needed: 1,
        });
    }
    let gens: Vec<ArrivalGen> = sources
        .iter()
        .map(|_| arrival.generator(rate_per_source_per_us))
        .collect::<Result<_, _>>()?;

    // Per-source next-arrival heap: (time, source-index).
    let mut heap: BinaryHeap<Reverse<(Time, usize)>> = BinaryHeap::new();
    for (i, g) in gens.iter().enumerate() {
        let gap = g.next_gap(rng);
        heap.push(Reverse((Time::ZERO + gap, i)));
    }

    let mut specs = Vec::with_capacity(messages);
    while specs.len() < messages {
        // One entry per source was pushed above and every pop below
        // pushes the source's next arrival back; config validation
        // guarantees at least one source.
        #[allow(clippy::expect_used)]
        let Reverse((t, i)) = heap.pop().expect("heap refilled every pop");
        let src = sources[i];
        let dests = pick(specs.len(), i, src, rng)?;
        specs.push(
            MessageSpec::multicast(src, dests, len)
                .at(t)
                .tag(specs.len() as u64),
        );
        let gap = gens[i].next_gap(rng);
        heap.push(Reverse((t + gap, i)));
    }
    specs.sort_by_key(|s| (s.gen_time, s.tag));
    Ok(specs)
}

/// The Figure 3 workload: every processor independently generates
/// messages; each is a unicast with probability `unicast_fraction`,
/// otherwise a multicast with `multicast_dests` uniformly drawn
/// destinations.
#[derive(Debug, Clone, Copy)]
pub struct MixedTrafficConfig {
    /// Fraction of unicast messages (0.9 in the paper).
    pub unicast_fraction: f64,
    /// Destinations per multicast (8, 16, 32, 64 in Figure 3).
    pub multicast_dests: usize,
    /// Mean arrival rate per node, messages per microsecond
    /// (0.005 – 0.04 on the Figure 3 x-axis).
    pub rate_per_node_per_us: f64,
    /// Flits per message (128 in §4).
    pub message_len: u32,
    /// Total messages to generate across all nodes.
    pub messages: usize,
    /// The arrival process.
    pub arrival: ArrivalKind,
}

impl MixedTrafficConfig {
    /// The paper's Figure 3 configuration at a given rate and multicast
    /// size, for `messages` total messages.
    pub fn figure3(rate_per_node_per_us: f64, multicast_dests: usize, messages: usize) -> Self {
        MixedTrafficConfig {
            unicast_fraction: 0.9,
            multicast_dests,
            rate_per_node_per_us,
            message_len: 128,
            messages,
            arrival: ArrivalKind::NegativeBinomial { r: 1 },
        }
    }

    /// Checks the configuration against a processor population of
    /// `available` nodes.
    pub fn validate(&self, available: usize) -> Result<(), TrafficError> {
        if !(0.0..=1.0).contains(&self.unicast_fraction) {
            return Err(TrafficError::BadFraction {
                what: "unicast_fraction",
                value: self.unicast_fraction,
            });
        }
        if available < 2 {
            return Err(TrafficError::TooFewSources {
                available,
                needed: 2,
            });
        }
        // A multicast must leave the source out.
        if self.multicast_dests == 0 {
            return Err(TrafficError::NoDestinations);
        }
        if self.multicast_dests >= available {
            return Err(TrafficError::NotEnoughProcessors {
                requested: self.multicast_dests,
                available: available - 1,
            });
        }
        self.arrival.validate_rate(self.rate_per_node_per_us)
    }

    /// Generates the message stream (sorted by generation time).
    ///
    /// Every processor runs an independent arrival process; the merged
    /// stream is truncated to `self.messages` messages. Tags number the
    /// messages in generation order. Unicast destinations are uniform; a
    /// message is a multicast with probability `1 − unicast_fraction`.
    ///
    /// Returns a typed [`TrafficError`] — never panics — when the
    /// configuration cannot be realized on this topology (multicast size
    /// not below the processor count, bad fraction, bad rate).
    pub fn generate(&self, topo: &Topology, seed: u64) -> Result<Vec<MessageSpec>, TrafficError> {
        let procs: Vec<NodeId> = topo.processors().collect();
        self.generate_within(topo, &procs, seed)
    }

    /// Like [`MixedTrafficConfig::generate`], but sources and destinations
    /// are confined to the given processor population (e.g. the largest
    /// surviving component of a degraded network).
    pub fn generate_within(
        &self,
        topo: &Topology,
        procs: &[NodeId],
        seed: u64,
    ) -> Result<Vec<MessageSpec>, TrafficError> {
        self.validate(procs.len())?;
        let mut rng = StdRng::seed_from_u64(seed);
        let unicast_fraction = self.unicast_fraction;
        let multicast_dests = self.multicast_dests;
        rate_merged_stream(
            procs,
            self.messages,
            self.arrival,
            self.rate_per_node_per_us,
            self.message_len,
            &mut rng,
            |_, _, src, rng| {
                let count = if rng.gen_bool(unicast_fraction) {
                    1
                } else {
                    multicast_dests
                };
                DestinationSampler::UniformRandom { count }.sample_within(topo, procs, src, rng)
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::gen::lattice::IrregularConfig;

    fn topo() -> Topology {
        IrregularConfig::with_switches(32).generate(1)
    }

    #[test]
    fn stream_is_sorted_and_tagged() {
        let t = topo();
        let specs = MixedTrafficConfig::figure3(0.02, 8, 200)
            .generate(&t, 42)
            .unwrap();
        assert_eq!(specs.len(), 200);
        for w in specs.windows(2) {
            assert!(w[0].gen_time <= w[1].gen_time);
        }
        for s in &specs {
            s.validate(&t).unwrap();
            assert_eq!(s.len, 128);
        }
    }

    #[test]
    fn unicast_fraction_is_respected() {
        let t = topo();
        let specs = MixedTrafficConfig::figure3(0.02, 8, 3000)
            .generate(&t, 7)
            .unwrap();
        let unicasts = specs.iter().filter(|s| s.is_unicast()).count();
        let frac = unicasts as f64 / specs.len() as f64;
        assert!(
            (frac - 0.9).abs() < 0.03,
            "unicast fraction {frac} far from 0.9"
        );
        // Multicasts have exactly the configured size.
        for s in specs.iter().filter(|s| !s.is_unicast()) {
            assert_eq!(s.dests.len(), 8);
        }
    }

    #[test]
    fn aggregate_rate_matches_configuration() {
        let t = topo();
        let cfg = MixedTrafficConfig::figure3(0.01, 8, 4000);
        let specs = cfg.generate(&t, 3).unwrap();
        let span_us = specs.last().unwrap().gen_time.as_us_f64();
        // 32 nodes at 0.01 msg/µs each -> 0.32 msg/µs aggregate.
        let rate = specs.len() as f64 / span_us;
        assert!(
            (rate - 0.32).abs() < 0.05,
            "aggregate rate {rate} far from 0.32"
        );
    }

    #[test]
    fn same_seed_same_stream() {
        let t = topo();
        let cfg = MixedTrafficConfig::figure3(0.02, 16, 100);
        assert_eq!(cfg.generate(&t, 5).unwrap(), cfg.generate(&t, 5).unwrap());
        assert_ne!(cfg.generate(&t, 5).unwrap(), cfg.generate(&t, 6).unwrap());
    }

    #[test]
    fn poisson_deterministic_and_onoff_also_work() {
        let t = topo();
        for arrival in [
            ArrivalKind::Poisson,
            ArrivalKind::Deterministic,
            ArrivalKind::OnOff {
                r: 1,
                mean_on_us: 100,
                mean_off_us: 300,
            },
        ] {
            let cfg = MixedTrafficConfig {
                arrival,
                ..MixedTrafficConfig::figure3(0.02, 4, 50)
            };
            let specs = cfg.generate(&t, 1).unwrap();
            assert_eq!(specs.len(), 50);
        }
    }

    #[test]
    fn sources_are_spread_across_nodes() {
        let t = topo();
        let specs = MixedTrafficConfig::figure3(0.02, 8, 2000)
            .generate(&t, 11)
            .unwrap();
        let mut srcs: Vec<NodeId> = specs.iter().map(|s| s.src).collect();
        srcs.sort_unstable();
        srcs.dedup();
        assert!(
            srcs.len() >= 30,
            "only {} of 32 processors ever sent",
            srcs.len()
        );
    }

    #[test]
    fn generate_within_confines_the_stream() {
        let t = topo();
        let procs: Vec<NodeId> = t.processors().collect();
        let pop = &procs[..8];
        let specs = MixedTrafficConfig::figure3(0.02, 4, 120)
            .generate_within(&t, pop, 9)
            .unwrap();
        for s in &specs {
            assert!(pop.contains(&s.src));
            for d in &s.dests {
                assert!(pop.contains(d));
            }
        }
    }

    #[test]
    fn bad_configs_are_typed_errors() {
        let t = topo();
        // Multicast size must leave the source out: 32 processors.
        assert_eq!(
            MixedTrafficConfig::figure3(0.02, 32, 10).generate(&t, 0),
            Err(TrafficError::NotEnoughProcessors {
                requested: 32,
                available: 31
            })
        );
        assert_eq!(
            MixedTrafficConfig::figure3(0.0, 8, 10).generate(&t, 0),
            Err(TrafficError::NonPositiveRate { rate: 0.0 })
        );
        let mut bad = MixedTrafficConfig::figure3(0.02, 8, 10);
        bad.unicast_fraction = 1.5;
        assert_eq!(
            bad.generate(&t, 0),
            Err(TrafficError::BadFraction {
                what: "unicast_fraction",
                value: 1.5
            })
        );
        assert_eq!(
            MixedTrafficConfig::figure3(500.0, 8, 10).generate(&t, 0),
            Err(TrafficError::RateTooHigh { rate: 500.0 })
        );
    }

    #[test]
    fn degenerate_arrival_knobs_are_typed_errors() {
        // Everything `generator()` would assert on must be caught by
        // validation first — a validated config never panics downstream.
        let base = MixedTrafficConfig::figure3(0.02, 4, 10);
        let with = |arrival| MixedTrafficConfig { arrival, ..base };
        let t = topo();
        // Zero dispersion (r = 0) on both NB-backed kinds.
        assert_eq!(
            with(ArrivalKind::NegativeBinomial { r: 0 }).generate(&t, 0),
            Err(TrafficError::ZeroDuration {
                what: "negative-binomial dispersion r"
            })
        );
        assert!(with(ArrivalKind::OnOff {
            r: 0,
            mean_on_us: 10,
            mean_off_us: 10
        })
        .generate(&t, 0)
        .is_err());
        // On/off periods past the nanosecond range would overflow
        // Duration::from_us.
        assert_eq!(
            with(ArrivalKind::OnOff {
                r: 1,
                mean_on_us: u64::MAX / 1_000 + 1,
                mean_off_us: 0
            })
            .generate(&t, 0),
            Err(TrafficError::DurationTooLarge {
                what: "mean ON period"
            })
        );
        // Continuous kinds with a sub-nanosecond mean gap would silently
        // truncate to zero and destroy the configured rate.
        for arrival in [ArrivalKind::Deterministic, ArrivalKind::Poisson] {
            let mut cfg = with(arrival);
            cfg.rate_per_node_per_us = 2_000.0;
            assert_eq!(
                cfg.generate(&t, 0),
                Err(TrafficError::RateTooHigh { rate: 2_000.0 })
            );
        }
    }

    #[test]
    fn two_processor_topology_regressions() {
        // Mixed traffic on the minimal topology: unicasts are fine, any
        // multicast size ≥ 2 is a typed rejection (2 processors can never
        // host a 2-destination multicast — the source must be left out).
        let t = IrregularConfig::with_switches(2).generate(3);
        let mut cfg = MixedTrafficConfig::figure3(0.02, 2, 20);
        assert_eq!(
            cfg.generate(&t, 1),
            Err(TrafficError::NotEnoughProcessors {
                requested: 2,
                available: 1
            })
        );
        cfg.unicast_fraction = 1.0;
        cfg.multicast_dests = 1;
        let specs = cfg.generate(&t, 1).unwrap();
        assert_eq!(specs.len(), 20);
        for s in &specs {
            s.validate(&t).unwrap();
            assert!(s.is_unicast());
        }
    }
}
