//! Closed-loop injection: every source keeps at most `window` messages
//! outstanding, injecting a replacement only when one of its messages
//! completes. Unlike the open-loop generators this cannot be a
//! precomputed stream — injection times depend on simulated completions —
//! so it is a [`CompletionHook`] driven by the engine.

use crate::error::TrafficError;
use desim::{Duration, Time};
use netgraph::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wormsim::{CompletionHook, MessageSpec, MsgId, SnapReader, SnapWriter, SnapshotError};

/// Configuration of a closed-loop (bounded-outstanding) workload.
#[derive(Debug, Clone, Copy)]
pub struct ClosedLoopConfig {
    /// Maximum messages a source may have outstanding (≥ 1).
    pub window: usize,
    /// Messages each source sends in total over the run.
    pub messages_per_source: usize,
    /// Flits per message.
    pub message_len: u32,
    /// Think time between a completion and the replacement injection.
    pub think: Duration,
}

impl ClosedLoopConfig {
    /// Checks the configuration against a population of `available`
    /// processors.
    pub fn validate(&self, available: usize) -> Result<(), TrafficError> {
        if self.window == 0 {
            return Err(TrafficError::ZeroDuration { what: "window" });
        }
        if self.messages_per_source == 0 {
            return Err(TrafficError::ZeroDuration {
                what: "messages_per_source",
            });
        }
        if available < 2 {
            return Err(TrafficError::TooFewSources {
                available,
                needed: 2,
            });
        }
        Ok(())
    }
}

/// The driver: submit [`ClosedLoopInjector::initial_sends`] before the
/// run, then pass the injector to
/// [`wormsim::NetworkSim::run_with_hook`]. Destinations are uniform over
/// the population (excluding the source), drawn from a seeded stream, so
/// the whole run is deterministic.
///
/// ```
/// use netgraph::gen::lattice::IrregularConfig;
/// use spam_core::SpamRouting;
/// use traffic::{ClosedLoopConfig, ClosedLoopInjector};
/// use updown::{RootSelection, UpDownLabeling};
/// use wormsim::{NetworkSim, SimConfig};
///
/// let topo = IrregularConfig::with_switches(16).generate(1);
/// let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
/// let cfg = ClosedLoopConfig {
///     window: 2,
///     messages_per_source: 4,
///     message_len: 32,
///     think: desim::Duration::from_us(1),
/// };
/// let mut inj = ClosedLoopInjector::new(cfg, &topo, 7).unwrap();
/// let mut sim = NetworkSim::new(&topo, SpamRouting::new(&topo, &ud), SimConfig::paper());
/// for spec in inj.initial_sends() {
///     sim.submit(spec).unwrap();
/// }
/// let out = sim.run_with_hook(&mut inj);
/// assert!(out.all_delivered());
/// assert_eq!(out.messages.len(), 16 * 4);
/// ```
#[derive(Debug)]
pub struct ClosedLoopInjector {
    cfg: ClosedLoopConfig,
    procs: Vec<NodeId>,
    /// Messages each source has yet to *inject* (outstanding not counted).
    remaining: Vec<usize>,
    rng: StdRng,
    next_tag: u64,
}

impl ClosedLoopInjector {
    /// Builds the injector over every processor of the topology.
    pub fn new(cfg: ClosedLoopConfig, topo: &Topology, seed: u64) -> Result<Self, TrafficError> {
        let procs: Vec<NodeId> = topo.processors().collect();
        Self::new_within(cfg, &procs, seed)
    }

    /// Builds the injector over the given processor population.
    pub fn new_within(
        cfg: ClosedLoopConfig,
        procs: &[NodeId],
        seed: u64,
    ) -> Result<Self, TrafficError> {
        cfg.validate(procs.len())?;
        let mut sorted: Vec<NodeId> = procs.to_vec();
        sorted.sort_unstable();
        Ok(ClosedLoopInjector {
            cfg,
            remaining: vec![cfg.messages_per_source; sorted.len()],
            procs: sorted,
            rng: StdRng::seed_from_u64(seed),
            next_tag: 0,
        })
    }

    /// Total messages the workload will inject over the whole run.
    pub fn total_messages(&self) -> usize {
        self.procs.len() * self.cfg.messages_per_source
    }

    fn next_from(&mut self, idx: usize, at: Time) -> Option<MessageSpec> {
        if self.remaining[idx] == 0 {
            return None;
        }
        self.remaining[idx] -= 1;
        let src = self.procs[idx];
        let mut k = self.rng.gen_range(0..self.procs.len() - 1);
        if k >= idx {
            k += 1; // skip the source's own slot in the sorted population
        }
        let dest = self.procs[k];
        let spec = MessageSpec::unicast(src, dest, self.cfg.message_len)
            .at(at)
            .tag(self.next_tag);
        self.next_tag += 1;
        Some(spec)
    }

    /// The initial window: `min(window, messages_per_source)` messages per
    /// source, all generated at time zero. Submit these before running.
    pub fn initial_sends(&mut self) -> Vec<MessageSpec> {
        let mut out = Vec::new();
        for idx in 0..self.procs.len() {
            for _ in 0..self.cfg.window.min(self.cfg.messages_per_source) {
                out.extend(self.next_from(idx, Time::ZERO));
            }
        }
        out
    }
}

impl CompletionHook for ClosedLoopInjector {
    fn on_complete(&mut self, _m: MsgId, spec: &MessageSpec, at: Time) -> Vec<MessageSpec> {
        match self.procs.binary_search(&spec.src) {
            Ok(idx) => self
                .next_from(idx, at + self.cfg.think)
                .into_iter()
                .collect(),
            Err(_) => Vec::new(), // not one of ours (mixed scheme run)
        }
    }

    /// The injector's mutable state: per-source remaining counts, the
    /// RNG word, and the tag counter. Config and population are rebuilt
    /// from the scenario on restore, so they are not serialized.
    fn encode_state(&self, w: &mut SnapWriter) {
        w.put_len(self.remaining.len());
        for &n in &self.remaining {
            w.put_usize(n);
        }
        w.put_u64(self.rng.state());
        w.put_u64(self.next_tag);
    }

    fn decode_state(&mut self, r: &mut SnapReader) -> Result<(), SnapshotError> {
        if r.get_len()? != self.remaining.len() {
            return Err(SnapshotError::ConfigMismatch(
                "closed-loop source population differs from the snapshot's",
            ));
        }
        for n in self.remaining.iter_mut() {
            *n = r.get_usize()?;
        }
        self.rng = StdRng::seed_from_u64(r.get_u64()?);
        self.next_tag = r.get_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::gen::lattice::IrregularConfig;
    use spam_core::SpamRouting;
    use updown::{RootSelection, UpDownLabeling};
    use wormsim::{NetworkSim, SimConfig, SimOutcome};

    fn run(window: usize, per_source: usize, seed: u64) -> SimOutcome {
        let topo = IrregularConfig::with_switches(12).generate(2);
        let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
        let cfg = ClosedLoopConfig {
            window,
            messages_per_source: per_source,
            message_len: 16,
            think: Duration::from_us(2),
        };
        let mut inj = ClosedLoopInjector::new(cfg, &topo, seed).unwrap();
        let mut sim = NetworkSim::new(&topo, SpamRouting::new(&topo, &ud), SimConfig::paper());
        for spec in inj.initial_sends() {
            sim.submit(spec).unwrap();
        }
        sim.run_with_hook(&mut inj)
    }

    /// Max simultaneous outstanding messages of any single source, from
    /// the (gen, completion) intervals of a finished run.
    fn peak_outstanding(out: &SimOutcome, src: NodeId) -> usize {
        let mut events: Vec<(Time, i32)> = Vec::new();
        for m in out.messages.iter().filter(|m| m.spec.src == src) {
            events.push((m.spec.gen_time, 1));
            events.push((m.completed_at.expect("delivered"), -1));
        }
        // Completions at an instant free the window before the injections
        // that react to them (think time > 0 guarantees this anyway).
        events.sort_by_key(|&(t, d)| (t, d));
        let mut cur = 0i32;
        let mut peak = 0i32;
        for (_, d) in events {
            cur += d;
            peak = peak.max(cur);
        }
        peak as usize
    }

    #[test]
    fn every_source_sends_its_quota() {
        let out = run(2, 5, 7);
        assert!(out.all_delivered());
        assert_eq!(out.messages.len(), 12 * 5);
        for src in out.messages.iter().map(|m| m.spec.src) {
            let n = out.messages.iter().filter(|m| m.spec.src == src).count();
            assert_eq!(n, 5);
        }
    }

    #[test]
    fn window_bounds_outstanding_messages() {
        for (w, per) in [(1, 4), (2, 6), (3, 3)] {
            let out = run(w, per, 11);
            assert!(out.all_delivered());
            let mut srcs: Vec<NodeId> = out.messages.iter().map(|m| m.spec.src).collect();
            srcs.sort_unstable();
            srcs.dedup();
            for src in srcs {
                let peak = peak_outstanding(&out, src);
                assert!(peak <= w, "source {src} had {peak} > window {w}");
                assert!(peak >= 1);
            }
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let (a, b) = (run(2, 4, 3), run(2, 4, 3));
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.end_time, b.end_time);
    }

    #[test]
    fn bad_configs_are_typed_errors() {
        let topo = IrregularConfig::with_switches(4).generate(0);
        let cfg = ClosedLoopConfig {
            window: 0,
            messages_per_source: 1,
            message_len: 16,
            think: Duration::ZERO,
        };
        assert!(matches!(
            ClosedLoopInjector::new(cfg, &topo, 0),
            Err(TrafficError::ZeroDuration { what: "window" })
        ));
    }
}
