//! Property tests for the workload library's new patterns: every
//! generated stream is time-sorted, self-send-free, duplicate-free, and
//! confined to its topology/population, and closed-loop injection never
//! exceeds its outstanding-message bound.

use desim::{Duration, Time};
use netgraph::gen::lattice::IrregularConfig;
use netgraph::NodeId;
use proptest::prelude::*;
use spam_core::SpamRouting;
use traffic::{
    ArrivalKind, BroadcastStormConfig, ClosedLoopConfig, ClosedLoopInjector, HotspotConfig,
    IncastConfig, MixedTrafficConfig, PermutationConfig, PermutationPattern,
};
use updown::{RootSelection, UpDownLabeling};
use wormsim::{MessageSpec, NetworkSim, SimConfig};

/// The shared stream invariants every open-loop generator must uphold.
fn assert_stream_invariants(specs: &[MessageSpec], topo: &netgraph::Topology) {
    let mut prev = None;
    for (i, s) in specs.iter().enumerate() {
        // validate() checks: src is a processor, dests are processors,
        // no src-in-dests, no duplicate dests, len >= 2.
        s.validate(topo).unwrap();
        assert_eq!(s.tag, i as u64, "tags number the stream in order");
        if let Some(p) = prev {
            assert!(s.gen_time >= p, "stream must be time-sorted");
        }
        prev = Some(s.gen_time);
    }
}

fn arrival_of(pick: u8) -> ArrivalKind {
    match pick % 4 {
        0 => ArrivalKind::NegativeBinomial { r: 1 },
        1 => ArrivalKind::Poisson,
        2 => ArrivalKind::Deterministic,
        _ => ArrivalKind::OnOff {
            r: 1,
            mean_on_us: 50,
            mean_off_us: 150,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn hotspot_streams_hold_invariants(
        topo_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        switches in 8usize..40,
        hot_nodes in 1usize..5,
        hot_milli in 0u64..=1000,
        arrival_pick in any::<u8>(),
        messages in 1usize..150,
    ) {
        let topo = IrregularConfig::with_switches(switches).generate(topo_seed);
        let cfg = HotspotConfig {
            hot_nodes,
            hot_fraction: hot_milli as f64 / 1000.0,
            rate_per_node_per_us: 0.02,
            message_len: 16,
            messages,
            arrival: arrival_of(arrival_pick),
        };
        let specs = cfg.generate(&topo, stream_seed).unwrap();
        prop_assert_eq!(specs.len(), messages);
        assert_stream_invariants(&specs, &topo);
        prop_assert!(specs.iter().all(|s| s.is_unicast()));
        // Purity: same seed, same stream.
        prop_assert_eq!(specs, cfg.generate(&topo, stream_seed).unwrap());
    }

    #[test]
    fn permutation_streams_hold_invariants(
        topo_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        switches in 8usize..40,
        transpose in any::<bool>(),
        arrival_pick in any::<u8>(),
        per_node in 1usize..6,
    ) {
        let (topo, layout) =
            IrregularConfig::with_switches(switches).generate_with_layout(topo_seed);
        let cfg = PermutationConfig {
            pattern: if transpose {
                PermutationPattern::Transpose
            } else {
                PermutationPattern::BitComplement
            },
            rate_per_node_per_us: 0.02,
            message_len: 16,
            messages_per_node: per_node,
            arrival: arrival_of(arrival_pick),
        };
        let specs = cfg.generate(&topo, &layout, stream_seed).unwrap();
        assert_stream_invariants(&specs, &topo);
        prop_assert!(specs.iter().all(|s| s.is_unicast()));
        // Each non-silent source sends exactly `per_node` messages, all
        // to its fixed partner.
        let mut srcs: Vec<NodeId> = specs.iter().map(|s| s.src).collect();
        srcs.sort_unstable();
        srcs.dedup();
        for src in srcs {
            let mine: Vec<&MessageSpec> =
                specs.iter().filter(|s| s.src == src).collect();
            prop_assert_eq!(mine.len(), per_node);
            prop_assert!(mine.iter().all(|s| s.dests == mine[0].dests));
        }
    }

    #[test]
    fn incast_streams_hold_invariants(
        topo_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        switches in 8usize..40,
        servers in 1usize..5,
        arrival_pick in any::<u8>(),
        messages in 1usize..150,
    ) {
        let topo = IrregularConfig::with_switches(switches).generate(topo_seed);
        let cfg = IncastConfig {
            servers,
            rate_per_client_per_us: 0.02,
            message_len: 16,
            messages,
            arrival: arrival_of(arrival_pick),
        };
        let specs = cfg.generate(&topo, stream_seed).unwrap();
        prop_assert_eq!(specs.len(), messages);
        assert_stream_invariants(&specs, &topo);
        let mut procs: Vec<NodeId> = topo.processors().collect();
        procs.sort_unstable();
        let server_set = &procs[..servers];
        for s in &specs {
            prop_assert!(server_set.contains(&s.dests[0]));
            prop_assert!(!server_set.contains(&s.src));
        }
    }

    #[test]
    fn broadcast_storm_holds_invariants(
        topo_seed in any::<u64>(),
        switches in 4usize..32,
        stagger in 0u64..500,
    ) {
        let topo = IrregularConfig::with_switches(switches).generate(topo_seed);
        let cfg = BroadcastStormConfig {
            message_len: 8,
            stagger: Duration::from_ns(stagger),
        };
        let specs = cfg.generate(&topo).unwrap();
        prop_assert_eq!(specs.len(), switches);
        assert_stream_invariants(&specs, &topo);
        for s in &specs {
            prop_assert_eq!(s.dests.len(), switches - 1);
        }
    }

    #[test]
    fn mixed_within_population_holds_invariants(
        topo_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        pop_size in 4usize..16,
        messages in 1usize..120,
    ) {
        let topo = IrregularConfig::with_switches(24).generate(topo_seed);
        let procs: Vec<NodeId> = topo.processors().collect();
        let pop = &procs[..pop_size];
        let cfg = MixedTrafficConfig::figure3(0.02, 2, messages);
        let specs = cfg.generate_within(&topo, pop, stream_seed).unwrap();
        assert_stream_invariants(&specs, &topo);
        for s in &specs {
            prop_assert!(pop.contains(&s.src));
            prop_assert!(s.dests.iter().all(|d| pop.contains(d)));
        }
    }

    #[test]
    fn closed_loop_never_exceeds_its_window(
        seed in any::<u64>(),
        window in 1usize..4,
        per_source in 1usize..6,
    ) {
        let topo = IrregularConfig::with_switches(10).generate(3);
        let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
        let cfg = ClosedLoopConfig {
            window,
            messages_per_source: per_source,
            message_len: 8,
            think: Duration::from_us(1),
        };
        let mut inj = ClosedLoopInjector::new(cfg, &topo, seed).unwrap();
        let mut sim = NetworkSim::new(&topo, SpamRouting::new(&topo, &ud), SimConfig::paper());
        for spec in inj.initial_sends() {
            sim.submit(spec).unwrap();
        }
        let out = sim.run_with_hook(&mut inj);
        prop_assert!(out.all_delivered());
        prop_assert_eq!(out.messages.len(), 10 * per_source);
        // Replay each source's (gen, complete) intervals: the number of
        // in-flight messages never exceeds the window.
        let mut srcs: Vec<NodeId> = out.messages.iter().map(|m| m.spec.src).collect();
        srcs.sort_unstable();
        srcs.dedup();
        for src in srcs {
            let mut events: Vec<(Time, i32)> = Vec::new();
            for m in out.messages.iter().filter(|m| m.spec.src == src) {
                m.spec.validate(&topo).unwrap();
                events.push((m.spec.gen_time, 1));
                events.push((m.completed_at.unwrap(), -1));
            }
            events.sort_by_key(|&(t, d)| (t, d));
            let mut cur = 0i32;
            for (_, d) in events {
                cur += d;
                prop_assert!(cur <= window as i32, "window exceeded at {src}");
            }
        }
    }
}
