//! Property tests for the workload generators: every generated stream is
//! valid against its topology, matches its configuration, and is a pure
//! function of the seed.

use netgraph::gen::lattice::IrregularConfig;
use proptest::prelude::*;
use traffic::{ArrivalKind, DestinationSampler, MixedTrafficConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn generated_streams_are_valid_and_sized(
        switches in 8usize..40,
        topo_seed in any::<u64>(),
        stream_seed in any::<u64>(),
        rate_milli in 5u64..50,       // 0.005 .. 0.05 per µs
        k in 2usize..6,
        messages in 1usize..120,
    ) {
        let topo = IrregularConfig::with_switches(switches).generate(topo_seed);
        let rate = rate_milli as f64 / 1000.0;
        let cfg = MixedTrafficConfig::figure3(rate, k, messages);
        let specs = cfg.generate(&topo, stream_seed).unwrap();
        prop_assert_eq!(specs.len(), messages);
        let mut prev = None;
        for (i, s) in specs.iter().enumerate() {
            s.validate(&topo).unwrap();
            prop_assert_eq!(s.tag, i as u64);
            prop_assert!(s.is_unicast() || s.dests.len() == k);
            if let Some(p) = prev {
                prop_assert!(s.gen_time >= p, "stream must be time-sorted");
            }
            prev = Some(s.gen_time);
        }
    }

    #[test]
    fn streams_are_pure_functions_of_seed(
        topo_seed in any::<u64>(),
        stream_seed in any::<u64>(),
    ) {
        let topo = IrregularConfig::with_switches(16).generate(topo_seed);
        let cfg = MixedTrafficConfig::figure3(0.02, 4, 60);
        prop_assert_eq!(
            cfg.generate(&topo, stream_seed).unwrap(),
            cfg.generate(&topo, stream_seed).unwrap()
        );
    }

    #[test]
    fn samplers_produce_valid_destination_sets(
        topo_seed in any::<u64>(),
        sample_seed in any::<u64>(),
        count in 1usize..10,
    ) {
        use rand::SeedableRng;
        let topo = IrregularConfig::with_switches(16).generate(topo_seed);
        let procs: Vec<_> = topo.processors().collect();
        let src = procs[0];
        let mut rng = rand::rngs::StdRng::seed_from_u64(sample_seed);
        for sampler in [
            DestinationSampler::UniformRandom { count },
            DestinationSampler::Cluster { count },
            DestinationSampler::Broadcast,
        ] {
            let d = sampler.sample(&topo, src, &mut rng).unwrap();
            prop_assert!(!d.is_empty());
            prop_assert!(!d.contains(&src));
            let mut sorted = d.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), d.len(), "no duplicates");
            for &p in &d {
                prop_assert!(topo.is_processor(p));
            }
            if matches!(sampler, DestinationSampler::Broadcast) {
                prop_assert_eq!(d.len(), procs.len() - 1);
            } else {
                prop_assert_eq!(d.len(), count);
            }
        }
    }

    #[test]
    fn all_arrival_kinds_generate(
        topo_seed in any::<u64>(),
        kind_pick in 0u8..3,
    ) {
        let topo = IrregularConfig::with_switches(12).generate(topo_seed);
        let arrival = match kind_pick {
            0 => ArrivalKind::NegativeBinomial { r: 3 },
            1 => ArrivalKind::Poisson,
            _ => ArrivalKind::Deterministic,
        };
        let cfg = MixedTrafficConfig {
            arrival,
            ..MixedTrafficConfig::figure3(0.01, 3, 40)
        };
        let specs = cfg.generate(&topo, 9).unwrap();
        prop_assert_eq!(specs.len(), 40);
    }
}
