//! Property-based verification of the paper's Theorems 1 and 2: SPAM is
//! deadlock-free and livelock-free — every message is eventually delivered
//! — on arbitrary connected topologies, with single-flit buffers, any
//! number of concurrent unicasts and multicasts, any selection policy, and
//! any spanning-tree root.
//!
//! The simulator *detects* rather than prevents deadlock (and the engine
//! test-suite shows the detector firing on a deliberately cyclic routing
//! plan), so `all_delivered()` over randomized runs is genuine evidence.

use netgraph::gen::lattice::{IrregularConfig, LatticeStrategy};
use netgraph::gen::regular::{hypercube, mesh2d, torus2d};
use netgraph::{NodeId, Topology};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use spam_core::{SelectionPolicy, SpamRouting};
use updown::{RootSelection, UpDownLabeling};
use wormsim::{MessageSpec, NetworkSim, SimConfig};

/// Runs `n_msgs` random messages over `topo` and asserts full delivery.
fn random_traffic_delivers(
    topo: &Topology,
    root: RootSelection,
    policy: SelectionPolicy,
    n_msgs: usize,
    max_dests: usize,
    seed: u64,
) {
    let ud = UpDownLabeling::build(topo, root);
    let spam = SpamRouting::new(topo, &ud).with_policy(policy);
    let mut sim = NetworkSim::new(topo, spam, SimConfig::paper());
    let procs: Vec<NodeId> = topo.processors().collect();
    assert!(procs.len() >= 2, "need at least two processors");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    for i in 0..n_msgs {
        let src = procs[rng.gen_range(0..procs.len())];
        let k = rng.gen_range(1..=max_dests.min(procs.len() - 1));
        let mut others: Vec<NodeId> = procs.iter().copied().filter(|&p| p != src).collect();
        others.shuffle(&mut rng);
        others.truncate(k);
        let gen_ns = rng.gen_range(0..20_000u64);
        sim.submit(
            MessageSpec::multicast(src, others, rng.gen_range(2..=160))
                .at(desim::Time::from_ns(gen_ns))
                .tag(i as u64),
        )
        .unwrap();
    }
    let out = sim.run();
    assert!(
        out.all_delivered(),
        "deadlock/livelock under seed {seed}: {:?}",
        out.deadlock
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1 + 2 on the paper's own topology distribution.
    #[test]
    fn spam_never_deadlocks_on_irregular_lattices(
        switches in 8usize..40,
        topo_seed in any::<u64>(),
        traffic_seed in any::<u64>(),
        n_msgs in 1usize..24,
    ) {
        let topo = IrregularConfig::with_switches(switches).generate(topo_seed);
        random_traffic_delivers(
            &topo,
            RootSelection::LowestId,
            SelectionPolicy::MinResidualDistance,
            n_msgs,
            8,
            traffic_seed,
        );
    }

    /// Robustness across root choices and selection policies (the proof in
    /// the paper is independent of both).
    #[test]
    fn spam_never_deadlocks_for_any_root_or_policy(
        topo_seed in any::<u64>(),
        traffic_seed in any::<u64>(),
        root_pick in 0u8..4,
        policy_pick in 0u8..3,
    ) {
        let topo = IrregularConfig::with_switches(20)
            .strategy(LatticeStrategy::UniformRetry)
            .generate(topo_seed);
        let root = match root_pick {
            0 => RootSelection::LowestId,
            1 => RootSelection::MaxDegree,
            2 => RootSelection::MinEccentricity,
            _ => RootSelection::RandomSeeded(topo_seed),
        };
        let policy = match policy_pick {
            0 => SelectionPolicy::MinResidualDistance,
            1 => SelectionPolicy::FirstLegal,
            _ => SelectionPolicy::RandomLegal { seed: traffic_seed },
        };
        random_traffic_delivers(&topo, root, policy, 12, 6, traffic_seed);
    }

    /// §5: the same algorithm runs unmodified on regular topologies.
    #[test]
    fn spam_never_deadlocks_on_regular_topologies(
        traffic_seed in any::<u64>(),
        which in 0u8..3,
    ) {
        let topo = match which {
            0 => mesh2d(4, 4),
            1 => torus2d(4, 4),
            _ => hypercube(4),
        };
        random_traffic_delivers(
            &topo,
            RootSelection::MinEccentricity,
            SelectionPolicy::MinResidualDistance,
            16,
            8,
            traffic_seed,
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Theorems 1 + 2 survive reconfiguration: at a ≥10 % link-fault rate
    /// on 64-switch §4 lattices, SPAM on each relabeled surviving
    /// component delivers to **all reachable destinations** — a broadcast
    /// to the entire component plus concurrent random multicasts, with no
    /// deadlock, no livelock, and no routing errors.
    #[test]
    fn spam_delivers_to_all_reachable_destinations_on_degraded_lattices(
        topo_seed in any::<u64>(),
        fault_seed in any::<u64>(),
        traffic_seed in any::<u64>(),
        rate in 0.10f64..0.30,
    ) {
        use spam_faults::{DegradedNetwork, FaultModel};

        let base = IrregularConfig::with_switches(64).generate(topo_seed);
        let plan = FaultModel::IidLinks { rate }.sample(&base, None, fault_seed);
        let net = DegradedNetwork::build(&base, &plan, None);
        // Exercise every surviving island that can host traffic, not just
        // the largest one.
        for comp in &net.components {
            let procs = comp.processors(&net.topo);
            if procs.len() < 2 {
                continue;
            }
            let spam = SpamRouting::new(&net.topo, &comp.labeling);
            let mut sim = NetworkSim::new(&net.topo, spam, SimConfig::paper());
            let mut rng = rand::rngs::StdRng::seed_from_u64(traffic_seed);
            // A full-component broadcast: all reachable destinations.
            let bsrc = procs[rng.gen_range(0..procs.len())];
            let all: Vec<NodeId> = procs.iter().copied().filter(|&p| p != bsrc).collect();
            sim.submit(MessageSpec::multicast(bsrc, all, 128).tag(0)).unwrap();
            // Plus concurrent random multicasts for contention.
            for i in 1..8u64 {
                let src = procs[rng.gen_range(0..procs.len())];
                let k = rng.gen_range(1..=8.min(procs.len() - 1));
                let mut others: Vec<NodeId> =
                    procs.iter().copied().filter(|&p| p != src).collect();
                others.shuffle(&mut rng);
                others.truncate(k);
                sim.submit(
                    MessageSpec::multicast(src, others, rng.gen_range(2..=128))
                        .at(desim::Time::from_ns(rng.gen_range(0..20_000)))
                        .tag(i),
                )
                .unwrap();
            }
            let out = sim.run();
            prop_assert!(
                out.all_delivered(),
                "degraded delivery failed (topo {}, fault {}, rate {}): error {:?}, deadlock {:?}",
                topo_seed, fault_seed, rate, out.error, out.deadlock
            );
        }
    }
}

/// Destinations lost to a dead zone must surface as typed
/// `UnreachableDestination` errors — for unicasts and for multicasts that
/// mix reachable and stranded destinations — in debug and release alike,
/// never as a panic (regression tests for the lca_of/dead-end-assert
/// panics found in review).
#[test]
fn stranded_destinations_yield_typed_errors() {
    use spam_faults::{DegradedNetwork, FaultModel};
    use wormsim::{RouteError, SimError};

    let base = IrregularConfig::with_switches(64).generate(41);
    let plan = FaultModel::IidSwitches { rate: 0.2 }.sample(&base, None, 5);
    assert!(!plan.switches.is_empty());
    let net = DegradedNetwork::build(&base, &plan, None);
    let comp = net.largest().unwrap();
    let procs = comp.processors(&net.topo);
    let stranded = base.processor_of(plan.switches[0]).unwrap();
    let spam = SpamRouting::new(&net.topo, &comp.labeling);

    // Unicast to a stranded processor, from *every* surviving source (the
    // review probe needed a non-root source to trip the debug assert).
    for &src in procs.iter().take(8) {
        let mut sim = NetworkSim::new(&net.topo, spam.clone(), SimConfig::paper());
        sim.submit(MessageSpec::unicast(src, stranded, 16)).unwrap();
        let out = sim.run();
        assert!(!out.all_delivered());
        assert!(
            matches!(
                out.error,
                Some(SimError::Route {
                    error: RouteError::UnreachableDestination { dest },
                    ..
                }) if dest == stranded
            ),
            "unicast from {src}: {:?}",
            out.error
        );
    }

    // A multicast mixing reachable and stranded destinations (this used
    // to panic inside lca_of at submit-to-run time).
    let mut sim = NetworkSim::new(&net.topo, spam, SimConfig::paper());
    sim.submit(MessageSpec::multicast(
        procs[0],
        vec![procs[1], stranded, procs[2]],
        16,
    ))
    .unwrap();
    let out = sim.run();
    assert!(!out.all_delivered());
    assert!(
        matches!(
            out.error,
            Some(SimError::Route {
                error: RouteError::UnreachableDestination { dest },
                ..
            }) if dest == stranded
        ),
        "mixed multicast: {:?}",
        out.error
    );

    // A stranded *source* is rejected at submit time.
    let mut sim = NetworkSim::new(
        &net.topo,
        SpamRouting::new(&net.topo, &net.largest().unwrap().labeling),
        SimConfig::paper(),
    );
    assert_eq!(
        sim.submit(MessageSpec::unicast(stranded, procs[0], 16)),
        Err(wormsim::SpecError::SourceDetached(stranded))
    );
}

/// Broadcast from every processor of one fixed network — the worst case
/// for root contention — must always deliver.
#[test]
fn broadcast_storm_delivers() {
    let topo = IrregularConfig::with_switches(24).generate(7);
    let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
    let spam = SpamRouting::new(&topo, &ud);
    let procs: Vec<NodeId> = topo.processors().collect();
    let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper());
    for (i, &src) in procs.iter().enumerate() {
        let dests: Vec<NodeId> = procs.iter().copied().filter(|&p| p != src).collect();
        sim.submit(
            MessageSpec::multicast(src, dests, 128)
                .tag(i as u64)
                .at(desim::Time::ZERO),
        )
        .unwrap();
    }
    let out = sim.run();
    assert!(out.all_delivered(), "{:?}", out.deadlock);
    assert_eq!(out.counters.messages_completed, procs.len() as u64);
}

/// Sustained random traffic over a longer horizon (a miniature Figure 3
/// load) — checks that the OCRQ discipline stays live under persistent
/// contention, not just one-shot bursts.
#[test]
fn sustained_mixed_traffic_delivers() {
    let topo = IrregularConfig::with_switches(32).generate(11);
    let ud = UpDownLabeling::build(&topo, RootSelection::LowestId);
    let spam = SpamRouting::new(&topo, &ud);
    let procs: Vec<NodeId> = topo.processors().collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper());
    let mut t = 0u64;
    for i in 0..300 {
        t += rng.gen_range(50..2_000);
        let src = procs[rng.gen_range(0..procs.len())];
        let is_multicast = rng.gen_bool(0.1);
        let k = if is_multicast {
            rng.gen_range(2..=16)
        } else {
            1
        };
        let mut others: Vec<NodeId> = procs.iter().copied().filter(|&p| p != src).collect();
        others.shuffle(&mut rng);
        others.truncate(k);
        sim.submit(
            MessageSpec::multicast(src, others, 128)
                .at(desim::Time::from_ns(t))
                .tag(i),
        )
        .unwrap();
    }
    let out = sim.run();
    assert!(out.all_delivered(), "{:?}", out.deadlock);
}
