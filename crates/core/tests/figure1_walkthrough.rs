//! Replays the worked example of §3.2 on the Figure 1 network and checks
//! the protocol trace against the paper's narrative:
//!
//! > "Assume that node 5 wishes to send a multicast message to nodes 8, 9,
//! > 10, and 11. The least common ancestor of these destinations is node
//! > 4. ... The message enqueues a request at node 4 for the down tree
//! > channels to nodes 6 and 7. ... The head entering node 6 enqueues a
//! > request for the down tree channels to nodes 8, 9, and 10 while the
//! > head entering node 7 enqueues a request for the down tree channel to
//! > node 11. Assume that the down tree channel to node 8 is busy while
//! > the down tree channels to nodes 9, 10, and 11 are all free. In this
//! > case, the head at node 6 does not immediately acquire all of its
//! > requested down tree channels but the head at node 7 does ... bubble
//! > flits are propagated to the output buffer at node 4 for channel
//! > (4,7) until the third flit is able to advance."

use desim::Time;
use netgraph::{ChannelId, NodeId};
use spam_core::SpamRouting;
use updown::{RootSelection, UpDownLabeling};
use wormsim::{MessageSpec, MsgId, NetworkSim, SimConfig, TraceEvent};

struct Walkthrough {
    topo: netgraph::Topology,
    labels: netgraph::gen::fixtures::Figure1Labels,
    ud: UpDownLabeling,
}

impl Walkthrough {
    fn new() -> Self {
        let (topo, labels) = netgraph::gen::fixtures::figure1();
        let root = labels.by_label(1).unwrap();
        let ud = UpDownLabeling::build(&topo, RootSelection::Fixed(root));
        Walkthrough { topo, labels, ud }
    }

    fn by(&self, l: u32) -> NodeId {
        self.labels.by_label(l).unwrap()
    }

    fn ch(&self, a: u32, b: u32) -> ChannelId {
        self.topo.channel_between(self.by(a), self.by(b)).unwrap()
    }
}

#[test]
fn multicast_requests_match_the_paper_exactly() {
    let w = Walkthrough::new();
    let spam = SpamRouting::new(&w.topo, &w.ud);
    let mut sim = NetworkSim::new(&w.topo, spam, SimConfig::paper());
    sim.enable_trace();
    sim.submit(MessageSpec::multicast(
        w.by(5),
        vec![w.by(8), w.by(9), w.by(10), w.by(11)],
        128,
    ))
    .unwrap();
    let out = sim.run();
    assert!(out.all_delivered());
    let t = &out.trace;
    let m = MsgId(0);

    // "The message enqueues a request at node 4 for the down tree channels
    // to nodes 6 and 7."
    assert_eq!(
        t.requests_at(m, w.by(4)),
        Some(vec![w.ch(4, 6), w.ch(4, 7)])
    );
    // "The head entering node 6 enqueues a request for the down tree
    // channels to nodes 8, 9, and 10 ..."
    assert_eq!(
        t.requests_at(m, w.by(6)),
        Some(vec![w.ch(6, 8), w.ch(6, 9), w.ch(6, 10)])
    );
    // "... while the head entering node 7 enqueues a request for the down
    // tree channel to node 11."
    assert_eq!(t.requests_at(m, w.by(7)), Some(vec![w.ch(7, 11)]));

    // Header itinerary: 5's switch is 2; the distance-priority selection
    // takes the direct down tree channel (2,4) — "one possible path is
    // 5,2,3,4", ours is the shorter legal 5,2,4.
    assert_eq!(
        t.itinerary(m),
        vec![w.by(2), w.by(4), w.by(6), w.by(7)],
        "requests at switch 2, the LCA 4, then both branch switches"
    );

    // Uncontended: no bubbles anywhere.
    assert!(t.bubbles(m).is_empty());
}

#[test]
fn busy_channel_to_node8_reproduces_the_bubble_narrative() {
    let w = Walkthrough::new();
    let spam = SpamRouting::new(&w.topo, &w.ud);
    let mut sim = NetworkSim::new(&w.topo, spam, SimConfig::paper());
    sim.enable_trace();

    // Make "the down tree channel to node 8 busy": processor 9 sends a
    // long unicast to 8 (path 9 -> 6 -> 8) which owns channel (6,8) when
    // the multicast's head reaches node 6.
    sim.submit(
        MessageSpec::unicast(w.by(9), w.by(8), 1024)
            .tag(7)
            .at(Time::ZERO),
    )
    .unwrap();
    sim.submit(
        MessageSpec::multicast(w.by(5), vec![w.by(8), w.by(9), w.by(10), w.by(11)], 128)
            .tag(0)
            .at(Time::from_us(1)),
    )
    .unwrap();
    let out = sim.run();
    assert!(out.all_delivered(), "{:?}", out.deadlock);
    let t = &out.trace;
    let mc = MsgId(1);

    // "the head at node 6 does not immediately acquire all of its
    // requested down tree channels but the head at node 7 does":
    // acquisition at 7 strictly precedes acquisition at 6 in the trace.
    let acq_order: Vec<NodeId> = t
        .of_msg(mc)
        .filter_map(|e| match e {
            TraceEvent::Acquired { node, .. } => Some(*node),
            _ => None,
        })
        .collect();
    let pos = |n: NodeId| acq_order.iter().position(|x| *x == n).unwrap();
    assert!(
        pos(w.by(7)) < pos(w.by(6)),
        "head at 7 must acquire before the blocked head at 6: {acq_order:?}"
    );

    // "bubble flits are propagated to the output buffer at node 4 for
    // channel (4,7)": every bubble of the multicast is inserted at node 4
    // into channel (4,7).
    let bubbles = t.bubbles(mc);
    assert!(!bubbles.is_empty(), "the free branch must receive bubbles");
    for (node, ch) in &bubbles {
        assert_eq!(*node, w.by(4), "bubbles originate at the split point");
        assert_eq!(*ch, w.ch(4, 7), "bubbles go to the free branch (4,7)");
    }

    // Every destination still gets the message, and the blocked branch's
    // destinations cannot finish before the interferer released (6,8).
    let interferer_done = t.delivered_at(MsgId(0), w.by(8)).unwrap();
    for dest in [8, 9, 10, 11] {
        let done = t.delivered_at(mc, w.by(dest)).unwrap();
        assert!(
            done > interferer_done,
            "dest {dest} finished at {done} before the interferer at {interferer_done}"
        );
    }
}

#[test]
fn unicast_special_case_reduces_to_unicast_routing() {
    // "if the message is a unicast, the LCA is the destination itself, so
    // the multicast algorithm simply reduces to the unicast algorithm."
    let w = Walkthrough::new();
    let spam = SpamRouting::new(&w.topo, &w.ud);
    let mut sim = NetworkSim::new(&w.topo, spam, SimConfig::paper());
    sim.enable_trace();
    sim.submit(MessageSpec::unicast(w.by(5), w.by(11), 64))
        .unwrap();
    let out = sim.run();
    assert!(out.all_delivered());
    let t = &out.trace;
    // Every request along the way is single-channel (no splits).
    for e in t.of_msg(MsgId(0)) {
        if let TraceEvent::Requested { channels, .. } = e {
            assert_eq!(channels.len(), 1, "unicast worms never branch");
        }
    }
    // Shortest legal route: 5 -> 2(up) -> 4(down tree) -> 7 -> 11.
    assert_eq!(t.itinerary(MsgId(0)), vec![w.by(2), w.by(4), w.by(7)],);
}
