//! Destination partitioning (§5): splitting one large multicast into
//! several smaller tree-based multicasts.
//!
//! The paper observes that as the destination count grows, the worm is
//! increasingly likely to pass through the spanning-tree root — a hot-spot
//! inherited from up*/down* routing — and proposes partitioning the
//! destinations "into groups of contiguous nodes", sending a separate
//! tree-based multicast to each group. This module implements two
//! partitioning strategies evaluated by ablation C.

use netgraph::NodeId;
use updown::UpDownLabeling;
use wormsim::MessageSpec;

/// How destinations are grouped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionStrategy {
    /// Group by the child subtree of the LCA that contains each
    /// destination, then greedily merge the smallest groups until at most
    /// `max_groups` remain. Groups are tree-contiguous, so each sub-worm's
    /// own LCA sits strictly below the original split point whenever the
    /// group lives in one subtree — relieving the root hot-spot.
    SubtreesUnderLca {
        /// Upper bound on the number of sub-multicasts.
        max_groups: usize,
    },
    /// Sort destinations by node id and cut into `groups` equal chunks —
    /// the naive contiguity notion, as a baseline for the ablation.
    IdChunks {
        /// Number of chunks.
        groups: usize,
    },
}

/// Partitions `dests` according to `strategy`. Every returned group is
/// non-empty; their union is exactly `dests` (order within groups follows
/// the input order for subtree grouping, sorted order for id chunks).
pub fn partition_destinations(
    ud: &UpDownLabeling,
    dests: &[NodeId],
    strategy: PartitionStrategy,
) -> Vec<Vec<NodeId>> {
    if dests.is_empty() {
        return Vec::new();
    }
    match strategy {
        PartitionStrategy::SubtreesUnderLca { max_groups } => {
            assert!(max_groups >= 1);
            // The empty set returned early above; every destination is
            // labeled, so the LCA exists.
            #[allow(clippy::expect_used)]
            let lca = ud.lca_of(dests).expect("non-empty destination set");
            // Bucket per child-of-LCA subtree; destinations attached at
            // the LCA itself (its own processor child) land in their own
            // buckets too, since processors are tree children.
            let mut groups: Vec<(NodeId, Vec<NodeId>)> = Vec::new();
            for &d in dests {
                // By LCA definition every destination sits in some
                // child subtree of it.
                #[allow(clippy::expect_used)]
                let child = ud
                    .child_towards(lca, d)
                    .expect("LCA covers all destinations");
                match groups.iter_mut().find(|(c, _)| *c == child) {
                    Some((_, g)) => g.push(d),
                    None => groups.push((child, vec![d])),
                }
            }
            let mut groups: Vec<Vec<NodeId>> = groups.into_iter().map(|(_, g)| g).collect();
            // Merge smallest pairs until the budget is met.
            while groups.len() > max_groups {
                groups.sort_by_key(|g| std::cmp::Reverse(g.len()));
                // Loop guard: len > max_groups >= 1, so two pops' worth
                // of groups exist.
                #[allow(clippy::expect_used)]
                let small = groups.pop().expect("len > max_groups >= 1");
                #[allow(clippy::expect_used)]
                let last = groups.last_mut().expect("len >= 1");
                last.extend(small);
            }
            groups
        }
        PartitionStrategy::IdChunks { groups } => {
            assert!(groups >= 1);
            let mut sorted = dests.to_vec();
            sorted.sort_unstable();
            let k = groups.min(sorted.len());
            let base = sorted.len() / k;
            let extra = sorted.len() % k;
            let mut out = Vec::with_capacity(k);
            let mut it = sorted.into_iter();
            for i in 0..k {
                let take = base + usize::from(i < extra);
                out.push(it.by_ref().take(take).collect());
            }
            out
        }
    }
}

/// Expands one multicast spec into per-group specs (same source, length,
/// generation time; tags become `base_tag + group_index` so results can be
/// correlated). The paper's partitioned scheme sends the sub-worms
/// back-to-back from the same source — each still costs one startup, which
/// is exactly the latency trade-off ablation C measures.
pub fn partition_specs(
    ud: &UpDownLabeling,
    spec: &MessageSpec,
    strategy: PartitionStrategy,
    base_tag: u64,
) -> Vec<MessageSpec> {
    partition_destinations(ud, &spec.dests, strategy)
        .into_iter()
        .enumerate()
        .map(|(i, group)| {
            MessageSpec::multicast(spec.src, group, spec.len)
                .at(spec.gen_time)
                .tag(base_tag + i as u64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::gen::fixtures::figure1;
    use updown::RootSelection;

    fn fig1() -> (
        netgraph::Topology,
        netgraph::gen::fixtures::Figure1Labels,
        UpDownLabeling,
    ) {
        let (t, l) = figure1();
        let ud = UpDownLabeling::build(&t, RootSelection::Fixed(l.by_label(1).unwrap()));
        (t, l, ud)
    }

    #[test]
    fn subtree_partition_groups_by_lca_children() {
        let (_, l, ud) = fig1();
        let by = |x: u32| l.by_label(x).unwrap();
        let dests = vec![by(8), by(9), by(10), by(11)];
        let groups = partition_destinations(
            &ud,
            &dests,
            PartitionStrategy::SubtreesUnderLca { max_groups: 8 },
        );
        // LCA is 4; children 6 (covering 8,9,10) and 7 (covering 11).
        assert_eq!(groups.len(), 2);
        assert!(groups.contains(&vec![by(8), by(9), by(10)]));
        assert!(groups.contains(&vec![by(11)]));
    }

    #[test]
    fn subtree_partition_respects_max_groups() {
        let (_, l, ud) = fig1();
        let by = |x: u32| l.by_label(x).unwrap();
        let dests = vec![by(8), by(9), by(10), by(11)];
        let groups = partition_destinations(
            &ud,
            &dests,
            PartitionStrategy::SubtreesUnderLca { max_groups: 1 },
        );
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 4);
    }

    #[test]
    fn id_chunks_are_balanced_and_sorted() {
        let (_, l, ud) = fig1();
        let by = |x: u32| l.by_label(x).unwrap();
        let dests = vec![by(11), by(8), by(10), by(9)];
        let groups = partition_destinations(&ud, &dests, PartitionStrategy::IdChunks { groups: 3 });
        assert_eq!(groups.len(), 3);
        let sizes: Vec<usize> = groups.iter().map(|g| g.len()).collect();
        assert_eq!(sizes, vec![2, 1, 1]);
        let flat: Vec<NodeId> = groups.concat();
        assert_eq!(flat, vec![by(8), by(9), by(10), by(11)]);
    }

    #[test]
    fn more_groups_than_destinations_collapses() {
        let (_, l, ud) = fig1();
        let by = |x: u32| l.by_label(x).unwrap();
        let groups =
            partition_destinations(&ud, &[by(8)], PartitionStrategy::IdChunks { groups: 5 });
        assert_eq!(groups, vec![vec![by(8)]]);
        assert!(
            partition_destinations(&ud, &[], PartitionStrategy::IdChunks { groups: 3 }).is_empty()
        );
    }

    #[test]
    fn partition_specs_preserves_everything_else() {
        let (_, l, ud) = fig1();
        let by = |x: u32| l.by_label(x).unwrap();
        let spec = MessageSpec::multicast(by(5), vec![by(8), by(9), by(11)], 64)
            .at(desim::Time::from_us(3));
        let specs = partition_specs(
            &ud,
            &spec,
            PartitionStrategy::SubtreesUnderLca { max_groups: 8 },
            100,
        );
        assert_eq!(specs.len(), 2);
        let total: usize = specs.iter().map(|s| s.dests.len()).sum();
        assert_eq!(total, 3);
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.src, by(5));
            assert_eq!(s.len, 64);
            assert_eq!(s.gen_time, desim::Time::from_us(3));
            assert_eq!(s.tag, 100 + i as u64);
        }
    }
}
