//! Phase-layered residual-distance tables.
//!
//! SPAM's legality rules form a three-layer digraph over states
//! `(node, phase)` with monotone phase order `Up → DownCross → DownTree`.
//! For every target node `t`, `dist(t, node, phase)` is the length of the
//! shortest SPAM-legal completion from that state to `t` — the quantity the
//! §4 selection function needs ("prioritizes channels according to the
//! distance from the endpoint of the channel to the LCA node"), made exact.
//!
//! Because every hop chosen by a min-distance selection strictly decreases
//! the residual distance, the tables double as a constructive livelock-
//! freedom proof for the default policy.
//!
//! Tables are precomputed for **all** targets at construction (reverse BFS
//! per target over the layered graph). At the paper's scales (≤ 512 nodes,
//! ≤ ~3500 channels) this is a few milliseconds and ~1.5 MB, and makes the
//! per-hop routing decision a pair of array reads.

use netgraph::{ChannelId, NodeId, Topology};
use std::collections::VecDeque;
use updown::{ChannelClass, UpDownLabeling};

/// Routing phase of a SPAM worm's unicast stage (§3.1 channel ordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Phase {
    /// Still in the up subnetwork; any up channel is allowed.
    #[default]
    Up = 0,
    /// Has used a down cross channel; up channels are forbidden.
    DownCross = 1,
    /// Has used a down tree channel; only down tree channels remain.
    DownTree = 2,
}

impl Phase {
    /// All phases, in constraint order.
    pub const ALL: [Phase; 3] = [Phase::Up, Phase::DownCross, Phase::DownTree];

    #[inline]
    fn idx(self) -> usize {
        self as usize
    }
}

/// Sentinel for "no SPAM-legal completion exists from this state".
pub const UNREACHABLE: u16 = u16::MAX;

/// One precomputed outgoing move of a node: the channel, its endpoint, and
/// its up*/down* class — everything the per-hop legality check needs,
/// gathered into one contiguous record so the routing hot path touches a
/// single cache line instead of three separate tables.
#[derive(Debug, Clone, Copy)]
pub struct NodeMove {
    /// The outgoing channel.
    pub channel: ChannelId,
    /// The channel's endpoint.
    pub dst: NodeId,
    /// The channel's up*/down* class under the labeling the tables were
    /// built with.
    pub class: ChannelClass,
}

/// Exact residual SPAM distances for every (target, node, phase) triple,
/// plus per-node legal-channel slices precomputed at build time.
#[derive(Debug, Clone)]
pub struct RoutingTables {
    n: usize,
    /// `dist[target][3 * node + phase]`, row-major per target.
    dist: Vec<Vec<u16>>,
    /// Flat per-node move records (masked-out channels excluded), in
    /// topology channel order; sliced by `move_bounds`.
    moves: Vec<NodeMove>,
    /// `moves` range of node `v` is `move_bounds[v] .. move_bounds[v+1]`.
    move_bounds: Vec<u32>,
}

impl RoutingTables {
    /// Builds tables for all targets.
    pub fn build(topo: &Topology, ud: &UpDownLabeling) -> Self {
        Self::build_masked(topo, ud, None)
    }

    /// Builds tables for all targets, optionally restricted to the
    /// channels marked alive in `mask` — the live-reconfiguration case,
    /// where routing runs on the base topology but must never count a
    /// dead channel as a legal (or distance-reducing) move.
    pub fn build_masked(topo: &Topology, ud: &UpDownLabeling, mask: Option<&[bool]>) -> Self {
        if let Some(m) = mask {
            assert_eq!(m.len(), topo.num_channels(), "mask covers every channel");
        }
        let n = topo.num_nodes();
        let dist = topo
            .nodes()
            .map(|t| Self::build_for_target(topo, ud, t, mask))
            .collect();
        let mut moves = Vec::with_capacity(topo.num_channels());
        let mut move_bounds = Vec::with_capacity(n + 1);
        move_bounds.push(0);
        for v in topo.nodes() {
            for &c in topo.out_channels(v) {
                if mask.is_some_and(|m| !m[c.index()]) {
                    continue; // a dead channel is never a legal move
                }
                moves.push(NodeMove {
                    channel: c,
                    dst: topo.channel(c).dst,
                    class: ud.class(c),
                });
            }
            move_bounds.push(moves.len() as u32);
        }
        RoutingTables {
            n,
            dist,
            moves,
            move_bounds,
        }
    }

    /// The precomputed (alive) outgoing moves of `node`, in topology
    /// channel order.
    #[inline]
    pub fn moves(&self, node: NodeId) -> &[NodeMove] {
        let lo = self.move_bounds[node.index()] as usize;
        let hi = self.move_bounds[node.index() + 1] as usize;
        &self.moves[lo..hi]
    }

    /// Residual SPAM-legal distance from `(node, phase)` to `target`, in
    /// channels; [`UNREACHABLE`] when no legal completion exists.
    #[inline]
    pub fn dist(&self, target: NodeId, node: NodeId, phase: Phase) -> u16 {
        self.dist[target.index()][3 * node.index() + phase.idx()]
    }

    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Approximate heap footprint in bytes — the quantity an artifact
    /// cache charges its byte budget for one table set. Counts the
    /// distance rows and move records; constant overhead is ignored.
    pub fn approx_bytes(&self) -> usize {
        self.dist.iter().map(|row| row.len() * 2).sum::<usize>()
            + self.moves.len() * std::mem::size_of::<NodeMove>()
            + self.move_bounds.len() * 4
    }

    /// Reverse BFS over the phase-layered graph from `(target, *)`.
    fn build_for_target(
        topo: &Topology,
        ud: &UpDownLabeling,
        target: NodeId,
        mask: Option<&[bool]>,
    ) -> Vec<u16> {
        let n = topo.num_nodes();
        let mut d = vec![UNREACHABLE; 3 * n];
        let mut q = VecDeque::new();
        for ph in Phase::ALL {
            // Arriving at the target in any phase terminates the route.
            d[3 * target.index() + ph.idx()] = 0;
            q.push_back((target, ph));
        }
        while let Some((v, ph_v)) = q.pop_front() {
            let dv = d[3 * v.index() + ph_v.idx()];
            // Find predecessor states (u, ph_u) with a legal edge into
            // (v, ph_v); legality depends on the *edge*, so enumerate v's
            // incoming channels and check which phases could have used them.
            for &c in topo.in_channels(v) {
                if mask.is_some_and(|m| !m[c.index()]) {
                    continue; // a dead channel is never a legal edge
                }
                let u = topo.channel(c).src;
                let preds: &[Phase] = match ud.class(c) {
                    // Up channels keep the worm in the up phase.
                    ChannelClass::UpTree | ChannelClass::UpCross => {
                        if ph_v == Phase::Up {
                            &[Phase::Up]
                        } else {
                            &[]
                        }
                    }
                    // A down cross hop lands in DownCross phase and needs
                    // its endpoint to be an extended ancestor of target.
                    ChannelClass::DownCross => {
                        if ph_v == Phase::DownCross && ud.is_extended_ancestor(v, target) {
                            &[Phase::Up, Phase::DownCross]
                        } else {
                            &[]
                        }
                    }
                    // A down tree hop lands in DownTree phase and needs its
                    // endpoint to be an ancestor of target.
                    ChannelClass::DownTree => {
                        if ph_v == Phase::DownTree && ud.is_ancestor(v, target) {
                            &[Phase::Up, Phase::DownCross, Phase::DownTree]
                        } else {
                            &[]
                        }
                    }
                };
                for &ph_u in preds {
                    let slot = &mut d[3 * u.index() + ph_u.idx()];
                    if *slot == UNREACHABLE {
                        *slot = dv + 1;
                        q.push_back((u, ph_u));
                    }
                }
            }
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::gen::fixtures::figure1;
    use netgraph::gen::lattice::IrregularConfig;
    use updown::RootSelection;

    fn fig1() -> (
        Topology,
        netgraph::gen::fixtures::Figure1Labels,
        UpDownLabeling,
    ) {
        let (t, l) = figure1();
        let ud = UpDownLabeling::build(&t, RootSelection::Fixed(l.by_label(1).unwrap()));
        (t, l, ud)
    }

    #[test]
    fn distance_zero_at_target_any_phase() {
        let (t, l, ud) = fig1();
        let tb = RoutingTables::build(&t, &ud);
        let four = l.by_label(4).unwrap();
        for ph in Phase::ALL {
            assert_eq!(tb.dist(four, four, ph), 0);
        }
    }

    #[test]
    fn figure1_distances_to_lca4() {
        let (t, l, ud) = fig1();
        let tb = RoutingTables::build(&t, &ud);
        let by = |x: u32| l.by_label(x).unwrap();
        let lca = by(4);
        // From node 2 in Up phase: down tree channel (2,4) directly.
        assert_eq!(tb.dist(lca, by(2), Phase::Up), 1);
        // From node 3 in DownCross phase: the cross channel (3,4).
        assert_eq!(tb.dist(lca, by(3), Phase::DownCross), 1);
        // From the source processor 5: 5 -> 2 (up) -> 4 (down tree) = 2.
        assert_eq!(tb.dist(lca, by(5), Phase::Up), 2);
        // From node 6 in DownTree phase the LCA is unreachable (no up moves
        // allowed, 6 is below 4).
        assert_eq!(tb.dist(lca, by(6), Phase::DownTree), UNREACHABLE);
        // But in Up phase node 6 can climb: 6 -> 4 = 1 hop up... up channel
        // (6,4) ends at the target.
        assert_eq!(tb.dist(lca, by(6), Phase::Up), 1);
    }

    #[test]
    fn downtree_phase_distance_is_tree_depth_difference() {
        let (t, l, ud) = fig1();
        let tb = RoutingTables::build(&t, &ud);
        let by = |x: u32| l.by_label(x).unwrap();
        // 4 -> 6 -> 8 strictly down tree.
        assert_eq!(tb.dist(by(8), by(4), Phase::DownTree), 2);
        assert_eq!(tb.dist(by(8), by(6), Phase::DownTree), 1);
        // Sibling subtree is unreachable once in DownTree phase.
        assert_eq!(tb.dist(by(11), by(6), Phase::DownTree), UNREACHABLE);
    }

    #[test]
    fn up_phase_always_reaches_everything() {
        // From any node in Up phase a SPAM route to any other node exists
        // (climb to the root, descend the tree) — the routing-function
        // totality that underlies delivery guarantees.
        let (t, _, ud) = fig1();
        let tb = RoutingTables::build(&t, &ud);
        for u in t.nodes() {
            for v in t.nodes() {
                assert_ne!(
                    tb.dist(v, u, Phase::Up),
                    UNREACHABLE,
                    "no SPAM route {u} -> {v}"
                );
            }
        }
    }

    #[test]
    fn up_phase_totality_on_random_irregular_networks() {
        for seed in 0..5 {
            let t = IrregularConfig::with_switches(24).generate(seed);
            let ud = UpDownLabeling::build(&t, RootSelection::LowestId);
            let tb = RoutingTables::build(&t, &ud);
            for u in t.nodes() {
                for v in t.nodes() {
                    assert_ne!(tb.dist(v, u, Phase::Up), UNREACHABLE);
                }
            }
        }
    }

    #[test]
    fn distances_dominate_bfs_lower_bound() {
        // SPAM-legal routes can never be shorter than unconstrained BFS.
        let t = IrregularConfig::with_switches(20).generate(3);
        let ud = UpDownLabeling::build(&t, RootSelection::LowestId);
        let tb = RoutingTables::build(&t, &ud);
        for v in t.nodes() {
            let bfs = netgraph::algo::bfs_distances(&t, v);
            for u in t.nodes() {
                let d = tb.dist(v, u, Phase::Up);
                assert!(d as u32 >= bfs[u.index()], "SPAM beat BFS {u}->{v}");
            }
        }
    }

    #[test]
    fn min_distance_neighbor_always_exists() {
        // Constructive livelock freedom: from any state at distance k >= 1,
        // some legal move reaches a state at distance k - 1.
        let (t, _, ud) = fig1();
        let tb = RoutingTables::build(&t, &ud);
        for target in t.nodes() {
            for u in t.nodes() {
                for ph in Phase::ALL {
                    let k = tb.dist(target, u, ph);
                    if k == 0 || k == UNREACHABLE {
                        continue;
                    }
                    let mut found = false;
                    for &c in t.out_channels(u) {
                        let v = t.channel(c).dst;
                        let next = match (ud.class(c), ph) {
                            (ChannelClass::UpTree | ChannelClass::UpCross, Phase::Up) => {
                                Some(Phase::Up)
                            }
                            (ChannelClass::DownCross, Phase::Up | Phase::DownCross)
                                if ud.is_extended_ancestor(v, target) =>
                            {
                                Some(Phase::DownCross)
                            }
                            (ChannelClass::DownTree, _) if ud.is_ancestor(v, target) => {
                                Some(Phase::DownTree)
                            }
                            _ => None,
                        };
                        if let Some(nph) = next {
                            if tb.dist(target, v, nph) == k - 1 {
                                found = true;
                                break;
                            }
                        }
                    }
                    assert!(found, "no descent from ({u}, {ph:?}) toward {target}");
                }
            }
        }
    }
}
