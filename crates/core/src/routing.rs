//! The SPAM routing algorithm as a [`wormsim::RoutingAlgorithm`].

use crate::tables::{Phase, RoutingTables, UNREACHABLE};
use netgraph::{ChannelId, NodeId, Topology};
use spam_collections::InlineVec;
use std::sync::Arc;
use updown::{ChannelClass, UpDownLabeling};
use wormsim::{
    MessageSpec, RouteDecision, RouteError, RoutingAlgorithm, SnapReader, SnapWriter, SnapshotError,
};

/// Reusable working memory for SPAM's per-hop decision: the legal-move
/// candidate set of the unicast stage. Owned by the simulation engine and
/// threaded through every [`RoutingAlgorithm::route`] call, so the hot
/// path allocates nothing (the inline capacity covers the paper's 8-port
/// switches; larger degrees spill once and the capacity is retained).
#[derive(Debug, Default)]
pub struct RouteScratch {
    legal: InlineVec<(ChannelId, Phase), 8>,
}

/// How the partially adaptive unicast stage picks among legal channels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionPolicy {
    /// The §4 policy: prefer the channel whose endpoint is closest to the
    /// target (exact residual SPAM distance), ties broken by channel id.
    /// Strictly distance-decreasing, hence livelock-free by construction.
    #[default]
    MinResidualDistance,
    /// Lowest channel id among legal candidates — a deliberately naive
    /// policy for the selection-function ablation. Still livelock-free
    /// (every legal move strictly descends the up*/down* partial order)
    /// but can take far-from-shortest routes.
    FirstLegal,
    /// Deterministically pseudo-random choice among the legal candidates,
    /// keyed on (message tag, router) — models an unbiased adaptive
    /// selector without RNG state in the router.
    RandomLegal {
        /// Seed mixed into the per-decision hash.
        seed: u64,
    },
}

/// Header state carried by a SPAM worm (in hardware: header-flit fields).
#[derive(Debug, Clone)]
pub struct SpamHeader {
    /// Destination processors (shared, immutable).
    pub dests: Arc<[NodeId]>,
    /// The split point: LCA of the destinations (the destination itself
    /// for a unicast).
    pub lca: NodeId,
    /// Channel-ordering phase of the unicast stage.
    pub phase: Phase,
    /// True once the worm has passed the LCA and is in the tree stage.
    pub in_tree: bool,
}

/// SPAM — Single Phase Adaptive Multicast (§3 of the paper).
///
/// Borrows the topology, labeling, and precomputed [`RoutingTables`]
/// (constructed internally). Cheap to clone per simulation is not needed —
/// one instance drives arbitrarily many messages; it is `Sync`, so sweep
/// harnesses can share it across threads.
#[derive(Debug, Clone)]
pub struct SpamRouting<'a> {
    topo: &'a Topology,
    ud: &'a UpDownLabeling,
    tables: Arc<RoutingTables>,
    policy: SelectionPolicy,
    /// Per-channel liveness for degraded-but-not-renumbered networks
    /// (live reconfiguration); `None` means every channel is usable.
    alive: Option<Arc<[bool]>>,
}

impl<'a> SpamRouting<'a> {
    /// Builds SPAM over a labeling, precomputing the distance tables.
    pub fn new(topo: &'a Topology, ud: &'a UpDownLabeling) -> Self {
        SpamRouting {
            topo,
            ud,
            tables: Arc::new(RoutingTables::build(topo, ud)),
            policy: SelectionPolicy::default(),
            alive: None,
        }
    }

    /// Builds SPAM over a labeling of a degraded network that keeps the
    /// base topology's channel ids: channels marked dead in `alive` are
    /// never requested and never count as legal moves, and the distance
    /// tables are computed over the surviving subgraph only. This is the
    /// post-fault epoch router of live reconfiguration — the labeling
    /// should come from [`updown::UpDownLabeling::relabel_after`].
    pub fn new_masked(topo: &'a Topology, ud: &'a UpDownLabeling, alive: &[bool]) -> Self {
        assert_eq!(
            alive.len(),
            topo.num_channels(),
            "liveness mask covers every channel"
        );
        SpamRouting {
            topo,
            ud,
            tables: Arc::new(RoutingTables::build_masked(topo, ud, Some(alive))),
            policy: SelectionPolicy::default(),
            alive: Some(alive.into()),
        }
    }

    /// Builds SPAM over *already computed* tables — the artifact-cache
    /// entry point. `tables` must have been produced by
    /// [`RoutingTables::build`] for exactly this `(topo, ud)` pair;
    /// behavior is then identical to [`Self::new`] while skipping the
    /// all-targets reverse BFS (the expensive part of construction).
    pub fn with_tables(
        topo: &'a Topology,
        ud: &'a UpDownLabeling,
        tables: Arc<RoutingTables>,
    ) -> Self {
        assert_eq!(
            tables.num_nodes(),
            topo.num_nodes(),
            "tables cover every node of the topology"
        );
        SpamRouting {
            topo,
            ud,
            tables,
            policy: SelectionPolicy::default(),
            alive: None,
        }
    }

    /// The masked counterpart of [`Self::with_tables`]: `tables` must come
    /// from [`RoutingTables::build_masked`] over this `(topo, ud, alive)`
    /// triple. Behavior is identical to [`Self::new_masked`] without
    /// rebuilding the per-epoch tables.
    pub fn with_tables_masked(
        topo: &'a Topology,
        ud: &'a UpDownLabeling,
        tables: Arc<RoutingTables>,
        alive: &[bool],
    ) -> Self {
        assert_eq!(
            alive.len(),
            topo.num_channels(),
            "liveness mask covers every channel"
        );
        assert_eq!(
            tables.num_nodes(),
            topo.num_nodes(),
            "tables cover every node of the topology"
        );
        SpamRouting {
            topo,
            ud,
            tables,
            policy: SelectionPolicy::default(),
            alive: Some(alive.into()),
        }
    }

    /// The precomputed tables behind an `Arc`, clonable into an artifact
    /// cache so later runs on the same topology+labeling skip the build.
    pub fn tables_arc(&self) -> Arc<RoutingTables> {
        Arc::clone(&self.tables)
    }

    /// True when channel `c` may carry traffic under this router's view.
    #[inline]
    fn is_alive(&self, c: ChannelId) -> bool {
        self.alive.as_ref().is_none_or(|a| a[c.index()])
    }

    /// Same labeling, different selection policy (shares the tables).
    pub fn with_policy(&self, policy: SelectionPolicy) -> Self {
        SpamRouting {
            policy,
            ..self.clone()
        }
    }

    /// The labeling this router uses.
    pub fn labeling(&self) -> &UpDownLabeling {
        self.ud
    }

    /// The distance tables (exposed for analyses and benchmarks).
    pub fn tables(&self) -> &RoutingTables {
        &self.tables
    }

    /// All SPAM-legal `(channel, successor phase)` moves from `node` in
    /// `phase` towards `target` (§3.1 rules 1–3). Public for tests and for
    /// the adaptivity analyses in the benchmark harness; the simulation
    /// hot path uses [`Self::legal_moves_into`] with reused scratch
    /// storage instead.
    pub fn legal_moves(
        &self,
        node: NodeId,
        phase: Phase,
        target: NodeId,
    ) -> Vec<(ChannelId, Phase)> {
        let mut out = InlineVec::new();
        self.legal_moves_into(node, phase, target, &mut out);
        out.to_vec()
    }

    /// Allocation-free variant of [`Self::legal_moves`]: writes the legal
    /// set into `out` (cleared first). Iterates the routing tables'
    /// precomputed per-node move slice — channel, endpoint, and class come
    /// from one contiguous record, and masked-out (dead) channels were
    /// excluded at table-build time.
    fn legal_moves_into(
        &self,
        node: NodeId,
        phase: Phase,
        target: NodeId,
        out: &mut InlineVec<(ChannelId, Phase), 8>,
    ) {
        out.clear();
        for m in self.tables.moves(node) {
            let next = match (m.class, phase) {
                // Rule 1: up channels while still in the up phase.
                (ChannelClass::UpTree | ChannelClass::UpCross, Phase::Up) => Some(Phase::Up),
                // Rule 2: down cross channels before any down tree use,
                // endpoint an extended ancestor of the target.
                (ChannelClass::DownCross, Phase::Up | Phase::DownCross)
                    if self.ud.is_extended_ancestor(m.dst, target) =>
                {
                    Some(Phase::DownCross)
                }
                // Rule 3: down tree channels anywhere, endpoint an
                // ancestor of the target.
                (ChannelClass::DownTree, _) if self.ud.is_ancestor(m.dst, target) => {
                    Some(Phase::DownTree)
                }
                _ => None,
            };
            if let Some(nph) = next {
                out.push((m.channel, nph));
            }
        }
    }

    /// Applies the selection policy to a non-empty legal set.
    //
    // Caller contract (checked at every call site): `legal` comes from
    // `legal_moves` and was tested non-empty before dispatching here, so
    // the `min_by_key` reductions below cannot see an empty iterator.
    #[allow(clippy::expect_used)]
    fn select(
        &self,
        legal: &[(ChannelId, Phase)],
        target: NodeId,
        node: NodeId,
        tag: u64,
    ) -> (ChannelId, Phase) {
        match self.policy {
            SelectionPolicy::MinResidualDistance => legal
                .iter()
                .copied()
                .min_by_key(|&(c, ph)| {
                    let v = self.topo.channel(c).dst;
                    (self.tables.dist(target, v, ph), c)
                })
                .expect("legal set is non-empty"),
            SelectionPolicy::FirstLegal => legal
                .iter()
                .copied()
                .min_by_key(|&(c, _)| c)
                .expect("legal set is non-empty"),
            SelectionPolicy::RandomLegal { seed } => {
                // Finite legal sets are never routed in circles: any legal
                // move strictly descends the up*/down* order, so a hash
                // pick is safe. SplitMix64 over (seed, tag, node).
                let mut x = seed
                    ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ ((node.0 as u64) << 32 | node.0 as u64);
                x ^= x >> 30;
                x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x ^= x >> 27;
                x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^= x >> 31;
                legal[(x % legal.len() as u64) as usize]
            }
        }
    }

    /// The tree-stage request set at `node`: one down tree channel per
    /// child subtree containing destinations (processor children included —
    /// delivery channels are down tree channels like any other). Test and
    /// analysis API; the hot path is [`Self::tree_requests_into`].
    pub fn tree_requests(&self, node: NodeId, header: &SpamHeader) -> Vec<(ChannelId, SpamHeader)> {
        let mut out = RouteDecision::default();
        self.tree_requests_into(node, header, &mut out);
        out.requests
    }

    /// Allocation-free tree stage: pushes the per-subtree requests into
    /// `out`. Successor headers share the destination set behind an `Arc`,
    /// so each branch header is a refcount bump, not a heap copy.
    fn tree_requests_into(
        &self,
        node: NodeId,
        header: &SpamHeader,
        out: &mut RouteDecision<SpamHeader>,
    ) {
        for &child in self.ud.tree_children(node) {
            if header.dests.iter().any(|&d| self.ud.is_ancestor(child, d)) {
                // `tree_children` enumerates spanning-tree edges, and the
                // spanning tree is a subgraph of the topology's links.
                #[allow(clippy::expect_used)]
                let ch = self
                    .topo
                    .channel_between(node, child)
                    .expect("tree edges are links");
                debug_assert!(
                    self.is_alive(ch),
                    "a relabeled spanning tree only uses surviving links"
                );
                out.push(
                    ch,
                    SpamHeader {
                        dests: header.dests.clone(),
                        lca: header.lca,
                        phase: Phase::DownTree,
                        in_tree: true,
                    },
                );
            }
        }
    }
}

impl RoutingAlgorithm for SpamRouting<'_> {
    type Header = SpamHeader;
    type Scratch = RouteScratch;

    fn initial_header(&self, spec: &MessageSpec) -> Result<SpamHeader, RouteError> {
        // On a degraded network the source's island may have been severed
        // from the routable component: it can reach nothing. Reject before
        // any flit moves (rule 1 would otherwise let the worm wander its
        // island's up channels with no completion existing).
        if !self.ud.is_labeled(spec.src) {
            return Err(RouteError::SourceDisconnected { src: spec.src });
        }
        // Likewise a destination may have been lost to the dead zone: no
        // labeling covers it, no LCA exists, and no routing algorithm
        // could reach it.
        if let Some(&dead) = spec.dests.iter().find(|&&d| !self.ud.is_labeled(d)) {
            return Err(RouteError::UnreachableDestination { dest: dead });
        }
        // The engine rejects empty destination sets at submit, and the
        // labeled-ness of every destination was just checked above.
        #[allow(clippy::expect_used)]
        let lca = self
            .ud
            .lca_of(&spec.dests)
            .expect("validated specs have labeled destinations");
        Ok(SpamHeader {
            dests: spec.dests.clone().into(),
            lca,
            phase: Phase::Up,
            in_tree: false,
        })
    }

    fn snapshot_name(&self) -> &'static str {
        "spam"
    }

    fn encode_header(&self, h: &SpamHeader, w: &mut SnapWriter) -> Result<(), SnapshotError> {
        w.put_len(h.dests.len());
        for d in h.dests.iter() {
            w.put_u32(d.0);
        }
        w.put_u32(h.lca.0);
        w.put_u8(h.phase as u8);
        w.put_bool(h.in_tree);
        Ok(())
    }

    fn decode_header(&self, r: &mut SnapReader) -> Result<SpamHeader, SnapshotError> {
        let n = r.get_len()?;
        let mut dests = Vec::with_capacity(n);
        for _ in 0..n {
            dests.push(NodeId(r.get_u32()?));
        }
        Ok(SpamHeader {
            dests: dests.into(),
            lca: NodeId(r.get_u32()?),
            phase: match r.get_u8()? {
                0 => Phase::Up,
                1 => Phase::DownCross,
                2 => Phase::DownTree,
                _ => return Err(SnapshotError::Corrupt("unknown SPAM routing phase")),
            },
            in_tree: r.get_bool()?,
        })
    }

    fn route(
        &self,
        node: NodeId,
        _in_ch: ChannelId,
        header: &SpamHeader,
        spec: &MessageSpec,
        scratch: &mut RouteScratch,
        out: &mut RouteDecision<SpamHeader>,
    ) -> Result<(), RouteError> {
        // Tree stage: at or below the LCA, split along down tree channels.
        if header.in_tree || node == header.lca {
            self.tree_requests_into(node, header, out);
            if out.requests.is_empty() {
                // Theorem 1 guarantees this never fires on a labeled
                // connected component; it surfaces stale labelings and
                // out-of-component destinations on degraded networks.
                return Err(RouteError::NoDestinationSubtree { node });
            }
            return Ok(());
        }
        // Unicast stage towards the LCA.
        self.legal_moves_into(node, header.phase, header.lca, &mut scratch.legal);
        if scratch.legal.is_empty() {
            return Err(RouteError::NoLegalMove {
                node,
                target: header.lca,
            });
        }
        let (ch, next_phase) = self.select(scratch.legal.as_slice(), header.lca, node, spec.tag);
        debug_assert_ne!(
            self.tables
                .dist(header.lca, self.topo.channel(ch).dst, next_phase),
            UNREACHABLE,
            "selected a dead-end channel"
        );
        out.push(
            ch,
            SpamHeader {
                dests: header.dests.clone(),
                lca: header.lca,
                phase: next_phase,
                in_tree: false,
            },
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::gen::fixtures::figure1;
    use updown::RootSelection;
    use wormsim::{NetworkSim, SimConfig};

    fn fig1() -> (
        Topology,
        netgraph::gen::fixtures::Figure1Labels,
        UpDownLabeling,
    ) {
        let (t, l) = figure1();
        let ud = UpDownLabeling::build(&t, RootSelection::Fixed(l.by_label(1).unwrap()));
        (t, l, ud)
    }

    /// Channel endpoints of a legal-move / request list — the quantity
    /// every routing test asserts on (one helper instead of six ad-hoc
    /// `map(..).collect()` chains).
    fn dsts<T>(t: &Topology, items: &[(ChannelId, T)]) -> Vec<NodeId> {
        items.iter().map(|(c, _)| t.channel(*c).dst).collect()
    }

    #[test]
    fn initial_header_computes_lca() {
        let (t, l, ud) = fig1();
        let spam = SpamRouting::new(&t, &ud);
        let by = |x: u32| l.by_label(x).unwrap();
        let spec = MessageSpec::multicast(by(5), vec![by(8), by(9), by(10), by(11)], 128);
        let h = spam.initial_header(&spec).unwrap();
        assert_eq!(h.lca, by(4));
        assert_eq!(h.phase, Phase::Up);
        assert!(!h.in_tree);
        // Unicast: LCA is the destination itself (§3.2).
        let u = spam
            .initial_header(&MessageSpec::unicast(by(5), by(8), 8))
            .unwrap();
        assert_eq!(u.lca, by(8));
    }

    #[test]
    fn legal_moves_respect_rules_at_node2() {
        let (t, l, ud) = fig1();
        let spam = SpamRouting::new(&t, &ud);
        let by = |x: u32| l.by_label(x).unwrap();
        // Routing towards LCA 4 from node 2 in Up phase: legal channels are
        // the up channel (2,1), the down cross (2,3) (3 ext-anc of 4), and
        // the down tree (2,4) (4 anc of itself). Not (2,5): 5 is a leaf
        // processor, not an ancestor of 4.
        let legal = spam.legal_moves(by(2), Phase::Up, by(4));
        let up_dsts = dsts(&t, &legal);
        assert!(up_dsts.contains(&by(1)));
        assert!(up_dsts.contains(&by(3)));
        assert!(up_dsts.contains(&by(4)));
        assert!(!up_dsts.contains(&by(5)));
        // In DownCross phase the up channel disappears.
        let dsts_dc = dsts(&t, &spam.legal_moves(by(2), Phase::DownCross, by(4)));
        assert!(!dsts_dc.contains(&by(1)));
        assert!(dsts_dc.contains(&by(3)));
        assert!(dsts_dc.contains(&by(4)));
        // In DownTree phase only the tree descent remains.
        let dsts_dt = dsts(&t, &spam.legal_moves(by(2), Phase::DownTree, by(4)));
        assert_eq!(dsts_dt, vec![by(4)]);
    }

    #[test]
    fn min_distance_selection_takes_shortest_route() {
        let (t, l, ud) = fig1();
        let spam = SpamRouting::new(&t, &ud);
        let by = |x: u32| l.by_label(x).unwrap();
        let legal = spam.legal_moves(by(2), Phase::Up, by(4));
        let (ch, ph) = spam.select(&legal, by(4), by(2), 0);
        assert_eq!(t.channel(ch).dst, by(4), "direct down tree hop wins");
        assert_eq!(ph, Phase::DownTree);
    }

    #[test]
    fn tree_requests_split_per_subtree() {
        let (t, l, ud) = fig1();
        let spam = SpamRouting::new(&t, &ud);
        let by = |x: u32| l.by_label(x).unwrap();
        let header = SpamHeader {
            dests: vec![by(8), by(9), by(11)].into(),
            lca: by(4),
            phase: Phase::Up,
            in_tree: false,
        };
        let reqs = spam.tree_requests(by(4), &header);
        assert_eq!(dsts(&t, &reqs), vec![by(6), by(7)]);
        // Below, node 6 fans out to exactly the destination processors.
        let reqs6 = spam.tree_requests(by(6), &reqs[0].1);
        assert_eq!(dsts(&t, &reqs6), vec![by(8), by(9)]);
    }

    #[test]
    fn paper_example_multicast_delivers() {
        let (t, l, ud) = fig1();
        let spam = SpamRouting::new(&t, &ud);
        let by = |x: u32| l.by_label(x).unwrap();
        let mut sim = NetworkSim::new(&t, spam, SimConfig::paper());
        sim.submit(MessageSpec::multicast(
            by(5),
            vec![by(8), by(9), by(10), by(11)],
            128,
        ))
        .unwrap();
        let out = sim.run();
        assert!(out.all_delivered());
        // Shortest legal header route: 5 -> 2 (up), 2 -> 4 (down tree),
        // then the splits 4 -> {6,7}, 6 -> {8,9,10}, 7 -> 11. Deepest
        // destination path = 4 channels, 3 switches:
        // 10_000 + 4*10 + 3*40 + 127*10 = 11_430 ns.
        assert_eq!(out.messages[0].latency().unwrap().as_ns(), 11_430);
        // Balanced subtrees, uncontended: no bubbles needed.
        assert_eq!(out.counters.bubbles_created, 0);
    }

    #[test]
    fn all_unicast_pairs_deliver_on_figure1() {
        let (t, l, ud) = fig1();
        let spam = SpamRouting::new(&t, &ud);
        let procs: Vec<NodeId> = t.processors().collect();
        for &a in &procs {
            for &b in &procs {
                if a == b {
                    continue;
                }
                let mut sim = NetworkSim::new(&t, spam.clone(), SimConfig::paper());
                sim.submit(MessageSpec::unicast(a, b, 32)).unwrap();
                let out = sim.run();
                assert!(
                    out.all_delivered(),
                    "unicast {} -> {} failed",
                    l.label_of(a).unwrap(),
                    l.label_of(b).unwrap()
                );
            }
        }
    }

    #[test]
    fn all_selection_policies_deliver() {
        let (t, _, ud) = fig1();
        let base = SpamRouting::new(&t, &ud);
        let procs: Vec<NodeId> = t.processors().collect();
        for policy in [
            SelectionPolicy::MinResidualDistance,
            SelectionPolicy::FirstLegal,
            SelectionPolicy::RandomLegal { seed: 42 },
        ] {
            let spam = base.with_policy(policy);
            let mut sim = NetworkSim::new(&t, spam, SimConfig::paper());
            sim.submit(MessageSpec::multicast(procs[0], procs[1..].to_vec(), 64))
                .unwrap();
            let out = sim.run();
            assert!(out.all_delivered(), "{policy:?} failed to deliver");
        }
    }
}
