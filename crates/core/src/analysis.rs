//! Static analyses of a SPAM routing instance — the quantities behind the
//! §5 discussion rather than timed simulation outputs:
//!
//! * **root transit probability** — "As the number of destinations
//!   increases, the probability that the worm must pass through the root
//!   of the underlying spanning tree increases, resulting in potential
//!   hot-spot effects"; computed exactly over sampled destination sets.
//! * **adaptivity** — how many legal channels the partially adaptive
//!   unicast stage has per hop, on average.
//! * **path stretch** — SPAM-legal shortest distance vs unconstrained BFS.

use crate::routing::SpamRouting;
use crate::tables::Phase;
use netgraph::{NodeId, Topology};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use updown::UpDownLabeling;

/// Result of [`root_transit_probability`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RootTransit {
    /// Fraction of sampled multicasts whose LCA *is* the root (the whole
    /// worm necessarily crosses it).
    pub lca_is_root: f64,
    /// Fraction whose tree stage passes through the root's down-tree
    /// channels (identical to `lca_is_root` for SPAM, since the split
    /// stage starts at the LCA) **or** whose unicast stage must climb to
    /// the root (no shorter legal route exists).
    pub must_cross_root: f64,
    /// Samples taken.
    pub samples: u32,
}

/// Estimates how often a k-destination multicast from a random source is
/// forced through the spanning-tree root (§5's hot-spot argument).
pub fn root_transit_probability(
    topo: &Topology,
    ud: &UpDownLabeling,
    spam: &SpamRouting<'_>,
    k: usize,
    samples: u32,
    seed: u64,
) -> RootTransit {
    let procs: Vec<NodeId> = topo.processors().collect();
    assert!(k < procs.len(), "k must leave a source out");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut lca_root = 0u32;
    let mut cross_root = 0u32;
    for _ in 0..samples {
        let src = procs[rng.gen_range(0..procs.len())];
        let mut dests: Vec<NodeId> = procs.iter().copied().filter(|&p| p != src).collect();
        dests.shuffle(&mut rng);
        dests.truncate(k);
        let Some(lca) = ud.lca_of(&dests) else {
            // k == 0: no destinations, no transit — skip the sample.
            continue;
        };
        if lca == ud.root() {
            lca_root += 1;
            cross_root += 1;
            continue;
        }
        // The unicast stage is forced through the root iff every legal
        // route from the source's state to the LCA passes it — detectable
        // from the distance tables: if the best next hop at the source
        // region always climbs to the root. Exact check: simulate the
        // greedy min-distance walk and see whether it visits the root.
        if greedy_walk_visits(topo, spam, src, lca, ud.root()) {
            cross_root += 1;
        }
    }
    RootTransit {
        lca_is_root: lca_root as f64 / samples as f64,
        must_cross_root: cross_root as f64 / samples as f64,
        samples,
    }
}

/// Walks the min-residual-distance route from `src` (a processor) to
/// `target`, returning true if it visits `probe`.
fn greedy_walk_visits(
    topo: &Topology,
    spam: &SpamRouting<'_>,
    src: NodeId,
    target: NodeId,
    probe: NodeId,
) -> bool {
    let mut node = topo.switch_of(src);
    let mut phase = Phase::Up;
    let mut hops = 0;
    while node != target {
        if node == probe {
            return true;
        }
        let legal = spam.legal_moves(node, phase, target);
        // SPAM totality (the paper's liveness theorem): on a labeled
        // fault-free component the legal set is never empty.
        #[allow(clippy::expect_used)]
        let (ch, next) = legal
            .into_iter()
            .min_by_key(|&(c, ph)| {
                let v = topo.channel(c).dst;
                (spam.tables().dist(target, v, ph), c)
            })
            .expect("SPAM totality");
        node = topo.channel(ch).dst;
        phase = next;
        hops += 1;
        assert!(hops <= topo.num_nodes() * 3, "walk failed to terminate");
    }
    node == probe
}

/// Mean number of legal moves per (switch, Up-phase, target) triple — the
/// degree of partial adaptivity SPAM's unicast stage actually offers.
pub fn mean_adaptivity(topo: &Topology, spam: &SpamRouting<'_>) -> f64 {
    let mut total = 0usize;
    let mut count = 0usize;
    for s in topo.switches() {
        for t in topo.processors() {
            total += spam.legal_moves(s, Phase::Up, t).len();
            count += 1;
        }
    }
    total as f64 / count as f64
}

/// Mean and max stretch of SPAM-legal shortest routes versus plain BFS
/// distance, over all processor pairs.
pub fn path_stretch(topo: &Topology, spam: &SpamRouting<'_>) -> (f64, f64) {
    let mut sum = 0.0;
    let mut max: f64 = 0.0;
    let mut n = 0usize;
    for a in topo.processors() {
        let bfs = netgraph::algo::bfs_distances(topo, a);
        for b in topo.processors() {
            if a == b {
                continue;
            }
            let legal = spam.tables().dist(b, a, Phase::Up) as f64;
            let direct = bfs[b.index()] as f64;
            let stretch = legal / direct;
            sum += stretch;
            max = max.max(stretch);
            n += 1;
        }
    }
    (sum / n as f64, max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::gen::lattice::IrregularConfig;
    use updown::RootSelection;

    fn setup() -> (Topology, UpDownLabeling) {
        let t = IrregularConfig::with_switches(32).generate(3);
        let ud = UpDownLabeling::build(&t, RootSelection::LowestId);
        (t, ud)
    }

    #[test]
    fn root_transit_grows_with_destination_count() {
        let (t, ud) = setup();
        let spam = SpamRouting::new(&t, &ud);
        let small = root_transit_probability(&t, &ud, &spam, 2, 300, 1);
        let large = root_transit_probability(&t, &ud, &spam, 24, 300, 1);
        assert!(small.lca_is_root <= large.lca_is_root + 1e-9);
        assert!(
            large.lca_is_root > 0.5,
            "24 of 31 destinations nearly always straddle the root: {large:?}"
        );
        assert!(large.must_cross_root >= large.lca_is_root);
        assert_eq!(large.samples, 300);
    }

    #[test]
    fn broadcasts_always_cross_the_root() {
        let (t, ud) = setup();
        let spam = SpamRouting::new(&t, &ud);
        let r = root_transit_probability(&t, &ud, &spam, 31, 50, 2);
        // LCA of all processors is the root itself (its own processor is a
        // destination whenever the source isn't... in any case every
        // broadcast must cross it).
        assert_eq!(r.must_cross_root, 1.0);
    }

    #[test]
    fn adaptivity_is_at_least_one_and_realistic() {
        let (t, ud) = setup();
        let spam = SpamRouting::new(&t, &ud);
        let a = mean_adaptivity(&t, &spam);
        assert!(a >= 1.0, "totality implies at least one legal move");
        assert!(a < 8.0, "bounded by the port count");
    }

    #[test]
    fn stretch_is_at_least_one() {
        let (t, ud) = setup();
        let spam = SpamRouting::new(&t, &ud);
        let (mean, max) = path_stretch(&t, &spam);
        assert!(mean >= 1.0);
        assert!(max >= mean);
        assert!(mean < 3.0, "up*/down* stretch should be modest: {mean}");
    }
}
