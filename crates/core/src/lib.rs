#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # spam-core — Single Phase Adaptive Multicast (SPAM)
//!
//! The routing algorithm of Libeskind-Hadas, Mazzoni & Rajagopalan,
//! *Tree-Based Multicasting in Wormhole-Routed Irregular Topologies*
//! (IPPS/SPDP 1998): the first deadlock-free **tree-based** wormhole
//! multicast for arbitrary direct networks, delivering a message to any
//! number of destinations with a **single startup** and a single
//! multi-head worm, using only fixed-size input buffers.
//!
//! ## The algorithm (§3)
//!
//! Given an up*/down* labeling (crate [`updown`]), a worm is routed in two
//! stages:
//!
//! 1. **Unicast stage** — the header travels from the source processor to
//!    the **least common ancestor** (LCA) of the destination set using
//!    one or more *up* channels, then zero or more *down cross* channels,
//!    then zero or more *down tree* channels, in that order (§3.1):
//!    * from an up channel, any up channel may follow;
//!    * a down cross channel `(u, v)` may be used while no down tree
//!      channel has been used, provided `v` is an **extended ancestor**
//!      of the target;
//!    * a down tree channel `(u, v)` may always be used provided `v` is an
//!      **ancestor** of the target, after which only down tree channels
//!      may follow.
//! 2. **Tree stage** — at the LCA the worm splits into a multi-head worm
//!    restricted to down tree channels, branching wherever destinations
//!    lie in more than one child subtree. (A unicast is the special case
//!    where the LCA is the destination itself, so stage 2 is empty.)
//!
//! The unicast stage is **partially adaptive**: several channels may be
//! legal at once. Following §4, the default [`SelectionPolicy`] prioritizes
//! the channel whose endpoint is closest to the target — here computed as
//! the exact residual SPAM-legal distance over a phase-layered graph
//! ([`RoutingTables`]), which also makes every hop strictly decrease the
//! remaining distance and hence gives livelock freedom by construction
//! (Theorem 2).
//!
//! ```
//! use netgraph::gen::fixtures::figure1;
//! use updown::{RootSelection, UpDownLabeling};
//! use spam_core::SpamRouting;
//! use wormsim::{MessageSpec, NetworkSim, SimConfig};
//!
//! let (topo, labels) = figure1();
//! let by = |l| labels.by_label(l).unwrap();
//! let ud = UpDownLabeling::build(&topo, RootSelection::Fixed(by(1)));
//! let spam = SpamRouting::new(&topo, &ud);
//!
//! // The worked example of §3.2: node 5 multicasts to 8, 9, 10 and 11.
//! let mut sim = NetworkSim::new(&topo, spam, SimConfig::paper());
//! sim.submit(MessageSpec::multicast(by(5), vec![by(8), by(9), by(10), by(11)], 128))
//!     .unwrap();
//! let out = sim.run();
//! assert!(out.all_delivered());
//! ```

pub mod analysis;
pub mod partition;
pub mod routing;
pub mod tables;

pub use analysis::{mean_adaptivity, path_stretch, root_transit_probability, RootTransit};
pub use partition::{partition_destinations, partition_specs, PartitionStrategy};
pub use routing::{RouteScratch, SelectionPolicy, SpamHeader, SpamRouting};
pub use tables::{NodeMove, Phase, RoutingTables};
