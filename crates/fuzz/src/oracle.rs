//! Correctness oracles over one scenario run.
//!
//! Every valid mutant is run (quickened, replication 0) and checked
//! against four engine-level invariants:
//!
//! 1. **Determinism** — two bucket-queue runs of the same spec must
//!    produce byte-identical outcomes (equal [`outcome_digest`]s).
//! 2. **Queue equivalence** — a heap-queue run must match the
//!    bucket-queue digest: the calendar wheel is an optimization, never
//!    an observable behaviour change.
//! 3. **Accounting** — every submitted message ends the run either
//!    completed or with a typed failure verdict, and the run aborts on
//!    neither a simulation error nor a deadlock
//!    ([`SimOutcome::all_accounted`]).
//! 4. **Quiescence** — at the end of an accounted run the network has
//!    drained: no live channels, no segment-table entries, no parked
//!    headers ([`SimOutcome::quiescent`]).
//! 5. **Checkpoint/resume** — checkpointing the run is a pure observer
//!    (the checkpointed run matches the canonical digest), and resuming
//!    from a mid-run snapshot reproduces the canonical digest exactly.
//!
//! The checks are ordered; [`OracleReport::violation`] names the first
//! one that failed, which is also the name the minimizer preserves while
//! shrinking.

use crate::digest::outcome_digest;
use spam_scenario::{resume_once, run_once, run_once_checkpointed, ScenarioSpec, SpecError};
use wormsim::{CoverageSet, QueueKind};

/// Names of the oracles, in the order they are checked.
pub const ORACLE_NAMES: &[&str] = &[
    "determinism",
    "queue_equivalence",
    "accounting",
    "quiescence",
    "checkpoint_resume",
];

/// Outcome of running the oracle battery on one spec.
#[derive(Debug, Clone)]
pub struct OracleReport {
    /// Coverage from the canonical (first bucket-queue) run.
    pub coverage: CoverageSet,
    /// Digest of the canonical run.
    pub digest: u64,
    /// First failed oracle, or `None` when the spec passed all four.
    pub violation: Option<&'static str>,
}

impl OracleReport {
    /// True when every oracle passed.
    pub fn clean(&self) -> bool {
        self.violation.is_none()
    }
}

/// Runs the full oracle battery on `spec` (which must already be
/// validated). The spec is run as given — callers quicken it first; the
/// bucket/heap runs override only the event-queue choice, so a spec
/// pinning `engine.queue` is still checked under both implementations.
pub fn check_spec(spec: &ScenarioSpec) -> Result<OracleReport, SpecError> {
    let bucket = run_once(spec, 0, Some(QueueKind::Bucket))?;
    let digest = outcome_digest(&bucket);
    let coverage = bucket.counters.coverage;

    let again = run_once(spec, 0, Some(QueueKind::Bucket))?;
    if outcome_digest(&again) != digest {
        return Ok(OracleReport {
            coverage,
            digest,
            violation: Some("determinism"),
        });
    }

    let heap = run_once(spec, 0, Some(QueueKind::Heap))?;
    if outcome_digest(&heap) != digest {
        return Ok(OracleReport {
            coverage,
            digest,
            violation: Some("queue_equivalence"),
        });
    }

    if !bucket.all_accounted() {
        return Ok(OracleReport {
            coverage,
            digest,
            violation: Some("accounting"),
        });
    }

    if !bucket.quiescent {
        return Ok(OracleReport {
            coverage,
            digest,
            violation: Some("quiescence"),
        });
    }

    // Checkpoint at roughly quarter-run cadence, then resume from a
    // mid-run snapshot; both the observed run and the resumed run must
    // reproduce the canonical digest byte-for-byte. Runs too short to
    // produce a checkpoint pass vacuously.
    let every_ns = (bucket.end_time.as_ns() / 4).max(1);
    let golden = run_once_checkpointed(spec, 0, Some(QueueKind::Bucket), every_ns)?;
    let mut ok = outcome_digest(&golden.outcome) == digest;
    if ok {
        if let Some((_, bytes)) = golden.checkpoints.get(golden.checkpoints.len() / 2) {
            ok = outcome_digest(&resume_once(spec, 0, Some(QueueKind::Bucket), bytes)?) == digest;
        }
    }
    if !ok {
        return Ok(OracleReport {
            coverage,
            digest,
            violation: Some("checkpoint_resume"),
        });
    }

    Ok(OracleReport {
        coverage,
        digest,
        violation: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_example_spec_passes_every_oracle() {
        let mut spec = ScenarioSpec::example("oracle-smoke");
        spec.quicken();
        let report = check_spec(&spec).expect("example validates");
        assert!(report.clean(), "violation: {:?}", report.violation);
        assert_ne!(report.digest, 0);
        assert!(report.coverage.bits_lit() > 0);
    }

    #[test]
    fn oracle_names_cover_every_violation_value() {
        // The minimizer and the regression-spec comments both key on
        // these strings; keep the list in sync with check_spec.
        assert_eq!(
            ORACLE_NAMES,
            &[
                "determinism",
                "queue_equivalence",
                "accounting",
                "quiescence",
                "checkpoint_resume"
            ]
        );
    }
}
