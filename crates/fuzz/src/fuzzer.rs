//! The coverage-guided fuzz loop.
//!
//! Seeds come from the hand-authored scenario corpus. Each iteration
//! picks a pool spec, applies one typed mutation
//! ([`spam_scenario::mutate_spec`]), and sorts the result into one of
//! three bins:
//!
//! * **rejected** — the mutant fails [`ScenarioSpec::validate`]. That is
//!   coverage too: the loop tallies which [`SpecError`] variants the
//!   mutator exercised, and checks predicted boundary violations
//!   ([`Mutation::expect`]) actually fired.
//! * **violation** — the mutant runs but trips an oracle
//!   ([`crate::oracle`]). It is greedily minimized and reported as a
//!   regression candidate.
//! * **clean** — the mutant runs clean; if its coverage is novel against
//!   everything seen so far it joins the seed pool (so the fuzzer digs
//!   deeper along the direction that paid off) and the promotion list.
//!
//! Everything is driven by one `StdRng` from [`FuzzConfig::seed`]: the
//! same config over the same corpus reproduces the same mutants, the
//! same promotions, and the same report, byte for byte.

use std::collections::BTreeMap;
use std::time::Instant;

use rand::{rngs::StdRng, Rng, SeedableRng};
use spam_scenario::{mutate_spec, ScenarioSpec};
use wormsim::CoverageSet;

use crate::digest::Fnv;
use crate::minimize::minimize_violation;
use crate::novelty::NoveltyTracker;
use crate::oracle::check_spec;

/// Fuzzing run parameters.
#[derive(Debug, Clone, Copy)]
pub struct FuzzConfig {
    /// Master seed; everything else derives from it.
    pub seed: u64,
    /// Number of mutants to generate.
    pub mutants: usize,
    /// Wall-clock backstop in milliseconds; `None` means unbounded. A
    /// run that finishes inside the budget is unaffected (and therefore
    /// deterministic); hitting it truncates the run and is reported in
    /// [`FuzzStats::budget_exhausted`].
    pub budget_ms: Option<u64>,
    /// Cap on promoted specs kept in the report.
    pub max_promotions: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0x5bad_f00d,
            mutants: 1000,
            budget_ms: None,
            max_promotions: 16,
        }
    }
}

/// Tallies from one fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct FuzzStats {
    /// Mutants generated (≤ `cfg.mutants` if the budget truncated).
    pub mutants_run: usize,
    /// Mutants that validated and went through the oracle battery.
    pub valid: usize,
    /// Mutants rejected by `validate()`.
    pub rejected: usize,
    /// Rejected mutants whose predicted `SpecError` variant matched.
    pub expect_confirmed: usize,
    /// Rejected mutants that carried a prediction which did not match
    /// (a typed cross-axis rejection — acceptable, but tallied).
    pub expect_missed: usize,
    /// Mutants that validated but were rejected at run time with a
    /// typed error (e.g. a storm that destroys the whole fabric —
    /// `NoSurvivingComponent` is only decidable after sampling faults).
    pub run_rejected: usize,
    /// Mutants that tripped an oracle.
    pub oracle_failures: usize,
    /// True when the wall-clock budget stopped the run early.
    pub budget_exhausted: bool,
}

/// A clean mutant whose coverage was novel when it ran.
#[derive(Debug, Clone)]
pub struct Promoted {
    /// The novelty signals it contributed (bit names, watermark pushes).
    pub signals: Vec<String>,
    /// The spec exactly as the oracles ran it (already quickened).
    pub spec: ScenarioSpec,
}

/// A minimized oracle-violating mutant.
#[derive(Debug, Clone)]
pub struct Regression {
    /// The oracle it violates.
    pub violation: &'static str,
    /// Shrink steps the minimizer adopted.
    pub shrink_steps: usize,
    /// The minimized spec, violation preserved.
    pub spec: ScenarioSpec,
}

/// Everything a fuzzing run produced.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Run tallies.
    pub stats: FuzzStats,
    /// Coverage union over the seed corpus (before any mutants ran).
    pub baseline: CoverageSet,
    /// Coverage union over the corpus plus every mutant run.
    pub accumulated: CoverageSet,
    /// Signals the mutants contributed beyond the corpus baseline.
    pub novel_vs_baseline: Vec<String>,
    /// Clean novel mutants, in discovery order (capped).
    pub promoted: Vec<Promoted>,
    /// Minimized oracle violations, in discovery order.
    pub regressions: Vec<Regression>,
    /// `SpecError` variants exercised by rejected mutants, with counts.
    pub spec_errors: Vec<(String, u32)>,
}

/// Deterministic display name for the `i`-th mutant of a run.
fn mutant_name(seed: u64, i: usize) -> String {
    let mut h = Fnv::default();
    h.word(seed);
    h.word(i as u64);
    format!("fuzz_{:08x}", (h.finish() >> 32) as u32)
}

/// Runs the fuzzer over `corpus` seeds. The corpus specs are first run
/// once each (quickened) to establish the novelty baseline; mutants are
/// then judged against that union, so "novel" always means "the
/// hand-authored corpus never showed the engine this".
pub fn fuzz(corpus: &[ScenarioSpec], cfg: &FuzzConfig) -> FuzzReport {
    assert!(!corpus.is_empty(), "fuzzer needs at least one seed spec");
    let started = Instant::now();

    // Baseline: what does the hand corpus already cover?
    let mut baseline = CoverageSet::default();
    for spec in corpus {
        let mut quick = spec.clone();
        quick.quicken();
        if let Ok(report) = check_spec(&quick) {
            baseline.absorb(&report.coverage);
        }
    }

    let mut tracker = NoveltyTracker::with_baseline(baseline);
    let mut pool: Vec<ScenarioSpec> = corpus.to_vec();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut stats = FuzzStats::default();
    let mut promoted = Vec::new();
    let mut regressions = Vec::new();
    let mut spec_errors: BTreeMap<String, u32> = BTreeMap::new();

    for i in 0..cfg.mutants {
        if let Some(budget) = cfg.budget_ms {
            if started.elapsed().as_millis() as u64 >= budget {
                stats.budget_exhausted = true;
                break;
            }
        }
        stats.mutants_run += 1;

        let parent = &pool[rng.gen_range(0..pool.len())];
        let mutation = mutate_spec(parent, &mut rng);
        let name = mutant_name(cfg.seed, i);

        match mutation.spec.validate() {
            Err(err) => {
                stats.rejected += 1;
                *spec_errors
                    .entry(err.variant_name().to_string())
                    .or_insert(0) += 1;
                match mutation.expect {
                    Some(want) if want == err.variant_name() => stats.expect_confirmed += 1,
                    Some(_) => stats.expect_missed += 1,
                    None => {}
                }
            }
            Ok(()) => {
                stats.valid += 1;
                let mut quick = mutation.spec.clone();
                quick.name = name;
                quick.quicken();
                let report = match check_spec(&quick) {
                    Ok(r) => r,
                    // validate() passed but the run rejected the spec
                    // with a typed error — only decidable after
                    // sampling (fault storms can destroy the fabric).
                    Err(err) => {
                        stats.run_rejected += 1;
                        *spec_errors
                            .entry(err.variant_name().to_string())
                            .or_insert(0) += 1;
                        continue;
                    }
                };
                match report.violation {
                    Some(violation) => {
                        stats.oracle_failures += 1;
                        let (mut min, shrink_steps) = minimize_violation(&quick, violation);
                        min.description = format!(
                            "fuzzer regression (axis `{}`): violates the `{}` oracle",
                            mutation.axis, violation
                        );
                        regressions.push(Regression {
                            violation,
                            shrink_steps,
                            spec: min,
                        });
                    }
                    None => {
                        let signals = tracker.observe(&report.coverage);
                        if !signals.is_empty() {
                            // Coverage-guided: novel specs become seeds.
                            pool.push(mutation.spec.clone());
                            if promoted.len() < cfg.max_promotions {
                                let mut spec = quick;
                                spec.description = format!(
                                    "fuzzer-promoted (axis `{}`): novel signals [{}]",
                                    mutation.axis,
                                    signals.join(", ")
                                );
                                promoted.push(Promoted { signals, spec });
                            }
                        }
                    }
                }
            }
        }
    }

    let accumulated = *tracker.seen();
    FuzzReport {
        stats,
        baseline,
        novel_vs_baseline: accumulated.novel_signals(&baseline),
        accumulated,
        promoted,
        regressions,
        spec_errors: spec_errors.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus() -> Vec<ScenarioSpec> {
        vec![ScenarioSpec::example("fuzz-seed")]
    }

    fn tiny_cfg() -> FuzzConfig {
        FuzzConfig {
            seed: 0xFEED,
            mutants: 40,
            budget_ms: None,
            max_promotions: 8,
        }
    }

    #[test]
    fn fuzzing_is_deterministic() {
        let corpus = tiny_corpus();
        let a = fuzz(&corpus, &tiny_cfg());
        let b = fuzz(&corpus, &tiny_cfg());
        assert_eq!(a.stats.mutants_run, b.stats.mutants_run);
        assert_eq!(a.stats.valid, b.stats.valid);
        assert_eq!(a.stats.rejected, b.stats.rejected);
        assert_eq!(a.accumulated, b.accumulated);
        assert_eq!(a.spec_errors, b.spec_errors);
        assert_eq!(a.promoted.len(), b.promoted.len());
        for (pa, pb) in a.promoted.iter().zip(&b.promoted) {
            assert_eq!(pa.spec, pb.spec);
            assert_eq!(pa.signals, pb.signals);
        }
    }

    #[test]
    fn mutants_widen_coverage_beyond_one_seed() {
        // A single plain multicast seed covers little; even a short run
        // must find something the seed never showed the engine.
        let report = fuzz(&tiny_corpus(), &tiny_cfg());
        assert!(report.stats.valid > 0);
        assert!(report.stats.rejected > 0, "boundary mutators never fired");
        assert!(
            !report.novel_vs_baseline.is_empty(),
            "no novelty in {} valid mutants",
            report.stats.valid
        );
        assert!(report.accumulated.bits_lit() >= report.baseline.bits_lit());
    }

    #[test]
    fn mutant_names_are_stable_and_distinct() {
        assert_eq!(mutant_name(1, 0), mutant_name(1, 0));
        assert_ne!(mutant_name(1, 0), mutant_name(1, 1));
        assert_ne!(mutant_name(1, 0), mutant_name(2, 0));
    }
}
