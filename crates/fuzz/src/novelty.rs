//! The novelty tracker: decides whether a run taught us anything.
//!
//! A run is *novel* when its [`CoverageSet`] lights a bit no prior run
//! lit, or pushes a watermark counter past the best value seen so far.
//! The tracker accumulates everything it observes, so novelty is always
//! judged against the union of all prior runs — the hand-authored
//! corpus seeds the baseline, and each promoted mutant raises the bar
//! for the next.

use wormsim::CoverageSet;

/// Accumulated coverage across every run observed so far.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoveltyTracker {
    seen: CoverageSet,
}

impl NoveltyTracker {
    /// A tracker pre-seeded with baseline coverage (e.g. the union over
    /// the hand-authored corpus).
    pub fn with_baseline(baseline: CoverageSet) -> Self {
        NoveltyTracker { seen: baseline }
    }

    /// The union of everything observed so far.
    pub fn seen(&self) -> &CoverageSet {
        &self.seen
    }

    /// Records `cov` and returns the signals it newly contributed:
    /// freshly-lit bit names, plus `"counter>value"` entries for
    /// watermarks it pushed past the previous best. Empty means the run
    /// showed the engine nothing new.
    pub fn observe(&mut self, cov: &CoverageSet) -> Vec<String> {
        let fresh = cov.novel_signals(&self.seen);
        self.seen.absorb(cov);
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_observation_of_the_same_coverage_is_stale() {
        let mut cov = CoverageSet::default();
        cov.set(CoverageSet::BUBBLES);
        cov.max_branch_fanout = 3;

        let mut tracker = NoveltyTracker::default();
        let first = tracker.observe(&cov);
        assert!(first.iter().any(|s| s == "bubbles"));
        assert!(first.iter().any(|s| s.starts_with("max_branch_fanout>")));
        assert!(tracker.observe(&cov).is_empty());

        // A strictly higher watermark is novel again.
        cov.max_branch_fanout = 4;
        let again = tracker.observe(&cov);
        assert_eq!(again, vec!["max_branch_fanout>4".to_string()]);
    }

    #[test]
    fn baseline_masks_corpus_coverage() {
        let mut baseline = CoverageSet::default();
        baseline.set(CoverageSet::BUBBLES);
        let mut tracker = NoveltyTracker::with_baseline(baseline);

        let mut cov = CoverageSet::default();
        cov.set(CoverageSet::BUBBLES);
        assert!(tracker.observe(&cov).is_empty());
        cov.set(CoverageSet::MULTI_EPOCH);
        assert_eq!(tracker.observe(&cov), vec!["multi_epoch".to_string()]);
    }
}
