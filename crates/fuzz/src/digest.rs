//! A canonical 64-bit digest of a [`SimOutcome`] — the fuzzer's
//! byte-identity check for the rep-0 determinism and queue-equivalence
//! oracles.
//!
//! Two outcomes digest equal iff every field an experiment could observe
//! is equal: all counters (including the coverage record), the end time,
//! per-message completion/failure verdicts and per-destination times,
//! per-channel crossings, and the fault epoch boundaries. FNV-1a over
//! the little-endian field stream; no allocation.

use wormsim::{FailureKind, SimOutcome};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a accumulator over `u64` words.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Fnv(FNV_OFFSET)
    }
}

impl Fnv {
    /// Feeds one word (as eight little-endian bytes).
    #[inline]
    pub fn word(&mut self, w: u64) {
        for b in w.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Digests everything observable about a finished run.
pub fn outcome_digest(out: &SimOutcome) -> u64 {
    let mut h = Fnv::default();
    let c = &out.counters;
    for w in [
        c.events,
        c.wire_transfers,
        c.bubbles_created,
        c.flits_delivered,
        c.messages_completed,
        c.acquisitions,
        c.seg_lookups,
        c.messages_torn_down,
        c.messages_unreachable,
        c.links_killed,
        c.coverage.bits,
        c.coverage.max_branch_fanout as u64,
        c.coverage.max_ocrq_depth as u64,
        c.coverage.epochs as u64,
        c.coverage.wheel_deferrals as u64,
        c.coverage.max_reattached_nodes as u64,
        out.end_time.as_ns(),
        out.quiescent as u64,
        out.deadlock.is_some() as u64,
        out.error.is_some() as u64,
    ] {
        h.word(w);
    }
    h.word(out.messages.len() as u64);
    for m in &out.messages {
        h.word(m.completed_at.map_or(u64::MAX, |t| t.as_ns()));
        for d in &m.dest_done_at {
            h.word(d.map_or(u64::MAX, |t| t.as_ns()));
        }
        match m.failure {
            None => h.word(0),
            Some(f) => {
                h.word(match f.kind {
                    FailureKind::TornDown => 1,
                    FailureKind::Unreachable => 2,
                });
                h.word(f.at.as_ns());
            }
        }
    }
    h.word(out.channel_crossings.len() as u64);
    for &x in &out.channel_crossings {
        h.word(x);
    }
    h.word(out.fault_times.len() as u64);
    for t in &out.fault_times {
        h.word(t.as_ns());
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_is_order_sensitive() {
        let mut a = Fnv::default();
        a.word(1);
        a.word(2);
        let mut b = Fnv::default();
        b.word(2);
        b.word(1);
        assert_ne!(a.finish(), b.finish());
        assert_ne!(Fnv::default().finish(), a.finish());
    }
}
