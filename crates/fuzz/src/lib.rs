#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # spam-fuzz — coverage-guided scenario fuzzing
//!
//! Hand-authored scenarios only exercise the engine states their
//! authors thought of. This crate turns the scenario subsystem into a
//! feedback loop that finds the rest:
//!
//! * [`fuzz`] mutates corpus seeds with typed, axis-aware mutations
//!   ([`spam_scenario::mutate_spec`]) — every mutant either validates or
//!   trips a predicted [`spam_scenario::SpecError`] variant.
//! * The engine reports what each run *touched* via
//!   [`wormsim::CoverageSet`] (teardown-during-branch, wheel overflow,
//!   relabel reattach, OCRQ contention, …); the [`NoveltyTracker`]
//!   promotes mutants that light a bit or push a watermark the
//!   hand-authored corpus never did, and novel specs re-enter the seed
//!   pool so the search digs where it last paid off.
//! * Four oracles guard every run ([`oracle::check_spec`]): rep-0
//!   determinism (two runs, identical digests), Heap-vs-Bucket queue
//!   equivalence, total accounting, and end-of-run quiescence.
//!   Violations are greedily minimized ([`minimize_violation`]) down an
//!   axis-deletion lattice while preserving the named oracle.
//!
//! The whole loop is deterministic: one [`FuzzConfig::seed`] reproduces
//! the same mutants, promotions, and regressions byte for byte, which is
//! what lets CI run `fuzz_specs --quick` and diff the coverage report.

pub mod digest;
pub mod fuzzer;
pub mod minimize;
pub mod novelty;
pub mod oracle;

pub use digest::{outcome_digest, Fnv};
pub use fuzzer::{fuzz, FuzzConfig, FuzzReport, FuzzStats, Promoted, Regression};
pub use minimize::minimize_violation;
pub use novelty::NoveltyTracker;
pub use oracle::{check_spec, OracleReport, ORACLE_NAMES};
