//! Greedy minimization of oracle-violating specs.
//!
//! Candidates come from [`spam_scenario::simplify_candidates`] — each a
//! one-axis simplification that still validates. A candidate is adopted
//! whenever the shrunk spec still trips the *same named oracle*; the
//! walk restarts from the adopted spec and runs to a fixpoint (no
//! candidate reproduces the violation) or an iteration bound. The bound
//! exists only as a backstop: every candidate strictly shrinks a
//! monotone measure, so the walk terminates on its own.

use crate::oracle::check_spec;
use spam_scenario::{simplify_candidates, ScenarioSpec};

/// Upper bound on adopted shrink steps (backstop, not a tuning knob).
const MAX_STEPS: usize = 24;

/// Shrinks `spec` while preserving the named `violation`. Returns the
/// smallest spec found and the number of candidates adopted. `spec`
/// itself must already exhibit the violation.
pub fn minimize_violation(spec: &ScenarioSpec, violation: &'static str) -> (ScenarioSpec, usize) {
    let mut current = spec.clone();
    let mut steps = 0;
    'shrink: while steps < MAX_STEPS {
        for (_axis, cand) in simplify_candidates(&current) {
            if let Ok(report) = check_spec(&cand) {
                if report.violation == Some(violation) {
                    current = cand;
                    steps += 1;
                    continue 'shrink;
                }
            }
        }
        break;
    }
    (current, steps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_clean_spec_minimizes_to_itself() {
        // No candidate of a passing spec can exhibit a violation the
        // spec itself lacks, so the walk adopts nothing.
        let mut spec = ScenarioSpec::example("already-clean");
        spec.quicken();
        let (min, steps) = minimize_violation(&spec, "accounting");
        assert_eq!(min, spec);
        assert_eq!(steps, 0);
    }
}
