//! Property tests of the live-reconfiguration regime: fault storms at
//! 10–30 % link-death rates hitting 64-switch §4 lattices while multicast
//! traffic is in flight.
//!
//! The hard guarantees certified here:
//!
//! * **Total accounting** — every message ends delivered, torn down, or
//!   unreachable; the run never aborts and never deadlocks.
//! * **Resource hygiene** — after arbitrary teardown sequences no channel
//!   stays reserved by a dead worm and no request-queue entry is orphaned.
//!   This is checked two ways: the engine's end-of-run quiescence
//!   assertions (active in debug builds, which tests are), and the fact
//!   that *survivors keep delivering* — a leaked reservation would wedge
//!   them into the watchdog.
//! * **Determinism** — identical storms and traffic produce identical
//!   verdicts and latencies, run to run.

use desim::Time;
use netgraph::gen::lattice::IrregularConfig;
use netgraph::NodeId;
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use spam_faults::FaultModel;
use spam_reconfig::{FaultSchedule, ReconfigScenario};
use updown::{RootSelection, UpDownLabeling};
use wormsim::{MessageSpec, NetworkSim, SimConfig, SimOutcome};

/// One storm run: 64-switch lattice, i.i.d. link storm in `bursts` bursts
/// across the traffic window, 24 multicasts submitted every 3 µs.
fn storm_run(topo_seed: u64, rate: f64, bursts: usize, traffic_seed: u64) -> SimOutcome {
    let base = IrregularConfig::with_switches(64).generate(topo_seed);
    let ud = UpDownLabeling::build(&base, RootSelection::LowestId);
    let schedule = FaultSchedule::storm(
        &FaultModel::IidLinks { rate },
        &base,
        None,
        (Time::from_us(12), Time::from_us(70)),
        bursts,
        topo_seed ^ 0xBAD_CAB1E,
    );
    let scenario = ReconfigScenario::build(&base, &ud, &schedule);
    let routing = scenario.routing(&base);
    let mut sim = NetworkSim::new(&base, routing, SimConfig::paper());
    schedule.install(&mut sim);
    let procs: Vec<NodeId> = base.processors().collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(traffic_seed);
    for i in 0..24u64 {
        let src = procs[rng.gen_range(0..procs.len())];
        let mut others: Vec<NodeId> = procs.iter().copied().filter(|&p| p != src).collect();
        others.shuffle(&mut rng);
        let k = 1 + rng.gen_range(0..6);
        others.truncate(k);
        sim.submit(MessageSpec::multicast(src, others, 64).at(Time::from_us(3 * i)))
            .unwrap();
    }
    sim.run()
}

fn verdicts(out: &SimOutcome) -> Vec<(bool, bool, bool, Option<u64>)> {
    out.messages
        .iter()
        .map(|m| {
            (
                m.is_complete(),
                m.is_torn_down(),
                m.is_unreachable(),
                m.latency().map(|l| l.as_ns()),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn storms_account_for_every_message_and_leak_nothing(
        topo_seed in 0u64..200,
        rate_pct in 10u32..=30,
        bursts in 1usize..4,
        traffic_seed in 0u64..1000,
    ) {
        let rate = rate_pct as f64 / 100.0;
        let out = storm_run(topo_seed, rate, bursts, traffic_seed);
        // Total accounting: a storm may kill worms, never the run.
        prop_assert!(out.error.is_none(), "run aborted: {:?}", out.error);
        prop_assert!(out.deadlock.is_none(), "deadlock: {:?}", out.deadlock);
        prop_assert!(out.all_accounted());
        let c = &out.counters;
        prop_assert_eq!(
            c.messages_completed + c.messages_torn_down + c.messages_unreachable,
            out.messages.len() as u64,
            "verdicts partition the message set"
        );
        // Epoch accounting sums to the same partition.
        let stats = out.epoch_stats();
        prop_assert_eq!(stats.iter().map(|s| s.submitted).sum::<u64>(), 24);
        prop_assert_eq!(
            stats.iter().map(|s| s.delivered).sum::<u64>(),
            c.messages_completed
        );
        prop_assert_eq!(
            stats.iter().map(|s| s.torn_down).sum::<u64>(),
            c.messages_torn_down
        );
        prop_assert_eq!(
            stats.iter().map(|s| s.unreachable).sum::<u64>(),
            c.messages_unreachable
        );
        // Every delivered message really reached every destination.
        for m in out.messages.iter().filter(|m| m.is_complete()) {
            prop_assert!(m.dest_done_at.iter().all(|d| d.is_some()));
        }
        // A torn-down or unreachable message never completed anywhere near
        // fully: its completion time must be absent.
        for m in out.messages.iter().filter(|m| m.failure.is_some()) {
            prop_assert!(m.completed_at.is_none());
        }
    }

    #[test]
    fn storm_runs_are_deterministic(
        topo_seed in 0u64..100,
        rate_pct in 10u32..=30,
        traffic_seed in 0u64..100,
    ) {
        let rate = rate_pct as f64 / 100.0;
        let a = storm_run(topo_seed, rate, 2, traffic_seed);
        let b = storm_run(topo_seed, rate, 2, traffic_seed);
        prop_assert_eq!(verdicts(&a), verdicts(&b));
        prop_assert_eq!(a.counters, b.counters);
        prop_assert_eq!(a.end_time, b.end_time);
        prop_assert_eq!(a.fault_times, b.fault_times);
    }
}

/// A pinned heavy-storm smoke test outside proptest, so the regime is
/// exercised even when `PROPTEST_CASES` is trimmed in CI.
#[test]
fn heavy_storm_smoke() {
    let out = storm_run(2024, 0.30, 3, 7);
    assert!(out.all_accounted(), "{:?} {:?}", out.error, out.deadlock);
    assert!(
        out.counters.messages_completed > 0,
        "survivors keep delivering through a 30% storm"
    );
    assert!(out.counters.links_killed > 0);
}
