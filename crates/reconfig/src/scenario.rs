//! The epoch chain: one incremental relabeling per fault boundary.

use crate::routing::EpochRouting;
use crate::schedule::FaultSchedule;
use desim::Time;
use netgraph::Topology;
use spam_core::{RoutingTables, SpamRouting};
use std::sync::Arc;
use updown::{RelabelReport, UpDownLabeling};

/// A fully precomputed live-reconfiguration scenario: the per-epoch
/// labelings and channel-liveness masks a storm produces over a base
/// topology.
///
/// Epoch 0 uses the caller's pristine labeling; epoch `e ≥ 1` is the
/// cumulative damage up to the `e`-th fault boundary, relabeled
/// incrementally from epoch `e - 1` ([`UpDownLabeling::relabel_after`]) so
/// the surviving spanning-tree structure — and therefore most channel
/// labels — carries over. In a real fabric this precomputation would be
/// the reconfiguration daemon; in the simulator it runs up front because
/// the storm is known, keeping the hot event loop free of labeling work.
#[derive(Debug, Clone)]
pub struct ReconfigScenario {
    boundaries: Vec<Time>,
    labelings: Vec<UpDownLabeling>,
    masks: Vec<Vec<bool>>,
    reports: Vec<RelabelReport>,
}

impl ReconfigScenario {
    /// Precomputes the epoch chain for `schedule` over `base`, starting
    /// from the pristine `initial` labeling.
    ///
    /// # Panics
    ///
    /// Panics if a boundary leaves no switch alive (the storm destroyed
    /// the whole fabric — no labeling can exist). Use [`Self::try_build`]
    /// when the storm is untrusted.
    pub fn build(base: &Topology, initial: &UpDownLabeling, schedule: &FaultSchedule) -> Self {
        // The panic is this constructor's documented contract; fallible
        // callers use `try_build`.
        #[allow(clippy::expect_used)]
        Self::try_build(base, initial, schedule).expect("a switch survives the storm")
    }

    /// Like [`Self::build`], but returns `None` when a fault boundary
    /// destroys the whole fabric (no switch alive, so no labeling
    /// exists). Found by fuzzing: an `IidSwitches` storm at rate 1.0
    /// validates but kills every switch at its first burst.
    pub fn try_build(
        base: &Topology,
        initial: &UpDownLabeling,
        schedule: &FaultSchedule,
    ) -> Option<Self> {
        assert_eq!(
            initial.num_nodes(),
            base.num_nodes(),
            "initial labeling must cover the base topology"
        );
        let boundaries = schedule.fault_times();
        let mut labelings = vec![initial.clone()];
        let mut masks = vec![vec![true; base.num_channels()]];
        let mut reports = Vec::with_capacity(boundaries.len());
        for &t in &boundaries {
            let view = schedule.view_at(base, t);
            // `labelings` is seeded with the initial labeling above and
            // only ever grows.
            #[allow(clippy::expect_used)]
            let prev = labelings.last().expect("epoch 0 exists");
            let (next, report) = prev.relabel_after(&view)?;
            masks.push(view.alive_channel_mask());
            labelings.push(next);
            reports.push(report);
        }
        Some(ReconfigScenario {
            boundaries,
            labelings,
            masks,
            reports,
        })
    }

    /// Number of routing epochs (fault boundaries plus one).
    pub fn num_epochs(&self) -> usize {
        self.labelings.len()
    }

    /// The epoch boundaries (sorted fault instants).
    pub fn boundaries(&self) -> &[Time] {
        &self.boundaries
    }

    /// The epoch a message generated at `t` routes in: generation at or
    /// after a boundary uses the post-fault labeling.
    pub fn epoch_of(&self, t: Time) -> usize {
        self.boundaries.partition_point(|&b| b <= t)
    }

    /// Epoch `e`'s labeling.
    pub fn labeling(&self, e: usize) -> &UpDownLabeling {
        &self.labelings[e]
    }

    /// Epoch `e`'s channel-liveness mask over base channel ids.
    pub fn mask(&self, e: usize) -> &[bool] {
        &self.masks[e]
    }

    /// One [`RelabelReport`] per boundary (`reports()[i]` describes the
    /// transition into epoch `i + 1`).
    pub fn reports(&self) -> &[RelabelReport] {
        &self.reports
    }

    /// Builds the epoch-switching router for this scenario: messages are
    /// routed by the [`SpamRouting`] of their generation epoch, masked to
    /// that epoch's surviving channels.
    pub fn routing<'a>(&'a self, base: &'a Topology) -> EpochRouting<'a> {
        let epochs = self
            .labelings
            .iter()
            .zip(&self.masks)
            .map(|(ud, mask)| SpamRouting::new_masked(base, ud, mask))
            .collect();
        EpochRouting::new(self.boundaries.clone(), epochs)
    }

    /// Precomputes every epoch's masked routing tables — the expensive
    /// part of [`Self::routing`] — detached behind `Arc`s so an artifact
    /// cache can keep them across runs and re-attach them with
    /// [`Self::routing_with_tables`].
    pub fn build_epoch_tables(&self, base: &Topology) -> Vec<Arc<RoutingTables>> {
        self.labelings
            .iter()
            .zip(&self.masks)
            .map(|(ud, mask)| Arc::new(RoutingTables::build_masked(base, ud, Some(mask))))
            .collect()
    }

    /// Like [`Self::routing`], but re-attaching tables previously taken
    /// from [`Self::build_epoch_tables`] for this scenario over `base` —
    /// identical routing behavior, no per-epoch table rebuild.
    ///
    /// # Panics
    ///
    /// Panics when `tables` does not hold exactly one entry per epoch
    /// (it came from a different scenario).
    pub fn routing_with_tables<'a>(
        &'a self,
        base: &'a Topology,
        tables: &[Arc<RoutingTables>],
    ) -> EpochRouting<'a> {
        assert_eq!(
            tables.len(),
            self.num_epochs(),
            "one table set per routing epoch"
        );
        let epochs = self
            .labelings
            .iter()
            .zip(&self.masks)
            .zip(tables)
            .map(|((ud, mask), t)| SpamRouting::with_tables_masked(base, ud, Arc::clone(t), mask))
            .collect();
        EpochRouting::new(self.boundaries.clone(), epochs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultEvent, FaultKind};
    use netgraph::gen::lattice::IrregularConfig;
    use spam_faults::FaultModel;
    use updown::RootSelection;

    #[test]
    fn epoch_chain_tracks_cumulative_damage() {
        let base = IrregularConfig::with_switches(48).generate(4);
        let ud = UpDownLabeling::build(&base, RootSelection::LowestId);
        let storm = FaultSchedule::storm(
            &FaultModel::IidLinks { rate: 0.2 },
            &base,
            None,
            (Time::from_us(10), Time::from_us(40)),
            3,
            77,
        );
        let sc = ReconfigScenario::build(&base, &ud, &storm);
        assert_eq!(sc.num_epochs(), storm.fault_times().len() + 1);
        assert_eq!(sc.reports().len(), sc.num_epochs() - 1);
        // Masks only ever lose channels.
        for e in 1..sc.num_epochs() {
            let dead_prev = sc.mask(e - 1).iter().filter(|a| !**a).count();
            let dead_now = sc.mask(e).iter().filter(|a| !**a).count();
            assert!(dead_now > dead_prev, "each boundary kills something");
            // Labeled sets shrink (or stay) as the network fragments.
            assert!(sc.labeling(e).num_labeled() <= sc.labeling(e - 1).num_labeled());
        }
        // Epoch lookup: before, between, and after boundaries.
        assert_eq!(sc.epoch_of(Time::ZERO), 0);
        assert_eq!(sc.epoch_of(sc.boundaries()[0]), 1);
        assert_eq!(sc.epoch_of(Time::MAX), sc.num_epochs() - 1);
    }

    #[test]
    fn scenario_reuses_surviving_tree_structure() {
        let base = IrregularConfig::with_switches(64).generate(9);
        let ud = UpDownLabeling::build(&base, RootSelection::LowestId);
        // One cross-ish link at a time: most of the tree must survive each
        // relabel.
        let c = base
            .channel_ids()
            .find(|&c| {
                let ch = base.channel(c);
                base.is_switch(ch.src)
                    && base.is_switch(ch.dst)
                    && ud.parent(ch.dst) != Some(ch.src)
                    && ud.parent(ch.src) != Some(ch.dst)
            })
            .expect("a cross link exists");
        let sched = FaultSchedule::new(vec![FaultEvent {
            at: Time::from_us(20),
            kind: FaultKind::LinkDown(c),
        }]);
        let sc = ReconfigScenario::build(&base, &ud, &sched);
        let rep = &sc.reports()[0];
        assert!(!rep.full_rebuild);
        assert_eq!(rep.reattached_nodes, 0, "a cross link is not in the tree");
        assert_eq!(rep.kept_tree_edges, base.num_nodes() - 1);
        assert_eq!(rep.changed_channels, 0);
    }
}
