#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

//! # spam-reconfig — live reconfiguration for SPAM networks
//!
//! The up*/down* labeling SPAM builds on comes from Autonet (Schroeder et
//! al.), whose defining feature was *online* reconfiguration: links and
//! switches fail **while traffic is flowing**, the fabric kills the worms
//! caught in the blast, relabels itself, and keeps serving. The
//! `spam-faults` crate models faults that exist *before* a run starts;
//! this crate closes the remaining gap and simulates the transient —
//! reconfiguration storms hitting a network under load.
//!
//! The moving parts, layered over the rest of the workspace:
//!
//! 1. [`FaultSchedule`] — *when* components die. Reuses the seeded
//!    [`spam_faults::FaultModel`]s for *what* dies and assigns each death
//!    to a burst inside a storm window. Installed into a
//!    [`wormsim::NetworkSim`] it becomes engine fault events: at event
//!    time the engine kills the link, tears down every worm holding it
//!    (releasing all reserved channels and flushing request queues — see
//!    [`wormsim::SimError::TornDown`]), and drops in-flight flits on the
//!    dead wire.
//! 2. [`ReconfigScenario`] — the *epoch chain*. Each fault instant is an
//!    epoch boundary; the scenario incrementally relabels the surviving
//!    network at every boundary via
//!    [`updown::UpDownLabeling::relabel_after`], reusing the surviving
//!    spanning-tree structure and recording a
//!    [`updown::RelabelReport`] per boundary.
//! 3. [`EpochRouting`] — the *routing swap*. Messages generated at or
//!    after a fault instant route on the new epoch's masked
//!    [`spam_core::SpamRouting`] while in-flight survivors keep draining
//!    on their original labeling; per-epoch delivered / torn-down /
//!    unreachable accounting comes out of
//!    [`wormsim::SimOutcome::epoch_stats`].
//!
//! ```
//! use desim::Time;
//! use netgraph::gen::lattice::IrregularConfig;
//! use spam_faults::FaultModel;
//! use spam_reconfig::{FaultSchedule, ReconfigScenario};
//! use updown::{RootSelection, UpDownLabeling};
//! use wormsim::{MessageSpec, NetworkSim, SimConfig};
//!
//! let base = IrregularConfig::with_switches(32).generate(5);
//! let ud = UpDownLabeling::build(&base, RootSelection::LowestId);
//! let storm = FaultSchedule::storm(
//!     &FaultModel::IidLinks { rate: 0.15 },
//!     &base,
//!     None,
//!     (Time::from_us(12), Time::from_us(40)),
//!     2,
//!     42,
//! );
//! let scenario = ReconfigScenario::build(&base, &ud, &storm);
//! let routing = scenario.routing(&base);
//! let mut sim = NetworkSim::new(&base, routing, SimConfig::paper());
//! storm.install(&mut sim);
//! let procs: Vec<_> = base.processors().collect();
//! for i in 0..10u64 {
//!     let src = procs[i as usize % procs.len()];
//!     let dest = procs[(i as usize + 7) % procs.len()];
//!     sim.submit(MessageSpec::unicast(src, dest, 64).at(Time::from_us(4 * i)))
//!         .unwrap();
//! }
//! let out = sim.run();
//! // Every message has a verdict: delivered, torn down, or unreachable.
//! assert!(out.all_accounted());
//! assert_eq!(out.num_epochs(), scenario.num_epochs());
//! ```

pub mod routing;
pub mod scenario;
pub mod schedule;

pub use routing::{EpochHeader, EpochRouting, EpochScratch};
pub use scenario::ReconfigScenario;
pub use schedule::{FaultEvent, FaultKind, FaultSchedule};
