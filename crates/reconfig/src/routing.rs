//! The epoch-based routing swap: one [`SpamRouting`] per epoch, selected
//! by each message's generation time.
//!
//! A worm's epoch is decided once, at injection, and travels with the
//! header (as it would in hardware: the reconfiguration daemon stamps
//! messages with the current configuration number). In-flight survivors
//! therefore keep draining on the labeling they started with while newly
//! submitted traffic routes on the post-fault labeling — exactly the
//! Autonet transient this crate exists to simulate. The engine tears down
//! any old-epoch worm that runs into a channel its stale labeling still
//! believes in.

use desim::Time;
use netgraph::{ChannelId, NodeId};
use spam_collections::InlineVec;
use spam_core::{RouteScratch, SpamHeader, SpamRouting};
use wormsim::{
    MessageSpec, RouteDecision, RouteError, RoutingAlgorithm, SnapReader, SnapWriter, SnapshotError,
};

/// Reusable working memory for the epoch dispatch: the wrapped SPAM
/// router's scratch plus an inner decision buffer the epoch headers are
/// re-stamped from. One value lives in the engine for the whole run, so
/// the epoch indirection adds no per-hop allocation.
#[derive(Debug, Default)]
pub struct EpochScratch {
    inner: RouteScratch,
    decision: RouteDecision<SpamHeader>,
}

/// Header state of an epoch-stamped SPAM worm.
#[derive(Debug, Clone)]
pub struct EpochHeader {
    /// The routing epoch this worm was injected in (immutable in flight).
    pub epoch: usize,
    /// The SPAM header under that epoch's labeling.
    pub inner: SpamHeader,
}

/// A routing algorithm that dispatches every message to the
/// [`SpamRouting`] of its generation epoch.
#[derive(Debug, Clone)]
pub struct EpochRouting<'a> {
    /// Epoch boundaries, ascending; inline up to four faults (the common
    /// storm sizes) so a scenario swap does not heap-allocate per epoch
    /// lookup structure.
    boundaries: InlineVec<Time, 4>,
    epochs: Vec<SpamRouting<'a>>,
}

impl<'a> EpochRouting<'a> {
    /// Builds the swap from epoch boundaries and per-epoch routers
    /// (`epochs.len() == boundaries.len() + 1`). Usually constructed via
    /// [`crate::ReconfigScenario::routing`].
    pub fn new(boundaries: Vec<Time>, epochs: Vec<SpamRouting<'a>>) -> Self {
        assert_eq!(
            epochs.len(),
            boundaries.len() + 1,
            "one router per epoch (boundaries + 1)"
        );
        assert!(
            boundaries.windows(2).all(|w| w[0] < w[1]),
            "boundaries must be strictly increasing"
        );
        EpochRouting {
            boundaries: InlineVec::from_slice(&boundaries),
            epochs,
        }
    }

    /// The epoch a message generated at `t` belongs to.
    pub fn epoch_of(&self, t: Time) -> usize {
        self.boundaries.as_slice().partition_point(|&b| b <= t)
    }

    /// Number of epochs.
    pub fn num_epochs(&self) -> usize {
        self.epochs.len()
    }

    /// The router of one epoch.
    pub fn epoch(&self, e: usize) -> &SpamRouting<'a> {
        &self.epochs[e]
    }
}

impl RoutingAlgorithm for EpochRouting<'_> {
    type Header = EpochHeader;
    type Scratch = EpochScratch;

    fn initial_header(&self, spec: &MessageSpec) -> Result<EpochHeader, RouteError> {
        let epoch = self.epoch_of(spec.gen_time);
        self.epochs[epoch]
            .initial_header(spec)
            .map(|inner| EpochHeader { epoch, inner })
    }

    fn snapshot_name(&self) -> &'static str {
        "epoch-spam"
    }

    fn encode_header(&self, h: &EpochHeader, w: &mut SnapWriter) -> Result<(), SnapshotError> {
        w.put_usize(h.epoch);
        self.epochs[h.epoch].encode_header(&h.inner, w)
    }

    fn decode_header(&self, r: &mut SnapReader) -> Result<EpochHeader, SnapshotError> {
        let epoch = r.get_usize()?;
        let router = self
            .epochs
            .get(epoch)
            .ok_or(SnapshotError::Corrupt("header epoch out of range"))?;
        Ok(EpochHeader {
            epoch,
            inner: router.decode_header(r)?,
        })
    }

    fn route(
        &self,
        node: NodeId,
        in_ch: ChannelId,
        header: &EpochHeader,
        spec: &MessageSpec,
        scratch: &mut EpochScratch,
        out: &mut RouteDecision<EpochHeader>,
    ) -> Result<(), RouteError> {
        let epoch = header.epoch;
        scratch.decision.clear();
        self.epochs[epoch].route(
            node,
            in_ch,
            &header.inner,
            spec,
            &mut scratch.inner,
            &mut scratch.decision,
        )?;
        for (c, inner) in scratch.decision.requests.drain(..) {
            out.push(c, EpochHeader { epoch, inner });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ReconfigScenario;
    use crate::schedule::{FaultEvent, FaultKind, FaultSchedule};
    use netgraph::gen::fixtures::figure1;
    use updown::{RootSelection, UpDownLabeling};
    use wormsim::{NetworkSim, SimConfig};

    #[test]
    fn epoch_stamp_follows_generation_time() {
        let (t, l) = figure1();
        let by = |x: u32| l.by_label(x).unwrap();
        let ud = UpDownLabeling::build(&t, RootSelection::Fixed(by(1)));
        // Kill the (2,4) tree link at 20 µs (4 reattaches via (3,4)).
        let dead = t.channel_between(by(2), by(4)).unwrap();
        let sched = FaultSchedule::new(vec![FaultEvent {
            at: Time::from_us(20),
            kind: FaultKind::LinkDown(dead),
        }]);
        let sc = ReconfigScenario::build(&t, &ud, &sched);
        let routing = sc.routing(&t);
        assert_eq!(routing.num_epochs(), 2);
        let before = MessageSpec::unicast(by(5), by(8), 8).at(Time::from_us(3));
        let after = MessageSpec::unicast(by(5), by(8), 8).at(Time::from_us(20));
        assert_eq!(routing.initial_header(&before).unwrap().epoch, 0);
        assert_eq!(routing.initial_header(&after).unwrap().epoch, 1);
    }

    #[test]
    fn post_fault_messages_route_around_the_dead_link() {
        // The tree link (2,4) dies at 1 µs, before any flit moves (startup
        // is 10 µs); a message submitted after the boundary routes in
        // epoch 1, where node 4's subtree reattached via the (3,4) cross
        // link.
        let (t, l) = figure1();
        let by = |x: u32| l.by_label(x).unwrap();
        let ud = UpDownLabeling::build(&t, RootSelection::Fixed(by(1)));
        let dead = t.channel_between(by(2), by(4)).unwrap();
        let sched = FaultSchedule::new(vec![FaultEvent {
            at: Time::from_us(1),
            kind: FaultKind::LinkDown(dead),
        }]);
        let sc = ReconfigScenario::build(&t, &ud, &sched);
        let routing = sc.routing(&t);
        let mut sim = NetworkSim::new(&t, routing, SimConfig::paper());
        sched.install(&mut sim);
        // 5 → 8 used to descend 2 → 4 → 6 → 8; now the worm must go
        // around through 3's down-cross into the reattached subtree.
        sim.submit(MessageSpec::unicast(by(5), by(8), 32).at(Time::from_us(2)))
            .unwrap();
        let out = sim.run();
        assert!(out.all_delivered(), "{:?} {:?}", out.error, out.deadlock);
        assert_eq!(out.num_epochs(), 2);
    }

    #[test]
    fn mid_flight_fault_tears_down_and_new_epoch_delivers() {
        let (t, l) = figure1();
        let by = |x: u32| l.by_label(x).unwrap();
        let ud = UpDownLabeling::build(&t, RootSelection::Fixed(by(1)));
        let dead = t.channel_between(by(2), by(4)).unwrap();
        // The multicast's worm occupies (2,4) from ~10.05 µs to ~11.4 µs;
        // kill the link at 10.5 µs, mid-worm.
        let sched = FaultSchedule::new(vec![FaultEvent {
            at: Time::from_ns(10_500),
            kind: FaultKind::LinkDown(dead),
        }]);
        let sc = ReconfigScenario::build(&t, &ud, &sched);
        let routing = sc.routing(&t);
        let mut sim = NetworkSim::new(&t, routing, SimConfig::paper());
        sched.install(&mut sim);
        let m0 = sim
            .submit(MessageSpec::multicast(
                by(5),
                vec![by(8), by(9), by(10), by(11)],
                128,
            ))
            .unwrap();
        let m1 = sim
            .submit(MessageSpec::unicast(by(5), by(8), 32).at(Time::from_us(15)))
            .unwrap();
        let out = sim.run();
        assert!(out.all_accounted(), "{:?} {:?}", out.error, out.deadlock);
        assert!(out.messages[m0.index()].is_torn_down(), "caught mid-flight");
        assert!(out.messages[m1.index()].is_complete(), "epoch 1 delivers");
        assert_eq!(out.counters.messages_torn_down, 1);
        assert_eq!(out.counters.links_killed, 1);
        let stats = out.epoch_stats();
        assert_eq!(stats[0].torn_down, 1);
        assert_eq!(stats[1].delivered, 1);
    }
}
