//! Timed fault schedules: *when* the components sampled by a
//! [`FaultModel`] die.
//!
//! A schedule is pure data — a time-sorted list of link/switch deaths —
//! deterministic in its seed, so the live arm and any baseline arm of an
//! experiment can replay the identical storm.

use desim::Time;
use netgraph::gen::lattice::LatticeLayout;
use netgraph::{ChannelId, DegradedTopology, NodeId, Topology};
use rand::{Rng, SeedableRng};
use spam_faults::{FaultModel, FaultPlan};
use wormsim::{NetworkSim, RoutingAlgorithm};

/// What dies in one fault event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The bidirectional link containing this (forward) channel.
    LinkDown(ChannelId),
    /// A switch and every link incident to it.
    SwitchDown(NodeId),
}

/// One timed death.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Simulation instant at which the component dies.
    pub at: Time,
    /// The dying component.
    pub kind: FaultKind,
}

/// A time-sorted list of fault events — the storm a live-reconfiguration
/// run is subjected to.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// Builds a schedule from explicit events (scripted scenarios,
    /// regression pins). Events are stably sorted by time.
    pub fn new(mut events: Vec<FaultEvent>) -> Self {
        events.sort_by_key(|e| e.at);
        FaultSchedule { events }
    }

    /// Samples a fault **storm**: `model` decides *what* dies (exactly as
    /// in a static fault sweep — same seed, same victims), and each death
    /// is assigned to one of `bursts` instants evenly spaced inside
    /// `window`. Deterministic in `(model, topo, seed)`.
    ///
    /// Bursts model how real fabrics fail — a rack power event or a cable
    /// cut kills several links at one instant — and keep the epoch count
    /// (hence the relabeling cost) bounded at `bursts` regardless of the
    /// storm's intensity.
    ///
    /// # Panics
    ///
    /// Panics if `bursts == 0` or the window is empty, or on the
    /// [`FaultModel::sample`] preconditions.
    pub fn storm(
        model: &FaultModel,
        topo: &Topology,
        layout: Option<&LatticeLayout>,
        window: (Time, Time),
        bursts: usize,
        seed: u64,
    ) -> Self {
        assert!(bursts > 0, "a storm needs at least one burst");
        let (start, end) = window;
        assert!(end > start, "empty storm window");
        let plan = model.sample(topo, layout, seed);
        let span = end.as_ns() - start.as_ns();
        let burst_time =
            |i: usize| Time::from_ns(start.as_ns() + span * (i as u64 + 1) / (bursts as u64 + 1));
        // A distinct stream for the burst assignment so it never perturbs
        // the victim draw.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x5708_B1A5_7C0D_E5ED);
        let mut events = Vec::with_capacity(plan.links.len() + plan.switches.len());
        for &c in &plan.links {
            events.push(FaultEvent {
                at: burst_time(rng.gen_range(0..bursts)),
                kind: FaultKind::LinkDown(c),
            });
        }
        for &s in &plan.switches {
            events.push(FaultEvent {
                at: burst_time(rng.gen_range(0..bursts)),
                kind: FaultKind::SwitchDown(s),
            });
        }
        Self::new(events)
    }

    /// The events, sorted by time.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when nothing dies.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Sorted, deduplicated fault instants — the epoch boundaries.
    pub fn fault_times(&self) -> Vec<Time> {
        let mut t: Vec<Time> = self.events.iter().map(|e| e.at).collect();
        t.dedup();
        t
    }

    /// The same deaths all collapsed onto one instant — the static-
    /// degraded control arm of a live experiment: with `at` = time zero
    /// the whole storm strikes before any worm starts, reproducing the
    /// "faults exist before the run" regime on identical damage.
    pub fn collapsed_at(&self, at: Time) -> Self {
        FaultSchedule {
            events: self
                .events
                .iter()
                .map(|e| FaultEvent { at, kind: e.kind })
                .collect(),
        }
    }

    /// The cumulative damage at time `t`: a degraded view of `base` with
    /// every component dead whose event fired at or before `t`.
    pub fn view_at<'a>(&self, base: &'a Topology, t: Time) -> DegradedTopology<'a> {
        let mut view = DegradedTopology::new(base);
        for e in self.events.iter().take_while(|e| e.at <= t) {
            match e.kind {
                FaultKind::LinkDown(c) => view.kill_link(c),
                FaultKind::SwitchDown(s) => view.kill_switch(s),
            }
        }
        view
    }

    /// The full damage as a [`FaultPlan`] (for reuse with the static
    /// `spam-faults` pipeline).
    pub fn final_plan(&self) -> FaultPlan {
        let mut plan = FaultPlan::default();
        for e in &self.events {
            match e.kind {
                FaultKind::LinkDown(c) => plan.links.push(c),
                FaultKind::SwitchDown(s) => plan.switches.push(s),
            }
        }
        plan
    }

    /// Installs every event into a simulator as engine fault events,
    /// switching the run into live-reconfiguration mode.
    pub fn install<R: RoutingAlgorithm>(&self, sim: &mut NetworkSim<'_, R>) {
        for e in &self.events {
            match e.kind {
                FaultKind::LinkDown(c) => sim.schedule_link_down(e.at, c),
                FaultKind::SwitchDown(s) => sim.schedule_switch_down(e.at, s),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netgraph::gen::lattice::IrregularConfig;

    #[test]
    fn storm_is_deterministic_and_sorted() {
        let topo = IrregularConfig::with_switches(48).generate(3);
        let w = (Time::from_us(10), Time::from_us(50));
        let m = FaultModel::IidLinks { rate: 0.2 };
        let a = FaultSchedule::storm(&m, &topo, None, w, 3, 9);
        let b = FaultSchedule::storm(&m, &topo, None, w, 3, 9);
        assert_eq!(a, b);
        assert_ne!(a, FaultSchedule::storm(&m, &topo, None, w, 3, 10));
        assert!(a.events().windows(2).all(|p| p[0].at <= p[1].at));
        // Burst times sit strictly inside the window.
        for e in a.events() {
            assert!(e.at > w.0 && e.at < w.1);
        }
        assert!(a.fault_times().len() <= 3, "at most `bursts` epochs");
    }

    #[test]
    fn storm_victims_match_the_static_model() {
        // Same (model, topo, seed) → identical victim set as a static
        // sample; the storm only adds timing.
        let topo = IrregularConfig::with_switches(32).generate(7);
        let m = FaultModel::IidLinks { rate: 0.25 };
        let storm = FaultSchedule::storm(
            &m,
            &topo,
            None,
            (Time::from_us(1), Time::from_us(2)),
            2,
            123,
        );
        let plan = m.sample(&topo, None, 123);
        let mut storm_links = storm.final_plan().links;
        storm_links.sort_unstable();
        let mut static_links = plan.links;
        static_links.sort_unstable();
        assert_eq!(storm_links, static_links);
    }

    #[test]
    fn view_at_accumulates_and_collapse_moves_everything() {
        let topo = IrregularConfig::with_switches(24).generate(1);
        let storm = FaultSchedule::storm(
            &FaultModel::IidLinks { rate: 0.3 },
            &topo,
            None,
            (Time::from_us(10), Time::from_us(40)),
            3,
            5,
        );
        let times = storm.fault_times();
        assert!(!times.is_empty());
        let before = storm.view_at(&topo, Time::ZERO);
        assert_eq!(before.num_alive_channels(), topo.num_channels());
        let mut last = topo.num_channels();
        for &t in &times {
            let alive = storm.view_at(&topo, t).num_alive_channels();
            assert!(alive < last, "each burst kills something");
            last = alive;
        }
        let end = storm.view_at(&topo, Time::MAX).num_alive_channels();
        let collapsed = storm.collapsed_at(Time::ZERO);
        assert_eq!(collapsed.fault_times(), vec![Time::ZERO]);
        assert_eq!(
            collapsed.view_at(&topo, Time::ZERO).num_alive_channels(),
            end,
            "collapse preserves the total damage"
        );
    }

    #[test]
    fn switch_down_events_strand_processors_in_views() {
        let topo = IrregularConfig::with_switches(16).generate(2);
        let s = topo.switches().next().unwrap();
        let sched = FaultSchedule::new(vec![FaultEvent {
            at: Time::from_us(5),
            kind: FaultKind::SwitchDown(s),
        }]);
        let view = sched.view_at(&topo, Time::from_us(5));
        assert!(!view.is_node_alive(s));
        let p = topo.processor_of(s).unwrap();
        assert!(!view.is_node_alive(p), "processor stranded");
    }
}
