//! Scenario-level checkpoint/resume: for every routing arm, fault arm,
//! and completion hook a spec can describe, a run resumed from any
//! checkpoint finishes identically to its uninterrupted twin — under
//! both event-queue implementations — and broken snapshot bytes come
//! back as typed [`SpecError::Snapshot`] values, never panics.

use desim::QueueKind;
use spam_scenario::{
    bisect_divergence, outcome_digest, resume_once, run_once, run_once_checkpointed, ArrivalSpec,
    FaultModelSpec, FaultsSpec, RoutingSpec, ScenarioSpec, SpecError, TrafficSpec,
};

/// A small mixed workload that finishes in tens of microseconds.
fn mixed_traffic() -> TrafficSpec {
    TrafficSpec::Mixed {
        unicast_fraction: 0.75,
        multicast_dests: 4,
        rate_per_node_per_us: 0.2,
        len: 64,
        messages: 40,
        arrival: ArrivalSpec::Poisson,
    }
}

fn small(name: &str) -> ScenarioSpec {
    let mut s = ScenarioSpec::example(name);
    s.topology.switches = 16;
    s.topology.seed = 11;
    s.seed = 42;
    s.traffic = mixed_traffic();
    s
}

/// One spec per (routing arm × hook × fault arm) combination the
/// runner distinguishes.
fn arm_specs() -> Vec<ScenarioSpec> {
    let spam_open = small("spam-open");

    let mut updown = small("updown-open");
    updown.routing = RoutingSpec::UpDownUnicast;
    updown.traffic = TrafficSpec::Hotspot {
        hot_nodes: 2,
        hot_fraction: 0.6,
        rate_per_node_per_us: 0.2,
        len: 48,
        messages: 30,
        arrival: ArrivalSpec::Poisson,
    };

    let mut closed = small("spam-closed-loop");
    closed.traffic = TrafficSpec::ClosedLoop {
        window: 2,
        messages_per_source: 3,
        len: 32,
        think_ns: 500,
    };

    let mut software = small("software-multicast");
    software.routing = RoutingSpec::SoftwareMulticast;

    let mut static_faults = small("spam-static-faults");
    static_faults.faults = FaultsSpec::Static {
        model: FaultModelSpec::IidLinks { rate: 0.1 },
        seed: 7,
    };

    let mut storm = small("spam-storm");
    storm.faults = FaultsSpec::Storm {
        model: FaultModelSpec::IidLinks { rate: 0.15 },
        seed: 9,
        window_start_us: 5,
        window_end_us: 40,
        bursts: 2,
    };

    vec![spam_open, updown, closed, software, static_faults, storm]
}

#[test]
fn every_arm_resumes_identically_from_every_checkpoint() {
    for spec in arm_specs() {
        let baseline = run_once(&spec, 0, None).expect("baseline run");
        let golden = run_once_checkpointed(&spec, 0, None, 5_000).expect("checkpointed run");
        let want = outcome_digest(&baseline);
        assert_eq!(
            want,
            outcome_digest(&golden.outcome),
            "[{}] checkpointing perturbed the run",
            spec.name
        );
        assert!(
            !golden.checkpoints.is_empty(),
            "[{}] a 5us cadence must checkpoint at least once",
            spec.name
        );
        for (at_ns, bytes) in &golden.checkpoints {
            for queue in [QueueKind::Bucket, QueueKind::Heap] {
                let resumed = resume_once(&spec, 0, Some(queue), bytes).unwrap_or_else(|e| {
                    panic!("[{}] resume at {at_ns}ns under {queue:?}: {e}", spec.name)
                });
                assert_eq!(
                    want,
                    outcome_digest(&resumed),
                    "[{}] resume at {at_ns}ns under {queue:?} diverged",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn broken_snapshot_bytes_are_typed_spec_errors() {
    let spec = small("corruption");
    let golden = run_once_checkpointed(&spec, 0, None, 5_000).expect("checkpointed run");
    let bytes = &golden.checkpoints[golden.checkpoints.len() / 2].1;

    // Truncated, flipped, and garbage bytes all surface as Snapshot.
    for broken in [&bytes[..bytes.len() / 2], &[][..], b"not a snapshot"] {
        match resume_once(&spec, 0, None, broken) {
            Err(e) => assert_eq!(e.variant_name(), "Snapshot", "got {e:?}"),
            Ok(_) => panic!("broken snapshot bytes resumed"),
        }
    }

    // A spec that describes a different run is rejected the same way:
    // the engine's config/topology fingerprints no longer match.
    let mut other = spec.clone();
    other.topology.seed = 1234;
    match resume_once(&other, 0, None, bytes) {
        Err(e) => assert_eq!(e.variant_name(), "Snapshot", "got {e:?}"),
        Ok(_) => panic!("snapshot restored onto a different topology"),
    }
}

#[test]
fn zero_cadence_is_rejected_up_front() {
    let spec = small("zero-cadence");
    assert!(matches!(
        run_once_checkpointed(&spec, 0, None, 0),
        Err(SpecError::ZeroCheckpointCadence)
    ));
}

#[test]
fn bisector_reports_no_divergence_for_identical_runs() {
    let spec = small("bisect-identical");
    // Bucket vs heap is the golden invariant: same outcomes.
    let mut candidate = spec.clone();
    candidate.engine.queue = Some(spam_scenario::QueueSpec::Heap);
    let report = bisect_divergence(&spec, &candidate, 0, 5_000).expect("bisect");
    assert!(report.is_none(), "queue kinds must not diverge: {report:?}");
}

#[test]
fn bisector_localizes_a_real_divergence() {
    // A different traffic seed diverges from the very first injection,
    // so the bisection must pin the window before the first checkpoint
    // and name a first differing trace event.
    let spec = small("bisect-reference");
    let mut candidate = spec.clone();
    candidate.seed = 4242;
    let report = bisect_divergence(&spec, &candidate, 0, 5_000)
        .expect("bisect")
        .expect("different workloads must diverge");
    assert_ne!(report.reference_digest, report.candidate_digest);
    assert!(report.checkpoints >= 1);
    assert_eq!(
        report.window_start_ns, 0,
        "divergence starts at injection time: {report:?}"
    );
    assert!(
        report.window_end_ns.is_some(),
        "resuming past the divergence must reconverge: {report:?}"
    );
    let ev = report.first_event.expect("both runs traced");
    assert!(ev.reference.is_some() || ev.candidate.is_some());
}
