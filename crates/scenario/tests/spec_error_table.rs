//! Exhaustive negative-case table: one malformed input per
//! [`SpecError`] / [`TrafficError`] variant, asserting both the variant
//! (via its dotted [`SpecError::variant_name`]) and, for decode errors,
//! the dotted field path the codec reports. The fuzzer keys its
//! rejection accounting on `variant_name`, so this table is also the
//! proof that every name is reachable.

use spam_scenario::{
    run_once, ArrivalSpec, FaultModelSpec, FaultsSpec, PatternSpec, PolicySpec, RoutingSpec,
    ScenarioSpec, SpecError, TrafficSpec,
};
use traffic::{HotspotConfig, TrafficError};

fn base() -> ScenarioSpec {
    ScenarioSpec::example("error-table")
}

/// Every decode-level variant, with the dotted path the codec must report.
#[test]
fn decode_errors_report_variant_and_dotted_path() {
    let good = base().to_json_string();

    // Json: not a JSON document at all.
    match ScenarioSpec::from_json("{ definitely not json") {
        Err(e) => assert_eq!(e.variant_name(), "Json"),
        Ok(_) => panic!("garbage decoded"),
    }

    // Helper: corrupt the canonical serialization and decode.
    let corrupt = |needle: &str, replacement: &str| -> SpecError {
        assert!(
            good.contains(needle),
            "canonical JSON no longer contains {needle:?}:\n{good}"
        );
        let doc = good.replacen(needle, replacement, 1);
        ScenarioSpec::from_json(&doc).expect_err("corrupted doc decoded")
    };

    // MissingField: drop the traffic tag's sibling field.
    match corrupt("\"dests\": 16,", "") {
        SpecError::MissingField { field } => assert_eq!(field, "scenario.traffic.dests"),
        e => panic!("expected MissingField, got {e:?} ({})", e.variant_name()),
    }

    // WrongType: a string where a count belongs.
    match corrupt("\"switches\": 64,", "\"switches\": \"many\",") {
        SpecError::WrongType { field, .. } => assert_eq!(field, "scenario.topology.switches"),
        e => panic!("expected WrongType, got {e:?} ({})", e.variant_name()),
    }

    // UnknownKind: a tag no enum carries.
    match corrupt("\"kind\": \"single_multicast\"", "\"kind\": \"quantum\"") {
        SpecError::UnknownKind { field, got } => {
            // The codec reports the tagged *object*, not the tag field.
            assert_eq!(field, "scenario.traffic");
            assert_eq!(got, "quantum");
        }
        e => panic!("expected UnknownKind, got {e:?} ({})", e.variant_name()),
    }

    // UnknownField: the typo guard.
    match corrupt("\"ports\": 8", "\"ports\": 8, \"portz\": 9") {
        SpecError::UnknownField { field } => assert_eq!(field, "scenario.topology.portz"),
        e => panic!("expected UnknownField, got {e:?} ({})", e.variant_name()),
    }
}

/// One spec per statically-checkable validation variant. Each entry must
/// trip exactly the named variant — earlier checks in `validate()` all
/// pass, so the table doubles as documentation of the check order.
#[test]
fn validation_errors_cover_every_variant() {
    let mut table: Vec<(&'static str, ScenarioSpec)> = Vec::new();

    let mut s = base();
    s.name = String::new();
    table.push(("EmptyName", s));

    let mut s = base();
    s.topology.switches = 1;
    table.push(("TooFewSwitches", s));

    let mut s = base();
    s.topology.side = Some(7); // 7 * 7 < 64
    table.push(("LatticeTooSmall", s));

    let mut s = base();
    s.topology.ports = 4;
    table.push(("BadPorts", s));

    let mut s = base();
    s.replications = 0;
    table.push(("ZeroReplications", s));

    let mut s = base();
    s.engine.input_buffer_flits = 0;
    table.push(("BadBuffers", s));

    let mut s = base();
    s.engine.metrics_every_ns = Some(0);
    table.push(("ZeroSampleCadence", s));

    let mut s = base();
    s.engine.checkpoint_every_ns = Some(0);
    table.push(("ZeroCheckpointCadence", s));

    let mut s = base();
    s.traffic = TrafficSpec::SingleMulticast { dests: 0, len: 32 };
    table.push(("Traffic.NoDestinations", s));

    let mut s = base();
    s.traffic = TrafficSpec::SingleMulticast {
        dests: 64, // == processor count: no source remains
        len: 32,
    };
    table.push(("Traffic.NotEnoughProcessors", s));

    let mut s = base();
    s.traffic = TrafficSpec::Mixed {
        unicast_fraction: 1.5,
        multicast_dests: 4,
        rate_per_node_per_us: 0.01,
        len: 32,
        messages: 10,
        arrival: ArrivalSpec::Poisson,
    };
    table.push(("Traffic.BadFraction", s));

    let mut s = base();
    s.traffic = TrafficSpec::Mixed {
        unicast_fraction: 0.5,
        multicast_dests: 4,
        rate_per_node_per_us: 0.0,
        len: 32,
        messages: 10,
        arrival: ArrivalSpec::Poisson,
    };
    table.push(("Traffic.NonPositiveRate", s));

    let mut s = base();
    s.traffic = TrafficSpec::Permutation {
        pattern: PatternSpec::Transpose,
        rate_per_node_per_us: 1e6, // mean gap < one 10 ns arrival slot
        len: 32,
        messages_per_node: 2,
        arrival: ArrivalSpec::Poisson,
    };
    table.push(("Traffic.RateTooHigh", s));

    let mut s = base();
    s.traffic = TrafficSpec::ClosedLoop {
        window: 0,
        messages_per_source: 4,
        len: 32,
        think_ns: 0,
    };
    table.push(("Traffic.ZeroDuration", s));

    let mut s = base();
    s.traffic = TrafficSpec::Mixed {
        unicast_fraction: 0.5,
        multicast_dests: 4,
        rate_per_node_per_us: 0.01,
        len: 32,
        messages: 10,
        arrival: ArrivalSpec::OnOff {
            r: 1,
            mean_on_us: u64::MAX / 1_000 + 1, // Duration::from_us would overflow
            mean_off_us: 1,
        },
    };
    table.push(("Traffic.DurationTooLarge", s));

    let mut s = base();
    s.faults = FaultsSpec::Static {
        model: FaultModelSpec::IidLinks { rate: 1.5 },
        seed: 1,
    };
    table.push(("BadFaultRate", s));

    let storm = |model, start, end, bursts| FaultsSpec::Storm {
        model,
        seed: 1,
        window_start_us: start,
        window_end_us: end,
        bursts,
    };

    let mut s = base();
    s.faults = storm(FaultModelSpec::IidLinks { rate: 0.1 }, 100, 100, 1);
    table.push(("EmptyStormWindow", s));

    let mut s = base();
    s.faults = storm(FaultModelSpec::IidLinks { rate: 0.1 }, 50, 100, 0);
    table.push(("ZeroBursts", s));

    let mut s = base();
    s.faults = storm(FaultModelSpec::IidLinks { rate: 0.1 }, 50, 200, 1);
    s.horizon_us = Some(100);
    table.push(("FaultsPastHorizon", s));

    // Combination checks: keep traffic/faults individually valid.
    let unicast_traffic = TrafficSpec::Hotspot {
        hot_nodes: 2,
        hot_fraction: 0.5,
        rate_per_node_per_us: 0.01,
        len: 32,
        messages: 10,
        arrival: ArrivalSpec::Poisson,
    };

    let mut s = base();
    s.routing = RoutingSpec::UpDownUnicast;
    s.traffic = unicast_traffic.clone();
    s.faults = storm(FaultModelSpec::IidLinks { rate: 0.1 }, 50, 100, 1);
    table.push(("StormNeedsSpam", s));

    let mut s = base();
    s.routing = RoutingSpec::Spam {
        policy: PolicySpec::FirstLegal,
    };
    s.traffic = unicast_traffic;
    s.faults = storm(FaultModelSpec::IidLinks { rate: 0.1 }, 50, 100, 1);
    table.push(("UnsupportedCombination", s));

    let mut s = base();
    s.routing = RoutingSpec::UpDownUnicast;
    // base() traffic is a single multicast — multicast-capable.
    table.push(("UnicastRoutingNeedsUnicastTraffic", s));

    let mut covered = std::collections::BTreeSet::new();
    for (want, spec) in &table {
        let err = spec
            .validate()
            .expect_err(&format!("{want} spec unexpectedly validated"));
        assert_eq!(
            err.variant_name(),
            *want,
            "spec for {want} tripped {err:?} instead"
        );
        assert!(!err.to_string().is_empty());
        covered.insert(*want);
    }
    assert_eq!(covered.len(), table.len(), "duplicate table rows");
}

/// Variants only decidable at run time, after sampling faults.
#[test]
fn run_level_errors_are_typed_not_panics() {
    // NoSurvivingComponent, static flavor: every switch dies up front.
    let mut s = base();
    s.faults = FaultsSpec::Static {
        model: FaultModelSpec::IidSwitches { rate: 1.0 },
        seed: 1,
    };
    match run_once(&s, 0, None) {
        Err(e) => assert_eq!(e.variant_name(), "NoSurvivingComponent"),
        Ok(_) => panic!("total destruction produced an outcome"),
    }

    // NoSurvivingComponent, storm flavor: the fuzzer's first find — this
    // used to panic inside the relabel chain instead of erroring.
    let mut s = base();
    s.routing = RoutingSpec::Spam {
        policy: PolicySpec::MinResidualDistance,
    };
    s.faults = FaultsSpec::Storm {
        model: FaultModelSpec::IidSwitches { rate: 1.0 },
        seed: 1,
        window_start_us: 10,
        window_end_us: 20,
        bursts: 1,
    };
    match run_once(&s, 0, None) {
        Err(e) => assert_eq!(e.variant_name(), "NoSurvivingComponent"),
        Ok(_) => panic!("fabric-destroying storm produced an outcome"),
    }
}

/// `TrafficError` variants unreachable through `ScenarioSpec::validate`
/// (a lattice always has ≥ 2 processors) but live at the library level,
/// where degraded populations can shrink arbitrarily.
#[test]
fn traffic_errors_unreachable_from_specs_still_have_table_rows() {
    let hotspot = HotspotConfig {
        hot_nodes: 1,
        hot_fraction: 0.5,
        rate_per_node_per_us: 0.01,
        message_len: 32,
        messages: 10,
        arrival: traffic::ArrivalKind::Poisson,
    };
    match hotspot.validate(1) {
        Err(TrafficError::TooFewSources { .. }) => {}
        other => panic!("expected TooFewSources, got {other:?}"),
    }
    assert_eq!(
        SpecError::from(TrafficError::TooFewSources {
            needed: 2,
            available: 1
        })
        .variant_name(),
        "Traffic.TooFewSources"
    );
}
