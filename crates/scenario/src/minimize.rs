//! Greedy axis-deletion candidates for shrinking an oracle-violating
//! [`ScenarioSpec`] (the fuzzer's minimizer).
//!
//! Each candidate removes or simplifies exactly one axis while keeping
//! the spec valid; the fuzzer adopts a candidate whenever the simplified
//! spec still fails the *same* oracle, and iterates to a fixpoint. The
//! order is deliberate: the axes most likely to be irrelevant to a
//! failure (replication count, horizon, engine knobs) come first, the
//! ones most likely to carry it (faults, traffic shape, topology size)
//! last — so the greedy walk strips boilerplate before it risks losing
//! the trigger.

use crate::spec::{EngineSpec, FaultsSpec, ScenarioSpec, TrafficSpec};

/// One-axis simplifications of `spec`, each labelled with the axis it
/// touches. Only candidates that (a) differ from `spec` and (b) still
/// pass [`ScenarioSpec::validate`] are returned — a minimizer step never
/// trades an oracle violation for a validation error.
pub fn simplify_candidates(spec: &ScenarioSpec) -> Vec<(&'static str, ScenarioSpec)> {
    let mut out: Vec<(&'static str, ScenarioSpec)> = Vec::new();
    let mut push = |axis: &'static str, cand: ScenarioSpec| {
        if cand != *spec && cand.validate().is_ok() {
            out.push((axis, cand));
        }
    };

    // Replications: a failure that needs rep > 0 is a seed-derivation
    // failure; try the cheapest run count first.
    if spec.replications > 1 {
        let mut c = spec.clone();
        c.replications = 1;
        push("replications", c);
    }
    // Horizon: purely a validation constraint; dropping it never changes
    // the simulation.
    if spec.horizon_us.is_some() {
        let mut c = spec.clone();
        c.horizon_us = None;
        push("horizon_us", c);
    }
    // Engine knobs back to defaults (keep the queue choice — it is an
    // oracle axis, not boilerplate).
    {
        let mut c = spec.clone();
        c.engine = EngineSpec {
            queue: spec.engine.queue,
            ..EngineSpec::default()
        };
        push("engine", c);
    }
    // Faults off entirely.
    if !matches!(spec.faults, FaultsSpec::None) {
        let mut c = spec.clone();
        c.faults = FaultsSpec::None;
        push("faults", c);
    }
    // Storm: fewer bursts.
    if let FaultsSpec::Storm { bursts, .. } = spec.faults {
        if bursts > 1 {
            let mut c = spec.clone();
            if let FaultsSpec::Storm { bursts, .. } = &mut c.faults {
                *bursts = 1;
            }
            push("faults.bursts", c);
        }
    }
    // Traffic volume: halve message counts, shrink destination sets and
    // message lengths.
    {
        let mut c = spec.clone();
        match &mut c.traffic {
            TrafficSpec::Mixed { messages, .. }
            | TrafficSpec::Hotspot { messages, .. }
            | TrafficSpec::Incast { messages, .. } => *messages = (*messages / 2).max(1),
            TrafficSpec::Permutation {
                messages_per_node, ..
            } => *messages_per_node = (*messages_per_node / 2).max(1),
            TrafficSpec::ClosedLoop {
                messages_per_source,
                ..
            } => *messages_per_source = (*messages_per_source / 2).max(1),
            TrafficSpec::SingleMulticast { .. } | TrafficSpec::BroadcastStorm { .. } => {}
        }
        push("traffic.volume", c);
    }
    {
        let mut c = spec.clone();
        match &mut c.traffic {
            TrafficSpec::SingleMulticast { dests, .. } => *dests = (*dests / 2).max(1),
            TrafficSpec::Mixed {
                multicast_dests, ..
            } => *multicast_dests = (*multicast_dests / 2).max(1),
            _ => {}
        }
        push("traffic.dests", c);
    }
    {
        let mut c = spec.clone();
        let len = match &mut c.traffic {
            TrafficSpec::SingleMulticast { len, .. }
            | TrafficSpec::Mixed { len, .. }
            | TrafficSpec::Hotspot { len, .. }
            | TrafficSpec::Permutation { len, .. }
            | TrafficSpec::Incast { len, .. }
            | TrafficSpec::BroadcastStorm { len, .. }
            | TrafficSpec::ClosedLoop { len, .. } => len,
        };
        *len = (*len / 2).max(1);
        push("traffic.len", c);
    }
    // Topology: halve the lattice (default side tracks the new count).
    if spec.topology.switches > 2 {
        let mut c = spec.clone();
        c.topology.switches = (spec.topology.switches / 2).max(2);
        c.topology.side = None;
        push("topology.switches", c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FaultModelSpec, PolicySpec, RoutingSpec};

    fn stormy() -> ScenarioSpec {
        let mut s = ScenarioSpec::example("shrink-me");
        s.replications = 5;
        s.horizon_us = Some(500);
        s.engine.input_buffer_flits = 4;
        s.routing = RoutingSpec::Spam {
            policy: PolicySpec::MinResidualDistance,
        };
        s.traffic = TrafficSpec::Mixed {
            unicast_fraction: 0.9,
            multicast_dests: 8,
            rate_per_node_per_us: 0.01,
            len: 64,
            messages: 200,
            arrival: crate::spec::ArrivalSpec::NegativeBinomial { r: 1 },
        };
        s.faults = FaultsSpec::Storm {
            model: FaultModelSpec::IidLinks { rate: 0.1 },
            seed: 9,
            window_start_us: 50,
            window_end_us: 150,
            bursts: 3,
        };
        s
    }

    #[test]
    fn candidates_are_valid_strict_simplifications() {
        let spec = stormy();
        assert!(spec.validate().is_ok());
        let cands = simplify_candidates(&spec);
        assert!(cands.len() >= 6, "got {}", cands.len());
        for (axis, c) in &cands {
            assert_ne!(*c, spec, "{axis} candidate is a no-op");
            assert!(c.validate().is_ok(), "{axis} candidate fails validation");
        }
    }

    #[test]
    fn iterating_candidates_reaches_a_fixpoint() {
        // Always adopting the first candidate must terminate (every
        // candidate strictly shrinks some monotone measure).
        let mut spec = stormy();
        for _ in 0..200 {
            let cands = simplify_candidates(&spec);
            match cands.into_iter().next() {
                Some((_, c)) => spec = c,
                None => return,
            }
        }
        // A long chain is fine (lengths/counts halve), but it must not
        // cycle: the measure below strictly decreases in every step the
        // loop above took, so reaching here with a candidate left means
        // something regrew an axis.
        assert!(simplify_candidates(&spec)
            .iter()
            .all(|(_, c)| *c != stormy()));
    }

    #[test]
    fn horizon_candidate_never_trades_into_a_validation_error() {
        // A storm spec whose horizon equals its window end: dropping the
        // horizon is fine, but shrinking the window past it would not be.
        let spec = stormy();
        for (_, c) in simplify_candidates(&spec) {
            assert!(c.validate().is_ok());
        }
    }
}
