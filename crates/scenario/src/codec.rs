//! JSON encoding/decoding of [`ScenarioSpec`].
//!
//! The schema is explicit and strict: tagged enums carry a `"kind"`
//! field, unknown fields are typo errors, and every decode failure names
//! the dotted path of the offending field. Encoding always writes every
//! field, so a round trip through [`ScenarioSpec::to_json_string`] and
//! [`ScenarioSpec::from_json`] reproduces the value exactly (seeds are
//! `u64`-exact — see [`crate::json::Num`]).

use crate::json::{parse, Json, Num};
use crate::spec::{
    ArrivalSpec, EngineSpec, FaultModelSpec, FaultsSpec, PatternSpec, PolicySpec, QueueSpec,
    RoutingSpec, ScenarioSpec, SpecError, StrategySpec, TopologySpec, TrafficSpec,
};

// ---------------------------------------------------------------------
// Decoding helpers

fn fields<'a>(v: &'a Json, path: &str) -> Result<&'a [(String, Json)], SpecError> {
    match v {
        Json::Obj(f) => Ok(f),
        _ => Err(SpecError::WrongType {
            field: path.to_string(),
            expected: "an object",
        }),
    }
}

fn get<'a>(f: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    f.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn require<'a>(f: &'a [(String, Json)], path: &str, key: &str) -> Result<&'a Json, SpecError> {
    get(f, key).ok_or_else(|| SpecError::MissingField {
        field: format!("{path}.{key}"),
    })
}

fn check_unknown(f: &[(String, Json)], path: &str, allowed: &[&str]) -> Result<(), SpecError> {
    for (k, _) in f {
        if !allowed.contains(&k.as_str()) {
            return Err(SpecError::UnknownField {
                field: format!("{path}.{k}"),
            });
        }
    }
    Ok(())
}

fn str_of(v: &Json, path: &str) -> Result<String, SpecError> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| SpecError::WrongType {
            field: path.to_string(),
            expected: "a string",
        })
}

fn u64_of(v: &Json, path: &str) -> Result<u64, SpecError> {
    v.as_num()
        .and_then(|n| n.as_u64())
        .ok_or_else(|| SpecError::WrongType {
            field: path.to_string(),
            expected: "a non-negative integer",
        })
}

fn usize_of(v: &Json, path: &str) -> Result<usize, SpecError> {
    u64_of(v, path).and_then(|n| {
        usize::try_from(n).map_err(|_| SpecError::WrongType {
            field: path.to_string(),
            expected: "a machine-sized integer",
        })
    })
}

fn u32_of(v: &Json, path: &str) -> Result<u32, SpecError> {
    u64_of(v, path).and_then(|n| {
        u32::try_from(n).map_err(|_| SpecError::WrongType {
            field: path.to_string(),
            expected: "a 32-bit integer",
        })
    })
}

fn bool_of(v: &Json, path: &str) -> Result<bool, SpecError> {
    v.as_bool().ok_or_else(|| SpecError::WrongType {
        field: path.to_string(),
        expected: "a boolean",
    })
}

fn f64_of(v: &Json, path: &str) -> Result<f64, SpecError> {
    v.as_num()
        .map(|n| n.as_f64())
        .ok_or_else(|| SpecError::WrongType {
            field: path.to_string(),
            expected: "a number",
        })
}

fn kind_of<'a>(f: &'a [(String, Json)], path: &str) -> Result<&'a str, SpecError> {
    require(f, path, "kind")?
        .as_str()
        .ok_or_else(|| SpecError::WrongType {
            field: format!("{path}.kind"),
            expected: "a string",
        })
}

/// A tagged object with no payload fields beyond `kind`.
fn kind_only(f: &[(String, Json)], path: &str) -> Result<(), SpecError> {
    check_unknown(f, path, &["kind"])
}

// ---------------------------------------------------------------------
// Encoding helpers

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn u(v: u64) -> Json {
    Json::Num(Num::U(v))
}

fn uz(v: usize) -> Json {
    Json::Num(Num::U(v as u64))
}

fn f(v: f64) -> Json {
    Json::Num(Num::F(v))
}

fn s(v: &str) -> Json {
    Json::Str(v.to_string())
}

fn kind(tag: &str, mut rest: Vec<(&str, Json)>) -> Json {
    let mut all = vec![("kind", s(tag))];
    all.append(&mut rest);
    obj(all)
}

impl ScenarioSpec {
    /// Parses and decodes a scenario document. Decoding is structural
    /// only; call [`ScenarioSpec::validate`] for the semantic rules.
    pub fn from_json(text: &str) -> Result<Self, SpecError> {
        Self::from_value(&parse(text)?)
    }

    /// Decodes an already-parsed document.
    pub fn from_value(v: &Json) -> Result<Self, SpecError> {
        let f = fields(v, "scenario")?;
        check_unknown(
            f,
            "scenario",
            &[
                "name",
                "description",
                "topology",
                "routing",
                "traffic",
                "faults",
                "engine",
                "seed",
                "replications",
                "horizon_us",
            ],
        )?;
        let name = str_of(require(f, "scenario", "name")?, "scenario.name")?;
        let description = match get(f, "description") {
            Some(v) => str_of(v, "scenario.description")?,
            None => String::new(),
        };
        let topology = decode_topology(require(f, "scenario", "topology")?)?;
        let routing = decode_routing(require(f, "scenario", "routing")?)?;
        let traffic = decode_traffic(require(f, "scenario", "traffic")?)?;
        let faults = match get(f, "faults") {
            Some(v) => decode_faults(v)?,
            None => FaultsSpec::None,
        };
        let engine = match get(f, "engine") {
            Some(v) => decode_engine(v)?,
            None => EngineSpec::default(),
        };
        let seed = match get(f, "seed") {
            Some(v) => u64_of(v, "scenario.seed")?,
            None => 0,
        };
        let replications = match get(f, "replications") {
            Some(v) => u32_of(v, "scenario.replications")?,
            None => 1,
        };
        let horizon_us = match get(f, "horizon_us") {
            Some(Json::Null) | None => None,
            Some(v) => Some(u64_of(v, "scenario.horizon_us")?),
        };
        Ok(ScenarioSpec {
            name,
            description,
            topology,
            routing,
            traffic,
            faults,
            engine,
            seed,
            replications,
            horizon_us,
        })
    }

    /// Encodes to the JSON document model. Every field is written, so
    /// the output is self-describing and round-trips exactly.
    pub fn to_json(&self) -> Json {
        let mut top = vec![
            ("name", s(&self.name)),
            ("description", s(&self.description)),
            ("topology", encode_topology(&self.topology)),
            ("routing", encode_routing(&self.routing)),
            ("traffic", encode_traffic(&self.traffic)),
            ("faults", encode_faults(&self.faults)),
            ("engine", encode_engine(&self.engine)),
            ("seed", u(self.seed)),
            ("replications", u(self.replications as u64)),
        ];
        if let Some(h) = self.horizon_us {
            top.push(("horizon_us", u(h)));
        }
        obj(top)
    }

    /// Encodes to pretty-printed JSON text (the `*.scenario.json`
    /// format).
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string_pretty()
    }
}

pub(crate) fn decode_topology(v: &Json) -> Result<TopologySpec, SpecError> {
    let p = "scenario.topology";
    let f = fields(v, p)?;
    check_unknown(f, p, &["switches", "seed", "side", "strategy", "ports"])?;
    Ok(TopologySpec {
        switches: usize_of(require(f, p, "switches")?, "scenario.topology.switches")?,
        seed: match get(f, "seed") {
            Some(v) => u64_of(v, "scenario.topology.seed")?,
            None => 0,
        },
        side: match get(f, "side") {
            Some(Json::Null) | None => None,
            Some(v) => Some(usize_of(v, "scenario.topology.side")?),
        },
        strategy: match get(f, "strategy") {
            None => StrategySpec::ConnectedGrowth,
            Some(v) => match str_of(v, "scenario.topology.strategy")?.as_str() {
                "connected_growth" => StrategySpec::ConnectedGrowth,
                "uniform_retry" => StrategySpec::UniformRetry,
                other => {
                    return Err(SpecError::UnknownKind {
                        field: "scenario.topology.strategy".to_string(),
                        got: other.to_string(),
                    })
                }
            },
        },
        ports: match get(f, "ports") {
            Some(v) => usize_of(v, "scenario.topology.ports")?,
            None => 8,
        },
    })
}

pub(crate) fn encode_topology(t: &TopologySpec) -> Json {
    let mut out = vec![("switches", uz(t.switches)), ("seed", u(t.seed))];
    if let Some(side) = t.side {
        out.push(("side", uz(side)));
    }
    out.push((
        "strategy",
        s(match t.strategy {
            StrategySpec::ConnectedGrowth => "connected_growth",
            StrategySpec::UniformRetry => "uniform_retry",
        }),
    ));
    out.push(("ports", uz(t.ports)));
    obj(out)
}

fn decode_routing(v: &Json) -> Result<RoutingSpec, SpecError> {
    let p = "scenario.routing";
    let f = fields(v, p)?;
    match kind_of(f, p)? {
        "spam" => {
            check_unknown(f, p, &["kind", "policy"])?;
            let policy = match get(f, "policy") {
                None => PolicySpec::MinResidualDistance,
                Some(v) => decode_policy(v)?,
            };
            Ok(RoutingSpec::Spam { policy })
        }
        "updown_unicast" => {
            kind_only(f, p)?;
            Ok(RoutingSpec::UpDownUnicast)
        }
        "software_multicast" => {
            kind_only(f, p)?;
            Ok(RoutingSpec::SoftwareMulticast)
        }
        other => Err(SpecError::UnknownKind {
            field: p.to_string(),
            got: other.to_string(),
        }),
    }
}

fn decode_policy(v: &Json) -> Result<PolicySpec, SpecError> {
    let p = "scenario.routing.policy";
    let f = fields(v, p)?;
    match kind_of(f, p)? {
        "min_residual_distance" => {
            kind_only(f, p)?;
            Ok(PolicySpec::MinResidualDistance)
        }
        "first_legal" => {
            kind_only(f, p)?;
            Ok(PolicySpec::FirstLegal)
        }
        "random_legal" => {
            check_unknown(f, p, &["kind", "seed"])?;
            Ok(PolicySpec::RandomLegal {
                seed: u64_of(require(f, p, "seed")?, "scenario.routing.policy.seed")?,
            })
        }
        other => Err(SpecError::UnknownKind {
            field: p.to_string(),
            got: other.to_string(),
        }),
    }
}

fn encode_routing(r: &RoutingSpec) -> Json {
    match r {
        RoutingSpec::Spam { policy } => kind(
            "spam",
            vec![(
                "policy",
                match policy {
                    PolicySpec::MinResidualDistance => kind("min_residual_distance", vec![]),
                    PolicySpec::FirstLegal => kind("first_legal", vec![]),
                    PolicySpec::RandomLegal { seed } => {
                        kind("random_legal", vec![("seed", u(*seed))])
                    }
                },
            )],
        ),
        RoutingSpec::UpDownUnicast => kind("updown_unicast", vec![]),
        RoutingSpec::SoftwareMulticast => kind("software_multicast", vec![]),
    }
}

fn decode_arrival(v: &Json, p: &str) -> Result<ArrivalSpec, SpecError> {
    let f = fields(v, p)?;
    match kind_of(f, p)? {
        "negative_binomial" => {
            check_unknown(f, p, &["kind", "r"])?;
            Ok(ArrivalSpec::NegativeBinomial {
                r: u32_of(require(f, p, "r")?, &format!("{p}.r"))?,
            })
        }
        "poisson" => {
            kind_only(f, p)?;
            Ok(ArrivalSpec::Poisson)
        }
        "deterministic" => {
            kind_only(f, p)?;
            Ok(ArrivalSpec::Deterministic)
        }
        "on_off" => {
            check_unknown(f, p, &["kind", "r", "mean_on_us", "mean_off_us"])?;
            Ok(ArrivalSpec::OnOff {
                r: u32_of(require(f, p, "r")?, &format!("{p}.r"))?,
                mean_on_us: u64_of(require(f, p, "mean_on_us")?, &format!("{p}.mean_on_us"))?,
                mean_off_us: u64_of(require(f, p, "mean_off_us")?, &format!("{p}.mean_off_us"))?,
            })
        }
        other => Err(SpecError::UnknownKind {
            field: p.to_string(),
            got: other.to_string(),
        }),
    }
}

fn encode_arrival(a: &ArrivalSpec) -> Json {
    match *a {
        ArrivalSpec::NegativeBinomial { r } => kind("negative_binomial", vec![("r", u(r as u64))]),
        ArrivalSpec::Poisson => kind("poisson", vec![]),
        ArrivalSpec::Deterministic => kind("deterministic", vec![]),
        ArrivalSpec::OnOff {
            r,
            mean_on_us,
            mean_off_us,
        } => kind(
            "on_off",
            vec![
                ("r", u(r as u64)),
                ("mean_on_us", u(mean_on_us)),
                ("mean_off_us", u(mean_off_us)),
            ],
        ),
    }
}

fn decode_traffic(v: &Json) -> Result<TrafficSpec, SpecError> {
    let p = "scenario.traffic";
    let f = fields(v, p)?;
    let arrival = |key: &str| -> Result<ArrivalSpec, SpecError> {
        match get(f, key) {
            Some(v) => decode_arrival(v, &format!("{p}.{key}")),
            None => Ok(ArrivalSpec::NegativeBinomial { r: 1 }),
        }
    };
    match kind_of(f, p)? {
        "single_multicast" => {
            check_unknown(f, p, &["kind", "dests", "len"])?;
            Ok(TrafficSpec::SingleMulticast {
                dests: usize_of(require(f, p, "dests")?, "scenario.traffic.dests")?,
                len: u32_of(require(f, p, "len")?, "scenario.traffic.len")?,
            })
        }
        "mixed" => {
            check_unknown(
                f,
                p,
                &[
                    "kind",
                    "unicast_fraction",
                    "multicast_dests",
                    "rate_per_node_per_us",
                    "len",
                    "messages",
                    "arrival",
                ],
            )?;
            Ok(TrafficSpec::Mixed {
                unicast_fraction: f64_of(
                    require(f, p, "unicast_fraction")?,
                    "scenario.traffic.unicast_fraction",
                )?,
                multicast_dests: usize_of(
                    require(f, p, "multicast_dests")?,
                    "scenario.traffic.multicast_dests",
                )?,
                rate_per_node_per_us: f64_of(
                    require(f, p, "rate_per_node_per_us")?,
                    "scenario.traffic.rate_per_node_per_us",
                )?,
                len: u32_of(require(f, p, "len")?, "scenario.traffic.len")?,
                messages: usize_of(require(f, p, "messages")?, "scenario.traffic.messages")?,
                arrival: arrival("arrival")?,
            })
        }
        "hotspot" => {
            check_unknown(
                f,
                p,
                &[
                    "kind",
                    "hot_nodes",
                    "hot_fraction",
                    "rate_per_node_per_us",
                    "len",
                    "messages",
                    "arrival",
                ],
            )?;
            Ok(TrafficSpec::Hotspot {
                hot_nodes: usize_of(require(f, p, "hot_nodes")?, "scenario.traffic.hot_nodes")?,
                hot_fraction: f64_of(
                    require(f, p, "hot_fraction")?,
                    "scenario.traffic.hot_fraction",
                )?,
                rate_per_node_per_us: f64_of(
                    require(f, p, "rate_per_node_per_us")?,
                    "scenario.traffic.rate_per_node_per_us",
                )?,
                len: u32_of(require(f, p, "len")?, "scenario.traffic.len")?,
                messages: usize_of(require(f, p, "messages")?, "scenario.traffic.messages")?,
                arrival: arrival("arrival")?,
            })
        }
        "permutation" => {
            check_unknown(
                f,
                p,
                &[
                    "kind",
                    "pattern",
                    "rate_per_node_per_us",
                    "len",
                    "messages_per_node",
                    "arrival",
                ],
            )?;
            let pattern =
                match str_of(require(f, p, "pattern")?, "scenario.traffic.pattern")?.as_str() {
                    "transpose" => PatternSpec::Transpose,
                    "bit_complement" => PatternSpec::BitComplement,
                    other => {
                        return Err(SpecError::UnknownKind {
                            field: "scenario.traffic.pattern".to_string(),
                            got: other.to_string(),
                        })
                    }
                };
            Ok(TrafficSpec::Permutation {
                pattern,
                rate_per_node_per_us: f64_of(
                    require(f, p, "rate_per_node_per_us")?,
                    "scenario.traffic.rate_per_node_per_us",
                )?,
                len: u32_of(require(f, p, "len")?, "scenario.traffic.len")?,
                messages_per_node: usize_of(
                    require(f, p, "messages_per_node")?,
                    "scenario.traffic.messages_per_node",
                )?,
                arrival: arrival("arrival")?,
            })
        }
        "incast" => {
            check_unknown(
                f,
                p,
                &[
                    "kind",
                    "servers",
                    "rate_per_client_per_us",
                    "len",
                    "messages",
                    "arrival",
                ],
            )?;
            Ok(TrafficSpec::Incast {
                servers: usize_of(require(f, p, "servers")?, "scenario.traffic.servers")?,
                rate_per_client_per_us: f64_of(
                    require(f, p, "rate_per_client_per_us")?,
                    "scenario.traffic.rate_per_client_per_us",
                )?,
                len: u32_of(require(f, p, "len")?, "scenario.traffic.len")?,
                messages: usize_of(require(f, p, "messages")?, "scenario.traffic.messages")?,
                arrival: arrival("arrival")?,
            })
        }
        "broadcast_storm" => {
            check_unknown(f, p, &["kind", "len", "stagger_ns"])?;
            Ok(TrafficSpec::BroadcastStorm {
                len: u32_of(require(f, p, "len")?, "scenario.traffic.len")?,
                stagger_ns: match get(f, "stagger_ns") {
                    Some(v) => u64_of(v, "scenario.traffic.stagger_ns")?,
                    None => 0,
                },
            })
        }
        "closed_loop" => {
            check_unknown(
                f,
                p,
                &["kind", "window", "messages_per_source", "len", "think_ns"],
            )?;
            Ok(TrafficSpec::ClosedLoop {
                window: usize_of(require(f, p, "window")?, "scenario.traffic.window")?,
                messages_per_source: usize_of(
                    require(f, p, "messages_per_source")?,
                    "scenario.traffic.messages_per_source",
                )?,
                len: u32_of(require(f, p, "len")?, "scenario.traffic.len")?,
                think_ns: match get(f, "think_ns") {
                    Some(v) => u64_of(v, "scenario.traffic.think_ns")?,
                    None => 0,
                },
            })
        }
        other => Err(SpecError::UnknownKind {
            field: p.to_string(),
            got: other.to_string(),
        }),
    }
}

fn encode_traffic(t: &TrafficSpec) -> Json {
    match t {
        TrafficSpec::SingleMulticast { dests, len } => kind(
            "single_multicast",
            vec![("dests", uz(*dests)), ("len", u(*len as u64))],
        ),
        TrafficSpec::Mixed {
            unicast_fraction,
            multicast_dests,
            rate_per_node_per_us,
            len,
            messages,
            arrival,
        } => kind(
            "mixed",
            vec![
                ("unicast_fraction", f(*unicast_fraction)),
                ("multicast_dests", uz(*multicast_dests)),
                ("rate_per_node_per_us", f(*rate_per_node_per_us)),
                ("len", u(*len as u64)),
                ("messages", uz(*messages)),
                ("arrival", encode_arrival(arrival)),
            ],
        ),
        TrafficSpec::Hotspot {
            hot_nodes,
            hot_fraction,
            rate_per_node_per_us,
            len,
            messages,
            arrival,
        } => kind(
            "hotspot",
            vec![
                ("hot_nodes", uz(*hot_nodes)),
                ("hot_fraction", f(*hot_fraction)),
                ("rate_per_node_per_us", f(*rate_per_node_per_us)),
                ("len", u(*len as u64)),
                ("messages", uz(*messages)),
                ("arrival", encode_arrival(arrival)),
            ],
        ),
        TrafficSpec::Permutation {
            pattern,
            rate_per_node_per_us,
            len,
            messages_per_node,
            arrival,
        } => kind(
            "permutation",
            vec![
                (
                    "pattern",
                    s(match pattern {
                        PatternSpec::Transpose => "transpose",
                        PatternSpec::BitComplement => "bit_complement",
                    }),
                ),
                ("rate_per_node_per_us", f(*rate_per_node_per_us)),
                ("len", u(*len as u64)),
                ("messages_per_node", uz(*messages_per_node)),
                ("arrival", encode_arrival(arrival)),
            ],
        ),
        TrafficSpec::Incast {
            servers,
            rate_per_client_per_us,
            len,
            messages,
            arrival,
        } => kind(
            "incast",
            vec![
                ("servers", uz(*servers)),
                ("rate_per_client_per_us", f(*rate_per_client_per_us)),
                ("len", u(*len as u64)),
                ("messages", uz(*messages)),
                ("arrival", encode_arrival(arrival)),
            ],
        ),
        TrafficSpec::BroadcastStorm { len, stagger_ns } => kind(
            "broadcast_storm",
            vec![("len", u(*len as u64)), ("stagger_ns", u(*stagger_ns))],
        ),
        TrafficSpec::ClosedLoop {
            window,
            messages_per_source,
            len,
            think_ns,
        } => kind(
            "closed_loop",
            vec![
                ("window", uz(*window)),
                ("messages_per_source", uz(*messages_per_source)),
                ("len", u(*len as u64)),
                ("think_ns", u(*think_ns)),
            ],
        ),
    }
}

fn decode_model(v: &Json, p: &str) -> Result<FaultModelSpec, SpecError> {
    let f = fields(v, p)?;
    match kind_of(f, p)? {
        "iid_links" => {
            check_unknown(f, p, &["kind", "rate"])?;
            Ok(FaultModelSpec::IidLinks {
                rate: f64_of(require(f, p, "rate")?, &format!("{p}.rate"))?,
            })
        }
        "iid_switches" => {
            check_unknown(f, p, &["kind", "rate"])?;
            Ok(FaultModelSpec::IidSwitches {
                rate: f64_of(require(f, p, "rate")?, &format!("{p}.rate"))?,
            })
        }
        "region" => {
            check_unknown(f, p, &["kind", "radius"])?;
            Ok(FaultModelSpec::Region {
                radius: usize_of(require(f, p, "radius")?, &format!("{p}.radius"))?,
            })
        }
        other => Err(SpecError::UnknownKind {
            field: p.to_string(),
            got: other.to_string(),
        }),
    }
}

fn encode_model(m: &FaultModelSpec) -> Json {
    match *m {
        FaultModelSpec::IidLinks { rate } => kind("iid_links", vec![("rate", f(rate))]),
        FaultModelSpec::IidSwitches { rate } => kind("iid_switches", vec![("rate", f(rate))]),
        FaultModelSpec::Region { radius } => kind("region", vec![("radius", uz(radius))]),
    }
}

pub(crate) fn decode_faults(v: &Json) -> Result<FaultsSpec, SpecError> {
    let p = "scenario.faults";
    let f = fields(v, p)?;
    match kind_of(f, p)? {
        "none" => {
            kind_only(f, p)?;
            Ok(FaultsSpec::None)
        }
        "static" => {
            check_unknown(f, p, &["kind", "model", "seed"])?;
            Ok(FaultsSpec::Static {
                model: decode_model(require(f, p, "model")?, "scenario.faults.model")?,
                seed: match get(f, "seed") {
                    Some(v) => u64_of(v, "scenario.faults.seed")?,
                    None => 0,
                },
            })
        }
        "storm" => {
            check_unknown(
                f,
                p,
                &[
                    "kind",
                    "model",
                    "seed",
                    "window_start_us",
                    "window_end_us",
                    "bursts",
                ],
            )?;
            Ok(FaultsSpec::Storm {
                model: decode_model(require(f, p, "model")?, "scenario.faults.model")?,
                seed: match get(f, "seed") {
                    Some(v) => u64_of(v, "scenario.faults.seed")?,
                    None => 0,
                },
                window_start_us: u64_of(
                    require(f, p, "window_start_us")?,
                    "scenario.faults.window_start_us",
                )?,
                window_end_us: u64_of(
                    require(f, p, "window_end_us")?,
                    "scenario.faults.window_end_us",
                )?,
                bursts: usize_of(require(f, p, "bursts")?, "scenario.faults.bursts")?,
            })
        }
        other => Err(SpecError::UnknownKind {
            field: p.to_string(),
            got: other.to_string(),
        }),
    }
}

pub(crate) fn encode_faults(fs: &FaultsSpec) -> Json {
    match fs {
        FaultsSpec::None => kind("none", vec![]),
        FaultsSpec::Static { model, seed } => kind(
            "static",
            vec![("model", encode_model(model)), ("seed", u(*seed))],
        ),
        FaultsSpec::Storm {
            model,
            seed,
            window_start_us,
            window_end_us,
            bursts,
        } => kind(
            "storm",
            vec![
                ("model", encode_model(model)),
                ("seed", u(*seed)),
                ("window_start_us", u(*window_start_us)),
                ("window_end_us", u(*window_end_us)),
                ("bursts", uz(*bursts)),
            ],
        ),
    }
}

fn decode_engine(v: &Json) -> Result<EngineSpec, SpecError> {
    let p = "scenario.engine";
    let f = fields(v, p)?;
    check_unknown(
        f,
        p,
        &[
            "queue",
            "input_buffer_flits",
            "output_buffer_flits",
            "extra_header_flits",
            "trace",
            "metrics_every_ns",
            "checkpoint_every_ns",
        ],
    )?;
    let d = EngineSpec::default();
    Ok(EngineSpec {
        queue: match get(f, "queue") {
            Some(Json::Null) | None => None,
            Some(v) => Some(match str_of(v, "scenario.engine.queue")?.as_str() {
                "bucket" => QueueSpec::Bucket,
                "heap" => QueueSpec::Heap,
                other => {
                    return Err(SpecError::UnknownKind {
                        field: "scenario.engine.queue".to_string(),
                        got: other.to_string(),
                    })
                }
            }),
        },
        input_buffer_flits: match get(f, "input_buffer_flits") {
            Some(v) => usize_of(v, "scenario.engine.input_buffer_flits")?,
            None => d.input_buffer_flits,
        },
        output_buffer_flits: match get(f, "output_buffer_flits") {
            Some(v) => usize_of(v, "scenario.engine.output_buffer_flits")?,
            None => d.output_buffer_flits,
        },
        extra_header_flits: match get(f, "extra_header_flits") {
            Some(v) => u32_of(v, "scenario.engine.extra_header_flits")?,
            None => d.extra_header_flits,
        },
        trace: match get(f, "trace") {
            Some(v) => bool_of(v, "scenario.engine.trace")?,
            None => d.trace,
        },
        metrics_every_ns: match get(f, "metrics_every_ns") {
            Some(Json::Null) | None => None,
            Some(v) => Some(u64_of(v, "scenario.engine.metrics_every_ns")?),
        },
        checkpoint_every_ns: match get(f, "checkpoint_every_ns") {
            Some(Json::Null) | None => None,
            Some(v) => Some(u64_of(v, "scenario.engine.checkpoint_every_ns")?),
        },
    })
}

fn encode_engine(e: &EngineSpec) -> Json {
    obj(vec![
        (
            "queue",
            match e.queue {
                None => Json::Null,
                Some(QueueSpec::Bucket) => s("bucket"),
                Some(QueueSpec::Heap) => s("heap"),
            },
        ),
        ("input_buffer_flits", uz(e.input_buffer_flits)),
        ("output_buffer_flits", uz(e.output_buffer_flits)),
        ("extra_header_flits", u(e.extra_header_flits as u64)),
        ("trace", Json::Bool(e.trace)),
        (
            "metrics_every_ns",
            match e.metrics_every_ns {
                None => Json::Null,
                Some(n) => u(n),
            },
        ),
        (
            "checkpoint_every_ns",
            match e.checkpoint_every_ns {
                None => Json::Null,
                Some(n) => u(n),
            },
        ),
    ])
}
