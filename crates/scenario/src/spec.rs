//! The declarative scenario model: every axis the workspace can vary —
//! topology, routing algorithm, traffic pattern, fault plan, event queue,
//! seeds, replication — as one serializable value with typed validation.

use std::fmt;
use traffic::TrafficError;

/// A complete, self-contained experiment description. One
/// `*.scenario.json` file decodes to one of these; see
/// [`ScenarioSpec::from_json`] / [`ScenarioSpec::to_json`] and
/// [`ScenarioSpec::validate`].
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ScenarioSpec {
    /// Scenario name (reports and result files key on it).
    pub name: String,
    /// Free-form description (defaults to empty).
    pub description: String,
    /// The network.
    pub topology: TopologySpec,
    /// The routing scheme under test.
    pub routing: RoutingSpec,
    /// The offered load.
    pub traffic: TrafficSpec,
    /// What breaks, and when.
    pub faults: FaultsSpec,
    /// Engine knobs (buffers, queue implementation, header encoding).
    pub engine: EngineSpec,
    /// Base seed for workload generation. Replication `r` derives its
    /// seeds deterministically from the spec seeds (replication 0 uses
    /// them verbatim).
    pub seed: u64,
    /// Independent replications to run (≥ 1).
    pub replications: u32,
    /// Optional validation horizon in µs: every scheduled fault must fall
    /// inside it. (The simulation itself always runs to completion.)
    pub horizon_us: Option<u64>,
}

/// The §4 irregular-lattice network generator's knobs.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct TopologySpec {
    /// Switches (= processors; one per switch).
    pub switches: usize,
    /// Generator seed.
    pub seed: u64,
    /// Lattice side (default: ~60 % occupancy for `switches`).
    pub side: Option<usize>,
    /// Cell-selection strategy.
    pub strategy: StrategySpec,
    /// Switch port budget to validate against (the paper's switches have
    /// 8; the generator uses ≤ 4 switch links + 1 processor link).
    pub ports: usize,
}

impl Default for TopologySpec {
    fn default() -> Self {
        TopologySpec {
            switches: 64,
            seed: 0,
            side: None,
            strategy: StrategySpec::ConnectedGrowth,
            ports: 8,
        }
    }
}

/// Lattice cell-selection strategy (mirrors
/// `netgraph::gen::lattice::LatticeStrategy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum StrategySpec {
    /// Grow a connected blob (default; single pass).
    ConnectedGrowth,
    /// Uniform cells with connectivity retries (the paper's literal
    /// wording).
    UniformRetry,
}

/// Which routing scheme carries the traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum RoutingSpec {
    /// SPAM: one multi-head worm per multicast (the paper's algorithm).
    Spam {
        /// Adaptive-selection policy of the unicast stage.
        policy: PolicySpec,
    },
    /// Classic up*/down* unicast routing — unicast-only workloads.
    UpDownUnicast,
    /// Software multicast: every multicast expands into a binomial tree
    /// of up*/down* unicasts (completion-driven forwarding).
    SoftwareMulticast,
}

/// Selection policy of SPAM's partially adaptive unicast stage (mirrors
/// `spam_core::SelectionPolicy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PolicySpec {
    /// §4 default: closest-to-target, ties by channel id.
    MinResidualDistance,
    /// Lowest legal channel id (ablation).
    FirstLegal,
    /// Hash-keyed pseudo-random legal choice.
    RandomLegal {
        /// Seed mixed into the per-decision hash.
        seed: u64,
    },
}

/// The offered load. Every variant corresponds to one generator of the
/// `traffic` crate.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum TrafficSpec {
    /// Figure 2: one `dests`-destination multicast in an idle network,
    /// source and destinations drawn uniformly.
    SingleMulticast {
        /// Destination count.
        dests: usize,
        /// Flits per message.
        len: u32,
    },
    /// Figure 3: per-node arrival processes, `unicast_fraction` unicasts,
    /// the rest `multicast_dests`-destination multicasts.
    Mixed {
        /// Fraction of unicasts (0.9 in the paper).
        unicast_fraction: f64,
        /// Destinations per multicast.
        multicast_dests: usize,
        /// Mean per-node arrival rate, messages/µs.
        rate_per_node_per_us: f64,
        /// Flits per message.
        len: u32,
        /// Total messages.
        messages: usize,
        /// Arrival process.
        arrival: ArrivalSpec,
    },
    /// Hotspot unicasts: `hot_fraction` of traffic aims at the
    /// `hot_nodes` lowest-id processors.
    Hotspot {
        /// Number of hot processors.
        hot_nodes: usize,
        /// Fraction of traffic aimed at them.
        hot_fraction: f64,
        /// Mean per-node arrival rate, messages/µs.
        rate_per_node_per_us: f64,
        /// Flits per message.
        len: u32,
        /// Total messages.
        messages: usize,
        /// Arrival process.
        arrival: ArrivalSpec,
    },
    /// Lattice-coordinate permutation unicasts (transpose or
    /// bit-complement partners through the generator's layout).
    Permutation {
        /// The coordinate map.
        pattern: PatternSpec,
        /// Mean per-node arrival rate, messages/µs.
        rate_per_node_per_us: f64,
        /// Flits per message.
        len: u32,
        /// Messages per (non-self-mapped) source.
        messages_per_node: usize,
        /// Arrival process.
        arrival: ArrivalSpec,
    },
    /// Client–server incast: everyone streams at the `servers` lowest-id
    /// processors.
    Incast {
        /// Number of servers.
        servers: usize,
        /// Mean per-client arrival rate, messages/µs.
        rate_per_client_per_us: f64,
        /// Flits per message.
        len: u32,
        /// Total messages.
        messages: usize,
        /// Arrival process.
        arrival: ArrivalSpec,
    },
    /// Broadcast storm: every processor multicasts to every other.
    BroadcastStorm {
        /// Flits per message.
        len: u32,
        /// Gap between consecutive sources' generation times (ns).
        stagger_ns: u64,
    },
    /// Closed-loop injection: at most `window` outstanding messages per
    /// source, replacements injected on completion.
    ClosedLoop {
        /// Max outstanding per source.
        window: usize,
        /// Messages each source sends in total.
        messages_per_source: usize,
        /// Flits per message.
        len: u32,
        /// Completion-to-injection think time (ns).
        think_ns: u64,
    },
}

/// Lattice-coordinate permutation (mirrors
/// `traffic::PermutationPattern`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PatternSpec {
    /// `(r, c) → (c, r)`.
    Transpose,
    /// `(r, c) → (side−1−r, side−1−c)`.
    BitComplement,
}

/// Interarrival process (mirrors `traffic::ArrivalKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ArrivalSpec {
    /// §4 negative-binomial slot counts.
    NegativeBinomial {
        /// Dispersion; 1 = geometric.
        r: u32,
    },
    /// Exponential gaps.
    Poisson,
    /// Fixed gaps.
    Deterministic,
    /// Bursty: negative binomial modulated by a two-state MMPP.
    OnOff {
        /// Dispersion of the inner process.
        r: u32,
        /// Mean ON period, µs.
        mean_on_us: u64,
        /// Mean OFF period, µs.
        mean_off_us: u64,
    },
}

/// What breaks during (or before) the run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum FaultsSpec {
    /// A pristine network.
    None,
    /// Damage exists before the run: the network is degraded, relabeled,
    /// and traffic runs on the largest surviving component.
    Static {
        /// What dies.
        model: FaultModelSpec,
        /// Fault-sampler seed.
        seed: u64,
    },
    /// A live reconfiguration storm: deaths strike mid-run in `bursts`
    /// bursts inside the window; worms are torn down, the network
    /// relabels, traffic keeps flowing (requires SPAM routing).
    Storm {
        /// What dies.
        model: FaultModelSpec,
        /// Fault-sampler seed.
        seed: u64,
        /// Storm window start, µs.
        window_start_us: u64,
        /// Storm window end, µs (exclusive; must exceed the start).
        window_end_us: u64,
        /// Number of fault bursts (= epoch boundaries).
        bursts: usize,
    },
}

/// Stochastic fault model (mirrors `spam_faults::FaultModel`).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum FaultModelSpec {
    /// I.i.d. link deaths.
    IidLinks {
        /// Per-link death probability.
        rate: f64,
    },
    /// I.i.d. switch deaths.
    IidSwitches {
        /// Per-switch death probability.
        rate: f64,
    },
    /// A lattice region (Manhattan ball) dies.
    Region {
        /// Manhattan radius (0 = one switch).
        radius: usize,
    },
}

/// Engine knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EngineSpec {
    /// Event-queue implementation; `None` defers to the engine default
    /// (`WORMSIM_QUEUE` env override, else the bucket wheel).
    pub queue: Option<QueueSpec>,
    /// Input buffer depth per channel, flits (≥ 1).
    pub input_buffer_flits: usize,
    /// Output buffer depth per channel, flits (≥ 1).
    pub output_buffer_flits: usize,
    /// Extra header flits per worm (multi-flit address encoding).
    pub extra_header_flits: u32,
    /// Record the protocol-level event trace during the run (pure
    /// observer: outcomes are identical with it on or off). Off by
    /// default; omitted in documents means off, so older corpus files
    /// keep parsing unchanged.
    pub trace: bool,
    /// Fabric-telemetry sampling cadence in ns; `Some(n)` enables the
    /// gauge sampler and congestion accumulators (another pure observer —
    /// outcomes are byte-identical with it on or off). `None` (the
    /// default, and what an omitted field decodes to) disables telemetry,
    /// so older corpus files keep parsing unchanged.
    pub metrics_every_ns: Option<u64>,
    /// Engine-checkpoint cadence in sim-time ns; `Some(n)` snapshots the
    /// complete engine state every `n` ns into a digest ledger (a third
    /// pure observer — outcomes are byte-identical with it on or off, and
    /// the ledger lets crash-safe sweeps resume mid-run). `None` (the
    /// default, and what an omitted field decodes to) disables
    /// checkpointing, so older corpus files keep parsing unchanged.
    pub checkpoint_every_ns: Option<u64>,
}

impl Default for EngineSpec {
    fn default() -> Self {
        EngineSpec {
            queue: None,
            input_buffer_flits: 1,
            output_buffer_flits: 1,
            extra_header_flits: 0,
            trace: false,
            metrics_every_ns: None,
            checkpoint_every_ns: None,
        }
    }
}

/// Event-queue implementation (mirrors `desim::QueueKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum QueueSpec {
    /// Hierarchical timing wheel (fast default).
    Bucket,
    /// Reference binary heap.
    Heap,
}

/// Why a scenario document cannot be decoded or executed. Every failure
/// mode of a bad spec is one of these — never a panic.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecError {
    /// The document is not JSON.
    Json(crate::json::JsonError),
    /// A required field is absent.
    MissingField {
        /// Dotted path of the field.
        field: String,
    },
    /// A field holds the wrong JSON type or an out-of-range number.
    WrongType {
        /// Dotted path of the field.
        field: String,
        /// What was expected.
        expected: &'static str,
    },
    /// An enum tag (`kind`) has no such variant.
    UnknownKind {
        /// Dotted path of the tagged object.
        field: String,
        /// The unrecognized tag.
        got: String,
    },
    /// A field not in the schema (typo guard).
    UnknownField {
        /// Dotted path of the field.
        field: String,
    },
    /// The scenario has no name.
    EmptyName,
    /// `switches` must be ≥ 2 (one processor cannot exchange messages).
    TooFewSwitches {
        /// Configured value.
        switches: usize,
    },
    /// An explicit lattice side too small for the switch count.
    LatticeTooSmall {
        /// Configured switch count.
        switches: usize,
        /// Configured side.
        side: usize,
    },
    /// Port budget below the generator's requirement (4 lattice links + 1
    /// processor link).
    BadPorts {
        /// Configured value.
        ports: usize,
    },
    /// `replications` must be ≥ 1.
    ZeroReplications,
    /// Buffers must hold at least one flit.
    BadBuffers {
        /// Configured input depth.
        input: usize,
        /// Configured output depth.
        output: usize,
    },
    /// A telemetry sampling cadence of zero — that sampler never fires;
    /// disable telemetry with `null` instead.
    ZeroSampleCadence,
    /// An engine-checkpoint cadence of zero — that ticker never fires;
    /// disable checkpointing with `null` instead.
    ZeroCheckpointCadence,
    /// The workload cannot be realized on this topology (oversized
    /// destination sets, bad fractions, bad rates, ...).
    Traffic(TrafficError),
    /// A fault-model probability outside `[0, 1]`.
    BadFaultRate {
        /// The offending rate.
        rate: f64,
    },
    /// A storm window whose end does not exceed its start.
    EmptyStormWindow {
        /// Window start, µs.
        start_us: u64,
        /// Window end, µs.
        end_us: u64,
    },
    /// A storm needs at least one burst.
    ZeroBursts,
    /// A scheduled fault lies past the declared horizon.
    FaultsPastHorizon {
        /// Latest fault instant, µs.
        at_us: u64,
        /// Declared horizon, µs.
        horizon_us: u64,
    },
    /// Live storms reroute through epoch-stamped SPAM tables; the other
    /// routing arms have no reconfiguration path.
    StormNeedsSpam,
    /// Up*/down* unicast routing cannot carry multicast-capable traffic.
    UnicastRoutingNeedsUnicastTraffic,
    /// Closed-loop injection reacts to completions; under a storm,
    /// torn-down messages never complete and the software-multicast
    /// forwarding chain breaks the same way.
    UnsupportedCombination {
        /// What was combined.
        what: &'static str,
    },
    /// Static damage (or a storm's survivors) left no component that can
    /// host the workload.
    NoSurvivingComponent,
    /// A generated message was rejected by the engine (generator bug —
    /// reported, not panicked).
    Message {
        /// The engine's description.
        detail: String,
    },
    /// A checkpoint snapshot could not be restored (corrupt bytes, a
    /// format-version skew, or a spec that does not match the run the
    /// snapshot was taken from).
    Snapshot {
        /// The snapshot layer's description.
        detail: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Json(e) => write!(f, "{e}"),
            SpecError::MissingField { field } => write!(f, "missing field '{field}'"),
            SpecError::WrongType { field, expected } => {
                write!(f, "field '{field}' must be {expected}")
            }
            SpecError::UnknownKind { field, got } => {
                write!(f, "'{field}' has unknown kind \"{got}\"")
            }
            SpecError::UnknownField { field } => write!(f, "unknown field '{field}'"),
            SpecError::EmptyName => write!(f, "scenario name must not be empty"),
            SpecError::TooFewSwitches { switches } => {
                write!(f, "topology needs >= 2 switches, got {switches}")
            }
            SpecError::LatticeTooSmall { switches, side } => {
                write!(f, "lattice {side}x{side} cannot hold {switches} switches")
            }
            SpecError::BadPorts { ports } => {
                write!(f, "ports = {ports} below the generator's 5-port floor")
            }
            SpecError::ZeroReplications => write!(f, "replications must be >= 1"),
            SpecError::BadBuffers { input, output } => {
                write!(f, "buffers must hold >= 1 flit (got {input}/{output})")
            }
            SpecError::ZeroSampleCadence => {
                write!(
                    f,
                    "metrics_every_ns must be > 0 (use null to disable telemetry)"
                )
            }
            SpecError::ZeroCheckpointCadence => {
                write!(
                    f,
                    "checkpoint_every_ns must be > 0 (use null to disable checkpointing)"
                )
            }
            SpecError::Traffic(e) => write!(f, "traffic: {e}"),
            SpecError::BadFaultRate { rate } => {
                write!(f, "fault rate {rate} is not a probability in [0, 1]")
            }
            SpecError::EmptyStormWindow { start_us, end_us } => {
                write!(f, "storm window [{start_us}, {end_us}) us is empty")
            }
            SpecError::ZeroBursts => write!(f, "a storm needs at least one burst"),
            SpecError::FaultsPastHorizon { at_us, horizon_us } => {
                write!(
                    f,
                    "fault at {at_us} us lies past the {horizon_us} us horizon"
                )
            }
            SpecError::StormNeedsSpam => {
                write!(
                    f,
                    "live fault storms require SPAM routing (epoch reconfiguration)"
                )
            }
            SpecError::UnicastRoutingNeedsUnicastTraffic => write!(
                f,
                "up*/down* unicast routing cannot carry multicast-capable traffic"
            ),
            SpecError::UnsupportedCombination { what } => {
                write!(f, "unsupported combination: {what}")
            }
            SpecError::NoSurvivingComponent => {
                write!(f, "no surviving component can host the workload")
            }
            SpecError::Message { detail } => write!(f, "generated message rejected: {detail}"),
            SpecError::Snapshot { detail } => write!(f, "snapshot rejected: {detail}"),
        }
    }
}

impl std::error::Error for SpecError {}

impl SpecError {
    /// Stable variant name, used as a coverage key by the fuzzer and
    /// asserted by the exhaustive negative-case table test. Nested
    /// traffic errors read `Traffic.<variant>`.
    pub fn variant_name(&self) -> &'static str {
        match self {
            SpecError::Json(_) => "Json",
            SpecError::MissingField { .. } => "MissingField",
            SpecError::WrongType { .. } => "WrongType",
            SpecError::UnknownKind { .. } => "UnknownKind",
            SpecError::UnknownField { .. } => "UnknownField",
            SpecError::EmptyName => "EmptyName",
            SpecError::TooFewSwitches { .. } => "TooFewSwitches",
            SpecError::LatticeTooSmall { .. } => "LatticeTooSmall",
            SpecError::BadPorts { .. } => "BadPorts",
            SpecError::ZeroReplications => "ZeroReplications",
            SpecError::BadBuffers { .. } => "BadBuffers",
            SpecError::ZeroSampleCadence => "ZeroSampleCadence",
            SpecError::ZeroCheckpointCadence => "ZeroCheckpointCadence",
            SpecError::Traffic(t) => match t {
                TrafficError::NotEnoughProcessors { .. } => "Traffic.NotEnoughProcessors",
                TrafficError::NoDestinations => "Traffic.NoDestinations",
                TrafficError::TooFewSources { .. } => "Traffic.TooFewSources",
                TrafficError::BadFraction { .. } => "Traffic.BadFraction",
                TrafficError::NonPositiveRate { .. } => "Traffic.NonPositiveRate",
                TrafficError::RateTooHigh { .. } => "Traffic.RateTooHigh",
                TrafficError::ZeroDuration { .. } => "Traffic.ZeroDuration",
                TrafficError::DurationTooLarge { .. } => "Traffic.DurationTooLarge",
            },
            SpecError::BadFaultRate { .. } => "BadFaultRate",
            SpecError::EmptyStormWindow { .. } => "EmptyStormWindow",
            SpecError::ZeroBursts => "ZeroBursts",
            SpecError::FaultsPastHorizon { .. } => "FaultsPastHorizon",
            SpecError::StormNeedsSpam => "StormNeedsSpam",
            SpecError::UnicastRoutingNeedsUnicastTraffic => "UnicastRoutingNeedsUnicastTraffic",
            SpecError::UnsupportedCombination { .. } => "UnsupportedCombination",
            SpecError::NoSurvivingComponent => "NoSurvivingComponent",
            SpecError::Message { .. } => "Message",
            SpecError::Snapshot { .. } => "Snapshot",
        }
    }
}

impl From<TrafficError> for SpecError {
    fn from(e: TrafficError) -> Self {
        SpecError::Traffic(e)
    }
}

impl From<crate::json::JsonError> for SpecError {
    fn from(e: crate::json::JsonError) -> Self {
        SpecError::Json(e)
    }
}

impl ScenarioSpec {
    /// A minimal valid scenario: the Figure 2 single multicast on a
    /// 64-switch lattice under SPAM. A convenient starting point for
    /// programmatic construction.
    pub fn example(name: &str) -> Self {
        ScenarioSpec {
            name: name.to_string(),
            description: String::new(),
            topology: TopologySpec::default(),
            routing: RoutingSpec::Spam {
                policy: PolicySpec::MinResidualDistance,
            },
            traffic: TrafficSpec::SingleMulticast {
                dests: 16,
                len: 128,
            },
            faults: FaultsSpec::None,
            engine: EngineSpec::default(),
            seed: 0,
            replications: 1,
            horizon_us: None,
        }
    }

    /// Full validation: every structural, numeric, and cross-axis rule.
    /// A spec that validates will execute without panicking; anything the
    /// runner can only discover dynamically (e.g. fault damage leaving
    /// too few survivors) still comes back as a typed [`SpecError`] from
    /// [`crate::run_spec`].
    pub fn validate(&self) -> Result<(), SpecError> {
        if self.name.is_empty() {
            return Err(SpecError::EmptyName);
        }
        let t = &self.topology;
        if t.switches < 2 {
            return Err(SpecError::TooFewSwitches {
                switches: t.switches,
            });
        }
        if let Some(side) = t.side {
            if side * side < t.switches {
                return Err(SpecError::LatticeTooSmall {
                    switches: t.switches,
                    side,
                });
            }
        }
        if t.ports < 5 {
            return Err(SpecError::BadPorts { ports: t.ports });
        }
        if self.replications == 0 {
            return Err(SpecError::ZeroReplications);
        }
        let e = &self.engine;
        if e.input_buffer_flits == 0 || e.output_buffer_flits == 0 {
            return Err(SpecError::BadBuffers {
                input: e.input_buffer_flits,
                output: e.output_buffer_flits,
            });
        }
        if e.metrics_every_ns == Some(0) {
            return Err(SpecError::ZeroSampleCadence);
        }
        if e.checkpoint_every_ns == Some(0) {
            return Err(SpecError::ZeroCheckpointCadence);
        }
        self.validate_traffic()?;
        self.validate_faults()?;
        self.validate_combinations()
    }

    /// Traffic-level checks against the pristine processor count (the
    /// runner re-checks against the surviving population when faults
    /// shrink it).
    // The `expect("variant checked")` calls are per-arm: each
    // `*_config()` accessor returns `Some` exactly for the variant its
    // match arm just destructured.
    #[allow(clippy::expect_used)]
    fn validate_traffic(&self) -> Result<(), SpecError> {
        let procs = self.topology.switches; // one processor per switch
        match &self.traffic {
            TrafficSpec::SingleMulticast { dests, len: _ } => {
                if *dests == 0 {
                    return Err(TrafficError::NoDestinations.into());
                }
                if *dests >= procs {
                    return Err(TrafficError::NotEnoughProcessors {
                        requested: *dests,
                        available: procs - 1,
                    }
                    .into());
                }
                Ok(())
            }
            TrafficSpec::Mixed { .. } => Ok(self
                .mixed_config()
                .expect("variant checked")
                .validate(procs)?),
            TrafficSpec::Hotspot { .. } => Ok(self
                .hotspot_config()
                .expect("variant checked")
                .validate(procs)?),
            TrafficSpec::Permutation { .. } => Ok(self
                .permutation_config()
                .expect("variant checked")
                .validate(procs)?),
            TrafficSpec::Incast { .. } => Ok(self
                .incast_config()
                .expect("variant checked")
                .validate(procs)?),
            TrafficSpec::BroadcastStorm { .. } => Ok(()),
            TrafficSpec::ClosedLoop { .. } => Ok(self
                .closed_loop_config()
                .expect("variant checked")
                .validate(procs)?),
        }
    }

    fn validate_faults(&self) -> Result<(), SpecError> {
        let check_model = |m: &FaultModelSpec| match *m {
            FaultModelSpec::IidLinks { rate } | FaultModelSpec::IidSwitches { rate } => {
                if (0.0..=1.0).contains(&rate) {
                    Ok(())
                } else {
                    Err(SpecError::BadFaultRate { rate })
                }
            }
            FaultModelSpec::Region { .. } => Ok(()),
        };
        match self.faults {
            FaultsSpec::None => Ok(()),
            FaultsSpec::Static { ref model, .. } => check_model(model),
            FaultsSpec::Storm {
                ref model,
                window_start_us,
                window_end_us,
                bursts,
                ..
            } => {
                check_model(model)?;
                if window_end_us <= window_start_us {
                    return Err(SpecError::EmptyStormWindow {
                        start_us: window_start_us,
                        end_us: window_end_us,
                    });
                }
                if bursts == 0 {
                    return Err(SpecError::ZeroBursts);
                }
                if let Some(h) = self.horizon_us {
                    if window_end_us > h {
                        return Err(SpecError::FaultsPastHorizon {
                            at_us: window_end_us,
                            horizon_us: h,
                        });
                    }
                }
                Ok(())
            }
        }
    }

    fn validate_combinations(&self) -> Result<(), SpecError> {
        let storm = matches!(self.faults, FaultsSpec::Storm { .. });
        if storm {
            match self.routing {
                RoutingSpec::Spam {
                    policy: PolicySpec::MinResidualDistance,
                } => {}
                RoutingSpec::Spam { .. } => {
                    // Epoch routing rebuilds its per-epoch SPAM tables with
                    // the default policy; a non-default policy would be
                    // silently ignored, so reject it instead.
                    return Err(SpecError::UnsupportedCombination {
                        what: "a live storm with a non-default SPAM selection policy",
                    });
                }
                _ => return Err(SpecError::StormNeedsSpam),
            }
        }
        let multicast_capable = match &self.traffic {
            TrafficSpec::SingleMulticast { .. } | TrafficSpec::BroadcastStorm { .. } => true,
            TrafficSpec::Mixed {
                unicast_fraction, ..
            } => *unicast_fraction < 1.0,
            _ => false,
        };
        if matches!(self.routing, RoutingSpec::UpDownUnicast) && multicast_capable {
            return Err(SpecError::UnicastRoutingNeedsUnicastTraffic);
        }
        if matches!(self.traffic, TrafficSpec::ClosedLoop { .. }) {
            if storm {
                return Err(SpecError::UnsupportedCombination {
                    what: "closed-loop injection under a live storm (teardowns stall the loop)",
                });
            }
            if matches!(self.routing, RoutingSpec::SoftwareMulticast) {
                return Err(SpecError::UnsupportedCombination {
                    what: "closed-loop injection with software multicast (two completion hooks)",
                });
            }
        }
        Ok(())
    }

    /// Shrinks the scenario for smoke runs (`scenario_run --quick` and
    /// the golden corpus suite): caps message counts and replications
    /// without touching the topology, routing, faults, or seeds — the
    /// quick variant still exercises the same composition.
    pub fn quicken(&mut self) {
        self.replications = self.replications.min(2);
        match &mut self.traffic {
            TrafficSpec::Mixed { messages, .. }
            | TrafficSpec::Hotspot { messages, .. }
            | TrafficSpec::Incast { messages, .. } => *messages = (*messages).min(150),
            TrafficSpec::Permutation {
                messages_per_node, ..
            } => *messages_per_node = (*messages_per_node).min(3),
            TrafficSpec::ClosedLoop {
                messages_per_source,
                ..
            } => *messages_per_source = (*messages_per_source).min(4),
            TrafficSpec::SingleMulticast { .. } | TrafficSpec::BroadcastStorm { .. } => {}
        }
    }

    // ------------------------------------------------------------------
    // Traffic-config builders (shared by validation and the runner).

    /// The [`traffic::MixedTrafficConfig`] this spec describes, if it is
    /// a mixed-traffic scenario.
    pub fn mixed_config(&self) -> Option<traffic::MixedTrafficConfig> {
        match self.traffic {
            TrafficSpec::Mixed {
                unicast_fraction,
                multicast_dests,
                rate_per_node_per_us,
                len,
                messages,
                arrival,
            } => Some(traffic::MixedTrafficConfig {
                unicast_fraction,
                multicast_dests,
                rate_per_node_per_us,
                message_len: len,
                messages,
                arrival: arrival.to_kind(),
            }),
            _ => None,
        }
    }

    /// The [`traffic::HotspotConfig`] this spec describes, if any.
    pub fn hotspot_config(&self) -> Option<traffic::HotspotConfig> {
        match self.traffic {
            TrafficSpec::Hotspot {
                hot_nodes,
                hot_fraction,
                rate_per_node_per_us,
                len,
                messages,
                arrival,
            } => Some(traffic::HotspotConfig {
                hot_nodes,
                hot_fraction,
                rate_per_node_per_us,
                message_len: len,
                messages,
                arrival: arrival.to_kind(),
            }),
            _ => None,
        }
    }

    /// The [`traffic::PermutationConfig`] this spec describes, if any.
    pub fn permutation_config(&self) -> Option<traffic::PermutationConfig> {
        match self.traffic {
            TrafficSpec::Permutation {
                pattern,
                rate_per_node_per_us,
                len,
                messages_per_node,
                arrival,
            } => Some(traffic::PermutationConfig {
                pattern: match pattern {
                    PatternSpec::Transpose => traffic::PermutationPattern::Transpose,
                    PatternSpec::BitComplement => traffic::PermutationPattern::BitComplement,
                },
                rate_per_node_per_us,
                message_len: len,
                messages_per_node,
                arrival: arrival.to_kind(),
            }),
            _ => None,
        }
    }

    /// The [`traffic::IncastConfig`] this spec describes, if any.
    pub fn incast_config(&self) -> Option<traffic::IncastConfig> {
        match self.traffic {
            TrafficSpec::Incast {
                servers,
                rate_per_client_per_us,
                len,
                messages,
                arrival,
            } => Some(traffic::IncastConfig {
                servers,
                rate_per_client_per_us,
                message_len: len,
                messages,
                arrival: arrival.to_kind(),
            }),
            _ => None,
        }
    }

    /// The [`traffic::ClosedLoopConfig`] this spec describes, if any.
    pub fn closed_loop_config(&self) -> Option<traffic::ClosedLoopConfig> {
        match self.traffic {
            TrafficSpec::ClosedLoop {
                window,
                messages_per_source,
                len,
                think_ns,
            } => Some(traffic::ClosedLoopConfig {
                window,
                messages_per_source,
                message_len: len,
                think: desim::Duration::from_ns(think_ns),
            }),
            _ => None,
        }
    }
}

impl ArrivalSpec {
    /// The `traffic` crate's equivalent.
    pub fn to_kind(self) -> traffic::ArrivalKind {
        match self {
            ArrivalSpec::NegativeBinomial { r } => traffic::ArrivalKind::NegativeBinomial { r },
            ArrivalSpec::Poisson => traffic::ArrivalKind::Poisson,
            ArrivalSpec::Deterministic => traffic::ArrivalKind::Deterministic,
            ArrivalSpec::OnOff {
                r,
                mean_on_us,
                mean_off_us,
            } => traffic::ArrivalKind::OnOff {
                r,
                mean_on_us,
                mean_off_us,
            },
        }
    }
}

impl FaultModelSpec {
    /// The `spam-faults` crate's equivalent.
    pub fn to_model(self) -> spam_faults::FaultModel {
        match self {
            FaultModelSpec::IidLinks { rate } => spam_faults::FaultModel::IidLinks { rate },
            FaultModelSpec::IidSwitches { rate } => spam_faults::FaultModel::IidSwitches { rate },
            FaultModelSpec::Region { radius } => spam_faults::FaultModel::Region { radius },
        }
    }
}
