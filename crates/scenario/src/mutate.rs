//! Typed, axis-aware mutation of [`ScenarioSpec`]s for the
//! coverage-guided fuzzer (`spam-fuzz`).
//!
//! A mutation never produces junk: every mutant is a structurally valid
//! `ScenarioSpec` value that either passes [`ScenarioSpec::validate`] or
//! deliberately trips one *specific* validation rule (recorded in
//! [`Mutation::expect`], so the fuzzer can assert the rule still fires).
//! Values are drawn from small hand-chosen palettes that sit inside,
//! *at*, and just beyond each axis's validation boundary — boundary
//! probing is where fuzzers earn their keep.

use crate::spec::{
    ArrivalSpec, EngineSpec, FaultModelSpec, FaultsSpec, PatternSpec, PolicySpec, QueueSpec,
    RoutingSpec, ScenarioSpec, StrategySpec, TrafficSpec,
};
use rand::rngs::StdRng;
use rand::Rng;

/// Switch-count palette: the floor (2), the corpus's sizes, and a large
/// outlier. All satisfy `switches >= 2`.
pub const SWITCH_PALETTE: &[usize] = &[2, 6, 12, 24, 32, 48, 64, 100];

/// Broadcast-storm stagger palette (ns), straddling the bucket wheel's
/// span so mutants exercise the overflow list: same-instant (0), one
/// slot (40), mid-range, and just-below / at / beyond the wheel horizon.
pub const STAGGER_PALETTE: &[u64] = &[
    0,
    40,
    1_000,
    5_000_000,
    desim::WHEEL_SPAN_NS - 1,
    desim::WHEEL_SPAN_NS,
    desim::WHEEL_SPAN_NS + 1,
    desim::WHEEL_SPAN_NS * 2,
];

/// One applied mutation: the mutant plus what the mutator did and what
/// it predicts validation will say.
#[derive(Debug, Clone)]
pub struct Mutation {
    /// The mutated spec (name unchanged; the fuzzer renames mutants).
    pub spec: ScenarioSpec,
    /// Which axis was mutated (stable snake_case key, e.g.
    /// `"faults.storm"`).
    pub axis: &'static str,
    /// `Some(variant)` when the mutator deliberately violated a
    /// validation rule; the fuzzer asserts `validate()` fails with
    /// exactly this [`crate::SpecError`] variant name. `None` mutants
    /// may still fail validation (cross-axis rules), but always with a
    /// typed error.
    pub expect: Option<&'static str>,
}

/// Applies one randomly chosen axis mutation to `seed_spec`. Fully
/// deterministic in `rng`'s state.
pub fn mutate_spec(seed_spec: &ScenarioSpec, rng: &mut StdRng) -> Mutation {
    let mut spec = seed_spec.clone();
    let (axis, expect) = match rng.gen_range(0..13u32) {
        0 => resize_lattice(&mut spec, rng),
        1 => reshape_lattice(&mut spec, rng),
        2 => rotate_routing(&mut spec, rng),
        3 => perturb_traffic(&mut spec, rng),
        4 => boundary_traffic(&mut spec, rng),
        5 => swap_traffic_kind(&mut spec, rng),
        6 => add_or_move_storm(&mut spec, rng),
        7 => intensify_faults(&mut spec, rng),
        8 => static_faults(&mut spec, rng),
        9 => toggle_queue(&mut spec, rng),
        10 => perturb_engine(&mut spec, rng),
        11 => jitter_seeds(&mut spec, rng),
        _ => perturb_horizon(&mut spec, rng),
    };
    Mutation { spec, axis, expect }
}

fn resize_lattice(
    spec: &mut ScenarioSpec,
    rng: &mut StdRng,
) -> (&'static str, Option<&'static str>) {
    spec.topology.switches = *pick(SWITCH_PALETTE, rng);
    // The default side tracks the switch count; an explicit stale side
    // from the seed spec could no longer fit.
    spec.topology.side = None;
    ("topology.switches", None)
}

fn reshape_lattice(
    spec: &mut ScenarioSpec,
    rng: &mut StdRng,
) -> (&'static str, Option<&'static str>) {
    // An unbounded search always finds a side whose square covers the
    // switch count.
    #[allow(clippy::unwrap_used)]
    let min_side = (1..).find(|s| s * s >= spec.topology.switches).unwrap();
    match rng.gen_range(0..4u32) {
        // Tight square, roomy square: both valid.
        0 => spec.topology.side = Some(min_side),
        1 => spec.topology.side = Some(min_side + rng.gen_range(1..4usize)),
        2 => {
            spec.topology.strategy = match spec.topology.strategy {
                StrategySpec::ConnectedGrowth => StrategySpec::UniformRetry,
                StrategySpec::UniformRetry => StrategySpec::ConnectedGrowth,
            }
        }
        // One below the floor: side^2 < switches must be rejected.
        _ => {
            if min_side > 1 {
                spec.topology.side = Some(min_side - 1);
                return ("topology.side", Some("LatticeTooSmall"));
            }
            spec.topology.side = Some(min_side);
        }
    }
    ("topology.side", None)
}

fn rotate_routing(
    spec: &mut ScenarioSpec,
    rng: &mut StdRng,
) -> (&'static str, Option<&'static str>) {
    spec.routing = match rng.gen_range(0..5u32) {
        0 => RoutingSpec::Spam {
            policy: PolicySpec::MinResidualDistance,
        },
        1 => RoutingSpec::Spam {
            policy: PolicySpec::FirstLegal,
        },
        2 => RoutingSpec::Spam {
            policy: PolicySpec::RandomLegal {
                seed: rng.gen_range(0..u64::MAX),
            },
        },
        3 => RoutingSpec::UpDownUnicast,
        _ => RoutingSpec::SoftwareMulticast,
    };
    // Cross-axis rules (storm needs default-policy SPAM, unicast routing
    // needs unicast traffic, ...) may reject the combination — that is
    // the point: the rejection is a typed SpecError the fuzzer records.
    ("routing", None)
}

fn perturb_traffic(
    spec: &mut ScenarioSpec,
    rng: &mut StdRng,
) -> (&'static str, Option<&'static str>) {
    match &mut spec.traffic {
        TrafficSpec::SingleMulticast { dests, len } => {
            *dests = rng.gen_range(1..spec.topology.switches.max(2));
            *len = *pick(&[1, 8, 128, 1024], rng);
        }
        TrafficSpec::Mixed {
            unicast_fraction,
            multicast_dests,
            rate_per_node_per_us,
            len,
            ..
        } => {
            *unicast_fraction = *pick(&[0.0, 0.25, 0.5, 0.9, 1.0], rng);
            *multicast_dests = rng.gen_range(1..spec.topology.switches.max(2));
            *rate_per_node_per_us = *pick(&[0.001, 0.01, 0.05], rng);
            *len = *pick(&[1, 16, 128], rng);
        }
        TrafficSpec::Hotspot {
            hot_nodes,
            hot_fraction,
            ..
        } => {
            *hot_nodes = rng.gen_range(1..spec.topology.switches.max(2));
            *hot_fraction = *pick(&[0.0, 0.5, 1.0], rng);
        }
        TrafficSpec::Permutation {
            pattern, arrival, ..
        } => {
            *pattern = match pattern {
                PatternSpec::Transpose => PatternSpec::BitComplement,
                PatternSpec::BitComplement => PatternSpec::Transpose,
            };
            *arrival = *pick(
                &[
                    ArrivalSpec::Poisson,
                    ArrivalSpec::Deterministic,
                    ArrivalSpec::NegativeBinomial { r: 1 },
                    ArrivalSpec::OnOff {
                        r: 1,
                        mean_on_us: 20,
                        mean_off_us: 80,
                    },
                ],
                rng,
            );
        }
        TrafficSpec::Incast { servers, .. } => {
            *servers = rng.gen_range(1..spec.topology.switches.max(2));
        }
        TrafficSpec::BroadcastStorm { stagger_ns, len } => {
            *stagger_ns = *pick(STAGGER_PALETTE, rng);
            *len = *pick(&[1, 8, 64], rng);
        }
        TrafficSpec::ClosedLoop {
            window, think_ns, ..
        } => {
            *window = rng.gen_range(1..9usize);
            *think_ns = *pick(&[0, 100, 10_000], rng);
        }
    }
    ("traffic", None)
}

/// Pushes one traffic knob *past* its validation boundary and predicts
/// the exact rejection.
fn boundary_traffic(
    spec: &mut ScenarioSpec,
    rng: &mut StdRng,
) -> (&'static str, Option<&'static str>) {
    let procs = spec.topology.switches;
    match &mut spec.traffic {
        TrafficSpec::SingleMulticast { dests, .. } => {
            if rng.gen_bool(0.5) {
                *dests = 0;
                ("traffic.dests", Some("Traffic.NoDestinations"))
            } else {
                *dests = procs;
                ("traffic.dests", Some("Traffic.NotEnoughProcessors"))
            }
        }
        TrafficSpec::Mixed {
            unicast_fraction,
            rate_per_node_per_us,
            ..
        } => {
            if rng.gen_bool(0.5) {
                *unicast_fraction = 1.0 + f64::EPSILON * 4.0;
                ("traffic.unicast_fraction", Some("Traffic.BadFraction"))
            } else {
                *rate_per_node_per_us = 0.0;
                (
                    "traffic.rate_per_node_per_us",
                    Some("Traffic.NonPositiveRate"),
                )
            }
        }
        TrafficSpec::Hotspot { hot_fraction, .. } => {
            *hot_fraction = -0.125;
            ("traffic.hot_fraction", Some("Traffic.BadFraction"))
        }
        TrafficSpec::Permutation {
            rate_per_node_per_us,
            ..
        } => {
            // Above one message per arrival slot: unrepresentable.
            *rate_per_node_per_us = 1.0e6;
            ("traffic.rate_per_node_per_us", Some("Traffic.RateTooHigh"))
        }
        TrafficSpec::Incast {
            rate_per_client_per_us,
            ..
        } => {
            *rate_per_client_per_us = -1.0;
            (
                "traffic.rate_per_client_per_us",
                Some("Traffic.NonPositiveRate"),
            )
        }
        TrafficSpec::ClosedLoop { window, .. } => {
            *window = 0;
            ("traffic.window", Some("Traffic.ZeroDuration"))
        }
        TrafficSpec::BroadcastStorm { .. } => {
            // The storm has no rejectable knob; violate the topology
            // floor instead.
            spec.topology.switches = 1;
            spec.topology.side = None;
            ("topology.switches", Some("TooFewSwitches"))
        }
    }
}

fn swap_traffic_kind(
    spec: &mut ScenarioSpec,
    rng: &mut StdRng,
) -> (&'static str, Option<&'static str>) {
    let procs = spec.topology.switches;
    let dests = (procs / 4).clamp(1, procs.saturating_sub(1).max(1));
    spec.traffic = match rng.gen_range(0..7u32) {
        0 => TrafficSpec::SingleMulticast { dests, len: 128 },
        1 => TrafficSpec::Mixed {
            unicast_fraction: 0.9,
            multicast_dests: dests,
            rate_per_node_per_us: 0.01,
            len: 32,
            messages: 120,
            arrival: ArrivalSpec::NegativeBinomial { r: 1 },
        },
        2 => TrafficSpec::Hotspot {
            hot_nodes: 2.min(procs - 1).max(1),
            hot_fraction: 0.7,
            rate_per_node_per_us: 0.01,
            len: 32,
            messages: 120,
            arrival: ArrivalSpec::Poisson,
        },
        3 => TrafficSpec::Permutation {
            pattern: PatternSpec::Transpose,
            rate_per_node_per_us: 0.01,
            len: 32,
            messages_per_node: 3,
            arrival: ArrivalSpec::Deterministic,
        },
        4 => TrafficSpec::Incast {
            servers: 1,
            rate_per_client_per_us: 0.005,
            len: 32,
            messages: 120,
            arrival: ArrivalSpec::Poisson,
        },
        5 => TrafficSpec::BroadcastStorm {
            len: 8,
            stagger_ns: *pick(STAGGER_PALETTE, rng),
        },
        _ => TrafficSpec::ClosedLoop {
            window: 2,
            messages_per_source: 4,
            len: 32,
            think_ns: 100,
        },
    };
    ("traffic.kind", None)
}

fn add_or_move_storm(
    spec: &mut ScenarioSpec,
    rng: &mut StdRng,
) -> (&'static str, Option<&'static str>) {
    let model = random_model(rng);
    let start = *pick(&[0, 20, 100, 400], rng);
    let span = *pick(&[1, 50, 200], rng);
    spec.faults = FaultsSpec::Storm {
        model,
        seed: rng.gen_range(0..u64::MAX),
        window_start_us: start,
        window_end_us: start + span,
        bursts: rng.gen_range(1..4usize),
    };
    // Storms require default-policy SPAM and open-loop traffic; steer
    // the mutant toward a runnable composition most of the time, leave
    // the occasional cross-axis rejection as negative coverage.
    if rng.gen_bool(0.8) {
        spec.routing = RoutingSpec::Spam {
            policy: PolicySpec::MinResidualDistance,
        };
        if matches!(spec.traffic, TrafficSpec::ClosedLoop { .. }) {
            spec.traffic = TrafficSpec::Mixed {
                unicast_fraction: 0.9,
                multicast_dests: (spec.topology.switches / 4).max(1),
                rate_per_node_per_us: 0.01,
                len: 32,
                messages: 120,
                arrival: ArrivalSpec::NegativeBinomial { r: 1 },
            };
        }
        if spec.horizon_us.is_some() {
            spec.horizon_us = Some(start + span);
        }
    }
    ("faults.storm", None)
}

fn intensify_faults(
    spec: &mut ScenarioSpec,
    rng: &mut StdRng,
) -> (&'static str, Option<&'static str>) {
    let bump = |m: &mut FaultModelSpec, rng: &mut StdRng| match m {
        FaultModelSpec::IidLinks { rate } | FaultModelSpec::IidSwitches { rate } => {
            *rate = *pick(&[0.0, 0.05, 0.3, 1.0], rng);
        }
        FaultModelSpec::Region { radius } => *radius = rng.gen_range(0..4usize),
    };
    match &mut spec.faults {
        FaultsSpec::None => return static_faults(spec, rng),
        FaultsSpec::Static { model, .. } => bump(model, rng),
        FaultsSpec::Storm { model, bursts, .. } => {
            bump(model, rng);
            *bursts = rng.gen_range(1..6usize);
        }
    }
    ("faults.model", None)
}

fn static_faults(
    spec: &mut ScenarioSpec,
    rng: &mut StdRng,
) -> (&'static str, Option<&'static str>) {
    if rng.gen_bool(0.1) {
        // Beyond the probability boundary: must be rejected.
        spec.faults = FaultsSpec::Static {
            model: FaultModelSpec::IidLinks { rate: 1.5 },
            seed: rng.gen_range(0..u64::MAX),
        };
        return ("faults.static", Some("BadFaultRate"));
    }
    spec.faults = FaultsSpec::Static {
        model: random_model(rng),
        seed: rng.gen_range(0..u64::MAX),
    };
    ("faults.static", None)
}

fn toggle_queue(spec: &mut ScenarioSpec, rng: &mut StdRng) -> (&'static str, Option<&'static str>) {
    spec.engine.queue = *pick(&[None, Some(QueueSpec::Bucket), Some(QueueSpec::Heap)], rng);
    ("engine.queue", None)
}

fn perturb_engine(
    spec: &mut ScenarioSpec,
    rng: &mut StdRng,
) -> (&'static str, Option<&'static str>) {
    if rng.gen_bool(0.1) {
        spec.engine.input_buffer_flits = 0;
        return ("engine.buffers", Some("BadBuffers"));
    }
    if rng.gen_bool(0.1) {
        spec.engine.metrics_every_ns = Some(0);
        return ("engine.metrics", Some("ZeroSampleCadence"));
    }
    if rng.gen_bool(0.1) {
        spec.engine.checkpoint_every_ns = Some(0);
        return ("engine.checkpoint", Some("ZeroCheckpointCadence"));
    }
    spec.engine = EngineSpec {
        queue: spec.engine.queue,
        input_buffer_flits: rng.gen_range(1..5usize),
        output_buffer_flits: rng.gen_range(1..5usize),
        extra_header_flits: rng.gen_range(0..3u32),
        trace: spec.engine.trace,
        metrics_every_ns: match rng.gen_range(0..3u32) {
            0 => None,
            1 => Some(1_000),
            _ => Some(*pick(&[100, 5_000, 250_000], rng)),
        },
        checkpoint_every_ns: match rng.gen_range(0..3u32) {
            0 => None,
            1 => Some(50_000),
            _ => Some(*pick(&[10_000, 250_000, 1_000_000], rng)),
        },
    };
    ("engine.buffers", None)
}

fn jitter_seeds(spec: &mut ScenarioSpec, rng: &mut StdRng) -> (&'static str, Option<&'static str>) {
    match rng.gen_range(0..3u32) {
        0 => spec.seed = rng.gen_range(0..u64::MAX),
        1 => spec.topology.seed = rng.gen_range(0..u64::MAX),
        _ => {
            spec.seed = rng.gen_range(0..u64::MAX);
            spec.topology.seed = rng.gen_range(0..u64::MAX);
        }
    }
    ("seed", None)
}

fn perturb_horizon(
    spec: &mut ScenarioSpec,
    rng: &mut StdRng,
) -> (&'static str, Option<&'static str>) {
    if let FaultsSpec::Storm { window_end_us, .. } = spec.faults {
        if rng.gen_bool(0.3) && window_end_us > 0 {
            // Horizon one µs short of the storm window: must be rejected.
            spec.horizon_us = Some(window_end_us - 1);
            return ("horizon_us", Some("FaultsPastHorizon"));
        }
        // Exactly at the boundary: the tightest accepted horizon.
        spec.horizon_us = Some(window_end_us);
        return ("horizon_us", None);
    }
    spec.horizon_us = match spec.horizon_us {
        None => Some(*pick(&[100, 1_000, 100_000], rng)),
        Some(_) => None,
    };
    ("horizon_us", None)
}

fn random_model(rng: &mut StdRng) -> FaultModelSpec {
    match rng.gen_range(0..3u32) {
        0 => FaultModelSpec::IidLinks {
            rate: *pick(&[0.02, 0.1, 0.3], rng),
        },
        1 => FaultModelSpec::IidSwitches {
            rate: *pick(&[0.05, 0.15], rng),
        },
        _ => FaultModelSpec::Region {
            radius: rng.gen_range(0..3usize),
        },
    }
}

fn pick<'a, T>(xs: &'a [T], rng: &mut StdRng) -> &'a T {
    &xs[rng.gen_range(0..xs.len())]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Every mutant either validates or fails with a typed error — and
    /// when the mutator predicted a rejection, that exact variant fires.
    #[test]
    fn mutants_validate_or_trip_the_predicted_rule() {
        let seed = ScenarioSpec::example("mutation-source");
        let mut rng = StdRng::seed_from_u64(0xF0_22);
        let mut predicted = 0;
        for _ in 0..500 {
            let m = mutate_spec(&seed, &mut rng);
            match (m.spec.validate(), m.expect) {
                (Ok(()), None) => {}
                (Err(_), None) => {} // cross-axis rejection: typed, fine
                (Err(e), Some(want)) => {
                    assert_eq!(e.variant_name(), want, "axis {}", m.axis);
                    predicted += 1;
                }
                (Ok(()), Some(want)) => {
                    panic!("axis {} promised {want} but the mutant validated", m.axis)
                }
            }
        }
        assert!(
            predicted > 10,
            "boundary mutators barely fired: {predicted}"
        );
    }

    #[test]
    fn mutation_stream_is_deterministic() {
        let seed = ScenarioSpec::example("det");
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let ma = mutate_spec(&seed, &mut a);
            let mb = mutate_spec(&seed, &mut b);
            assert_eq!(ma.axis, mb.axis);
            assert_eq!(ma.spec, mb.spec);
        }
    }

    #[test]
    fn stagger_palette_straddles_the_wheel_horizon() {
        assert!(STAGGER_PALETTE.contains(&(desim::WHEEL_SPAN_NS - 1)));
        assert!(STAGGER_PALETTE.contains(&(desim::WHEEL_SPAN_NS + 1)));
    }
}
