//! Executing a validated [`ScenarioSpec`]: build the topology, compose
//! faults and routing, generate the workload, and run the wormhole
//! simulator — one deterministic [`wormsim::SimOutcome`] per replication.

use crate::artifact::{ArtifactPrefix, ScenarioArtifacts};
use crate::spec::{
    FaultsSpec, PolicySpec, QueueSpec, RoutingSpec, ScenarioSpec, SpecError, TrafficSpec,
};
use baselines::{UnicastMulticast, UpDownUnicastRouting};
use desim::{Duration, QueueKind, Time};
use netgraph::gen::lattice::LatticeLayout;
use netgraph::{NodeId, Topology};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spam_core::SelectionPolicy;
use std::collections::HashMap;
use traffic::{BroadcastStormConfig, ClosedLoopInjector, DestinationSampler};
use wormsim::{
    CheckpointSink, CompletionHook, MessageSpec, MetricsConfig, MsgId, NetworkSim,
    RoutingAlgorithm, SimConfig, SimOutcome, SnapshotError,
};

/// How the runner drives the engine: a fresh run, a fresh run that also
/// streams checkpoints into a sink, or a resume from serialized snapshot
/// bytes. On resume the topology, routing arm, and completion hook are
/// rebuilt from the spec exactly as a fresh run would build them — only
/// the engine's dynamic state comes from the snapshot — so a resumed
/// run finishes byte-identically to its uninterrupted twin.
pub(crate) enum RunMode<'a> {
    /// Plain execution (what [`run_once`] does).
    Fresh,
    /// Execute from the start, checkpointing every `every` of sim-time
    /// into `sink`.
    Checkpoint {
        /// Checkpoint cadence.
        every: Duration,
        /// Where snapshots go.
        sink: CheckpointSink,
    },
    /// Restore from a snapshot taken by an earlier run of the same spec
    /// and replication, then run to completion.
    Resume {
        /// Sealed snapshot bytes.
        bytes: &'a [u8],
    },
}

impl RunMode<'_> {
    /// Installs the checkpoint observer on a freshly built simulator.
    /// Resume never reaches here: the engine reconstructs the snapshot's
    /// own checkpoint ticker.
    fn install<R: RoutingAlgorithm>(self, sim: &mut NetworkSim<'_, R>) {
        if let RunMode::Checkpoint { every, sink } = self {
            sim.enable_checkpoints(every, sink);
        }
    }
}

/// Every snapshot-layer failure surfaces as a typed spec error.
fn to_snap_err(e: SnapshotError) -> SpecError {
    SpecError::Snapshot {
        detail: e.to_string(),
    }
}

/// The pure observers a spec asks for (trace, telemetry), resolved once
/// per run and installed on each simulator the runner constructs.
#[derive(Debug, Clone, Copy)]
struct Observers {
    trace: bool,
    metrics: Option<MetricsConfig>,
}

impl Observers {
    fn from_spec(spec: &ScenarioSpec) -> Self {
        Observers {
            trace: spec.engine.trace,
            // A declared horizon sizes the sample ring to keep the whole
            // run; without one the default capacity rings over.
            metrics: spec.engine.metrics_every_ns.map(|n| match spec.horizon_us {
                Some(h) => MetricsConfig::for_horizon(n, h.saturating_mul(1_000)),
                None => MetricsConfig::every_ns(n),
            }),
        }
    }

    fn install<R: RoutingAlgorithm>(&self, sim: &mut NetworkSim<'_, R>) {
        if self.trace {
            sim.enable_trace();
        }
        if let Some(cfg) = self.metrics {
            sim.enable_metrics(cfg);
        }
    }
}

/// Splits a u64 seed stream deterministically (SplitMix64; the same
/// mixer `spam-bench` uses).
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    let mut x = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Replication `0` uses the spec's seeds verbatim (so a one-replication
/// scenario is exactly the instance its file describes); later
/// replications derive independent streams.
pub(crate) fn rep_seed(base: u64, rep: u32) -> u64 {
    if rep == 0 {
        base
    } else {
        split_seed(base, rep as u64)
    }
}

/// One replication's digest: message accounting plus a latency summary.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct RepSummary {
    /// Replication index.
    pub rep: u32,
    /// Messages the engine saw (software-multicast runs count the
    /// constituent unicasts).
    pub submitted: u64,
    /// ... of which fully delivered.
    pub delivered: u64,
    /// ... torn down by mid-run faults.
    pub torn_down: u64,
    /// ... rejected at the source as unreachable.
    pub unreachable: u64,
    /// Mean end-to-end latency (µs) over delivered messages.
    pub mean_latency_us: Option<f64>,
    /// Median delivered latency (µs).
    pub p50_us: Option<f64>,
    /// 99th-percentile delivered latency (µs), nearest-rank.
    pub p99_us: Option<f64>,
    /// Engine events processed.
    pub events: u64,
    /// Simulated clock at the end of the run (µs).
    pub end_time_us: f64,
    /// True when the run ended cleanly with every message accounted for
    /// (false = deadlock or engine error — a simulation *result*, not a
    /// spec error).
    pub clean: bool,
}

/// A finished scenario: one [`RepSummary`] per replication.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct ScenarioReport {
    /// The scenario's name.
    pub name: String,
    /// Per-replication digests, in replication order.
    pub reps: Vec<RepSummary>,
}

impl ScenarioReport {
    /// Mean of the per-replication mean latencies (µs).
    pub fn mean_latency_us(&self) -> Option<f64> {
        let xs: Vec<f64> = self.reps.iter().filter_map(|r| r.mean_latency_us).collect();
        (!xs.is_empty()).then(|| xs.iter().sum::<f64>() / xs.len() as f64)
    }

    /// Total (delivered, torn down, unreachable) over all replications.
    pub fn totals(&self) -> (u64, u64, u64) {
        self.reps.iter().fold((0, 0, 0), |(d, t, u), r| {
            (d + r.delivered, t + r.torn_down, u + r.unreachable)
        })
    }

    /// True when every replication ended cleanly.
    pub fn all_clean(&self) -> bool {
        self.reps.iter().all(|r| r.clean)
    }
}

/// Nearest-rank percentile of a sorted sample.
fn percentile(sorted: &[f64], p: f64) -> Option<f64> {
    if sorted.is_empty() {
        return None;
    }
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    Some(sorted[rank - 1])
}

/// Digests one replication's outcome.
pub fn summarize(rep: u32, out: &SimOutcome) -> RepSummary {
    let mut lat = out.latencies_us(|_| true);
    lat.sort_by(f64::total_cmp);
    RepSummary {
        rep,
        submitted: out.messages.len() as u64,
        delivered: out.counters.messages_completed,
        torn_down: out.counters.messages_torn_down,
        unreachable: out.counters.messages_unreachable,
        mean_latency_us: out.mean_latency_us(|_| true),
        p50_us: percentile(&lat, 0.50),
        p99_us: percentile(&lat, 0.99),
        events: out.counters.events,
        end_time_us: out.end_time.as_us_f64(),
        clean: out.all_accounted(),
    }
}

/// Runs every replication of a scenario. Validates first; every failure
/// mode is a typed [`SpecError`].
pub fn run_spec(spec: &ScenarioSpec) -> Result<ScenarioReport, SpecError> {
    spec.validate()?;
    let mut reps = Vec::with_capacity(spec.replications as usize);
    for rep in 0..spec.replications {
        let out = run_once(spec, rep, None)?;
        reps.push(summarize(rep, &out));
    }
    Ok(ScenarioReport {
        name: spec.name.clone(),
        reps,
    })
}

/// Runs one replication and returns the raw outcome. `queue` overrides
/// the spec's event-queue choice (the golden corpus suite uses this to
/// pin byte-identical outcomes under both implementations).
pub fn run_once(
    spec: &ScenarioSpec,
    rep: u32,
    queue: Option<QueueKind>,
) -> Result<SimOutcome, SpecError> {
    run_once_with_topology(spec, rep, queue).map(|(out, _)| out)
}

/// Like [`run_once`], but also returns the exact [`Topology`] the run
/// executed on (post-degradation for static-fault scenarios). Trace
/// consumers — span derivation, Perfetto export, the latency-anatomy
/// report — need the topology to reconstruct worm paths from channel ids.
pub fn run_once_with_topology(
    spec: &ScenarioSpec,
    rep: u32,
    queue: Option<QueueKind>,
) -> Result<(SimOutcome, Topology), SpecError> {
    run_once_full(spec, rep, queue).map(|(out, topo, _)| (out, topo))
}

/// Like [`run_once_with_topology`], but additionally returns the lattice
/// layout the topology was generated on. Telemetry consumers need it to
/// fold per-channel congestion onto the grid (node ids stay valid across
/// static-fault degradation — dead nodes are isolated, not renumbered).
pub fn run_once_full(
    spec: &ScenarioSpec,
    rep: u32,
    queue: Option<QueueKind>,
) -> Result<(SimOutcome, Topology, LatticeLayout), SpecError> {
    run_once_mode(spec, rep, queue, RunMode::Fresh)
}

/// The single execution path behind every public runner: builds the
/// spec's artifacts (topology, faults, labeling — see
/// [`crate::artifact`]) and then runs it fresh, checkpointed, or resumed
/// per `mode` (see [`crate::snapshot`] for the public checkpoint/resume
/// API).
pub(crate) fn run_once_mode(
    spec: &ScenarioSpec,
    rep: u32,
    queue: Option<QueueKind>,
    mode: RunMode<'_>,
) -> Result<(SimOutcome, Topology, LatticeLayout), SpecError> {
    spec.validate()?;
    let arts = ArtifactPrefix::of(spec, rep).build()?;
    let out = run_mode_with_artifacts(spec, rep, queue, mode, &arts)?;
    let ScenarioArtifacts { topo, layout, .. } = arts;
    Ok((out, topo, layout))
}

/// Runs one replication on *prebuilt* artifacts — the warm path of the
/// `spam-serve` artifact cache: straight to traffic generation, with the
/// topology, labeling, fault precomputation, and routing tables shared
/// from `arts`. Produces byte-identical outcomes to [`run_once`] for the
/// same spec and replication (pinned by the differential cache suite).
///
/// # Panics
///
/// Panics when `arts` was built for a different topology+faults prefix
/// or replication than `(spec, rep)` — running on mismatched artifacts
/// would silently simulate the wrong network, so the contract is
/// asserted, not assumed. Use [`ArtifactPrefix::matches`] to check first
/// when the pairing is not known by construction.
pub fn run_with_artifacts(
    spec: &ScenarioSpec,
    rep: u32,
    queue: Option<QueueKind>,
    arts: &ScenarioArtifacts,
) -> Result<SimOutcome, SpecError> {
    spec.validate()?;
    run_mode_with_artifacts(spec, rep, queue, RunMode::Fresh, arts)
}

pub(crate) fn run_mode_with_artifacts(
    spec: &ScenarioSpec,
    rep: u32,
    queue: Option<QueueKind>,
    mode: RunMode<'_>,
    arts: &ScenarioArtifacts,
) -> Result<SimOutcome, SpecError> {
    assert!(
        arts.prefix.matches(spec, rep),
        "artifacts were built for a different topology+faults prefix"
    );
    let mut cfg = SimConfig::paper()
        .with_buffers(
            spec.engine.input_buffer_flits,
            spec.engine.output_buffer_flits,
        )
        .with_extra_header_flits(spec.engine.extra_header_flits);
    if let Some(q) = spec.engine.queue {
        cfg = cfg.with_queue(match q {
            QueueSpec::Bucket => QueueKind::Bucket,
            QueueSpec::Heap => QueueKind::Heap,
        });
    }
    if let Some(q) = queue {
        cfg = cfg.with_queue(q);
    }
    if let Some(n) = spec.engine.checkpoint_every_ns {
        cfg = cfg.with_checkpoint_every_ns(n);
    }

    let traffic_seed = rep_seed(spec.seed, rep);
    match &spec.faults {
        FaultsSpec::Storm { .. } => {
            // Live reconfiguration: epoch-stamped SPAM routing over the
            // pristine population; teardowns and unreachables are
            // expected per-message verdicts. The prefix match above
            // guarantees the storm artifacts exist.
            #[allow(clippy::expect_used)]
            let storm = arts
                .storm
                .as_ref()
                .expect("storm prefix has storm artifacts");
            #[allow(clippy::expect_used)]
            let routing = arts
                .epoch_routing()
                .expect("storm prefix has storm artifacts");
            let topo = &arts.topo;
            let mut out = match mode {
                RunMode::Resume { bytes } => {
                    // The fault schedule's link-down events are *in* the
                    // snapshot — reinstalling would fire each fault twice.
                    NetworkSim::restore(topo, routing, cfg, bytes)
                        .map_err(to_snap_err)?
                        .run()
                }
                mode => {
                    let stream = open_stream(spec, topo, &arts.layout, &arts.procs, traffic_seed)?;
                    let mut sim = NetworkSim::new(topo, routing, cfg);
                    Observers::from_spec(spec).install(&mut sim);
                    mode.install(&mut sim);
                    storm.schedule.install(&mut sim);
                    submit_all(&mut sim, stream)?;
                    sim.run()
                }
            };
            // Scenario-level coverage: the shape of each post-fault
            // relabel (incremental reattach vs full rebuild) is decided
            // here, not in the engine, so merge it into the run's
            // coverage record. Reports depend only on the topology and
            // the fault schedule, never on the event queue, so the
            // merged record stays queue-independent.
            for r in storm.scenario.reports() {
                let cov = &mut out.counters.coverage;
                if r.full_rebuild {
                    cov.set(wormsim::CoverageSet::RELABEL_FULL_REBUILD);
                } else if r.reattached_nodes > 0 {
                    cov.set(wormsim::CoverageSet::RELABEL_REATTACH);
                }
                cov.max_reattached_nodes = cov.max_reattached_nodes.max(r.reattached_nodes as u32);
            }
            Ok(out)
        }
        // Pristine and statically degraded networks share the dispatch:
        // the artifacts already hold the right topology, labeling, and
        // surviving-processor population for either case.
        FaultsSpec::None | FaultsSpec::Static { .. } => {
            dispatch(spec, arts, cfg, traffic_seed, mode)
        }
    }
}

/// Static-network execution: attach the routing arm to the artifacts'
/// cached precomputes and drive the workload (open-loop stream or
/// closed-loop hook).
fn dispatch(
    spec: &ScenarioSpec,
    arts: &ScenarioArtifacts,
    cfg: SimConfig,
    traffic_seed: u64,
    mode: RunMode<'_>,
) -> Result<SimOutcome, SpecError> {
    let closed_loop = spec.closed_loop_config();
    let obs = Observers::from_spec(spec);
    let (topo, layout, procs) = (&arts.topo, &arts.layout, arts.procs.as_slice());
    match spec.routing {
        RoutingSpec::Spam { policy } => {
            let routing = arts.spam_routing().with_policy(to_policy(policy));
            match closed_loop {
                Some(cl) => run_closed_loop(topo, routing, cfg, cl, procs, traffic_seed, obs, mode),
                None => {
                    let stream = open_stream(spec, topo, layout, procs, traffic_seed)?;
                    run_open(topo, routing, cfg, stream, obs, mode)
                }
            }
        }
        RoutingSpec::UpDownUnicast => {
            let routing = arts.updown_routing();
            match closed_loop {
                Some(cl) => run_closed_loop(topo, routing, cfg, cl, procs, traffic_seed, obs, mode),
                None => {
                    let stream = open_stream(spec, topo, layout, procs, traffic_seed)?;
                    run_open(topo, routing, cfg, stream, obs, mode)
                }
            }
        }
        RoutingSpec::SoftwareMulticast => {
            let routing = arts.updown_routing();
            let stream = open_stream(spec, topo, layout, procs, traffic_seed)?;
            run_software(topo, routing, cfg, stream, obs, mode)
        }
    }
}

fn to_policy(p: PolicySpec) -> SelectionPolicy {
    match p {
        PolicySpec::MinResidualDistance => SelectionPolicy::MinResidualDistance,
        PolicySpec::FirstLegal => SelectionPolicy::FirstLegal,
        PolicySpec::RandomLegal { seed } => SelectionPolicy::RandomLegal { seed },
    }
}

/// Generates the open-loop stream a spec describes, confined to `procs`.
// The `expect("variant checked")` calls are per-arm: each `*_config()`
// accessor returns `Some` exactly for the variant its match arm just
// destructured.
#[allow(clippy::expect_used)]
fn open_stream(
    spec: &ScenarioSpec,
    topo: &Topology,
    layout: &LatticeLayout,
    procs: &[NodeId],
    seed: u64,
) -> Result<Vec<MessageSpec>, SpecError> {
    match &spec.traffic {
        TrafficSpec::SingleMulticast { dests, len } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let src = procs[rng.gen_range(0..procs.len())];
            let d = DestinationSampler::UniformRandom { count: *dests }
                .sample_within(topo, procs, src, &mut rng)?;
            Ok(vec![MessageSpec::multicast(src, d, *len)])
        }
        TrafficSpec::Mixed { .. } => Ok(spec
            .mixed_config()
            .expect("variant checked")
            .generate_within(topo, procs, seed)?),
        TrafficSpec::Hotspot { .. } => Ok(spec
            .hotspot_config()
            .expect("variant checked")
            .generate_within(topo, procs, seed)?),
        TrafficSpec::Permutation { .. } => Ok(spec
            .permutation_config()
            .expect("variant checked")
            .generate_within(topo, layout, procs, seed)?),
        TrafficSpec::Incast { .. } => Ok(spec
            .incast_config()
            .expect("variant checked")
            .generate_within(topo, procs, seed)?),
        TrafficSpec::BroadcastStorm { len, stagger_ns } => {
            let cfg = BroadcastStormConfig {
                message_len: *len,
                stagger: Duration::from_ns(*stagger_ns),
            };
            Ok(cfg.generate_within(topo, procs)?)
        }
        TrafficSpec::ClosedLoop { .. } => unreachable!("closed loop handled by the dispatcher"),
    }
}

fn to_msg_err(e: wormsim::SpecError) -> SpecError {
    SpecError::Message {
        detail: e.to_string(),
    }
}

fn submit_all<R: RoutingAlgorithm>(
    sim: &mut NetworkSim<'_, R>,
    stream: Vec<MessageSpec>,
) -> Result<(), SpecError> {
    for spec in stream {
        sim.submit(spec).map_err(to_msg_err)?;
    }
    Ok(())
}

fn run_open<R: RoutingAlgorithm>(
    topo: &Topology,
    routing: R,
    cfg: SimConfig,
    stream: Vec<MessageSpec>,
    obs: Observers,
    mode: RunMode<'_>,
) -> Result<SimOutcome, SpecError> {
    match mode {
        RunMode::Resume { bytes } => {
            // The pending stream (and the observers' state) lives in the
            // snapshot; submitting again would double every message.
            drop(stream);
            Ok(NetworkSim::restore(topo, routing, cfg, bytes)
                .map_err(to_snap_err)?
                .run())
        }
        mode => {
            let mut sim = NetworkSim::new(topo, routing, cfg);
            obs.install(&mut sim);
            mode.install(&mut sim);
            submit_all(&mut sim, stream)?;
            Ok(sim.run())
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_closed_loop<R: RoutingAlgorithm>(
    topo: &Topology,
    routing: R,
    cfg: SimConfig,
    cl: traffic::ClosedLoopConfig,
    procs: &[NodeId],
    seed: u64,
    obs: Observers,
    mode: RunMode<'_>,
) -> Result<SimOutcome, SpecError> {
    // The injector's immutable shape (population, per-source quotas)
    // rebuilds from the spec; on resume its mutable state — remaining
    // quotas, RNG position, next tag — is decoded from the snapshot by
    // `restore_with_hook` before the first event fires.
    let mut inj = ClosedLoopInjector::new_within(cl, procs, seed)?;
    match mode {
        RunMode::Resume { bytes } => {
            let sim = NetworkSim::restore_with_hook(topo, routing, cfg, bytes, &mut inj)
                .map_err(to_snap_err)?;
            Ok(sim.run_with_hook(&mut inj))
        }
        mode => {
            let initial = inj.initial_sends();
            let mut sim = NetworkSim::new(topo, routing, cfg);
            obs.install(&mut sim);
            mode.install(&mut sim);
            submit_all(&mut sim, initial)?;
            Ok(sim.run_with_hook(&mut inj))
        }
    }
}

/// All the in-flight software multicasts of one run, dispatched by tag.
#[derive(Default)]
struct MulticastFleet {
    by_tag: HashMap<u64, UnicastMulticast>,
}

impl CompletionHook for MulticastFleet {
    fn on_complete(&mut self, m: MsgId, spec: &MessageSpec, at: Time) -> Vec<MessageSpec> {
        match self.by_tag.get_mut(&spec.tag) {
            Some(um) => um.on_complete(m, spec, at),
            None => Vec::new(),
        }
    }
}

fn run_software(
    topo: &Topology,
    routing: UpDownUnicastRouting<'_>,
    cfg: SimConfig,
    stream: Vec<MessageSpec>,
    obs: Observers,
    mode: RunMode<'_>,
) -> Result<SimOutcome, SpecError> {
    let mut fleet = MulticastFleet::default();
    match mode {
        RunMode::Resume { bytes } => {
            // The forwarding trees are pure functions of the regenerated
            // stream (no mutable state), so rebuild the fleet without
            // submitting — every in-flight unicast is in the snapshot.
            for spec in stream {
                if !spec.is_unicast() {
                    let um =
                        UnicastMulticast::new(spec.src, &spec.dests, spec.len, cfg.latency.startup)
                            .with_tag(spec.tag);
                    fleet.by_tag.insert(spec.tag, um);
                }
            }
            let sim = NetworkSim::restore_with_hook(topo, routing, cfg, bytes, &mut fleet)
                .map_err(to_snap_err)?;
            Ok(sim.run_with_hook(&mut fleet))
        }
        mode => {
            let mut sim = NetworkSim::new(topo, routing, cfg);
            obs.install(&mut sim);
            mode.install(&mut sim);
            for spec in stream {
                if spec.is_unicast() {
                    sim.submit(spec).map_err(to_msg_err)?;
                } else {
                    // One binomial forwarding tree per multicast; the
                    // original message's tag names the tree (tags are
                    // unique per stream).
                    let um =
                        UnicastMulticast::new(spec.src, &spec.dests, spec.len, cfg.latency.startup)
                            .with_tag(spec.tag);
                    for s in um.initial_sends(spec.gen_time) {
                        sim.submit(s).map_err(to_msg_err)?;
                    }
                    fleet.by_tag.insert(spec.tag, um);
                }
            }
            Ok(sim.run_with_hook(&mut fleet))
        }
    }
}
