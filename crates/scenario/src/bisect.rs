//! The golden-divergence bisector: when two runs that *should* be
//! byte-identical are not, binary-search the reference run's
//! checkpoints to localize the first divergent behavior to a sim-time
//! window, then name the first trace event where the two executions
//! part ways.
//!
//! The classic use is a golden-corpus regression: the reference spec is
//! the pinned scenario, the candidate is the same scenario under a
//! different event-queue implementation (or a changed engine) whose
//! outcome digest no longer matches. Resuming the reference's snapshot
//! at time `t` under the candidate replays `[t, end)` with the
//! candidate's engine; if that reproduces the reference outcome, the
//! divergent decision fires *before* `t` — monotone in `t` for a single
//! behavioral difference, which is exactly what a bisection needs.

use crate::run::run_once_full;
use crate::snapshot::{outcome_digest, resume_once, run_once_checkpointed};
use crate::spec::{ScenarioSpec, SpecError};
use wormsim::TraceEvent;

/// The first trace event at which the reference and candidate runs
/// disagree (index into the time-ordered trace; either side may simply
/// end early, in which case the longer side's event is reported alone).
#[derive(Debug, Clone, PartialEq)]
pub struct EventDivergence {
    /// Index into the trace event stream.
    pub index: usize,
    /// Sim-time of the first differing event (ns), from whichever side
    /// has an event at that index.
    pub at_ns: u64,
    /// The reference run's event, rendered (`None` = its trace ended).
    pub reference: Option<String>,
    /// The candidate run's event, rendered (`None` = its trace ended).
    pub candidate: Option<String>,
}

/// Where two supposedly-identical runs first part ways.
#[derive(Debug, Clone, PartialEq)]
pub struct DivergenceReport {
    /// The reference run's outcome digest.
    pub reference_digest: u64,
    /// The candidate run's (differing) outcome digest.
    pub candidate_digest: u64,
    /// Checkpoints the reference run produced.
    pub checkpoints: usize,
    /// Resume probes the bisection spent (≤ ⌈log₂ checkpoints⌉ + 1).
    pub probes: usize,
    /// Exclusive lower bound of the divergence window (ns); `0` means
    /// the runs diverge before the first checkpoint.
    pub window_start_ns: u64,
    /// Inclusive upper bound (ns): resuming from this checkpoint under
    /// the candidate already reproduces the reference, so the divergent
    /// decision fires at or before it. `None` means even the last
    /// checkpoint diverges — the window extends to the end of the run.
    pub window_end_ns: Option<u64>,
    /// The first differing trace event, when both specs traced.
    pub first_event: Option<EventDivergence>,
}

/// Renders one trace event for a report.
fn render(ev: &TraceEvent) -> String {
    format!("{ev:?}")
}

/// First index at which two traces differ, if any.
fn first_trace_divergence(a: &[TraceEvent], b: &[TraceEvent]) -> Option<EventDivergence> {
    let idx = a
        .iter()
        .zip(b)
        .position(|(x, y)| x != y)
        .or_else(|| (a.len() != b.len()).then(|| a.len().min(b.len())))?;
    let (r, c) = (a.get(idx), b.get(idx));
    let at_ns = r.or(c).map_or(0, |ev| ev.at().as_ns());
    Some(EventDivergence {
        index: idx,
        at_ns,
        reference: r.map(render),
        candidate: c.map(render),
    })
}

/// Runs `reference` with checkpoints and `candidate` fresh; if their
/// outcome digests differ, binary-searches the reference's checkpoints
/// (resuming each probe under the **candidate** spec) to localize the
/// divergence. Returns `Ok(None)` when the runs agree.
///
/// Both specs are run with tracing forced on so the report can name the
/// first differing event; tracing is a pure observer, so the digests
/// are unaffected. The candidate must describe the same topology,
/// buffers, and workload (it may differ in engine-neutral axes — the
/// event queue, observers, or the engine build under test); a candidate
/// whose config genuinely differs is rejected by the snapshot layer as
/// [`SpecError::Snapshot`].
pub fn bisect_divergence(
    reference: &ScenarioSpec,
    candidate: &ScenarioSpec,
    rep: u32,
    every_ns: u64,
) -> Result<Option<DivergenceReport>, SpecError> {
    let mut rspec = reference.clone();
    rspec.engine.trace = true;
    let mut cspec = candidate.clone();
    cspec.engine.trace = true;

    let golden = run_once_checkpointed(&rspec, rep, None, every_ns)?;
    let (cand_out, _, _) = run_once_full(&cspec, rep, None)?;
    let reference_digest = outcome_digest(&golden.outcome);
    let candidate_digest = outcome_digest(&cand_out);
    if reference_digest == candidate_digest {
        return Ok(None);
    }

    // Find the first checkpoint whose candidate-resume reproduces the
    // reference (the divergent decision is then strictly before it).
    let k = golden.checkpoints.len();
    let mut probes = 0usize;
    let (mut lo, mut hi) = (0usize, k);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        probes += 1;
        let out = resume_once(&cspec, rep, None, &golden.checkpoints[mid].1)?;
        if outcome_digest(&out) == reference_digest {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let window_start_ns = if lo == 0 {
        0
    } else {
        golden.checkpoints[lo - 1].0
    };
    let window_end_ns = golden.checkpoints.get(lo).map(|(at, _)| *at);

    Ok(Some(DivergenceReport {
        reference_digest,
        candidate_digest,
        checkpoints: k,
        probes,
        window_start_ns,
        window_end_ns,
        first_event: first_trace_divergence(&golden.outcome.trace.events, &cand_out.trace.events),
    }))
}
