//! Content-addressed scenario artifacts: the expensive, reusable prefix
//! of a run.
//!
//! Executing a [`ScenarioSpec`] splits cleanly in two:
//!
//! 1. **Artifact build** — generate the lattice, apply static damage or
//!    precompute a reconfiguration storm's epoch chain, label the
//!    survivors up*/down*, and derive the routing precomputes (SPAM
//!    [`RoutingTables`], the up*/down* baseline's reachability closure).
//!    Deterministic in the spec's *topology + faults* sections and the
//!    replication index — nothing else.
//! 2. **Run** — generate traffic and drive the wormhole engine.
//!
//! [`ArtifactPrefix`] names part 1: the exact sub-spec slice it depends
//! on. Two specs with equal prefixes — however much their traffic,
//! routing policy, engine knobs, or seeds differ — can share one
//! [`ScenarioArtifacts`], which is what the `spam-serve` artifact cache
//! does. [`ArtifactPrefix::fingerprint`] is the cache key: an FNV-1a 64
//! digest (the same accumulator style `spam-fuzz` uses for
//! `outcome_digest`) streamed directly over the prefix fields, so
//! computing it on the request hot path allocates nothing.
//!
//! The differential guarantee — a cache hit changes no outcome byte — is
//! pinned by `tests/serve_cache_differential.rs` at the workspace root:
//! all committed golden scenarios run cold and warm and must produce
//! identical `outcome_digest`s.

use crate::codec::{decode_faults, decode_topology, encode_faults, encode_topology};
use crate::json::{self, Json, Num};
use crate::run::rep_seed;
use crate::spec::{
    FaultModelSpec, FaultsSpec, ScenarioSpec, SpecError, StrategySpec, TopologySpec,
};
use baselines::{UpDownPrecomp, UpDownUnicastRouting};
use desim::Time;
use netgraph::gen::lattice::{IrregularConfig, LatticeLayout, LatticeStrategy};
use netgraph::{NodeId, Topology};
use spam_core::{RoutingTables, SpamRouting};
use spam_faults::DegradedNetwork;
use spam_reconfig::{EpochRouting, FaultSchedule, ReconfigScenario};
use std::sync::{Arc, OnceLock};
use updown::{RootSelection, UpDownLabeling};

/// Streaming FNV-1a 64 over field words — no intermediate buffer, so
/// fingerprinting a spec on the request path allocates nothing.
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    #[inline]
    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    #[inline]
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.byte(b);
        }
    }

    #[inline]
    fn f64(&mut self, v: f64) {
        // Bit-exact: the fingerprint distinguishes every distinct rate.
        self.u64(v.to_bits());
    }
}

/// Bump when the fingerprinted field set or its encoding changes, so a
/// persisted cache manifest from an older layout can never alias a new
/// key.
const FINGERPRINT_VERSION: u8 = 1;

/// The slice of a [`ScenarioSpec`] the artifact build depends on: the
/// topology and fault sections plus the replication index (replications
/// beyond 0 derive their own generator and fault seeds). Everything else
/// — name, traffic, routing, engine knobs, the traffic seed, the
/// replication *count* — is irrelevant to the artifacts and deliberately
/// excluded, so specs differing only in those share a cache entry.
#[derive(Debug, Clone, PartialEq)]
pub struct ArtifactPrefix {
    /// The lattice recipe.
    pub topology: TopologySpec,
    /// The damage recipe (static plan or storm schedule parameters).
    pub faults: FaultsSpec,
    /// Replication index the artifacts are built for.
    pub rep: u32,
}

impl ArtifactPrefix {
    /// Extracts the prefix of `spec` for replication `rep`.
    pub fn of(spec: &ScenarioSpec, rep: u32) -> Self {
        ArtifactPrefix {
            topology: spec.topology.clone(),
            faults: spec.faults,
            rep,
        }
    }

    /// True when `spec` at replication `rep` has exactly this prefix —
    /// the hit-path equality check behind the 64-bit fingerprint
    /// (collision safety without re-encoding anything).
    pub fn matches(&self, spec: &ScenarioSpec, rep: u32) -> bool {
        self.rep == rep && self.topology == spec.topology && self.faults == spec.faults
    }

    /// The cache key: FNV-1a 64 streamed over a versioned, tagged field
    /// encoding. Equal prefixes always fingerprint equal; distinct
    /// prefixes collide only with 64-bit-hash probability (and the cache
    /// re-checks [`Self::matches`] on every hit, so a collision surfaces
    /// as a typed error, never as wrong artifacts).
    pub fn fingerprint(&self) -> u64 {
        fingerprint_of(&self.topology, &self.faults, self.rep)
    }

    /// One-line canonical JSON of the prefix — the persistence form used
    /// by the cache manifest (artifacts themselves are deterministic
    /// rebuilds, so the manifest only needs the recipe).
    pub fn canonical_json(&self) -> String {
        Json::Obj(vec![
            ("topology".to_string(), encode_topology(&self.topology)),
            ("faults".to_string(), encode_faults(&self.faults)),
            ("rep".to_string(), Json::Num(Num::U(self.rep as u64))),
        ])
        .to_string_compact()
    }

    /// Decodes a [`Self::canonical_json`] document. Strict like the
    /// scenario codec: wrong shapes surface as typed [`SpecError`]s.
    pub fn from_canonical_json(text: &str) -> Result<Self, SpecError> {
        let doc = json::parse(text).map_err(SpecError::Json)?;
        let get = |key: &str| {
            doc.get(key).ok_or_else(|| SpecError::MissingField {
                field: format!("prefix.{key}"),
            })
        };
        let rep = match get("rep")?.as_num().and_then(|n| n.as_u64()) {
            Some(v) if v <= u32::MAX as u64 => v as u32,
            _ => {
                return Err(SpecError::WrongType {
                    field: "prefix.rep".to_string(),
                    expected: "u32",
                })
            }
        };
        Ok(ArtifactPrefix {
            topology: decode_topology(get("topology")?)?,
            faults: decode_faults(get("faults")?)?,
            rep,
        })
    }

    /// Validates the prefix fields in isolation (the subset of
    /// [`ScenarioSpec::validate`] that concerns topology and faults).
    /// Prefixes extracted from validated specs always pass; this guards
    /// prefixes decoded from a persisted cache manifest.
    pub fn validate(&self) -> Result<(), SpecError> {
        let t = &self.topology;
        if t.switches < 2 {
            return Err(SpecError::TooFewSwitches {
                switches: t.switches,
            });
        }
        if let Some(side) = t.side {
            if side * side < t.switches {
                return Err(SpecError::LatticeTooSmall {
                    switches: t.switches,
                    side,
                });
            }
        }
        if t.ports < 5 {
            return Err(SpecError::BadPorts { ports: t.ports });
        }
        let check_model = |m: &FaultModelSpec| match *m {
            FaultModelSpec::IidLinks { rate } | FaultModelSpec::IidSwitches { rate } => {
                if (0.0..=1.0).contains(&rate) {
                    Ok(())
                } else {
                    Err(SpecError::BadFaultRate { rate })
                }
            }
            FaultModelSpec::Region { .. } => Ok(()),
        };
        match self.faults {
            FaultsSpec::None => Ok(()),
            FaultsSpec::Static { ref model, .. } => check_model(model),
            FaultsSpec::Storm {
                ref model,
                window_start_us,
                window_end_us,
                bursts,
                ..
            } => {
                check_model(model)?;
                if window_end_us <= window_start_us {
                    return Err(SpecError::EmptyStormWindow {
                        start_us: window_start_us,
                        end_us: window_end_us,
                    });
                }
                if bursts == 0 {
                    return Err(SpecError::ZeroBursts);
                }
                Ok(())
            }
        }
    }

    /// Builds the artifacts this prefix describes: lattice generation,
    /// fault application, labeling — everything a run needs before
    /// traffic. Deterministic: equal prefixes build byte-identical
    /// artifacts, which is the entire basis of the cache's correctness.
    pub fn build(&self) -> Result<ScenarioArtifacts, SpecError> {
        self.validate()?;
        let tspec = &self.topology;
        let rep = self.rep;
        let default_side = IrregularConfig::with_switches(tspec.switches).side;
        let gen = IrregularConfig {
            switches: tspec.switches,
            side: tspec.side.unwrap_or(default_side),
            strategy: match tspec.strategy {
                StrategySpec::ConnectedGrowth => LatticeStrategy::ConnectedGrowth,
                StrategySpec::UniformRetry => LatticeStrategy::UniformRetry,
            },
            max_retries: 64,
        };
        let (topo, layout) = gen.generate_with_layout(rep_seed(tspec.seed, rep));
        topo.validate(tspec.ports)
            .map_err(|_| SpecError::BadPorts { ports: tspec.ports })?;

        match self.faults {
            FaultsSpec::None => {
                let labeling = UpDownLabeling::build(&topo, RootSelection::LowestId);
                let procs: Vec<NodeId> = topo.processors().collect();
                Ok(ScenarioArtifacts::new(
                    self.clone(),
                    topo,
                    layout,
                    labeling,
                    procs,
                    None,
                ))
            }
            FaultsSpec::Storm {
                ref model,
                seed,
                window_start_us,
                window_end_us,
                bursts,
            } => {
                let labeling = UpDownLabeling::build(&topo, RootSelection::LowestId);
                let schedule = FaultSchedule::storm(
                    &model.to_model(),
                    &topo,
                    Some(&layout),
                    (Time::from_us(window_start_us), Time::from_us(window_end_us)),
                    bursts,
                    rep_seed(seed, rep),
                );
                // A storm can destroy the whole fabric (e.g. switch
                // faults at rate 1.0); that is a typed rejection, not a
                // panic.
                let scenario = ReconfigScenario::try_build(&topo, &labeling, &schedule)
                    .ok_or(SpecError::NoSurvivingComponent)?;
                let procs: Vec<NodeId> = topo.processors().collect();
                Ok(ScenarioArtifacts::new(
                    self.clone(),
                    topo,
                    layout,
                    labeling,
                    procs,
                    Some(StormArtifacts {
                        schedule,
                        scenario,
                        epoch_tables: OnceLock::new(),
                    }),
                ))
            }
            FaultsSpec::Static { ref model, seed } => {
                // Damage strikes before the run: reconfigure and confine
                // the workload to the largest surviving component.
                let plan = model
                    .to_model()
                    .sample(&topo, Some(&layout), rep_seed(seed, rep));
                let net = DegradedNetwork::build(&topo, &plan, None);
                let comp = net.largest().ok_or(SpecError::NoSurvivingComponent)?;
                let procs = comp.processors(&net.topo);
                if procs.len() < 2 {
                    return Err(SpecError::NoSurvivingComponent);
                }
                let labeling = comp.labeling.clone();
                Ok(ScenarioArtifacts::new(
                    self.clone(),
                    net.topo,
                    layout,
                    labeling,
                    procs,
                    None,
                ))
            }
        }
    }
}

/// Streaming fingerprint over a spec's prefix fields without extracting
/// (= cloning) an [`ArtifactPrefix`] — the allocation-free hit path.
pub fn spec_fingerprint(spec: &ScenarioSpec, rep: u32) -> u64 {
    fingerprint_of(&spec.topology, &spec.faults, rep)
}

fn fingerprint_of(t: &TopologySpec, f: &FaultsSpec, rep: u32) -> u64 {
    let mut h = Fnv::new();
    h.byte(FINGERPRINT_VERSION);
    // Topology, field-tagged in declaration order.
    h.u64(t.switches as u64);
    h.u64(t.seed);
    match t.side {
        None => h.byte(0),
        Some(s) => {
            h.byte(1);
            h.u64(s as u64);
        }
    }
    h.byte(match t.strategy {
        StrategySpec::ConnectedGrowth => 0,
        StrategySpec::UniformRetry => 1,
    });
    h.u64(t.ports as u64);
    // Faults: variant tag, then fields.
    let model = |h: &mut Fnv, m: &FaultModelSpec| match *m {
        FaultModelSpec::IidLinks { rate } => {
            h.byte(0);
            h.f64(rate);
        }
        FaultModelSpec::IidSwitches { rate } => {
            h.byte(1);
            h.f64(rate);
        }
        FaultModelSpec::Region { radius } => {
            h.byte(2);
            h.u64(radius as u64);
        }
    };
    match *f {
        FaultsSpec::None => h.byte(0),
        FaultsSpec::Static { model: ref m, seed } => {
            h.byte(1);
            model(&mut h, m);
            h.u64(seed);
        }
        FaultsSpec::Storm {
            model: ref m,
            seed,
            window_start_us,
            window_end_us,
            bursts,
        } => {
            h.byte(2);
            model(&mut h, m);
            h.u64(seed);
            h.u64(window_start_us);
            h.u64(window_end_us);
            h.u64(bursts as u64);
        }
    }
    h.u64(rep as u64);
    h.0
}

/// A storm prefix's extra artifacts: the fault schedule and the fully
/// precomputed epoch chain, plus the per-epoch masked routing tables
/// (built lazily on first use, then shared).
#[derive(Debug)]
pub struct StormArtifacts {
    /// The sampled fault schedule (link/switch deaths with timestamps).
    pub schedule: FaultSchedule,
    /// Per-epoch labelings and liveness masks.
    pub scenario: ReconfigScenario,
    epoch_tables: OnceLock<Vec<Arc<RoutingTables>>>,
}

/// Everything a run needs before traffic generation, built once per
/// [`ArtifactPrefix`] and shareable across arbitrarily many runs (the
/// struct is `Sync`; routing precomputes are `Arc`-shared and built
/// lazily per routing arm on first use).
#[derive(Debug)]
pub struct ScenarioArtifacts {
    /// The prefix these artifacts realize.
    pub prefix: ArtifactPrefix,
    /// The execution topology: pristine for `faults: none` and storms,
    /// post-degradation for static faults (dead nodes isolated, ids
    /// preserved).
    pub topo: Topology,
    /// The lattice layout the topology was generated on.
    pub layout: LatticeLayout,
    /// The up*/down* labeling runs route by: the pristine labeling for
    /// `none`/storm prefixes, the largest surviving component's for
    /// static faults.
    pub labeling: UpDownLabeling,
    /// The processors traffic may use (confined to the surviving
    /// component under static faults).
    pub procs: Vec<NodeId>,
    /// Storm-only extras.
    pub storm: Option<StormArtifacts>,
    spam_tables: OnceLock<Arc<RoutingTables>>,
    updown: OnceLock<UpDownPrecomp>,
}

impl ScenarioArtifacts {
    fn new(
        prefix: ArtifactPrefix,
        topo: Topology,
        layout: LatticeLayout,
        labeling: UpDownLabeling,
        procs: Vec<NodeId>,
        storm: Option<StormArtifacts>,
    ) -> Self {
        ScenarioArtifacts {
            prefix,
            topo,
            layout,
            labeling,
            procs,
            storm,
            spam_tables: OnceLock::new(),
            updown: OnceLock::new(),
        }
    }

    /// A SPAM router over the cached topology, labeling, and (lazily
    /// built, then shared) [`RoutingTables`] — identical decisions to
    /// `SpamRouting::new(&topo, &labeling)`.
    pub fn spam_routing(&self) -> SpamRouting<'_> {
        let tables = self
            .spam_tables
            .get_or_init(|| Arc::new(RoutingTables::build(&self.topo, &self.labeling)));
        SpamRouting::with_tables(&self.topo, &self.labeling, Arc::clone(tables))
    }

    /// An up*/down* unicast router over the cached precompute —
    /// identical decisions to `UpDownUnicastRouting::new`.
    pub fn updown_routing(&self) -> UpDownUnicastRouting<'_> {
        let precomp = self
            .updown
            .get_or_init(|| UpDownUnicastRouting::new(&self.topo, &self.labeling).precomp());
        UpDownUnicastRouting::with_precomp(&self.topo, &self.labeling, precomp.clone())
    }

    /// The epoch-switching router of a storm prefix (`None` otherwise),
    /// with each epoch's masked tables built once and cached — identical
    /// decisions to `ReconfigScenario::routing`.
    pub fn epoch_routing(&self) -> Option<EpochRouting<'_>> {
        let storm = self.storm.as_ref()?;
        let tables = storm
            .epoch_tables
            .get_or_init(|| storm.scenario.build_epoch_tables(&self.topo));
        Some(storm.scenario.routing_with_tables(&self.topo, tables))
    }

    /// Approximate heap footprint in bytes — what a byte-budgeted cache
    /// charges for this entry. Routing precomputes are charged *eagerly*
    /// (as if already built) so an entry's cost never changes after
    /// insertion; the estimate is deliberately conservative for non-storm
    /// entries, which may serve both routing arms.
    pub fn approx_bytes(&self) -> usize {
        let n = self.topo.num_nodes();
        let m = self.topo.num_channels();
        // Topology adjacency + channel records, layout, labeling (two
        // n×n bit matrices plus per-node fields), processor list.
        let base = m * 24 + n * 64 + n * n / 4 + self.procs.len() * 4;
        let spam_tables = n * 3 * n * 2 + m * 12;
        let updown = n * 2 * n * 2 + n * n / 8;
        match &self.storm {
            // Storms route SPAM-only, one masked table set per epoch.
            Some(s) => base + s.scenario.num_epochs() * spam_tables,
            None => base + spam_tables + updown,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    fn spec() -> ScenarioSpec {
        ScenarioSpec::example("artifact-tests")
    }

    #[test]
    fn prefix_round_trips_through_canonical_json() {
        let mut s = spec();
        s.faults = FaultsSpec::Storm {
            model: FaultModelSpec::IidLinks { rate: 0.25 },
            seed: 9,
            window_start_us: 5,
            window_end_us: 50,
            bursts: 3,
        };
        let p = ArtifactPrefix::of(&s, 2);
        let round = ArtifactPrefix::from_canonical_json(&p.canonical_json()).unwrap();
        assert_eq!(p, round);
        assert_eq!(p.fingerprint(), round.fingerprint());
    }

    #[test]
    fn fingerprint_ignores_traffic_and_traffic_seed() {
        let a = spec();
        let mut b = spec();
        b.name = "renamed".into();
        b.seed = a.seed ^ 0xDEAD;
        b.replications = 7;
        b.engine.trace = true;
        assert_eq!(spec_fingerprint(&a, 0), spec_fingerprint(&b, 0));
    }

    #[test]
    fn fingerprint_separates_reps_and_prefix_fields() {
        let a = spec();
        assert_ne!(spec_fingerprint(&a, 0), spec_fingerprint(&a, 1));
        let mut b = spec();
        b.topology.seed ^= 1;
        assert_ne!(spec_fingerprint(&a, 0), spec_fingerprint(&b, 0));
        let mut c = spec();
        c.faults = FaultsSpec::Static {
            model: FaultModelSpec::IidLinks { rate: 0.1 },
            seed: 0,
        };
        assert_ne!(spec_fingerprint(&a, 0), spec_fingerprint(&c, 0));
    }

    #[test]
    fn build_is_deterministic() {
        let p = ArtifactPrefix::of(&spec(), 0);
        let x = p.build().unwrap();
        let y = p.build().unwrap();
        assert_eq!(x.topo.num_nodes(), y.topo.num_nodes());
        assert_eq!(x.topo.num_channels(), y.topo.num_channels());
        assert_eq!(x.procs, y.procs);
        assert!(x.approx_bytes() > 0);
    }

    #[test]
    fn manifest_prefix_validation_rejects_bad_fields() {
        let mut p = ArtifactPrefix::of(&spec(), 0);
        p.topology.switches = 1;
        assert!(matches!(
            p.build(),
            Err(SpecError::TooFewSwitches { switches: 1 })
        ));
    }
}
